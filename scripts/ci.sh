#!/usr/bin/env bash
# Tier-1 verification entry point. Runs entirely offline: the workspace has
# no external dependencies (see DESIGN.md §3), so a bare toolchain and this
# checkout are all that is needed.
#
#   scripts/ci.sh          # build + test + lint, whole workspace
#   BENCH=1 scripts/ci.sh  # additionally run the bench harness once
#                          # (emits BENCH_dataplane.json / BENCH_figures.json)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline --workspace --all-targets

echo "== test =="
cargo test -q --offline --workspace

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== observability smoke (repro --table2 --metrics --trace) =="
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --table2 --metrics --trace "$TRACE_DIR/table2.json" > "$TRACE_DIR/stdout.txt"
grep -q "Unified metrics summary" "$TRACE_DIR/stdout.txt"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --validate-trace "$TRACE_DIR/table2.json"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --validate-trace "$TRACE_DIR/table2.jsonl"

if [[ "${BENCH:-0}" != "0" ]]; then
    echo "== bench =="
    BENCH_SAMPLES="${BENCH_SAMPLES:-10}" cargo bench --offline -p ncache-bench
fi

echo "CI OK"
