#!/usr/bin/env bash
# Tier-1 verification entry point. Runs entirely offline: the workspace has
# no external dependencies (see DESIGN.md §3), so a bare toolchain and this
# checkout are all that is needed.
#
#   scripts/ci.sh          # build + test + lint, whole workspace
#   BENCH=1 scripts/ci.sh  # additionally run the bench harness once
#                          # (emits BENCH_dataplane.json / BENCH_figures.json)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --offline --workspace --all-targets

echo "== test =="
cargo test -q --offline --workspace

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== observability smoke (repro --table2 --metrics --trace) =="
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --table2 --metrics --trace "$TRACE_DIR/table2.json" > "$TRACE_DIR/stdout.txt"
grep -q "Unified metrics summary" "$TRACE_DIR/stdout.txt"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --validate-trace "$TRACE_DIR/table2.json"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --validate-trace "$TRACE_DIR/table2.jsonl"

echo "== executor smoke (repro --table2, 1 vs N threads, identical stdout) =="
# At least 4 workers so the multi-worker path is exercised even on small
# machines (the executor oversubscribes harmlessly).
NT="$(nproc 2>/dev/null || echo 4)"
if [[ "$NT" -lt 4 ]]; then NT=4; fi
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --table2 --threads 1 2>/dev/null > "$TRACE_DIR/table2_t1.txt"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --table2 --threads "$NT" 2>/dev/null > "$TRACE_DIR/table2_tN.txt"
cmp "$TRACE_DIR/table2_t1.txt" "$TRACE_DIR/table2_tN.txt"
echo "table2 identical at 1 and $NT threads"

echo "== fault smoke (repro --table2 --faults, same-seed determinism) =="
# The same seed + spec must replay byte-identically at any thread count.
# (The faulted counts may exceed the fault-free table: a retransmitted
# request really does the work twice, and the ledgers count it honestly.)
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --table2 --faults loss=0.05 --seed 7 --threads 1 \
    2>/dev/null > "$TRACE_DIR/table2_f1.txt"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --table2 --faults loss=0.05 --seed 7 --threads "$NT" \
    2>/dev/null > "$TRACE_DIR/table2_fN.txt"
cmp "$TRACE_DIR/table2_f1.txt" "$TRACE_DIR/table2_fN.txt"
echo "faulted table2 identical at 1 and $NT threads"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --faults-sweep --threads 1 2>/dev/null > "$TRACE_DIR/sweep_1.txt"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --faults-sweep --threads "$NT" 2>/dev/null > "$TRACE_DIR/sweep_N.txt"
cmp "$TRACE_DIR/sweep_1.txt" "$TRACE_DIR/sweep_N.txt"
echo "fault sweep identical at 1 and $NT threads"
# Multi-session correctness under loss rides the same smoke: 16
# interleaved client sessions, overlapping writes, every build config.
cargo test -q --release --offline --test multi_client
# The differential oracle suite's faulted half: per-lane seed-derived
# fault plans must reproduce exactly across thread counts.
cargo test -q --release --offline --test concurrent_oracle

echo "== shard determinism (repro --clients-sweep, shards x threads) =="
# Sharding the cache and threading the executor must both be
# unobservable: the client-scaling tables are byte-identical across
# shard counts 1 vs 8 and thread counts 1 vs N.
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --clients-sweep --shards 1 --threads 1 \
    2>/dev/null > "$TRACE_DIR/clients_s1_t1.txt"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --clients-sweep --shards 8 --threads 1 \
    2>/dev/null > "$TRACE_DIR/clients_s8_t1.txt"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --clients-sweep --shards 8 --threads "$NT" \
    2>/dev/null > "$TRACE_DIR/clients_s8_tN.txt"
cmp "$TRACE_DIR/clients_s1_t1.txt" "$TRACE_DIR/clients_s8_t1.txt"
cmp "$TRACE_DIR/clients_s1_t1.txt" "$TRACE_DIR/clients_s8_tN.txt"
echo "clients sweep identical at shards {1,8} and threads {1,$NT}"

echo "== overload observatory (repro --overload-sweep --latency-report) =="
# The open-loop sweep and its latency-attribution report are read off
# merged recorder histograms whose shard absorb is exact, so stdout —
# goodput, tail quantiles, stage shares AND the rendered report — must
# be byte-identical across thread and shard counts.
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --overload-sweep --latency-report --threads 1 --shards 1 \
    2>/dev/null > "$TRACE_DIR/overload_t1_s1.txt"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --overload-sweep --latency-report --threads "$NT" --shards 1 \
    2>/dev/null > "$TRACE_DIR/overload_tN_s1.txt"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --overload-sweep --latency-report --threads "$NT" --shards 8 \
    2>/dev/null > "$TRACE_DIR/overload_tN_s8.txt"
cmp "$TRACE_DIR/overload_t1_s1.txt" "$TRACE_DIR/overload_tN_s1.txt"
cmp "$TRACE_DIR/overload_t1_s1.txt" "$TRACE_DIR/overload_tN_s8.txt"
grep -q "Latency attribution report" "$TRACE_DIR/overload_t1_s1.txt"
grep -q "bottleneck" "$TRACE_DIR/overload_t1_s1.txt"
echo "overload sweep + latency report identical at threads {1,$NT} and shards {1,8}"

echo "== overload control plane (repro --overload-sweep --protected) =="
# The protected-vs-unprotected ablation runs both variants off identical
# offered schedules; admission decisions, retry backoffs, and shedding
# are all seed-derived, so its stdout must also be byte-identical across
# thread and shard counts.
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --overload-sweep --protected --threads 1 --shards 1 \
    2>/dev/null > "$TRACE_DIR/ablation_t1_s1.txt"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --overload-sweep --protected --threads "$NT" --shards 1 \
    2>/dev/null > "$TRACE_DIR/ablation_tN_s1.txt"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --overload-sweep --protected --threads "$NT" --shards 8 \
    2>/dev/null > "$TRACE_DIR/ablation_tN_s8.txt"
cmp "$TRACE_DIR/ablation_t1_s1.txt" "$TRACE_DIR/ablation_tN_s1.txt"
cmp "$TRACE_DIR/ablation_t1_s1.txt" "$TRACE_DIR/ablation_tN_s8.txt"
echo "overload ablation identical at threads {1,$NT} and shards {1,8}"
# The robustness gate: at 2x capacity the protected server must deliver
# at least the unprotected goodput (the control plane's reason to
# exist — in practice it holds a multiple; see EXPERIMENTS.md).
awk '/^# Overload ablation: delivered/ { t = 1 }
t && $1 == "2.0" {
    found = 1
    printf "goodput at 2.0x: unprotected %s vs protected %s MB/s\n", $2, $3
    exit !($3 >= $2)
}
END { if (!found) { print "no 2.0x goodput row found" > "/dev/stderr"; exit 2 } }' \
    "$TRACE_DIR/ablation_t1_s1.txt"
echo "protected goodput at 2x capacity >= unprotected"

echo "== adaptive cache split (repro --adaptive-sweep) =="
# Static (frozen controller) vs adaptive split over the phase-changing
# Zipf workload on the tiered backend. Controller ticks are epoch-
# aligned to op rounds and ghost stamps are schedule-invariant, so the
# sweep's stdout must be byte-identical across thread and shard counts.
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --adaptive-sweep --threads 1 --shards 1 \
    2>/dev/null > "$TRACE_DIR/adaptive_t1_s1.txt"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --adaptive-sweep --threads "$NT" --shards 1 \
    2>/dev/null > "$TRACE_DIR/adaptive_tN_s1.txt"
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --adaptive-sweep --threads "$NT" --shards 8 \
    2>/dev/null > "$TRACE_DIR/adaptive_tN_s8.txt"
cmp "$TRACE_DIR/adaptive_t1_s1.txt" "$TRACE_DIR/adaptive_tN_s1.txt"
cmp "$TRACE_DIR/adaptive_t1_s1.txt" "$TRACE_DIR/adaptive_tN_s8.txt"
echo "adaptive sweep identical at threads {1,$NT} and shards {1,8}"
# The adaptation gate: on every post-phase-shift segment (4-6) the
# adaptive split must deliver at least the static split's goodput (the
# windowed ghost signal's reason to exist; see EXPERIMENTS.md).
awk '/^# Adaptive split ablation: delivered/ { t = 1; next }
/^#/ { t = 0 }
t && $1 + 0 >= 4 {
    rows += 1
    printf "goodput at segment %s: static %s vs adaptive %s MB/s\n", $1, $2, $3
    if ($3 + 0 < $2 + 0) bad = 1
}
END {
    if (rows < 3) { print "missing post-shift goodput rows" > "/dev/stderr"; exit 2 }
    exit bad
}' "$TRACE_DIR/adaptive_t1_s1.txt"
echo "adaptive goodput >= static on every post-shift segment"

echo "== concurrent data plane (parallel vs sequential, identical stdout) =="
# The lane-parallel engine runs each cell's sessions on real threads
# over the sharded cache; its stdout must be byte-identical to the
# sequential oracle on the same warmed workload, across the full
# threads {1,2,N} x shards {1,8} matrix. Wall-clock per run goes to
# stderr only, so stdout stays diff-stable.
lanes_run() { # lanes_run OUT THREADS SHARDS [extra args...]
    local out="$1" t="$2" s="$3"; shift 3
    local t0 t1
    t0="$(date +%s%N)"
    cargo run --release --offline -q -p ncache-bench --bin repro -- \
        --clients-sweep --parallel-lanes --threads "$t" --shards "$s" "$@" \
        2>/dev/null > "$out"
    t1="$(date +%s%N)"
    echo "parallel lanes threads=$t shards=$s $*: $(( (t1 - t0) / 1000000 )) ms" >&2
}
cargo run --release --offline -q -p ncache-bench --bin repro -- \
    --clients-sweep --lane-oracle \
    2>/dev/null > "$TRACE_DIR/lanes_oracle.txt"
for S in 1 8; do
    for T in 1 2 "$NT"; do
        lanes_run "$TRACE_DIR/lanes_t${T}_s${S}.txt" "$T" "$S"
        cmp "$TRACE_DIR/lanes_oracle.txt" "$TRACE_DIR/lanes_t${T}_s${S}.txt"
    done
done
echo "parallel lanes identical to the sequential oracle at threads {1,2,$NT} x shards {1,8}"

echo "== concurrent data plane under loss (parallel self-consistency) =="
# Faulted draws are per-lane (seed, lane) plans inside the parallel
# engine, so the faulted reference is the --threads 1 run of the same
# engine (not the sequential oracle); every other thread count must
# reproduce it byte for byte, at each shard count.
for S in 1 8; do
    lanes_run "$TRACE_DIR/lanes_f_t1_s${S}.txt" 1 "$S" --faults loss=0.02 --seed 7
    for T in 2 "$NT"; do
        lanes_run "$TRACE_DIR/lanes_f_t${T}_s${S}.txt" "$T" "$S" --faults loss=0.02 --seed 7
        cmp "$TRACE_DIR/lanes_f_t1_s${S}.txt" "$TRACE_DIR/lanes_f_t${T}_s${S}.txt"
    done
done
echo "faulted parallel lanes (loss=0.02) identical at threads {1,2,$NT} per shards {1,8}"

echo "== perf gate (figures bench vs committed BENCH_figures.json) =="
BENCH_JSON_DIR="$TRACE_DIR" BENCH_SAMPLES=5 \
    cargo bench --offline -q -p ncache-bench --bench figures > "$TRACE_DIR/bench.log"
# The bench JSON puts each result on one line; pull medians out with
# grep so the gate stays dependency-free.
bench_median() {
    grep -o "\"name\": \"$2\"[^}]*" "$1" \
        | grep -o '"median_ns": [0-9]*' | grep -o '[0-9]*'
}
for GATE in figures/fig4_all_miss obs/quantile_engine; do
    FRESH="$(bench_median "$TRACE_DIR/BENCH_figures.json" "$GATE")"
    COMMITTED="$(bench_median BENCH_figures.json "$GATE")"
    LIMIT=$((COMMITTED * 3))
    echo "$GATE median: fresh ${FRESH} ns vs committed ${COMMITTED} ns (limit ${LIMIT} ns)"
    if (( FRESH > LIMIT )); then
        echo "$GATE regressed: ${FRESH} ns is more than 3x the committed median" >&2
        exit 1
    fi
done

echo "== lane-parallel speedup (functional-phase wall clock, 1 vs N) =="
# The figures bench just measured the lane-parallel engine's functional
# phase at 1 / 2 / host threads. Report the wall clocks to stderr, and
# gate speedup > 1.5x only on hosts that can actually run 4 lanes in
# parallel — on a single-CPU container threads time-slice one core and
# the honest speedup sits near 1.0 (EXPERIMENTS.md, "Parallel-lane
# speedup"). The byte-exactness gates above run regardless.
bench_metric() {
    grep -o "\"$2\": [0-9.]*" "$1" | head -1 | grep -o '[0-9.]*$'
}
SPEEDUP="$(bench_metric "$TRACE_DIR/BENCH_figures.json" sessions.parallel_speedup)"
grep -o '"sessions\.parallel_wall_ms\.t[0-9]*": [0-9.]*' \
    "$TRACE_DIR/BENCH_figures.json" >&2
HOST_CPUS="$(nproc 2>/dev/null || echo 1)"
echo "sessions.parallel_speedup = ${SPEEDUP} (host CPUs: ${HOST_CPUS})"
if (( HOST_CPUS >= 4 )); then
    awk -v s="$SPEEDUP" 'BEGIN { exit !(s > 1.5) }' || {
        echo "lane-parallel speedup ${SPEEDUP} <= 1.5x on a ${HOST_CPUS}-CPU host" >&2
        exit 1
    }
else
    echo "speedup gate skipped: host has ${HOST_CPUS} CPU(s), need >= 4"
fi

if [[ "${BENCH:-0}" != "0" ]]; then
    echo "== bench =="
    BENCH_SAMPLES="${BENCH_SAMPLES:-10}" cargo bench --offline -p ncache-bench
fi

echo "CI OK"
