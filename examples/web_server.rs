//! NCache applied to the in-kernel static web server (paper §4.3): publish
//! a SPECweb99-like page set, serve Zipf-distributed GETs, and compare the
//! three builds.
//!
//! ```text
//! cargo run --release --example web_server
//! ```

use ncache_repro::obs::MetricsReport;
use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::khttpd_rig::{KhttpdRig, KhttpdRigParams};
use ncache_repro::testbed::runner::{run, DriverOp, RunOptions};
use ncache_repro::workload::specweb::{PageSet, SpecWeb};

fn main() {
    let working_set: u64 = 24 << 20;
    let set = PageSet::with_working_set(working_set);
    println!(
        "page set: {} directories, {} pages, {:.1} MB total, mean page ≈ {:.0} KB",
        set.dirs(),
        set.pages().len(),
        set.total_bytes() as f64 / 1e6,
        SpecWeb::mean_page_size() / 1e3,
    );

    for mode in ServerMode::ALL {
        // Same memory budget for every build: the NCache build pins most
        // of it for the network-centric cache and leaves the file-system
        // cache small (paper §4.1); the others give it all to the FS cache.
        let budget: u64 = 40 << 20;
        let (fs_cache_blocks, ncache_bytes) = match mode {
            ServerMode::NCache => ((budget / 8 / 4096) as usize, budget - budget / 8),
            _ => ((budget / 4096) as usize, 1 << 20),
        };
        let mut rig = KhttpdRig::new(
            mode,
            KhttpdRigParams {
                volume_blocks: (set.total_bytes() / 4096) * 2 + 4096,
                fs_cache_blocks,
                ncache_bytes,
                ..KhttpdRigParams::default()
            },
        );
        for (name, size) in set.pages() {
            rig.publish_sparse(&name, size);
        }
        rig.quiesce();

        // Sanity: one page served correctly end to end (except under the
        // deliberately junk-shipping baseline).
        let gen = SpecWeb::new(set.clone(), 7);
        let ops: Vec<DriverOp> = gen
            .take(800)
            .map(|op| DriverOp::Get { path: op.path })
            .collect();
        let (warm, measured) = ops.split_at(200);
        for op in warm {
            use ncache_repro::testbed::runner::RigDriver;
            rig.run_op(op);
        }
        let result = run(&mut rig, measured.to_vec(), &RunOptions::default());
        println!(
            "{:9}: {:6.1} MB/s, {:5.0} pages/s, app CPU {:4.1}%",
            mode.label(),
            result.throughput_mbs,
            result.ops_per_sec,
            result.app_cpu_util * 100.0,
        );
        // The unified snapshot replaces ad-hoc Debug prints: one
        // StatsSnapshot per stats struct, rendered the same way everywhere.
        let mut report = MetricsReport::new();
        report.add_snapshot(mode.label(), &rig.server_mut().stats());
        print!("{}", report.render());
        if let Some(module) = rig.module() {
            println!(
                "           NCache substitutions: {:?}",
                module.borrow().substitution_totals()
            );
        }
    }
}
