//! Drive the pass-through server from an NFS trace, the way the paper uses
//! synthetic traces and the Active Trace Player (§5.3, reference [20]).
//!
//! ```text
//! cargo run --release --example trace_player
//! ```

use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};
use ncache_repro::testbed::runner::{run, DriverOp, RunOptions};
use ncache_repro::workload::micro::SeqRead;
use ncache_repro::workload::trace::{write_trace, TracePlayer};
use ncache_repro::workload::{FileId, NfsOp};

fn main() {
    // Synthesize a trace: a sequential sweep followed by a few hot re-reads
    // and an overwrite burst.
    let mut ops: Vec<NfsOp> = SeqRead::new(FileId(0), 1 << 20, 32 << 10).collect();
    for _ in 0..4 {
        ops.push(NfsOp::Read {
            file: FileId(0),
            offset: 0,
            len: 32 << 10,
        });
    }
    for blk in 0..8u64 {
        ops.push(NfsOp::Write {
            file: FileId(0),
            offset: blk * 4096,
            len: 4096,
        });
    }
    ops.push(NfsOp::Getattr { file: FileId(0) });

    let text = write_trace(&ops);
    println!("--- trace ({} ops) ---", ops.len());
    for line in text.lines().take(4) {
        println!("{line}");
    }
    println!("... ({} more lines)\n", ops.len() - 4);

    // Replay it against the NCache build.
    let player = TracePlayer::from_text(&text).expect("trace parses");
    let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
    let fh = rig.create_file("traced", 1 << 20);
    let driver_ops: Vec<DriverOp> = player
        .map(|op| match op {
            NfsOp::Read { offset, len, .. } => DriverOp::Read {
                fh,
                offset: offset as u32,
                len,
            },
            NfsOp::Write { offset, len, .. } => DriverOp::Write {
                fh,
                offset: offset as u32,
                len,
            },
            NfsOp::Getattr { .. } => DriverOp::Getattr { fh },
            NfsOp::Lookup { .. } => DriverOp::Lookup {
                name: "traced".to_string(),
            },
        })
        .collect();

    let result = run(&mut rig, driver_ops, &RunOptions::default());
    println!(
        "replayed {} ops in {} simulated: {:.1} MB/s, {:.0} ops/s",
        result.ops, result.elapsed, result.throughput_mbs, result.ops_per_sec
    );
    println!(
        "app CPU {:4.1}%, storage CPU {:4.1}%, disks {:4.1}%",
        result.app_cpu_util * 100.0,
        result.storage_cpu_util * 100.0,
        result.disk_util * 100.0
    );
    println!("timeline ({} intervals):", result.timeline.len());
    for s in &result.timeline {
        println!(
            "  t = {:>12} ns  {:6.1} MB/s  {:3} ops",
            s.t_ns, s.throughput_mbs, s.ops
        );
    }
    // One unified snapshot of every stats struct in the rig, instead of
    // Debug-printing each struct its own way.
    print!("{}", rig.metrics_report().render());
}
