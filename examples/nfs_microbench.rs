//! The paper's headline experiment in miniature: the all-hit NFS
//! micro-benchmark with two NICs (Figure 5b), comparing all three builds.
//!
//! ```text
//! cargo run --release --example nfs_microbench
//! ```

use ncache_repro::servers::ServerMode;
use ncache_repro::sim::stats::SeriesTable;
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};
use ncache_repro::testbed::runner::{run, DriverOp, RigDriver, RunOptions};

fn seq_reads(fh: u64, total: u64, req: u32) -> Vec<DriverOp> {
    (0..total / u64::from(req))
        .map(|i| DriverOp::Read {
            fh,
            offset: (i * u64::from(req)) as u32,
            len: req,
        })
        .collect()
}

fn main() {
    let hot_file: u64 = 5 << 20; // the paper's 5 MB hot set
    let mut table = SeriesTable::new(
        "All-hit NFS throughput, 2 NICs (MB/s) — cf. paper Figure 5(b)",
        "req KB",
    );

    for mode in ServerMode::ALL {
        for &req in &[4u32 << 10, 8 << 10, 16 << 10, 32 << 10] {
            let mut rig = NfsRig::new(mode, NfsRigParams::default());
            let fh = rig.create_file("hot", hot_file);
            // One warm pass (functional only, untimed).
            for op in seq_reads(fh, hot_file, req) {
                rig.run_op(&op);
            }
            // Two measured passes under the simulated hardware.
            let mut ops = seq_reads(fh, hot_file, req);
            ops.extend(seq_reads(fh, hot_file, req));
            let result = run(
                &mut rig,
                ops,
                &RunOptions {
                    nics: 2,
                    ..RunOptions::default()
                },
            );
            table.put(f64::from(req / 1024), mode.label(), result.throughput_mbs);
        }
    }

    println!("{table}");
    let orig = table.get(32.0, "original").expect("cell");
    let nc = table.get(32.0, "ncache").expect("cell");
    let base = table.get(32.0, "baseline").expect("cell");
    println!(
        "at 32 KB: NCache {:+.0}% over original (paper: +92%), \
         ideal baseline {:+.0}% (paper: +143%)",
        (nc / orig - 1.0) * 100.0,
        (base / orig - 1.0) * 100.0
    );
}
