//! Quickstart: build a complete NCache pass-through NFS server, read and
//! write through the full request path, and watch the copy ledger prove
//! the zero-copy claim.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ncache_repro::obs::{Recorder, TraceConfig};
use ncache_repro::proto::nfs::NFS_OK;
use ncache_repro::servers::ServerMode;
use ncache_repro::testbed::nfs_rig::{NfsRig, NfsRigParams};

fn main() {
    // A full pass-through rig: client ⇄ NFS server (+ NCache module)
    // ⇄ iSCSI target, with a freshly formatted file system in between.
    let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());

    // Attach a recorder: every request becomes a span, every copy and
    // cache operation an event, and each stats struct in the rig feeds
    // the unified metrics summary printed at the end.
    let rec = Recorder::new();
    rec.enable(TraceConfig::default());
    rig.set_recorder(rec.clone());

    // Publish a file with known contents.
    let fh = rig.create_file("hello.dat", 64 << 10);
    println!("created hello.dat (64 KiB), fh = {fh:#x}");

    // Read it back through the whole path: UDP/RPC/NFS request in, reply
    // composed from key-stamped placeholder blocks, payload substituted
    // from the network-centric cache at the driver boundary.
    let before = rig.ledgers().app.snapshot();
    let data = rig.read(fh, 0, 32 << 10);
    let delta = rig.ledgers().app.snapshot().delta_since(&before);

    assert_eq!(data, NfsRig::pattern(fh, 0, 32 << 10));
    println!("read 32 KiB through the server — contents verified");
    println!("application-server ledger for that read:");
    println!("  {delta}");
    println!(
        "  → {} regular-data copies; {} logical copies moved keys instead",
        delta.payload_copies, delta.logical_copies
    );

    // Writes park their payload in the FHO cache; the freshest data always
    // wins (FHO is consulted before LBN).
    let fresh = vec![0xC0u8; 8192];
    let reply = rig.write(fh, 8192, &fresh);
    assert_eq!(reply.status, NFS_OK);
    assert_eq!(rig.read(fh, 8192, 8192), fresh);
    println!("wrote 8 KiB and read it straight back — freshness holds");

    // Flush: the FHO entry remaps to its LBN and the real bytes reach the
    // storage server without ever being copied on the application server.
    rig.server_mut().fs_mut().sync().expect("sync");
    assert_eq!(rig.read(fh, 8192, 8192), fresh);
    println!("flushed to storage (FHO→LBN remap) — still the right bytes");

    let module = rig.module().expect("NCache build");
    {
        let m = module.borrow();
        println!(
            "NCache: {} chunks resident, {} B pinned",
            m.cache_len(),
            m.pinned_bytes(),
        );
        println!("substitutions: {:?}", m.substitution_totals());
    }

    // The unified metrics summary: every stats struct in the rig (server,
    // FS cache, initiator, target, NCache module, per-node copy ledgers)
    // behind one `StatsSnapshot` trait.
    println!("\n# Unified metrics summary\n{}", rig.metrics_report().render());
    println!(
        "recorder: {} spans, all closed: {}",
        rec.spans_opened(),
        rec.spans_balanced()
    );
}
