//! Umbrella crate for the NCache reproduction.
//!
//! Reproduction of **"Network-Centric Buffer Cache Organization"** (Peng,
//! Sharma, Chiueh — ICDCS 2005): a network-centric buffer cache that lets
//! pass-through servers (an NFS server backed by iSCSI storage; an
//! in-kernel static web server) relay regular data without physical
//! copying, by caching payload packets in network-ready form and moving
//! keys — not bytes — between the layers above.
//!
//! This crate re-exports the workspace so examples and integration tests
//! have one import root. The pieces:
//!
//! * [`ncache`] — the paper's contribution: the two-part (LBN + FHO)
//!   network-centric cache, remapping, packet substitution, HTTP stream
//!   tracking.
//! * [`netbuf`] — sk_buff-style network buffers with a copy-accounting
//!   ledger; every physical and logical copy in the system is counted.
//! * [`proto`] — Ethernet/IPv4/UDP/TCP-lite/RPC/NFS/iSCSI/HTTP codecs.
//! * [`simfs`] — the inode file system + size-limited buffer cache the
//!   servers run on.
//! * [`servers`] — iSCSI target and initiator, and the three builds each
//!   of the NFS server and kHTTPd (original / NCache / zero-copy baseline).
//! * [`blockdev`] + [`sim`] — the simulated testbed hardware: RAID-0 IDE
//!   array, FIFO CPUs and links, calibrated to the paper's Pentium III /
//!   Gigabit Ethernet machines.
//! * [`obs`] — the unified tracing and metrics layer: per-request spans,
//!   sim-time event timelines, counters/histograms, Chrome-trace and
//!   JSONL exporters (see the Observability section of DESIGN.md).
//! * [`workload`] — all-miss/all-hit micro-benchmarks, SPECsfs- and
//!   SPECweb99-like generators, and the trace player.
//! * [`testbed`] — wires nodes together and regenerates every figure and
//!   table of the paper's evaluation (see EXPERIMENTS.md).
//!
//! # Examples
//!
//! ```
//! use ncache_repro::testbed::nfs_rig::NfsRig;
//! use ncache_repro::servers::ServerMode;
//!
//! // A complete NFS-over-iSCSI pass-through server with NCache:
//! let mut rig = NfsRig::new(ServerMode::NCache, Default::default());
//! let fh = rig.create_file("hello.dat", 8192);
//! let data = rig.read(fh, 0, 8192);
//! assert_eq!(data.len(), 8192);
//! ```

pub use blockdev;
pub use ncache;
pub use netbuf;
pub use obs;
pub use proto;
pub use servers;
pub use sim;
pub use simfs;
pub use testbed;
pub use workload;
