//! The NFS-over-iSCSI pass-through rig: client ⇄ NFS server ⇄ iSCSI
//! target, fully wired, with per-node copy ledgers.


use ncache::{NcacheConfig, NcacheModule};
use netbuf::{CopyLedger, NetBuf};
use proto::nfs::{ReadReplyHeader, WriteReply, NFS_OK};
use servers::initiator::IscsiInitiator;
use servers::nfs::{fh_to_ino, ino_to_fh, NfsClient, NfsServer};
use servers::{IscsiTarget, ServerMode};
use sim::{FaultKind, FaultLink, FaultPlan, FaultSpec, SplitMix64};
use simfs::store::synthetic_block;
use simfs::{Filesystem, FsParams};

/// Per-node copy ledgers (one per simulated machine).
#[derive(Clone, Debug, Default)]
pub struct NodeLedgers {
    /// The measurement client.
    pub client: CopyLedger,
    /// The application (NFS / web) server.
    pub app: CopyLedger,
    /// The storage server.
    pub storage: CopyLedger,
}

/// Rig geometry. Defaults are scaled to run quickly; the benchmark harness
/// widens them per experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NfsRigParams {
    /// Exported volume size in blocks.
    pub volume_blocks: u64,
    /// File-system buffer-cache capacity in blocks. Under NCache this is
    /// deliberately small (§3.4: "the file system cache is configured to
    /// be much smaller than the network-centric cache").
    pub fs_cache_blocks: usize,
    /// NCache pinned capacity in bytes (NCache build only).
    pub ncache_bytes: u64,
    /// Read-ahead window in blocks (tuned to the request size, §5.4).
    pub read_ahead_blocks: u64,
    /// Inodes to provision.
    pub inode_count: u32,
    /// NCache shard count (NCache build only). Sharding only partitions
    /// the key space; every observable is identical at any shard count.
    pub shards: usize,
}

impl Default for NfsRigParams {
    fn default() -> Self {
        NfsRigParams {
            volume_blocks: 64 << 10, // 256 MiB volume
            fs_cache_blocks: 2 << 10,
            ncache_bytes: 64 << 20,
            read_ahead_blocks: 8,
            inode_count: 4 << 10,
            shards: 1,
        }
    }
}

/// Retransmission budget per RPC before the rig reports a clean failure.
/// The fault plan forces a clean delivery after three consecutive faults
/// per link, so at any bounded fault rate requests converge well inside
/// this budget; the cap turns pathological schedules into clean errors
/// instead of livelock.
pub const MAX_RPC_ATTEMPTS: u32 = 8;

/// Client-side recovery counters for the faulted RPC exchange loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// RPCs re-sent after a lost or damaged exchange.
    pub retransmits: u64,
    /// Request datagrams the link dropped.
    pub request_drops: u64,
    /// Reply datagrams the link dropped.
    pub reply_drops: u64,
    /// Request datagrams the link duplicated (the server saw both).
    pub duplicates: u64,
    /// Exchanges where a stale request was resequenced in front.
    pub reorders: u64,
    /// Exchanges whose reply missed the client's RPC timer.
    pub timeouts: u64,
    /// In-flight damage the UDP checksum stand-in discarded at the
    /// server's doorstep.
    pub checksum_discards: u64,
    /// Replies that arrived but failed validation (damage, stale xid).
    pub damaged_replies: u64,
    /// RPCs that exhausted [`MAX_RPC_ATTEMPTS`] and failed cleanly.
    pub failed_requests: u64,
}

impl FaultCounters {
    /// Adds another counter set into this one (the lane-parallel engine
    /// merges per-lane recovery counters in lane order).
    pub fn absorb(&mut self, other: &FaultCounters) {
        self.retransmits += other.retransmits;
        self.request_drops += other.request_drops;
        self.reply_drops += other.reply_drops;
        self.duplicates += other.duplicates;
        self.reorders += other.reorders;
        self.timeouts += other.timeouts;
        self.checksum_discards += other.checksum_discards;
        self.damaged_replies += other.damaged_replies;
        self.failed_requests += other.failed_requests;
    }
}

impl obs::StatsSnapshot for FaultCounters {
    fn source(&self) -> &'static str {
        "fault-client"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("retransmits", self.retransmits),
            ("request_drops", self.request_drops),
            ("reply_drops", self.reply_drops),
            ("duplicates", self.duplicates),
            ("reorders", self.reorders),
            ("timeouts", self.timeouts),
            ("checksum_discards", self.checksum_discards),
            ("damaged_replies", self.damaged_replies),
            ("failed_requests", self.failed_requests),
        ]
    }
}

/// The client-side state of one faulty RPC channel: the link's seeded
/// fault plan, the recovery counters it accumulates, and the slot holding
/// the previously completed request (replayed in front by reorder faults).
/// [`NfsRig`] keeps one for its own client; the lane-parallel engine keeps
/// one per session lane, each on an independently derived plan seed, so a
/// lane's fault schedule never depends on how lanes interleave.
#[derive(Debug)]
pub(crate) struct FaultChannel {
    pub(crate) plan: sim::Shared<FaultPlan>,
    pub(crate) counters: FaultCounters,
    pub(crate) replay_slot: Option<NetBuf>,
}

/// One RPC exchange over a faulty client⇄server link. Request-direction
/// faults: drops retransmit; in-flight damage is discarded by the UDP
/// checksum stand-in before it reaches the server; delays execute but
/// miss the client's timer; duplicates are handled twice (the
/// duplicate-request cache absorbs the second copy); reorders resequence
/// the previously completed request in front. Reply-direction faults
/// mirror: drops, damage, and delays all trigger retransmission, and the
/// reply's xid must match the call's.
///
/// The channel's plan is borrowed only around each `deliver_faulty` call:
/// the server's storage path may share the same plan handle for I/O
/// faults, and holding the guard across `handle_message` would deadlock.
#[allow(clippy::too_many_arguments)]
pub(crate) fn faulted_exchange<T>(
    server: &mut NfsServer,
    client: &NfsClient,
    app_ledger: &CopyLedger,
    client_ledger: &CopyLedger,
    rec: &obs::Recorder,
    chan: &mut FaultChannel,
    req: NetBuf,
    parse: impl Fn(&NfsClient, &NetBuf) -> Option<(u32, T)>,
) -> Option<T> {
    faulted_exchange_with(
        &mut |d| server.handle_message(d),
        client,
        app_ledger,
        client_ledger,
        rec,
        chan,
        req,
        parse,
    )
}

/// [`faulted_exchange`] with the server step abstracted: every delivered
/// request — including late, duplicated, and stale ones — goes through
/// `step`, which must both execute the request and finish its reply (for a
/// deferred-transmit server, run payload substitution and checksum
/// inheritance, exactly what the transmit hook would have done on every
/// reply the sequential server emits).
#[allow(clippy::too_many_arguments)]
pub(crate) fn faulted_exchange_with<T>(
    step: &mut impl FnMut(NetBuf) -> NetBuf,
    client: &NfsClient,
    app_ledger: &CopyLedger,
    client_ledger: &CopyLedger,
    rec: &obs::Recorder,
    chan: &mut FaultChannel,
    req: NetBuf,
    parse: impl Fn(&NfsClient, &NetBuf) -> Option<(u32, T)>,
) -> Option<T> {
    let xid = proto::rpc::RpcCall::decode(req.header())
        .expect("rig-built request")
        .xid;
    let mut span = None;
    for attempt in 0..MAX_RPC_ATTEMPTS {
        if attempt > 0 {
            // A recovery episode is under way; trace it as one span.
            span.get_or_insert_with(|| rec.begin_span("fault", "retransmit", 0));
            chan.counters.retransmits += 1;
            rec.add_counter("fault.retransmits", 1);
        }
        let (delivered, kind) = {
            let mut p = chan.plan.borrow_mut();
            servers::stack::deliver_faulty(&req, app_ledger, &mut p, FaultLink::ClientServer)
        };
        let reply = match (delivered, kind) {
            (None, _) => {
                chan.counters.request_drops += 1;
                rec.add_counter("fault.request_drops", 1);
                continue;
            }
            (Some(_), Some(FaultKind::Corrupt { .. } | FaultKind::Truncate { .. })) => {
                // The datagram checksum catches in-flight damage; the
                // request never reaches the server.
                chan.counters.checksum_discards += 1;
                rec.add_counter("fault.checksum_discards", 1);
                continue;
            }
            (Some(d), Some(FaultKind::Delay)) => {
                // Executed server-side, but the reply misses the RPC
                // timer; the retransmission must not re-execute.
                let _late = step(d);
                chan.counters.timeouts += 1;
                rec.add_counter("fault.timeouts", 1);
                continue;
            }
            (Some(d), Some(FaultKind::Duplicate)) => {
                chan.counters.duplicates += 1;
                rec.add_counter("fault.duplicates", 1);
                let reply = step(d);
                let dup = servers::stack::deliver(&req, app_ledger);
                let _discarded = step(dup);
                reply
            }
            (Some(d), Some(FaultKind::Reorder)) => {
                chan.counters.reorders += 1;
                rec.add_counter("fault.reorders", 1);
                if let Some(prev) = chan.replay_slot.take() {
                    // A stale retransmission of the previous request
                    // arrives first; its reply is discarded.
                    let old = servers::stack::deliver(&prev, app_ledger);
                    let _stale = step(old);
                    chan.replay_slot = Some(prev);
                }
                step(d)
            }
            (Some(d), _) => step(d),
        };
        let (rx, rkind) = {
            let mut p = chan.plan.borrow_mut();
            servers::stack::deliver_faulty(&reply, client_ledger, &mut p, FaultLink::ClientServer)
        };
        let Some(rx) = rx else {
            chan.counters.reply_drops += 1;
            rec.add_counter("fault.reply_drops", 1);
            continue;
        };
        if matches!(rkind, Some(FaultKind::Delay)) {
            // The RPC timer already fired; the late reply is dropped
            // on the floor and the retransmission hits the DRC.
            chan.counters.timeouts += 1;
            rec.add_counter("fault.timeouts", 1);
            continue;
        }
        if matches!(rkind, Some(FaultKind::Corrupt { .. })) {
            // A flipped bit anywhere in the datagram fails the UDP
            // checksum; the client never sees the damaged reply. The
            // bit flip could land in the status or payload bytes,
            // where xid/length validation alone would miss it.
            chan.counters.checksum_discards += 1;
            rec.add_counter("fault.checksum_discards", 1);
            continue;
        }
        match parse(client, &rx) {
            Some((got, v)) if got == xid => {
                if let Some(s) = span.take() {
                    rec.end_span(s);
                }
                chan.replay_slot = Some(req);
                return Some(v);
            }
            _ => {
                chan.counters.damaged_replies += 1;
                rec.add_counter("fault.damaged_replies", 1);
                continue;
            }
        }
    }
    if let Some(s) = span.take() {
        rec.end_span(s);
    }
    chan.counters.failed_requests += 1;
    rec.add_counter("fault.failed_requests", 1);
    None
}

/// The assembled rig.
#[derive(Debug)]
pub struct NfsRig {
    server: NfsServer,
    client: NfsClient,
    target: sim::Shared<IscsiTarget>,
    module: Option<sim::Shared<NcacheModule>>,
    ledgers: NodeLedgers,
    mode: ServerMode,
    params: NfsRigParams,
    recorder: obs::Recorder,
    fault_plan: Option<sim::Shared<FaultPlan>>,
    fault_spec: FaultSpec,
    fault_counters: FaultCounters,
    poison_rng: SplitMix64,
    replay_slot: Option<NetBuf>,
    adaptive: Option<ncache::SplitController>,
}

impl NfsRig {
    /// Builds the full rig for `mode`: storage server, (optionally) the
    /// NCache module, the initiator, a freshly formatted file system, the
    /// NFS server and a client.
    ///
    /// # Panics
    ///
    /// Panics if the volume is too small to format — a configuration bug.
    pub fn new(mode: ServerMode, params: NfsRigParams) -> Self {
        let ledgers = NodeLedgers::default();
        let target = sim::Shared::new(IscsiTarget::new(
            params.volume_blocks,
            &ledgers.storage,
        ));
        let module = (mode == ServerMode::NCache).then(|| {
            sim::Shared::new(NcacheModule::new(
                NcacheConfig::with_capacity(params.ncache_bytes).with_shards(params.shards),
                &ledgers.app,
            ))
        });
        let initiator = IscsiInitiator::new(
            target.clone(),
            &ledgers.app,
            mode,
            module.clone(),
        );
        let fs = Filesystem::mkfs(
            initiator,
            FsParams {
                total_blocks: params.volume_blocks,
                inode_count: params.inode_count,
                cache_blocks: params.fs_cache_blocks,
                read_ahead_blocks: params.read_ahead_blocks,
            },
            &ledgers.app,
        )
        .expect("volume large enough to format");
        let server = NfsServer::new(mode, fs, module.clone(), &ledgers.app);
        NfsRig {
            server,
            client: NfsClient::new(&ledgers.client),
            target,
            module,
            ledgers,
            mode,
            params,
            recorder: obs::Recorder::new(),
            fault_plan: None,
            fault_spec: FaultSpec::default(),
            fault_counters: FaultCounters::default(),
            poison_rng: SplitMix64::new(0),
            replay_slot: None,
            adaptive: None,
        }
    }

    /// Builds the rig and arms the whole stack with a seeded fault plan:
    /// the client⇄server link (this rig's exchange loop), the
    /// initiator⇄target link (inside the initiator), transient I/O errors
    /// at the target, and checksum-verified placeholder revalidation at
    /// the server.
    pub fn new_faulted(
        mode: ServerMode,
        params: NfsRigParams,
        spec: &FaultSpec,
        seed: u64,
    ) -> Self {
        let mut rig = Self::new(mode, params);
        let plan = sim::Shared::new(FaultPlan::new(spec, seed));
        rig.server
            .fs_mut()
            .store_mut()
            .set_fault_plan(plan.clone());
        rig.target
            .borrow_mut()
            .set_transient_faults(blockdev::TransientFaults::new(
                crate::executor::derive_seed(seed, 1),
                spec.io_ppm(),
            ));
        rig.server.set_fault_recovery(true);
        rig.poison_rng = SplitMix64::new(crate::executor::derive_seed(seed, 2));
        rig.fault_spec = *spec;
        rig.fault_plan = Some(plan);
        rig
    }

    /// Whether this rig runs with an armed fault plan.
    pub fn faults_armed(&self) -> bool {
        self.fault_plan.is_some()
    }

    /// Installs the overload control plane on the rig's server: admission
    /// gating, dirty-cache backpressure, and NCache insertion bypass
    /// (DESIGN.md §15). Off by default — an uncontrolled rig is
    /// byte-identical to the pre-control-plane build.
    pub fn enable_control(&mut self, cfg: servers::ControlConfig) {
        self.server.enable_control(cfg);
    }

    /// The server's control-plane counters, when a plane is installed.
    pub fn control_stats(&self) -> Option<servers::ControlStats> {
        self.server.control_stats()
    }

    /// Installs the adaptive cache-split plane (DESIGN.md §16): ghost LRU
    /// tails on the FS buffer cache and (under the NCache build) the
    /// NCache pool, plus the epoch-aligned [`ncache::SplitController`]
    /// seeded with the caches' *current* capacities. With
    /// [`ncache::SplitConfig::static_split`] the controller is frozen —
    /// ghosts observe but quotas never move and nothing is emitted, so
    /// the installation is byte-for-byte unobservable.
    pub fn enable_adaptive(&mut self, cfg: ncache::SplitConfig) {
        let fs = self.server.fs_mut();
        fs.enable_cache_ghost(cfg.ghost_blocks);
        let fs_blocks = fs.cache_capacity() as u64;
        let ncache_bytes = match &self.module {
            Some(m) => {
                let m = m.borrow();
                m.enable_ghost(cfg.ghost_blocks);
                m.pool_capacity()
            }
            // Without the NCache pool there is no donor and the
            // nc ghost never fires: the controller stays put.
            None => 0,
        };
        self.adaptive = Some(ncache::SplitController::new(cfg, fs_blocks, ncache_bytes));
    }

    /// The installed split controller, if any.
    pub fn adaptive_controller(&self) -> Option<&ncache::SplitController> {
        self.adaptive.as_ref()
    }

    /// The controller's epoch length in ops per session-round, when one
    /// is installed. The session engines tick [`Self::adaptive_tick`] on
    /// exactly these op-count boundaries — frozen controllers included,
    /// because a frozen tick is read-only and must stay unobservable
    /// under either schedule.
    pub fn adaptive_epoch(&self) -> Option<u64> {
        self.adaptive.as_ref().map(|c| c.config().epoch_ops)
    }

    /// One controller epoch: samples cumulative cache + ghost counters,
    /// lets the controller window them and decide, and applies any quota
    /// move *eagerly* — the FS cache evicts (flushing dirty victims)
    /// down to its new capacity and the NCache pool sheds clean chunks,
    /// all inside the tick, never lazily mid-request. Storage I/O issued
    /// by resize writebacks is drained from the store's log so it is
    /// charged to no request's burst (both engines tick at identical
    /// op-count boundaries, so both drain identically).
    pub fn adaptive_tick(&mut self) {
        if self.adaptive.is_none() {
            return;
        }
        let fs_stats = self.server.fs_mut().cache_stats();
        let fs_ghost = self
            .server
            .fs_mut()
            .cache_ghost_stats()
            .unwrap_or_default();
        let (nc_stats, nc_ghost) = match &self.module {
            Some(m) => {
                let m = m.borrow();
                (m.stats(), m.ghost_stats().unwrap_or_default())
            }
            None => Default::default(),
        };
        let sample = ncache::SplitSample {
            fs_hits: fs_stats.hits,
            fs_misses: fs_stats.misses,
            fs_ghost_hits: fs_ghost.hits,
            nc_hits: nc_stats.hits,
            nc_misses: nc_stats.lookups - nc_stats.hits,
            nc_ghost_hits: nc_ghost.hits,
        };
        let controller = self.adaptive.as_mut().expect("checked above");
        let resize = controller.tick(sample);
        if controller.is_dynamic() {
            let w = controller.window();
            if w.fs_ghost_hits > 0 {
                self.recorder.add_counter("ghost.hit.fs", w.fs_ghost_hits);
            }
            if w.nc_ghost_hits > 0 {
                self.recorder
                    .add_counter("ghost.hit.ncache", w.nc_ghost_hits);
            }
        }
        let Some(resize) = resize else { return };
        let fs = self.server.fs_mut();
        fs.set_cache_capacity(resize.fs_blocks as usize);
        if let Some(m) = &self.module {
            m.borrow().set_pool_capacity(resize.ncache_bytes);
        }
        let _ = self.server.fs_mut().store_mut().take_io_log();
        self.recorder.add_counter("adaptive.resize", 1);
    }

    /// The fault specification the rig was armed with (default when
    /// unarmed). The lane-parallel engine derives each lane's private
    /// link plan from this spec.
    pub fn fault_spec(&self) -> FaultSpec {
        self.fault_spec
    }

    /// The client-side recovery counters (all zero without faults).
    pub fn fault_counters(&self) -> FaultCounters {
        self.fault_counters
    }

    /// Folds recovery counters accumulated outside the rig (per-lane
    /// channels of the parallel engine) into the rig's own.
    pub fn absorb_fault_counters(&mut self, counters: &FaultCounters) {
        self.fault_counters.absorb(counters);
    }

    /// Attaches a recorder to the whole rig: the server span layer, the
    /// data plane below it, and every node's copy ledger.
    pub fn set_recorder(&mut self, rec: obs::Recorder) {
        self.ledgers.client.attach_recorder(&rec);
        self.ledgers.app.attach_recorder(&rec);
        self.ledgers.storage.attach_recorder(&rec);
        self.server.set_recorder(rec.clone());
        self.recorder = rec;
    }

    /// The rig's recorder (disabled unless [`Self::set_recorder`] ran).
    pub fn recorder(&self) -> &obs::Recorder {
        &self.recorder
    }

    /// Snapshots every stats struct in the rig into one unified report.
    pub fn metrics_report(&mut self) -> obs::MetricsReport {
        let mut report = obs::MetricsReport::new();
        report.add_snapshot("nfs-server", &self.server.stats());
        report.add_snapshot("fs-cache", &self.server.fs_mut().cache_stats());
        report.add_snapshot("initiator", &self.server.fs_mut().store_mut().stats());
        report.add_snapshot("target", &self.target.borrow().stats());
        if let Some(module) = &self.module {
            report.add_snapshot("ncache", &module.borrow().stats());
        }
        report.add_snapshot("ledger.client", &self.ledgers.client.snapshot());
        report.add_snapshot("ledger.app", &self.ledgers.app.snapshot());
        report.add_snapshot("ledger.storage", &self.ledgers.storage.snapshot());
        if self.fault_plan.is_some() {
            report.add_snapshot("fault-client", &self.fault_counters);
        }
        if let Some(control) = self.server.control_stats() {
            report.add_snapshot("control", &control);
        }
        if let Some(c) = self.adaptive.as_ref().filter(|c| c.is_dynamic()) {
            report.add_snapshot("adaptive", &c.split_stats());
        }
        report
    }

    /// Syncs and drops the file-system buffer cache, so measurement starts
    /// cold (setup writes would otherwise leave real data resident and
    /// mask each build's miss path). The network-centric cache is left
    /// alone — setup never touches it.
    pub fn quiesce(&mut self) {
        // Under an adaptive split the controller owns the FS quota;
        // restore its current figure, not the construction-time one.
        let blocks = self
            .adaptive
            .as_ref()
            .map_or(self.params.fs_cache_blocks, |c| c.fs_blocks() as usize);
        let fs = self.server.fs_mut();
        fs.sync().expect("sync");
        fs.set_cache_capacity(0);
        fs.set_cache_capacity(blocks);
    }

    /// The build this rig runs.
    pub fn mode(&self) -> ServerMode {
        self.mode
    }

    /// The per-node ledgers.
    pub fn ledgers(&self) -> &NodeLedgers {
        &self.ledgers
    }

    /// The NFS server (stats, file system access).
    pub fn server_mut(&mut self) -> &mut NfsServer {
        &mut self.server
    }

    /// Shared access to the server — the concurrent read fast path serves
    /// cache-hit READs through `&NfsServer` under a shared core guard.
    pub fn server(&self) -> &NfsServer {
        &self.server
    }

    /// The NCache module, under that build.
    pub fn module(&self) -> Option<sim::Shared<NcacheModule>> {
        self.module.clone()
    }

    /// The storage server (integrity inspection).
    pub fn target(&self) -> sim::Shared<IscsiTarget> {
        self.target.clone()
    }

    /// Creates a file and fills it with [`Self::pattern`] content (setup
    /// path — writes go through the server's file system directly, then
    /// sync, so measurement starts from a quiescent volume).
    pub fn create_file(&mut self, name: &str, size: u64) -> u64 {
        let fs = self.server.fs_mut();
        let ino = fs
            .create(Filesystem::<IscsiInitiator>::ROOT, name)
            .expect("fresh name");
        let mut offset = 0u64;
        while offset < size {
            let chunk = (size - offset).min(1 << 20) as usize;
            let data = Self::pattern(ino_to_fh(ino), offset, chunk);
            fs.write(ino, offset, &data).expect("volume has space");
            offset += chunk as u64;
        }
        self.quiesce();
        ino_to_fh(ino)
    }

    /// Creates a file whose blocks are *allocated but never written*: its
    /// contents are the storage server's deterministic synthetic blocks.
    /// Setup cost is O(metadata), so multi-gigabyte all-miss files are
    /// cheap. Use [`Self::expected_sparse`] for integrity checks.
    pub fn create_sparse_file(&mut self, name: &str, size: u64) -> u64 {
        let fs = self.server.fs_mut();
        let ino = fs
            .create(Filesystem::<IscsiInitiator>::ROOT, name)
            .expect("fresh name");
        fs.allocate(ino, size).expect("volume has space");
        self.quiesce();
        ino_to_fh(ino)
    }

    /// The deterministic content [`Self::create_file`] writes at
    /// `[offset, offset+len)` of the file with handle `fh`. Each 4 KiB
    /// block's stream is seeded independently, so the function is
    /// self-consistent at any offset: the generator always replays from
    /// the containing block's start.
    pub fn pattern(fh: u64, offset: u64, len: usize) -> Vec<u8> {
        let block_start = offset - offset % 4096;
        let skip = (offset - block_start) as usize;
        let mut v = Vec::with_capacity(skip + len);
        let mut x = 0u64;
        let mut at = block_start;
        while v.len() < skip + len {
            if at.is_multiple_of(4096) {
                x = fh
                    .wrapping_mul(0x100_0000_01b3)
                    .wrapping_add(at / 4096)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    | 1;
            }
            v.push((x >> ((at % 8) * 8)) as u8);
            if at % 8 == 7 {
                x = x.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
            }
            at += 1;
        }
        v.split_off(skip)
    }

    /// The expected contents of a sparse file's range (the synthetic
    /// blocks at its mapped LBNs).
    pub fn expected_sparse(&mut self, fh: u64, offset: u64, len: usize) -> Vec<u8> {
        assert_eq!(offset % 4096, 0, "block-aligned expectations only");
        let fs = self.server.fs_mut();
        let mut out = Vec::with_capacity(len);
        let mut blk = offset / 4096;
        while out.len() < len {
            let lbn = fs
                .block_lbn(fh_to_ino(fh), blk)
                .expect("file exists")
                .expect("allocated");
            let block = synthetic_block(lbn);
            let take = (len - out.len()).min(4096);
            out.extend_from_slice(&block[..take]);
            blk += 1;
        }
        out
    }

    /// Issues a READ through the full request path and returns the payload
    /// the client received.
    pub fn read(&mut self, fh: u64, offset: u32, count: u32) -> Vec<u8> {
        let (hdr, data) = self.read_with_header(fh, offset, count);
        assert_eq!(hdr.status, NFS_OK, "read failed");
        data
    }

    /// As [`Self::read`], returning the reply header too.
    pub fn read_with_header(
        &mut self,
        fh: u64,
        offset: u32,
        count: u32,
    ) -> (ReadReplyHeader, Vec<u8>) {
        if self.fault_plan.is_some() {
            return self
                .try_read(fh, offset, count)
                .expect("read exhausted its retransmission budget");
        }
        let req = self.client.read_request(fh, offset, count);
        let delivered = servers::stack::deliver(&req, &self.ledgers.app);
        let reply = self.server.handle_message(delivered);
        self.client.parse_read_reply(&reply)
    }

    /// Fault-aware READ: completes through retransmission, or fails
    /// cleanly (`None`) once the retry budget is spent.
    pub fn try_read(
        &mut self,
        fh: u64,
        offset: u32,
        count: u32,
    ) -> Option<(ReadReplyHeader, Vec<u8>)> {
        let req = self.client.read_request(fh, offset, count);
        self.exchange(req, |c, r| {
            c.try_parse_read_reply(r).map(|(xid, h, d)| (xid, (h, d)))
        })
    }

    /// Issues a WRITE through the full request path.
    pub fn write(&mut self, fh: u64, offset: u32, data: &[u8]) -> WriteReply {
        if self.fault_plan.is_some() {
            return self
                .try_write(fh, offset, data)
                .expect("write exhausted its retransmission budget");
        }
        let req = self.client.write_request(fh, offset, data);
        let delivered = servers::stack::deliver(&req, &self.ledgers.app);
        let reply = self.server.handle_message(delivered);
        self.client.parse_write_reply(&reply)
    }

    /// Fault-aware WRITE: retransmissions of an executed write are served
    /// from the server's duplicate-request cache, never re-executed.
    pub fn try_write(&mut self, fh: u64, offset: u32, data: &[u8]) -> Option<WriteReply> {
        let req = self.client.write_request(fh, offset, data);
        self.exchange(req, |c, r| c.try_parse_write_reply(r))
    }

    /// Issues a GETATTR.
    pub fn getattr(&mut self, fh: u64) -> u32 {
        if self.fault_plan.is_some() {
            let req = self.client.getattr_request(fh);
            return self
                .exchange(req, |c, r| {
                    c.try_parse_getattr_reply(r).map(|(xid, s, a)| (xid, (s, a)))
                })
                .expect("getattr exhausted its retransmission budget")
                .0;
        }
        let req = self.client.getattr_request(fh);
        let delivered = servers::stack::deliver(&req, &self.ledgers.app);
        let reply = self.server.handle_message(delivered);
        self.client.parse_getattr_reply(&reply).0
    }

    /// One RPC exchange over the faulty (or clean) client⇄server link.
    /// See [`faulted_exchange`] for the recovery semantics.
    fn exchange<T>(
        &mut self,
        req: NetBuf,
        parse: impl Fn(&NfsClient, &NetBuf) -> Option<(u32, T)>,
    ) -> Option<T> {
        let Some(plan) = self.fault_plan.clone() else {
            let delivered = servers::stack::deliver(&req, &self.ledgers.app);
            let reply = self.server.handle_message(delivered);
            return parse(&self.client, &reply).map(|(_, v)| v);
        };
        self.maybe_poison();
        let mut chan = FaultChannel {
            plan,
            counters: self.fault_counters,
            replay_slot: self.replay_slot.take(),
        };
        let out = faulted_exchange(
            &mut self.server,
            &self.client,
            &self.ledgers.app,
            &self.ledgers.client,
            &self.recorder,
            &mut chan,
            req,
            parse,
        );
        self.fault_counters = chan.counters;
        self.replay_slot = chan.replay_slot;
        out
    }

    /// Occasionally corrupts a clean NCache chunk's stored checksum, at
    /// the spec's corruption rate, so placeholder revalidation exercises
    /// the invalidate-and-refetch degradation path.
    fn maybe_poison(&mut self) {
        let Some(module) = &self.module else { return };
        if self.fault_spec.corrupt > 0.0 && self.poison_rng.next_bool(self.fault_spec.corrupt) {
            let pick = self.poison_rng.next_u64() as usize;
            module.borrow_mut().poison_clean_chunk(pick);
        }
    }

    /// Issues a LOOKUP in the export root.
    pub fn lookup(&mut self, name: &str) -> Option<u64> {
        let root = self.server.root_fh();
        let req = self.client.lookup_request(root, name);
        let delivered = servers::stack::deliver(&req, &self.ledgers.app);
        let reply = self.server.handle_message(delivered);
        let parsed = self.client.parse_lookup_reply(&reply);
        (parsed.status == NFS_OK).then_some(parsed.fh)
    }

    /// Low-level access for the timing layer: handles a prepared request
    /// message and returns the raw reply.
    pub fn handle_raw(&mut self, req: NetBuf) -> NetBuf {
        let delivered = servers::stack::deliver(&req, &self.ledgers.app);
        self.server.handle_message(delivered)
    }

    /// The client-side request builder.
    pub fn client_mut(&mut self) -> &mut NfsClient {
        &mut self.client
    }

    /// Swaps the rig's client with `client`. The multi-session engine keeps
    /// one [`NfsClient`] per session (each on a disjoint xid base, so the
    /// server's duplicate-request cache never aliases requests from
    /// different sessions) and installs the active session's client around
    /// each operation.
    pub fn swap_client(&mut self, client: &mut NfsClient) {
        std::mem::swap(&mut self.client, client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_read_original() {
        let mut rig = NfsRig::new(ServerMode::Original, NfsRigParams::default());
        let fh = rig.create_file("f", 64 << 10);
        let data = rig.read(fh, 8192, 16 << 10);
        assert_eq!(data, NfsRig::pattern(fh, 8192, 16 << 10));
    }

    #[test]
    fn end_to_end_read_ncache_substitutes_real_data() {
        let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
        let fh = rig.create_file("f", 64 << 10);
        let data = rig.read(fh, 0, 32 << 10);
        assert_eq!(
            data,
            NfsRig::pattern(fh, 0, 32 << 10),
            "the client must see real bytes, not placeholder junk"
        );
        let module = rig.module().expect("ncache build");
        assert!(module.borrow().substitution_totals().substituted > 0);
        assert_eq!(module.borrow().substitution_totals().missing, 0);
    }

    #[test]
    fn baseline_returns_junk_by_design() {
        let mut rig = NfsRig::new(ServerMode::Baseline, NfsRigParams::default());
        let fh = rig.create_file("f", 16 << 10);
        let data = rig.read(fh, 0, 4096);
        assert_eq!(data.len(), 4096);
        assert_ne!(
            data,
            NfsRig::pattern(fh, 0, 4096),
            "the baseline build sends placeholder bits (§5.1)"
        );
    }

    #[test]
    fn sparse_files_read_synthetic_content() {
        let mut rig = NfsRig::new(ServerMode::Original, NfsRigParams::default());
        let fh = rig.create_sparse_file("big", 1 << 20);
        let expect = rig.expected_sparse(fh, 64 << 10, 8 << 10);
        let data = rig.read(fh, 64 << 10, 8 << 10);
        assert_eq!(data, expect);
        // Setup wrote no data blocks to the target.
        assert!(rig.target().borrow().written_blocks() < 1000, "metadata only");
    }

    #[test]
    fn write_then_read_back_all_modes_freshness() {
        for mode in [ServerMode::Original, ServerMode::NCache] {
            let mut rig = NfsRig::new(mode, NfsRigParams::default());
            let fh = rig.create_file("f", 32 << 10);
            let new_data = vec![0xC3u8; 8 << 10];
            let reply = rig.write(fh, 8192, &new_data);
            assert_eq!(reply.status, NFS_OK, "{mode}");
            let read_back = rig.read(fh, 8192, 8 << 10);
            assert_eq!(read_back, new_data, "{mode}: freshest data wins");
            // Around the write, old content is intact.
            assert_eq!(rig.read(fh, 0, 8192), NfsRig::pattern(fh, 0, 8192), "{mode}");
        }
    }

    #[test]
    fn lookup_and_getattr() {
        let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
        let fh = rig.create_file("hello.dat", 4096);
        assert_eq!(rig.lookup("hello.dat"), Some(fh));
        assert_eq!(rig.lookup("absent"), None);
        assert_eq!(rig.getattr(fh), NFS_OK);
    }

    #[test]
    fn faulted_rig_with_zero_spec_never_recovers() {
        let mut rig = NfsRig::new_faulted(
            ServerMode::NCache,
            NfsRigParams::default(),
            &FaultSpec::default(),
            42,
        );
        assert!(rig.faults_armed());
        let fh = rig.create_file("f", 32 << 10);
        let (hdr, data) = rig.try_read(fh, 0, 16 << 10).expect("clean link");
        assert_eq!(hdr.status, NFS_OK);
        assert_eq!(data, NfsRig::pattern(fh, 0, 16 << 10));
        assert_eq!(rig.fault_counters(), FaultCounters::default());
        assert_eq!(rig.server_mut().fs_mut().store_mut().stats().retries, 0);
        assert_eq!(rig.server_mut().stats().drc_hits, 0);
    }

    #[test]
    fn faulted_rig_recovers_under_every_fault_kind() {
        for mode in [ServerMode::Original, ServerMode::NCache, ServerMode::Baseline] {
            let spec = FaultSpec {
                loss: 0.10,
                duplicate: 0.05,
                reorder: 0.05,
                delay: 0.05,
                truncate: 0.05,
                corrupt: 0.03,
                io: 0.05,
            };
            let mut rig = NfsRig::new_faulted(mode, NfsRigParams::default(), &spec, 1234);
            let fh = rig.create_file("f", 64 << 10);
            let mut completed = 0;
            for i in 0..24u32 {
                let off = (i % 16) * 4096;
                if let Some((hdr, data)) = rig.try_read(fh, off, 4096) {
                    assert_eq!(hdr.status, NFS_OK, "{mode}");
                    if mode != ServerMode::Baseline {
                        assert_eq!(
                            data,
                            NfsRig::pattern(fh, u64::from(off), 4096),
                            "{mode}: completed reads return correct bytes"
                        );
                    }
                    completed += 1;
                }
            }
            assert!(completed > 0, "{mode}: some reads complete");
            let fc = rig.fault_counters();
            assert!(
                fc.retransmits > 0,
                "{mode}: this schedule forces retransmission"
            );
        }
    }

    #[test]
    fn duplicated_writes_are_served_from_the_drc() {
        let spec = FaultSpec {
            duplicate: 0.6,
            ..FaultSpec::default()
        };
        let mut rig =
            NfsRig::new_faulted(ServerMode::Original, NfsRigParams::default(), &spec, 9);
        let fh = rig.create_file("f", 64 << 10);
        for i in 0..12u32 {
            let data = vec![i as u8; 4096];
            let reply = rig.try_write(fh, i * 4096, &data).expect("completes");
            assert_eq!(reply.status, NFS_OK);
            let (_, got) = rig.try_read(fh, i * 4096, 4096).expect("completes");
            assert_eq!(got, data, "acknowledged write visible");
        }
        assert!(rig.fault_counters().duplicates > 0, "schedule duplicated");
        assert!(
            rig.server_mut().stats().drc_hits > 0,
            "duplicate WRITEs replied from cache, not re-executed"
        );
    }

    #[test]
    fn delayed_write_replies_hit_the_drc_not_the_disk_twice() {
        let spec = FaultSpec {
            delay: 0.5,
            ..FaultSpec::default()
        };
        let mut rig =
            NfsRig::new_faulted(ServerMode::NCache, NfsRigParams::default(), &spec, 77);
        let fh = rig.create_file("f", 32 << 10);
        for i in 0..8u32 {
            let data = vec![0x40 | i as u8; 4096];
            let reply = rig.try_write(fh, i * 4096, &data).expect("completes");
            assert_eq!(reply.status, NFS_OK);
            let (_, got) = rig.try_read(fh, i * 4096, 4096).expect("completes");
            assert_eq!(got, data);
        }
        let fc = rig.fault_counters();
        assert!(fc.timeouts > 0, "delays fired");
        assert!(
            rig.server_mut().stats().drc_hits > 0,
            "retransmitted WRITEs served from the DRC"
        );
    }

    #[test]
    fn poisoned_ncache_chunks_invalidate_and_reads_stay_correct() {
        let spec = FaultSpec {
            corrupt: 0.9,
            ..FaultSpec::default()
        };
        let mut rig =
            NfsRig::new_faulted(ServerMode::NCache, NfsRigParams::default(), &spec, 5);
        let fh = rig.create_file("f", 64 << 10);
        let mut completed = 0;
        for pass in 0..3 {
            let _ = pass;
            for i in 0..16u32 {
                // At corrupt=0.9 the link itself may exhaust the retry
                // budget; a clean failure is acceptable, junk is not.
                let Some((hdr, data)) = rig.try_read(fh, i * 4096, 4096) else {
                    continue;
                };
                assert_eq!(hdr.status, NFS_OK);
                assert_eq!(
                    data,
                    NfsRig::pattern(fh, u64::from(i) * 4096, 4096),
                    "never junk, even when entries are poisoned"
                );
                completed += 1;
            }
        }
        assert!(completed > 0, "some reads complete");
        let module = rig.module().expect("ncache build");
        let inval = module.borrow().invalidations();
        assert!(inval > 0, "poisoned entries were detected and dropped");
    }

    #[test]
    fn same_seed_and_spec_replay_identically() {
        let spec = FaultSpec {
            loss: 0.15,
            duplicate: 0.05,
            delay: 0.05,
            io: 0.05,
            ..FaultSpec::default()
        };
        let run = |seed: u64| {
            let mut rig =
                NfsRig::new_faulted(ServerMode::NCache, NfsRigParams::default(), &spec, seed);
            let fh = rig.create_file("f", 32 << 10);
            let mut out = Vec::new();
            for i in 0..10u32 {
                out.push(rig.try_read(fh, (i % 8) * 4096, 4096).map(|(_, d)| d));
            }
            (out, rig.fault_counters())
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3).1, run(4).1, "different seeds, different schedules");
    }

    #[test]
    fn rig_moves_across_threads() {
        // Regression: every layer of the rig (slab pool, shard set,
        // shared target/module handles, ledgers) must stay `Send` so the
        // lane-parallel engine can drive one rig from worker threads —
        // and `Sync`, because the engine shares the rig across lanes as
        // `&RwLock<NfsRig>` and the read fast path serves concurrent
        // READs under the read guard.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NfsRig>();
        assert_send_sync::<std::sync::RwLock<NfsRig>>();
        let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
        let fh = rig.create_file("x", 16 << 10);
        let data = std::thread::spawn(move || rig.read(fh, 0, 8 << 10))
            .join()
            .expect("worker");
        assert_eq!(data, NfsRig::pattern(fh, 0, 8 << 10));
    }

    #[test]
    fn fault_counters_absorb_adds_fieldwise() {
        let mut a = FaultCounters {
            retransmits: 1,
            timeouts: 2,
            ..FaultCounters::default()
        };
        a.absorb(&FaultCounters {
            retransmits: 3,
            request_drops: 4,
            failed_requests: 5,
            ..FaultCounters::default()
        });
        assert_eq!(a.retransmits, 4);
        assert_eq!(a.timeouts, 2);
        assert_eq!(a.request_drops, 4);
        assert_eq!(a.failed_requests, 5);
    }

    #[test]
    fn pattern_is_deterministic_and_offset_consistent() {
        // Reading [0, 8192) must equal reading [0,4096) ++ [4096, 8192).
        let whole = NfsRig::pattern(7, 0, 8192);
        let a = NfsRig::pattern(7, 0, 4096);
        let b = NfsRig::pattern(7, 4096, 4096);
        assert_eq!(&whole[..4096], &a[..]);
        assert_eq!(&whole[4096..], &b[..]);
        assert_ne!(a, b);
        assert_ne!(NfsRig::pattern(7, 0, 64), NfsRig::pattern(8, 0, 64));
        // Self-consistency at arbitrary (unaligned) offsets.
        let w = NfsRig::pattern(7, 0, 8192);
        assert_eq!(&w[100..1100], &NfsRig::pattern(7, 100, 1000)[..]);
        assert_eq!(&w[4095..4097], &NfsRig::pattern(7, 4095, 2)[..]);
        assert_eq!(&w[7..8], &NfsRig::pattern(7, 7, 1)[..]);
    }
}
