//! The NFS-over-iSCSI pass-through rig: client ⇄ NFS server ⇄ iSCSI
//! target, fully wired, with per-node copy ledgers.

use std::cell::RefCell;
use std::rc::Rc;

use ncache::{NcacheConfig, NcacheModule};
use netbuf::{CopyLedger, NetBuf};
use proto::nfs::{ReadReplyHeader, WriteReply, NFS_OK};
use servers::initiator::IscsiInitiator;
use servers::nfs::{fh_to_ino, ino_to_fh, NfsClient, NfsServer};
use servers::{IscsiTarget, ServerMode};
use simfs::store::synthetic_block;
use simfs::{Filesystem, FsParams};

/// Per-node copy ledgers (one per simulated machine).
#[derive(Clone, Debug, Default)]
pub struct NodeLedgers {
    /// The measurement client.
    pub client: CopyLedger,
    /// The application (NFS / web) server.
    pub app: CopyLedger,
    /// The storage server.
    pub storage: CopyLedger,
}

/// Rig geometry. Defaults are scaled to run quickly; the benchmark harness
/// widens them per experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NfsRigParams {
    /// Exported volume size in blocks.
    pub volume_blocks: u64,
    /// File-system buffer-cache capacity in blocks. Under NCache this is
    /// deliberately small (§3.4: "the file system cache is configured to
    /// be much smaller than the network-centric cache").
    pub fs_cache_blocks: usize,
    /// NCache pinned capacity in bytes (NCache build only).
    pub ncache_bytes: u64,
    /// Read-ahead window in blocks (tuned to the request size, §5.4).
    pub read_ahead_blocks: u64,
    /// Inodes to provision.
    pub inode_count: u32,
}

impl Default for NfsRigParams {
    fn default() -> Self {
        NfsRigParams {
            volume_blocks: 64 << 10, // 256 MiB volume
            fs_cache_blocks: 2 << 10,
            ncache_bytes: 64 << 20,
            read_ahead_blocks: 8,
            inode_count: 4 << 10,
        }
    }
}

/// The assembled rig.
#[derive(Debug)]
pub struct NfsRig {
    server: NfsServer,
    client: NfsClient,
    target: Rc<RefCell<IscsiTarget>>,
    module: Option<Rc<RefCell<NcacheModule>>>,
    ledgers: NodeLedgers,
    mode: ServerMode,
    params: NfsRigParams,
    recorder: obs::Recorder,
}

impl NfsRig {
    /// Builds the full rig for `mode`: storage server, (optionally) the
    /// NCache module, the initiator, a freshly formatted file system, the
    /// NFS server and a client.
    ///
    /// # Panics
    ///
    /// Panics if the volume is too small to format — a configuration bug.
    pub fn new(mode: ServerMode, params: NfsRigParams) -> Self {
        let ledgers = NodeLedgers::default();
        let target = Rc::new(RefCell::new(IscsiTarget::new(
            params.volume_blocks,
            &ledgers.storage,
        )));
        let module = (mode == ServerMode::NCache).then(|| {
            Rc::new(RefCell::new(NcacheModule::new(
                NcacheConfig::with_capacity(params.ncache_bytes),
                &ledgers.app,
            )))
        });
        let initiator = IscsiInitiator::new(
            Rc::clone(&target),
            &ledgers.app,
            mode,
            module.clone(),
        );
        let fs = Filesystem::mkfs(
            initiator,
            FsParams {
                total_blocks: params.volume_blocks,
                inode_count: params.inode_count,
                cache_blocks: params.fs_cache_blocks,
                read_ahead_blocks: params.read_ahead_blocks,
            },
            &ledgers.app,
        )
        .expect("volume large enough to format");
        let server = NfsServer::new(mode, fs, module.clone(), &ledgers.app);
        NfsRig {
            server,
            client: NfsClient::new(&ledgers.client),
            target,
            module,
            ledgers,
            mode,
            params,
            recorder: obs::Recorder::new(),
        }
    }

    /// Attaches a recorder to the whole rig: the server span layer, the
    /// data plane below it, and every node's copy ledger.
    pub fn set_recorder(&mut self, rec: obs::Recorder) {
        self.ledgers.client.attach_recorder(&rec);
        self.ledgers.app.attach_recorder(&rec);
        self.ledgers.storage.attach_recorder(&rec);
        self.server.set_recorder(rec.clone());
        self.recorder = rec;
    }

    /// The rig's recorder (disabled unless [`Self::set_recorder`] ran).
    pub fn recorder(&self) -> &obs::Recorder {
        &self.recorder
    }

    /// Snapshots every stats struct in the rig into one unified report.
    pub fn metrics_report(&mut self) -> obs::MetricsReport {
        let mut report = obs::MetricsReport::new();
        report.add_snapshot("nfs-server", &self.server.stats());
        report.add_snapshot("fs-cache", &self.server.fs_mut().cache_stats());
        report.add_snapshot("initiator", &self.server.fs_mut().store_mut().stats());
        report.add_snapshot("target", &self.target.borrow().stats());
        if let Some(module) = &self.module {
            report.add_snapshot("ncache", &module.borrow().stats());
        }
        report.add_snapshot("ledger.client", &self.ledgers.client.snapshot());
        report.add_snapshot("ledger.app", &self.ledgers.app.snapshot());
        report.add_snapshot("ledger.storage", &self.ledgers.storage.snapshot());
        report
    }

    /// Syncs and drops the file-system buffer cache, so measurement starts
    /// cold (setup writes would otherwise leave real data resident and
    /// mask each build's miss path). The network-centric cache is left
    /// alone — setup never touches it.
    pub fn quiesce(&mut self) {
        let fs = self.server.fs_mut();
        fs.sync().expect("sync");
        fs.set_cache_capacity(0);
        fs.set_cache_capacity(self.params.fs_cache_blocks);
    }

    /// The build this rig runs.
    pub fn mode(&self) -> ServerMode {
        self.mode
    }

    /// The per-node ledgers.
    pub fn ledgers(&self) -> &NodeLedgers {
        &self.ledgers
    }

    /// The NFS server (stats, file system access).
    pub fn server_mut(&mut self) -> &mut NfsServer {
        &mut self.server
    }

    /// The NCache module, under that build.
    pub fn module(&self) -> Option<Rc<RefCell<NcacheModule>>> {
        self.module.clone()
    }

    /// The storage server (integrity inspection).
    pub fn target(&self) -> Rc<RefCell<IscsiTarget>> {
        Rc::clone(&self.target)
    }

    /// Creates a file and fills it with [`Self::pattern`] content (setup
    /// path — writes go through the server's file system directly, then
    /// sync, so measurement starts from a quiescent volume).
    pub fn create_file(&mut self, name: &str, size: u64) -> u64 {
        let fs = self.server.fs_mut();
        let ino = fs
            .create(Filesystem::<IscsiInitiator>::ROOT, name)
            .expect("fresh name");
        let mut offset = 0u64;
        while offset < size {
            let chunk = (size - offset).min(1 << 20) as usize;
            let data = Self::pattern(ino_to_fh(ino), offset, chunk);
            fs.write(ino, offset, &data).expect("volume has space");
            offset += chunk as u64;
        }
        self.quiesce();
        ino_to_fh(ino)
    }

    /// Creates a file whose blocks are *allocated but never written*: its
    /// contents are the storage server's deterministic synthetic blocks.
    /// Setup cost is O(metadata), so multi-gigabyte all-miss files are
    /// cheap. Use [`Self::expected_sparse`] for integrity checks.
    pub fn create_sparse_file(&mut self, name: &str, size: u64) -> u64 {
        let fs = self.server.fs_mut();
        let ino = fs
            .create(Filesystem::<IscsiInitiator>::ROOT, name)
            .expect("fresh name");
        fs.allocate(ino, size).expect("volume has space");
        self.quiesce();
        ino_to_fh(ino)
    }

    /// The deterministic content [`Self::create_file`] writes at
    /// `[offset, offset+len)` of the file with handle `fh`. Each 4 KiB
    /// block's stream is seeded independently, so the function is
    /// self-consistent at any offset: the generator always replays from
    /// the containing block's start.
    pub fn pattern(fh: u64, offset: u64, len: usize) -> Vec<u8> {
        let block_start = offset - offset % 4096;
        let skip = (offset - block_start) as usize;
        let mut v = Vec::with_capacity(skip + len);
        let mut x = 0u64;
        let mut at = block_start;
        while v.len() < skip + len {
            if at.is_multiple_of(4096) {
                x = fh
                    .wrapping_mul(0x100_0000_01b3)
                    .wrapping_add(at / 4096)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    | 1;
            }
            v.push((x >> ((at % 8) * 8)) as u8);
            if at % 8 == 7 {
                x = x.wrapping_mul(0x2545_f491_4f6c_dd1d).wrapping_add(1);
            }
            at += 1;
        }
        v.split_off(skip)
    }

    /// The expected contents of a sparse file's range (the synthetic
    /// blocks at its mapped LBNs).
    pub fn expected_sparse(&mut self, fh: u64, offset: u64, len: usize) -> Vec<u8> {
        assert_eq!(offset % 4096, 0, "block-aligned expectations only");
        let fs = self.server.fs_mut();
        let mut out = Vec::with_capacity(len);
        let mut blk = offset / 4096;
        while out.len() < len {
            let lbn = fs
                .block_lbn(fh_to_ino(fh), blk)
                .expect("file exists")
                .expect("allocated");
            let block = synthetic_block(lbn);
            let take = (len - out.len()).min(4096);
            out.extend_from_slice(&block[..take]);
            blk += 1;
        }
        out
    }

    /// Issues a READ through the full request path and returns the payload
    /// the client received.
    pub fn read(&mut self, fh: u64, offset: u32, count: u32) -> Vec<u8> {
        let (hdr, data) = self.read_with_header(fh, offset, count);
        assert_eq!(hdr.status, NFS_OK, "read failed");
        data
    }

    /// As [`Self::read`], returning the reply header too.
    pub fn read_with_header(
        &mut self,
        fh: u64,
        offset: u32,
        count: u32,
    ) -> (ReadReplyHeader, Vec<u8>) {
        let req = self.client.read_request(fh, offset, count);
        let delivered = servers::stack::deliver(&req, &self.ledgers.app);
        let reply = self.server.handle_message(delivered);
        self.client.parse_read_reply(&reply)
    }

    /// Issues a WRITE through the full request path.
    pub fn write(&mut self, fh: u64, offset: u32, data: &[u8]) -> WriteReply {
        let req = self.client.write_request(fh, offset, data);
        let delivered = servers::stack::deliver(&req, &self.ledgers.app);
        let reply = self.server.handle_message(delivered);
        self.client.parse_write_reply(&reply)
    }

    /// Issues a GETATTR.
    pub fn getattr(&mut self, fh: u64) -> u32 {
        let req = self.client.getattr_request(fh);
        let delivered = servers::stack::deliver(&req, &self.ledgers.app);
        let reply = self.server.handle_message(delivered);
        self.client.parse_getattr_reply(&reply).0
    }

    /// Issues a LOOKUP in the export root.
    pub fn lookup(&mut self, name: &str) -> Option<u64> {
        let root = self.server.root_fh();
        let req = self.client.lookup_request(root, name);
        let delivered = servers::stack::deliver(&req, &self.ledgers.app);
        let reply = self.server.handle_message(delivered);
        let parsed = self.client.parse_lookup_reply(&reply);
        (parsed.status == NFS_OK).then_some(parsed.fh)
    }

    /// Low-level access for the timing layer: handles a prepared request
    /// message and returns the raw reply.
    pub fn handle_raw(&mut self, req: NetBuf) -> NetBuf {
        let delivered = servers::stack::deliver(&req, &self.ledgers.app);
        self.server.handle_message(delivered)
    }

    /// The client-side request builder.
    pub fn client_mut(&mut self) -> &mut NfsClient {
        &mut self.client
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_read_original() {
        let mut rig = NfsRig::new(ServerMode::Original, NfsRigParams::default());
        let fh = rig.create_file("f", 64 << 10);
        let data = rig.read(fh, 8192, 16 << 10);
        assert_eq!(data, NfsRig::pattern(fh, 8192, 16 << 10));
    }

    #[test]
    fn end_to_end_read_ncache_substitutes_real_data() {
        let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
        let fh = rig.create_file("f", 64 << 10);
        let data = rig.read(fh, 0, 32 << 10);
        assert_eq!(
            data,
            NfsRig::pattern(fh, 0, 32 << 10),
            "the client must see real bytes, not placeholder junk"
        );
        let module = rig.module().expect("ncache build");
        assert!(module.borrow().substitution_totals().substituted > 0);
        assert_eq!(module.borrow().substitution_totals().missing, 0);
    }

    #[test]
    fn baseline_returns_junk_by_design() {
        let mut rig = NfsRig::new(ServerMode::Baseline, NfsRigParams::default());
        let fh = rig.create_file("f", 16 << 10);
        let data = rig.read(fh, 0, 4096);
        assert_eq!(data.len(), 4096);
        assert_ne!(
            data,
            NfsRig::pattern(fh, 0, 4096),
            "the baseline build sends placeholder bits (§5.1)"
        );
    }

    #[test]
    fn sparse_files_read_synthetic_content() {
        let mut rig = NfsRig::new(ServerMode::Original, NfsRigParams::default());
        let fh = rig.create_sparse_file("big", 1 << 20);
        let expect = rig.expected_sparse(fh, 64 << 10, 8 << 10);
        let data = rig.read(fh, 64 << 10, 8 << 10);
        assert_eq!(data, expect);
        // Setup wrote no data blocks to the target.
        assert!(rig.target().borrow().written_blocks() < 1000, "metadata only");
    }

    #[test]
    fn write_then_read_back_all_modes_freshness() {
        for mode in [ServerMode::Original, ServerMode::NCache] {
            let mut rig = NfsRig::new(mode, NfsRigParams::default());
            let fh = rig.create_file("f", 32 << 10);
            let new_data = vec![0xC3u8; 8 << 10];
            let reply = rig.write(fh, 8192, &new_data);
            assert_eq!(reply.status, NFS_OK, "{mode}");
            let read_back = rig.read(fh, 8192, 8 << 10);
            assert_eq!(read_back, new_data, "{mode}: freshest data wins");
            // Around the write, old content is intact.
            assert_eq!(rig.read(fh, 0, 8192), NfsRig::pattern(fh, 0, 8192), "{mode}");
        }
    }

    #[test]
    fn lookup_and_getattr() {
        let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
        let fh = rig.create_file("hello.dat", 4096);
        assert_eq!(rig.lookup("hello.dat"), Some(fh));
        assert_eq!(rig.lookup("absent"), None);
        assert_eq!(rig.getattr(fh), NFS_OK);
    }

    #[test]
    fn pattern_is_deterministic_and_offset_consistent() {
        // Reading [0, 8192) must equal reading [0,4096) ++ [4096, 8192).
        let whole = NfsRig::pattern(7, 0, 8192);
        let a = NfsRig::pattern(7, 0, 4096);
        let b = NfsRig::pattern(7, 4096, 4096);
        assert_eq!(&whole[..4096], &a[..]);
        assert_eq!(&whole[4096..], &b[..]);
        assert_ne!(a, b);
        assert_ne!(NfsRig::pattern(7, 0, 64), NfsRig::pattern(8, 0, 64));
        // Self-consistency at arbitrary (unaligned) offsets.
        let w = NfsRig::pattern(7, 0, 8192);
        assert_eq!(&w[100..1100], &NfsRig::pattern(7, 100, 1000)[..]);
        assert_eq!(&w[4095..4097], &NfsRig::pattern(7, 4095, 2)[..]);
        assert_eq!(&w[7..8], &NfsRig::pattern(7, 7, 1)[..]);
    }
}
