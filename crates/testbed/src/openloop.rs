//! The open-loop overload observatory.
//!
//! The session engines in [`crate::sessions`] are closed loops: each
//! client waits for its reply before issuing again, so offered load can
//! never exceed capacity and queues never grow without bound. This module
//! is the opposite regime: requests arrive at pre-drawn absolute instants
//! ([`workload::arrivals`]) regardless of completions, so pushing the
//! arrival rate past saturation makes the queues — and the tail
//! quantiles — grow for as long as the schedule keeps firing. That is
//! the behaviour the overload sweep plots: goodput flattening at
//! capacity while p99/p999 latency departs from the mean.
//!
//! Timing uses exactly the stage chains and FIFO resources of the
//! closed-loop engines; every foreground request accumulates the same
//! per-stage queue/service breakdown ([`obs::StageNs`]), telescoping to
//! its end-to-end latency, and lands in the same [`obs::Recorder`]
//! histograms the latency-attribution report renders. The run is a pure
//! function of `(rig, schedule, options)` — byte-deterministic at any
//! host thread count, because nothing here spawns one.

use std::collections::BTreeMap;

use blockdev::{DiskModel, Raid0};
use sim::costs::CostModel;
use sim::engine::{Engine, Scheduler};
use sim::stats::Throughput;
use sim::time::SimTime;
use sim::{Resource, SplitMix64};
use workload::arrivals::{poisson_arrivals, BurstConfig};
use workload::zipf::Zipf;

use crate::runner::{classify_path, op_label, stage_chains, DriverOp, Res, RigDriver, Stage};
use crate::timing::derive;

/// Open-loop driver configuration.
#[derive(Clone, Debug)]
pub struct OpenLoopOptions {
    /// Mean inter-arrival time of the Poisson schedule, nanoseconds.
    pub mean_interarrival_ns: u64,
    /// Optional square-wave burst modulation of the arrival rate.
    pub burst: Option<BurstConfig>,
    /// Seed for the arrival draw.
    pub seed: u64,
    /// NICs on the application server.
    pub nics: usize,
    /// The hardware cost model.
    pub costs: CostModel,
    /// Request deadline in sim-ns (0 = none): a request completing past
    /// its deadline is counted in
    /// [`OpenLoopResult::deadline_exceeded`] and its payload in
    /// `late_bytes`, excluded from goodput.
    pub deadline_ns: u64,
    /// Client retry policy for server `RETRY_LATER` rejections (None =
    /// a rejection immediately sheds the request). Budget exhaustion is
    /// a counted client-visible error, never a loop.
    pub retry: Option<servers::RetryPolicy>,
}

impl Default for OpenLoopOptions {
    fn default() -> Self {
        OpenLoopOptions {
            mean_interarrival_ns: 100_000,
            burst: None,
            seed: 1,
            nics: 1,
            costs: CostModel::pentium3_gige(),
            deadline_ns: 0,
            retry: None,
        }
    }
}

/// Per-resource utilization timeline over a run, in at most 32
/// equal-width windows (occupancy clamped to 1; for the array the
/// interval is request residency, so concurrent stripes count once).
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceTimeline {
    /// Stage name (matches [`obs::StageNs::stage`]).
    pub resource: &'static str,
    /// Servers the resource multiplexes over.
    pub servers: u32,
    /// Busy fraction per window, in `[0, 1]`.
    pub util: Vec<f64>,
}

/// Measured outcome of an open-loop run.
#[derive(Clone, Debug, PartialEq)]
pub struct OpenLoopResult {
    /// Arrival rate actually offered (requests over the schedule span).
    pub offered_ops_per_sec: f64,
    /// Delivered payload over the full run, MB/s (decimal). Under
    /// overload this flattens at capacity while latency keeps growing.
    pub goodput_mbs: f64,
    /// Completed operations per second of simulated run time.
    pub ops_per_sec: f64,
    /// Foreground operations completed.
    pub ops: u64,
    /// Payload bytes delivered.
    pub payload_bytes: u64,
    /// Simulated instant the last chain drained.
    pub elapsed: SimTime,
    /// Most requests simultaneously in flight (arrived, not completed).
    pub peak_inflight: u64,
    /// End-to-end request latency, quantile-queryable.
    pub latency: obs::HistogramSnapshot,
    /// Per-stage queue/service totals over all foreground requests, in
    /// stage order. Their sum equals `latency.sum` exactly.
    pub stages: Vec<obs::StageNs>,
    /// Width of each utilization window, nanoseconds.
    pub window_ns: u64,
    /// Per-resource utilization timelines.
    pub timelines: Vec<ResourceTimeline>,
    /// Admitted requests that completed past their deadline: counted
    /// here (and their payload in `late_bytes`), not in goodput.
    pub deadline_exceeded: u64,
    /// Payload bytes of deadline-exceeded requests (delivered late,
    /// excluded from `goodput_mbs` and `payload_bytes`).
    pub late_bytes: u64,
    /// Requests shed: rejected by the server's admission gate and
    /// abandoned once the retry budget ran out (a counted
    /// client-visible error).
    pub shed: u64,
    /// Total retransmissions across all requests.
    pub retries: u64,
    /// Most transmissions any single request made (bounded by
    /// 1 + the retry budget; exactly 1 without a policy).
    pub max_attempts: u64,
}

/// The slot a resource's busy intervals accumulate under; order matches
/// the stage order the attribution report renders.
fn slot(res: &Res) -> usize {
    match res {
        Res::AppRx => 0,
        Res::AppCpu => 1,
        Res::AppTx => 2,
        Res::StorRx => 3,
        Res::StorCpu => 4,
        Res::StorTx => 5,
        Res::Disk { .. } => 6,
    }
}

/// Stage names by slot.
const SLOT_NAMES: [&str; 7] = [
    "app-rx",
    "app-cpu",
    "app-tx",
    "storage-rx",
    "storage-cpu",
    "storage-tx",
    "disk",
];

/// A foreground request in flight: identity, arrival instant, and the
/// stage breakdown accumulated so far (telescoping to its latency).
struct Flight {
    payload: u64,
    start: SimTime,
    label: &'static str,
    path: &'static str,
    stages: Vec<obs::StageNs>,
    /// The server admitted (some attempt of) the request; `false` means
    /// every transmission so far was rejected.
    delivered: bool,
    /// Arrival index — keys the retry policy's backoff stream.
    idx: u64,
    /// Transmissions performed so far (1 = the initial send).
    attempts: u64,
    /// The operation, retained for retransmission after a rejection.
    op: DriverOp,
}

struct World<R> {
    rig: R,
    pending: Vec<Option<DriverOp>>,
    costs: CostModel,
    rec: obs::Recorder,
    app_cpu: Resource,
    app_tx: Resource,
    app_rx: Resource,
    stor_cpu: Resource,
    stor_tx: Resource,
    stor_rx: Resource,
    array: Raid0,
    meter: Throughput,
    latency: obs::Histogram,
    stage_totals: BTreeMap<&'static str, (u64, u64)>,
    busy: [Vec<(u64, u64)>; 7],
    inflight: u64,
    peak_inflight: u64,
    /// Admitted requests still in flight — the depth the server's
    /// admission gate sees. Rejected/backing-off flights occupy the
    /// client, not the server, so they are excluded (counting them
    /// would turn every rejection into more rejections).
    server_inflight: u64,
    end: SimTime,
    deadline_ns: u64,
    retry: Option<servers::RetryPolicy>,
    deadline_exceeded: u64,
    late_bytes: u64,
    shed: u64,
    retries: u64,
    max_attempts: u64,
}

impl<R: RigDriver> World<R> {
    /// Occupies the stage's resource; logs the busy interval for the
    /// utilization timelines and returns `(started, done)`.
    fn serve(&mut self, now: SimTime, stage: &Stage) -> (SimTime, SimTime) {
        let (started, done) = match stage.res {
            Res::AppRx => self.app_rx.serve_timed(now, stage.demand),
            Res::AppCpu => self.app_cpu.serve_timed(now, stage.demand),
            Res::AppTx => self.app_tx.serve_timed(now, stage.demand),
            Res::StorRx => self.stor_rx.serve_timed(now, stage.demand),
            Res::StorCpu => self.stor_cpu.serve_timed(now, stage.demand),
            Res::StorTx => self.stor_tx.serve_timed(now, stage.demand),
            // The open-loop engine keeps the flat array: tiering is a
            // closed-loop ablation concern.
            Res::Disk { lbn, blocks, .. } => self.array.io_timed(now, lbn, blocks),
        };
        if done > started {
            self.busy[slot(&stage.res)].push((started.as_nanos(), done.as_nanos()));
        }
        (started, done)
    }
}

/// Fires arrival `k`: opens the request's flight and performs its first
/// transmission. Events fire in schedule order, so functional state
/// evolves deterministically.
fn arrive<R: RigDriver + 'static>(w: &mut World<R>, s: &mut Scheduler<World<R>>, k: usize) {
    let op = w.pending[k].take().expect("arrival fired twice");
    let now = s.now();
    w.inflight += 1;
    w.peak_inflight = w.peak_inflight.max(w.inflight);
    let fg = Flight {
        payload: 0,
        start: now,
        label: op_label(&op),
        path: "shed",
        stages: Vec::new(),
        delivered: false,
        idx: k as u64,
        attempts: 0,
        op,
    };
    transmit(w, s, fg);
}

/// One transmission of a flight's operation, executed functionally at the
/// current instant. An admitted attempt fixes the flight's payload and
/// path; a rejected one leaves it undelivered (the retry decision happens
/// when the rejection reply reaches the client — see [`step`]). Either
/// way the attempt's stage chain is scheduled, so rejection round trips
/// consume the same simulated resources real ones do.
fn transmit<R: RigDriver + 'static>(w: &mut World<R>, s: &mut Scheduler<World<R>>, mut fg: Flight) {
    let now = s.now();
    w.rec.set_now(now.as_nanos());
    // The gate sees the depth of admitted requests currently in flight;
    // rejected/backing-off flights occupy the client, not the server
    // (counting them would turn every rejection into more rejections).
    w.rig.set_load(now.as_nanos(), w.server_inflight);
    let (obs, payload) = w.rig.run_op(&fg.op);
    fg.attempts += 1;
    if fg.attempts > 1 {
        w.retries += 1;
    }
    w.max_attempts = w.max_attempts.max(fg.attempts);
    // A gate rejection turns the request around before filesystem and
    // cache processing; only transport and decode work remains, so it
    // costs a quarter of the fixed per-request CPU. That is what makes
    // shedding cheaper than serving — the whole point of the gate.
    let per_request_ns = if obs.rejected {
        w.rig.per_request_ns(&w.costs) / 4
    } else {
        w.rig.per_request_ns(&w.costs)
    };
    let demands = derive(&w.costs, w.rig.transport(), per_request_ns, &obs);
    let (stages, background) = stage_chains(&w.costs, &demands);
    for bg in background {
        s.schedule_at(now, move |w, s| step(w, s, bg, 0, None));
    }
    if !obs.rejected {
        fg.delivered = true;
        fg.payload = payload;
        fg.path = classify_path(&obs);
        w.server_inflight += 1;
    }
    s.schedule_at(now, move |w, s| step(w, s, stages, 0, Some(fg)));
}

/// Walks one stage of a chain, accumulating the foreground breakdown;
/// an exhausted foreground chain records the completed request.
fn step<R: RigDriver + 'static>(
    w: &mut World<R>,
    s: &mut Scheduler<World<R>>,
    stages: Vec<Stage>,
    cursor: usize,
    mut foreground: Option<Flight>,
) {
    let now = s.now();
    if cursor == stages.len() {
        w.end = w.end.max(now);
        if let Some(mut fg) = foreground {
            if !fg.delivered {
                // The rejection reply just reached the client: back off
                // and retransmit if the budget allows. The backoff is a
                // pure client-side delay, recorded as a stage so the
                // breakdown still telescopes to end-to-end latency.
                if let Some(policy) = w.retry {
                    // A retransmission that would resume past the
                    // request's deadline cannot deliver useful work, so
                    // the client sheds instead of adding load — the
                    // graceful half of graceful shedding.
                    let resume_ns = |backoff: u64| now.since(fg.start).as_nanos() + backoff;
                    if fg.attempts <= u64::from(policy.budget) {
                        let backoff = policy.backoff_ns(fg.idx, fg.attempts as u32);
                        if w.deadline_ns == 0 || resume_ns(backoff) <= w.deadline_ns {
                            fg.stages.push(obs::StageNs {
                                stage: "client-backoff",
                                queue_ns: 0,
                                service_ns: backoff,
                            });
                            let at = now + sim::time::Duration::from_nanos(backoff);
                            s.schedule_at(at, move |w, s| transmit(w, s, fg));
                            return;
                        }
                    }
                }
            }
            w.inflight -= 1;
            if fg.delivered {
                w.server_inflight -= 1;
            }
            let latency_ns = now.since(fg.start).as_nanos();
            if !fg.delivered {
                // Shed: every transmission was rejected. The request
                // consumed client time and rejection round trips, but
                // delivered nothing — it counts as a client-visible
                // error, not goodput, and its (zero-latency-value)
                // outcome stays out of the latency histogram.
                w.shed += 1;
                w.rec.add_counter("openloop.shed", 1);
            } else if w.deadline_ns > 0 && latency_ns > w.deadline_ns {
                // Late: the work was done, but past the client's
                // deadline — the bytes are real yet worthless to the
                // caller, so they count separately from goodput.
                w.deadline_exceeded += 1;
                w.late_bytes += fg.payload;
                w.rec.add_counter("openloop.deadline_exceeded", 1);
                w.latency.record(latency_ns);
                for st in &fg.stages {
                    let t = w.stage_totals.entry(st.stage).or_insert((0, 0));
                    t.0 += st.queue_ns;
                    t.1 += st.service_ns;
                }
            } else {
                w.meter.record(fg.payload);
                w.latency.record(latency_ns);
                for st in &fg.stages {
                    let t = w.stage_totals.entry(st.stage).or_insert((0, 0));
                    t.0 += st.queue_ns;
                    t.1 += st.service_ns;
                }
            }
            w.rec.set_now(now.as_nanos());
            w.rec.emit(obs::EventKind::Request {
                op: fg.label,
                path: fg.path,
                start_ns: fg.start.as_nanos(),
                end_ns: now.as_nanos(),
                stages: fg.stages,
            });
        }
        return;
    }
    let stage = stages[cursor];
    let (started, done) = w.serve(now, &stage);
    if let Some(fg) = foreground.as_mut() {
        fg.stages.push(obs::StageNs {
            stage: stage.res.name(),
            queue_ns: started.since(now).as_nanos(),
            service_ns: done.since(started).as_nanos(),
        });
    }
    s.schedule_at(done, move |w, s| step(w, s, stages, cursor + 1, foreground));
}

/// Runs `ops` open-loop against `rig`, arrival `k` firing at
/// `schedule[k]`. The schedule must be as long as `ops` and
/// non-decreasing (the Poisson draws from [`workload::arrivals`] are).
///
/// # Panics
///
/// Panics if `schedule` and `ops` differ in length.
pub fn run_open_loop_at<R: RigDriver + 'static>(
    rig: R,
    ops: Vec<DriverOp>,
    schedule: &[SimTime],
    opts: &OpenLoopOptions,
) -> (R, OpenLoopResult) {
    assert_eq!(schedule.len(), ops.len(), "one arrival instant per op");
    let rec = rig.recorder();
    let n = ops.len();
    let mut app_cpu = Resource::new("app-cpu", 1);
    let mut app_tx = Resource::new("app-tx", opts.nics.max(1));
    let mut app_rx = Resource::new("app-rx", opts.nics.max(1));
    let mut stor_cpu = Resource::new("storage-cpu", 1);
    let mut stor_tx = Resource::new("storage-tx", 1);
    let mut stor_rx = Resource::new("storage-rx", 1);
    if rec.is_enabled() {
        app_cpu.set_recorder(rec.clone());
        app_tx.set_recorder(rec.clone());
        app_rx.set_recorder(rec.clone());
        stor_cpu.set_recorder(rec.clone());
        stor_tx.set_recorder(rec.clone());
        stor_rx.set_recorder(rec.clone());
    }
    let world = World {
        rig,
        pending: ops.into_iter().map(Some).collect(),
        costs: opts.costs.clone(),
        rec,
        app_cpu,
        app_tx,
        app_rx,
        stor_cpu,
        stor_tx,
        stor_rx,
        array: Raid0::new(DiskModel::dtla_307075(), 4, 16),
        meter: Throughput::new(),
        latency: obs::Histogram::new(),
        stage_totals: BTreeMap::new(),
        busy: Default::default(),
        inflight: 0,
        peak_inflight: 0,
        server_inflight: 0,
        end: SimTime::ZERO,
        deadline_ns: opts.deadline_ns,
        retry: opts.retry,
        deadline_exceeded: 0,
        late_bytes: 0,
        shed: 0,
        retries: 0,
        max_attempts: 0,
    };
    let mut engine = Engine::new(world);
    for (k, &at) in schedule.iter().enumerate() {
        engine.schedule_at(at, move |w, s| arrive(w, s, k));
    }
    engine.run();
    let w = engine.into_world();
    let elapsed = w.end;
    let span = schedule.last().map_or(SimTime::ZERO, |&t| t);
    let offered = if span > SimTime::ZERO {
        n as f64 / span.as_secs_f64()
    } else {
        0.0
    };
    let mut stages: Vec<obs::StageNs> = SLOT_NAMES
        .iter()
        .filter_map(|&name| {
            w.stage_totals.get(name).map(|&(q, sv)| obs::StageNs {
                stage: name,
                queue_ns: q,
                service_ns: sv,
            })
        })
        .collect();
    if let Some(&(q, sv)) = w.stage_totals.get("client-backoff") {
        stages.push(obs::StageNs {
            stage: "client-backoff",
            queue_ns: q,
            service_ns: sv,
        });
    }
    let (window_ns, timelines) = build_timelines(&w.busy, opts.nics, &w.array, elapsed);
    let result = OpenLoopResult {
        offered_ops_per_sec: offered,
        goodput_mbs: w.meter.megabytes_per_sec(elapsed),
        ops_per_sec: w.meter.ops_per_sec(elapsed),
        ops: w.meter.ops(),
        payload_bytes: w.meter.bytes(),
        elapsed,
        peak_inflight: w.peak_inflight,
        latency: w.latency.snapshot(),
        stages,
        window_ns,
        timelines,
        deadline_exceeded: w.deadline_exceeded,
        late_bytes: w.late_bytes,
        shed: w.shed,
        retries: w.retries,
        max_attempts: w.max_attempts,
    };
    (w.rig, result)
}

/// [`run_open_loop_at`] over a seeded Poisson schedule drawn from the
/// options (see [`workload::arrivals::poisson_arrivals`]).
pub fn run_open_loop<R: RigDriver + 'static>(
    rig: R,
    ops: Vec<DriverOp>,
    opts: &OpenLoopOptions,
) -> (R, OpenLoopResult) {
    let schedule = poisson_arrivals(
        opts.seed,
        ops.len(),
        opts.mean_interarrival_ns,
        opts.burst.as_ref(),
    );
    run_open_loop_at(rig, ops, &schedule, opts)
}

/// Zipf-popular aligned reads over the first `file_bytes` of `fh`:
/// rank 0 (the hottest span) is the file's first `span` bytes. The
/// overload sweep's operation stream.
pub fn zipf_reads(seed: u64, fh: u64, n: usize, file_bytes: u64, span: u32, alpha: f64) -> Vec<DriverOp> {
    let ranks = (file_bytes / u64::from(span)).max(1) as usize;
    let z = Zipf::new(ranks, alpha);
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| DriverOp::Read {
            fh,
            offset: (z.sample(&mut rng) as u64 * u64::from(span)) as u32,
            len: span,
        })
        .collect()
}

/// Buckets each resource's busy intervals into at most 32 equal-width
/// occupancy windows over `[0, elapsed]`.
fn build_timelines(
    busy: &[Vec<(u64, u64)>; 7],
    nics: usize,
    array: &Raid0,
    elapsed: SimTime,
) -> (u64, Vec<ResourceTimeline>) {
    let elapsed_ns = elapsed.as_nanos();
    if elapsed_ns == 0 {
        return (0, Vec::new());
    }
    let width = elapsed_ns.div_ceil(32).max(1);
    let windows = elapsed_ns.div_ceil(width) as usize;
    let timelines = SLOT_NAMES
        .iter()
        .enumerate()
        .map(|(i, &name)| {
            let servers = match i {
                0 | 2 => nics.max(1) as u64,
                6 => array.disk_count() as u64,
                _ => 1,
            };
            let util = (0..windows)
                .map(|k| {
                    let w0 = k as u64 * width;
                    let w1 = ((k as u64 + 1) * width).min(elapsed_ns);
                    let overlap: u64 = busy[i]
                        .iter()
                        .map(|&(s, e)| e.min(w1).saturating_sub(s.max(w0)))
                        .sum();
                    (overlap as f64 / ((w1 - w0).max(1) * servers) as f64).min(1.0)
                })
                .collect();
            ResourceTimeline {
                resource: name,
                servers: servers as u32,
                util,
            }
        })
        .collect();
    (width, timelines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfs_rig::{NfsRig, NfsRigParams};
    use servers::ServerMode;

    fn warm_rig(size: u64) -> (NfsRig, u64) {
        let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
        let fh = rig.create_file("hot", size);
        let mut off = 0u64;
        while off < size {
            rig.read(fh, off as u32, 16 << 10);
            off += 16 << 10;
        }
        // Drop the warm-up's accumulated storage backlog so it does not
        // ride the first measured request's burst chain.
        let _ = rig.server_mut().fs_mut().store_mut().take_io_log();
        (rig, fh)
    }

    fn traced(rig: NfsRig) -> (NfsRig, obs::Recorder) {
        let rec = obs::Recorder::new();
        rec.enable(obs::TraceConfig::default());
        let mut rig = rig;
        rig.set_recorder(rec.clone());
        (rig, rec)
    }

    #[test]
    fn widely_spaced_arrivals_see_zero_queue_time() {
        // Cache-hit reads take well under a millisecond of total service;
        // arrivals 10 ms apart can never overlap, so every stage of every
        // request starts the instant it arrives.
        let (rig, fh) = warm_rig(1 << 20);
        let (rig, rec) = traced(rig);
        let ops = zipf_reads(5, fh, 32, 1 << 20, 16 << 10, 1.0);
        let schedule: Vec<SimTime> = (0..32)
            .map(|k| SimTime::from_nanos((k + 1) * 10_000_000))
            .collect();
        let (_rig, r) = run_open_loop_at(rig, ops, &schedule, &OpenLoopOptions::default());
        assert_eq!(r.ops, 32);
        assert_eq!(r.peak_inflight, 1);
        for st in &r.stages {
            assert_eq!(st.queue_ns, 0, "stage {} queued under zero load", st.stage);
        }
        for ev in rec.events().iter() {
            if let obs::EventKind::Request { stages, .. } = &ev.kind {
                assert!(stages.iter().all(|s| s.queue_ns == 0));
            }
        }
    }

    #[test]
    fn stage_sums_telescope_to_latency() {
        let (rig, fh) = warm_rig(1 << 20);
        let (rig, rec) = traced(rig);
        let ops = zipf_reads(9, fh, 64, 1 << 20, 16 << 10, 1.0);
        let opts = OpenLoopOptions {
            mean_interarrival_ns: 30_000, // dense enough to queue
            seed: 11,
            ..OpenLoopOptions::default()
        };
        let (_rig, r) = run_open_loop(rig, ops, &opts);
        assert_eq!(r.ops, 64);
        let mut total = 0u64;
        for ev in rec.events().iter() {
            if let obs::EventKind::Request {
                start_ns,
                end_ns,
                stages,
                ..
            } = &ev.kind
            {
                let sum: u64 = stages.iter().map(|s| s.queue_ns + s.service_ns).sum();
                assert_eq!(sum, end_ns - start_ns, "stage sum must reconcile");
                total += sum;
            }
        }
        assert_eq!(total, r.latency.sum, "histogram sum matches the events");
        let stage_total: u64 = r.stages.iter().map(|s| s.queue_ns + s.service_ns).sum();
        assert_eq!(stage_total, r.latency.sum, "per-stage totals reconcile");
    }

    #[test]
    fn overload_grows_queues_and_tails() {
        let build = || {
            let (rig, fh) = warm_rig(1 << 20);
            (rig, zipf_reads(3, fh, 256, 1 << 20, 16 << 10, 1.0))
        };
        let run_at = |mean_ns: u64| {
            let (rig, ops) = build();
            let opts = OpenLoopOptions {
                mean_interarrival_ns: mean_ns,
                seed: 21,
                ..OpenLoopOptions::default()
            };
            let (_rig, r) = run_open_loop(rig, ops, &opts);
            r
        };
        let light = run_at(2_000_000);
        let heavy = run_at(20_000);
        assert_eq!(light.ops, 256);
        assert_eq!(heavy.ops, 256, "open loop completes every request");
        assert!(heavy.peak_inflight > light.peak_inflight);
        assert!(heavy.latency.quantile(0.99) > light.latency.quantile(0.99));
        // Queue time dominates under overload; it is absent unloaded.
        let queued: u64 = heavy.stages.iter().map(|s| s.queue_ns).sum();
        assert!(queued > 0);
        assert!(heavy.elapsed > SimTime::ZERO);
        assert!(!heavy.timelines.is_empty());
        assert!(heavy.timelines.iter().all(|t| t.util.iter().all(|&u| (0.0..=1.0).contains(&u))));
    }

    #[test]
    fn transmissions_are_bounded_by_one_plus_budget() {
        let (mut rig, fh) = warm_rig(1 << 20);
        rig.enable_control(servers::ControlConfig {
            max_inflight: 4,
            queue_hi: 3,
            queue_lo: 2,
            token_cost_ns: 0,
            token_burst: 0,
            ..servers::ControlConfig::protective()
        });
        let policy = servers::RetryPolicy::standard(41);
        let ops = zipf_reads(19, fh, 256, 1 << 20, 16 << 10, 1.0);
        let opts = OpenLoopOptions {
            mean_interarrival_ns: 10_000, // far past capacity: the gate trips
            seed: 23,
            retry: Some(policy),
            ..OpenLoopOptions::default()
        };
        let (rig, r) = run_open_loop(rig, ops, &opts);
        let stats = rig.control_stats().expect("control installed");
        assert!(stats.rejected > 0, "overload must trip the gate");
        assert!(r.retries > 0, "rejections must drive retransmissions");
        assert!(r.max_attempts >= 2);
        assert!(
            r.max_attempts <= 1 + u64::from(policy.budget),
            "no request transmits more than 1 + budget times (got {})",
            r.max_attempts
        );
        assert!(r.shed > 0, "budget exhaustion is a counted shed");
        // Every arrival completes exactly once: on time, late, or shed
        // (no deadline here, so nothing is late).
        assert_eq!(r.ops + r.deadline_exceeded + r.shed, 256);
        assert_eq!(r.deadline_exceeded, 0);
        // Transmissions reconcile against the gate's ledger: the server
        // saw one initial send per arrival plus every retransmission.
        assert_eq!(stats.offered, 256 + r.retries);
        assert_eq!(stats.offered, stats.admitted + stats.rejected);
    }

    #[test]
    fn disengaged_control_plane_is_unobservable() {
        let run = |controlled: bool| {
            let (mut rig, fh) = warm_rig(1 << 20);
            let mut opts = OpenLoopOptions {
                mean_interarrival_ns: 40_000, // dense enough to queue
                seed: 29,
                ..OpenLoopOptions::default()
            };
            if controlled {
                // Installed but fully open: every bound off, watermarks
                // above the scale. A client with a retry policy and a
                // generous deadline behaves identically when nothing is
                // ever rejected or late.
                rig.enable_control(servers::ControlConfig::unlimited());
                opts.retry = Some(servers::RetryPolicy::standard(7));
                opts.deadline_ns = u64::MAX;
            }
            let ops = zipf_reads(31, fh, 128, 1 << 20, 16 << 10, 1.0);
            let (rig, r) = run_open_loop(rig, ops, &opts);
            (rig, r)
        };
        let (_, off) = run(false);
        let (rig, on) = run(true);
        assert_eq!(off, on, "a gate that admits everything must be invisible");
        let stats = rig.control_stats().expect("control installed");
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.admitted, 128);
        assert_eq!(on.retries, 0);
        assert_eq!(on.shed, 0);
        assert_eq!(on.deadline_exceeded, 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let once = || {
            let (rig, fh) = warm_rig(1 << 20);
            let ops = zipf_reads(13, fh, 96, 1 << 20, 16 << 10, 0.8);
            let opts = OpenLoopOptions {
                mean_interarrival_ns: 60_000,
                burst: Some(BurstConfig {
                    period_ns: 2_000_000,
                    factor: 3.0,
                }),
                seed: 17,
                ..OpenLoopOptions::default()
            };
            let (_rig, r) = run_open_loop(rig, ops, &opts);
            r
        };
        let a = once();
        let b = once();
        assert_eq!(a, b, "same inputs, byte-identical outcome");
    }
}
