//! The interleaved multi-session engine.
//!
//! [`run_sessions`] drives M client sessions against one rig over the
//! discrete-event engine in [`sim::engine`]. Each session holds exactly
//! one outstanding request (a closed loop per client, as the paper's
//! client-scaling runs); its request, storage and reply stages are the
//! same FIFO chains the single-stream [`crate::runner`] builds, but every
//! event is tagged with the session's lane, so events at the same instant
//! fire in `(time, session, seq)` order. The interleaving is therefore a
//! pure function of the workload — byte-identical at any host thread
//! count and any NCache shard count, which the determinism gates in CI
//! compare directly.
//!
//! NFS sessions each carry their own [`NfsClient`] on a disjoint xid
//! base: the server's duplicate-request cache is keyed by xid alone, so
//! without per-session bases two clients' requests would alias in the
//! DRC. [`run_nfs_sessions`] sets this up; the generic entry point takes
//! an optional hook invoked around every functional execution.

use std::collections::VecDeque;
use std::sync::{Mutex, RwLock};

use blockdev::{TierConfig, TierStats};
use netbuf::{CopyLedger, NetBuf};
use servers::initiator::IoRecord;
use servers::nfs::NfsClient;
use sim::costs::CostModel;
use sim::engine::{Engine, Scheduler};
use sim::stats::{LatencyHistogram, Throughput};
use sim::time::{Duration, SimTime};
use sim::{FaultPlan, FaultSpec, Resource, SplitMix64};

pub use crate::openloop::{
    run_open_loop, run_open_loop_at, OpenLoopOptions, OpenLoopResult,
};

use crate::executor::{derive_seed, run_cells};
use crate::nfs_rig::{faulted_exchange_with, FaultChannel, FaultCounters, NfsRig};
use crate::runner::{
    classify_path, op_label, stage_chains, Backend, DriverOp, Res, RigDriver, ServeOutcome, Stage,
    FRAME_OVERHEAD,
};
use crate::timing::{coalesce, derive, Observation, Transport};

/// Called with the rig and the session index immediately before *and*
/// immediately after every functional execution. A swap-based hook (see
/// [`run_nfs_sessions`]) installs per-session client state on the way in
/// and parks it again on the way out.
pub type SessionHook<R> = Box<dyn FnMut(&mut R, usize)>;

/// Multi-session engine configuration.
#[derive(Clone, Debug)]
pub struct SessionsOptions {
    /// NICs on the application server.
    pub nics: usize,
    /// The hardware cost model.
    pub costs: CostModel,
    /// Client retry policy for server `RETRY_LATER` rejections (None =
    /// a rejection immediately sheds the request). Only fires when the
    /// rig's server has an admission control plane enabled.
    pub retry: Option<servers::RetryPolicy>,
    /// Tiered backend configuration; `None` is the paper's flat RAID-0
    /// array (the exact pre-tier timing path).
    pub tier: Option<TierConfig>,
}

impl Default for SessionsOptions {
    fn default() -> Self {
        SessionsOptions {
            nics: 1,
            costs: CostModel::pentium3_gige(),
            retry: None,
            tier: None,
        }
    }
}

/// Measured outcome of a multi-session run.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionsResult {
    /// Delivered payload, MB/s (decimal).
    pub throughput_mbs: f64,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Simulated wall-clock of the run.
    pub elapsed: SimTime,
    /// Foreground operations completed across all sessions.
    pub ops: u64,
    /// Payload bytes delivered.
    pub payload_bytes: u64,
    /// Operations completed per session, indexed by session id.
    pub per_session_ops: Vec<u64>,
    /// Mean request latency.
    pub mean_latency: Duration,
    /// Approximate 99th-percentile request latency.
    pub p99_latency: Duration,
    /// Requests shed after exhausting the retry budget (every
    /// transmission rejected by the server's admission gate). Zero
    /// whenever control is off.
    pub shed: u64,
    /// Retransmissions performed across all sessions.
    pub retries: u64,
    /// Tier counters when the run used a tiered backend.
    pub tier: Option<TierStats>,
}

/// The engine's world: the rig, the shared hardware, and per-session
/// bookkeeping. Owned by the [`Engine`], mutated by events.
struct World<R> {
    rig: R,
    hook: Option<SessionHook<R>>,
    queues: Vec<VecDeque<DriverOp>>,
    costs: CostModel,
    rec: obs::Recorder,
    app_cpu: Resource,
    app_tx: Resource,
    app_rx: Resource,
    stor_cpu: Resource,
    stor_tx: Resource,
    stor_rx: Resource,
    array: Backend,
    meter: Throughput,
    latency: LatencyHistogram,
    per_session_ops: Vec<u64>,
    end: SimTime,
    retry: Option<servers::RetryPolicy>,
    /// Requests issued so far — keys the per-request backoff draw.
    issued: u64,
    /// Sessions with a request outstanding (delivered or not).
    inflight: u64,
    /// Admitted requests still in flight — the depth the admission gate
    /// sees.
    server_inflight: u64,
    shed: u64,
    retries: u64,
    /// Adaptive-split epoch length in op rounds (`None` = no controller).
    epoch: Option<u64>,
    /// First-attempt functional executions per session (retransmissions
    /// re-execute an op but do not advance its round).
    executed: Vec<u64>,
    /// Total operations per session, to tell finished sessions apart
    /// from slow ones in the round count.
    total_ops: Vec<u64>,
    ticks_done: u64,
}

impl<R: RigDriver> World<R> {
    /// Occupies the stage's resource and returns its timing: `begin - now`
    /// is the stage's queue wait, `done - begin` its service interval (see
    /// [`sim::Resource::serve_timed`]); disk stages may carry a chained
    /// promotion copy on a tiered backend.
    fn serve(&mut self, now: SimTime, stage: &Stage) -> ServeOutcome {
        let (begin, done) = match stage.res {
            Res::AppRx => self.app_rx.serve_timed(now, stage.demand),
            Res::AppCpu => self.app_cpu.serve_timed(now, stage.demand),
            Res::AppTx => self.app_tx.serve_timed(now, stage.demand),
            Res::StorRx => self.stor_rx.serve_timed(now, stage.demand),
            Res::StorCpu => self.stor_cpu.serve_timed(now, stage.demand),
            Res::StorTx => self.stor_tx.serve_timed(now, stage.demand),
            Res::Disk { lbn, blocks, write } => {
                let o = self.array.serve(now, lbn, blocks, write);
                if o.fault_fallback {
                    self.rec.add_counter("fault.tier_fallback", 1);
                }
                if o.promote_done.is_some() {
                    self.rec.add_counter("tier.promote", 1);
                }
                return o;
            }
        };
        ServeOutcome {
            begin,
            done,
            promote_done: None,
            fault_fallback: false,
        }
    }

    /// Fires any controller ticks whose op-round boundary has been
    /// crossed. The round count is the slowest unfinished session's
    /// first-attempt execution count (every session has executed at
    /// least that many rounds), so the tick lands on the same op-count
    /// boundary the round-synchronized parallel engine barriers on —
    /// deterministic, and never mid-request.
    fn maybe_tick(&mut self) {
        let Some(l) = self.epoch.filter(|&l| l > 0) else {
            return;
        };
        let rounds = self
            .executed
            .iter()
            .zip(&self.total_ops)
            .filter(|(e, t)| e < t)
            .map(|(e, _)| *e)
            .min()
            .unwrap_or_else(|| self.executed.iter().copied().max().unwrap_or(0));
        while (self.ticks_done + 1) * l <= rounds {
            self.rig.adaptive_tick();
            self.ticks_done += 1;
        }
    }
}

/// Foreground request state threaded through its stage chain: identity,
/// start instant, and the per-stage latency breakdown accumulated so far.
/// Each stage's arrival is the previous stage's completion (the chain is
/// rescheduled at `done`), so the queue + service entries telescope to
/// exactly the request's end-to-end latency.
struct Foreground {
    payload: u64,
    start: SimTime,
    label: &'static str,
    path: &'static str,
    stages: Vec<obs::StageNs>,
    /// The server admitted (some attempt of) the request; `false` means
    /// every transmission so far was rejected.
    delivered: bool,
    /// Issue index — keys the retry policy's backoff stream.
    idx: u64,
    /// Transmissions performed so far (1 = the initial send).
    attempts: u64,
    /// The operation, retained for retransmission after a rejection.
    op: DriverOp,
}

/// The obs lane a session's events land on. Lane 0 is the single-session
/// default, so sessions are 1-based.
fn lane(sid: usize) -> u64 {
    sid as u64 + 1
}

/// Issues the next queued operation for session `sid`: executes it
/// functionally at the current instant (with the session's lane stamped
/// into the recorder, so its spans land in the session's timeline lane),
/// then schedules its stage chains.
fn issue<R: RigDriver + 'static>(w: &mut World<R>, s: &mut Scheduler<World<R>>, sid: usize) {
    let Some(op) = w.queues[sid].pop_front() else {
        return;
    };
    let now = s.now();
    w.inflight += 1;
    let fg = Foreground {
        payload: 0,
        start: now,
        label: op_label(&op),
        path: "shed",
        stages: Vec::new(),
        delivered: false,
        idx: w.issued,
        attempts: 0,
        op,
    };
    w.issued += 1;
    transmit(w, s, sid, fg);
}

/// One transmission of a session's operation, executed functionally at
/// the current instant with the session's lane stamped into the
/// recorder. An admitted attempt fixes the foreground's payload and
/// path; a rejected one leaves it undelivered (the retry decision
/// happens when the rejection reply reaches the session — see [`step`]).
fn transmit<R: RigDriver + 'static>(
    w: &mut World<R>,
    s: &mut Scheduler<World<R>>,
    sid: usize,
    mut fg: Foreground,
) {
    let now = s.now();
    w.rec.set_now(now.as_nanos());
    w.rec.set_lane(lane(sid));
    // The gate sees the depth of admitted requests currently in flight;
    // rejected/backing-off sessions occupy the client, not the server.
    w.rig.set_load(now.as_nanos(), w.server_inflight);
    if let Some(hook) = w.hook.as_mut() {
        hook(&mut w.rig, sid);
    }
    let (obs, payload) = w.rig.run_op(&fg.op);
    if let Some(hook) = w.hook.as_mut() {
        hook(&mut w.rig, sid);
    }
    w.rec.set_lane(0);
    fg.attempts += 1;
    if fg.attempts > 1 {
        w.retries += 1;
    } else {
        // First attempt: this op's round has executed. Fire any epoch
        // tick whose boundary the slowest session just crossed.
        w.executed[sid] += 1;
        w.maybe_tick();
    }
    // A gate rejection turns the request around before filesystem and
    // cache processing; only transport and decode work remains.
    let per_request_ns = if obs.rejected {
        w.rig.per_request_ns(&w.costs) / 4
    } else {
        w.rig.per_request_ns(&w.costs)
    };
    let demands = derive(&w.costs, w.rig.transport(), per_request_ns, &obs);
    let (stages, background) = stage_chains(&w.costs, &demands);
    for bg in background {
        s.schedule_at_lane(now, lane(sid), move |w, s| step(w, s, sid, bg, 0, None));
    }
    if !obs.rejected {
        fg.delivered = true;
        fg.payload = payload;
        fg.path = classify_path(&obs);
        w.server_inflight += 1;
    }
    s.schedule_at_lane(now, lane(sid), move |w, s| step(w, s, sid, stages, 0, Some(fg)));
}

/// Walks one stage of a chain: occupies the stage's FIFO resource and
/// schedules the next stage at the completion instant, on the session's
/// lane. An exhausted foreground chain records the completed request and
/// refills the session's slot (the closed loop).
fn step<R: RigDriver + 'static>(
    w: &mut World<R>,
    s: &mut Scheduler<World<R>>,
    sid: usize,
    stages: Vec<Stage>,
    cursor: usize,
    mut foreground: Option<Foreground>,
) {
    let now = s.now();
    if cursor == stages.len() {
        w.end = w.end.max(now);
        if let Some(mut fg) = foreground {
            if !fg.delivered {
                // The rejection reply just reached the session: back off
                // and retransmit if the budget allows. The backoff is a
                // pure client-side delay, recorded as a stage so the
                // breakdown still telescopes to end-to-end latency.
                if let Some(policy) = w.retry {
                    if fg.attempts <= u64::from(policy.budget) {
                        let backoff = policy.backoff_ns(fg.idx, fg.attempts as u32);
                        fg.stages.push(obs::StageNs {
                            stage: "client-backoff",
                            queue_ns: 0,
                            service_ns: backoff,
                        });
                        let at = now + Duration::from_nanos(backoff);
                        s.schedule_at_lane(at, lane(sid), move |w, s| transmit(w, s, sid, fg));
                        return;
                    }
                }
            }
            w.inflight -= 1;
            if fg.delivered {
                w.server_inflight -= 1;
                w.meter.record(fg.payload);
                w.latency.record(now.since(fg.start));
                w.per_session_ops[sid] += 1;
            } else {
                // Shed: nothing was delivered, so the request stays out
                // of the throughput meter and the latency histogram —
                // but the closed loop still refills the session's slot.
                w.shed += 1;
            }
            w.rec.set_now(now.as_nanos());
            w.rec.set_lane(lane(sid));
            w.rec.emit(obs::EventKind::Request {
                op: fg.label,
                path: fg.path,
                start_ns: fg.start.as_nanos(),
                end_ns: now.as_nanos(),
                stages: fg.stages,
            });
            w.rec.set_lane(0);
            issue(w, s, sid);
        }
        return;
    }
    let stage = stages[cursor];
    let o = w.serve(now, &stage);
    let (started, done) = (o.begin, o.done);
    if let Some(fg) = foreground.as_mut() {
        fg.stages.push(obs::StageNs {
            stage: stage.res.name(),
            queue_ns: started.since(now).as_nanos(),
            service_ns: done.since(started).as_nanos(),
        });
        // A promotion copy chains onto the read that triggered it,
        // starting exactly at `done` (queue 0): the breakdown still
        // telescopes to end-to-end latency.
        if let Some(p) = o.promote_done {
            fg.stages.push(obs::StageNs {
                stage: "tier-promote",
                queue_ns: 0,
                service_ns: p.since(done).as_nanos(),
            });
        }
    }
    let next_at = o.promote_done.unwrap_or(done);
    s.schedule_at_lane(next_at, lane(sid), move |w, s| {
        step(w, s, sid, stages, cursor + 1, foreground)
    });
}

/// Runs `sessions` (one operation stream per session) against `rig`.
/// Returns the rig (for post-run inspection of caches, ledgers and file
/// contents) alongside the measured result.
///
/// Sessions are primed in session order at time zero; from then on each
/// completion immediately issues the session's next operation, so every
/// session keeps exactly one request outstanding until its stream drains.
pub fn run_sessions<R: RigDriver + 'static>(
    rig: R,
    sessions: Vec<Vec<DriverOp>>,
    opts: &SessionsOptions,
    hook: Option<SessionHook<R>>,
) -> (R, SessionsResult) {
    let rec = rig.recorder();
    let n = sessions.len();
    let epoch = rig.adaptive_epoch();
    let total_ops: Vec<u64> = sessions.iter().map(|s| s.len() as u64).collect();
    let mut app_cpu = Resource::new("app-cpu", 1);
    let mut app_tx = Resource::new("app-tx", opts.nics.max(1));
    let mut app_rx = Resource::new("app-rx", opts.nics.max(1));
    let mut stor_cpu = Resource::new("storage-cpu", 1);
    let mut stor_tx = Resource::new("storage-tx", 1);
    let mut stor_rx = Resource::new("storage-rx", 1);
    if rec.is_enabled() {
        app_cpu.set_recorder(rec.clone());
        app_tx.set_recorder(rec.clone());
        app_rx.set_recorder(rec.clone());
        stor_cpu.set_recorder(rec.clone());
        stor_tx.set_recorder(rec.clone());
        stor_rx.set_recorder(rec.clone());
    }
    let world = World {
        rig,
        hook,
        queues: sessions.into_iter().map(VecDeque::from).collect(),
        costs: opts.costs.clone(),
        rec,
        app_cpu,
        app_tx,
        app_rx,
        stor_cpu,
        stor_tx,
        stor_rx,
        array: Backend::new(opts.tier),
        meter: Throughput::new(),
        latency: LatencyHistogram::new(),
        per_session_ops: vec![0; n],
        end: SimTime::ZERO,
        retry: opts.retry,
        issued: 0,
        inflight: 0,
        server_inflight: 0,
        shed: 0,
        retries: 0,
        epoch,
        executed: vec![0; n],
        total_ops,
        ticks_done: 0,
    };
    let mut engine = Engine::new(world);
    for sid in 0..n {
        engine.schedule(Duration::ZERO, move |w, s| issue(w, s, sid));
    }
    engine.run();
    let w = engine.into_world();
    let elapsed = w.end;
    let result = SessionsResult {
        throughput_mbs: w.meter.megabytes_per_sec(elapsed),
        ops_per_sec: w.meter.ops_per_sec(elapsed),
        elapsed,
        ops: w.meter.ops(),
        payload_bytes: w.meter.bytes(),
        per_session_ops: w.per_session_ops,
        mean_latency: w.latency.mean(),
        p99_latency: w.latency.quantile(0.99),
        shed: w.shed,
        retries: w.retries,
        tier: w.array.tier_stats(),
    };
    (w.rig, result)
}

/// Builds one [`NfsClient`] per session — session `i` on xid base
/// `(i + 1) << 20`, so a million xids per session never collide in the
/// server's duplicate-request cache — and returns a swap hook installing
/// the active session's client around each operation.
pub fn nfs_session_clients(rig: &NfsRig, sessions: usize) -> SessionHook<NfsRig> {
    let ledger = rig.ledgers().client.clone();
    let mut clients: Vec<NfsClient> = (0..sessions)
        .map(|i| NfsClient::with_xid_base(&ledger, (i as u32 + 1) << 20))
        .collect();
    Box::new(move |rig, sid| rig.swap_client(&mut clients[sid]))
}

/// [`run_sessions`] for the NFS rig with per-session clients on disjoint
/// xid bases (see [`nfs_session_clients`]).
pub fn run_nfs_sessions(
    rig: NfsRig,
    sessions: Vec<Vec<DriverOp>>,
    opts: &SessionsOptions,
) -> (NfsRig, SessionsResult) {
    let hook = nfs_session_clients(&rig, sessions.len());
    run_sessions(rig, sessions, opts, Some(hook))
}

// ---------------------------------------------------------------------------
// Lane-parallel execution
// ---------------------------------------------------------------------------

/// Seed-derivation salt for a lane's private network fault plan. Disjoint
/// from the rig's own salts (`0..=2`, used by [`NfsRig::new_faulted`]) so
/// a lane plan never replays the store/target/poison streams.
const LANE_FAULT_SALT: u64 = 0x1000;
/// Seed-derivation salt for a lane's private poison RNG.
const LANE_POISON_SALT: u64 = 0x2000;

/// What one lane's functional pass produced: per-operation observations
/// in program order, plus the lane's private fault counters.
struct LaneOutcome {
    ops: Vec<(Observation, u64)>,
    counters: FaultCounters,
}

/// Shared handles every lane needs. Everything here is either behind the
/// core lock (`core`) or internally synchronized (ledgers, recorder, the
/// sharded cache and the module's own mutex).
struct LaneContext<'a> {
    core: &'a RwLock<NfsRig>,
    rec: &'a obs::Recorder,
    cache: Option<&'a ncache::NetCacheShards>,
    module: Option<&'a sim::Shared<ncache::NcacheModule>>,
    app_ledger: &'a CopyLedger,
    client_ledger: &'a CopyLedger,
    /// Substitution runs outside the serialized server step. Enabled
    /// whenever it is observation-exact to do so: NCache mode with
    /// substitution *and* checksum inheritance on. Out-of-step
    /// substitution charges only `logical_copies` and `csum_inherited`
    /// to the app ledger — fields [`derive`] never reads — so the
    /// in-lock ledger snapshot windows stay precise and the ledger
    /// *totals* stay exact (the charges are commutative sums). With a
    /// fault plan armed, the whole exchange (substitution included)
    /// stays under the exclusive core guard, replicated per delivered
    /// request by the lane's step closure. Deferral is also what opens
    /// the read fast path: a cache-hit READ then needs no `&mut` work
    /// at all and runs under a *shared* core guard.
    defer: bool,
    spec: &'a FaultSpec,
    seed: u64,
    root_fh: u64,
    /// Storage I/O accumulated before the run (file creation, warm-up,
    /// sync). The sequential engine's first functional op drains it with
    /// its own `take_io_log` call and carries it in its burst list; the
    /// parallel engine drains it up front and hands it to lane 0's first
    /// op, so the attribution no longer depends on which lane locks the
    /// core first — and survives that op taking the read fast path,
    /// which never drains the log.
    residue: Vec<IoRecord>,
}

/// Runs the same workload as [`run_nfs_sessions`], executing the session
/// lanes concurrently on up to `threads` host threads, then replays the
/// recorded per-operation observations through the sequential event
/// engine for timing.
///
/// The run is two-phase:
///
/// 1. **Functional phase** — each lane owns its session's operation
///    stream and client (same disjoint xid bases as the sequential
///    engine) and runs it to completion on a worker thread. The server,
///    filesystem and ledger snapshots sit behind one core lock; only
///    NCache payload substitution moves outside it (see
///    [`LaneContext::defer`]). Every operation executes inside an epoch
///    window ([`ncache::epoch`]): LRU stamps are a pure function of
///    `(op index, lane)` with seeded tie-breaking, so the merged
///    eviction order — and with it every cache observable — is
///    independent of the host schedule and thread count.
/// 2. **Timing phase** — a replay driver feeds the recorded
///    observations through the untouched [`run_sessions`] engine, so
///    timing derivation, resource contention and the returned
///    [`SessionsResult`] are computed by exactly the code the
///    sequential engine uses.
///
/// With a fault plan armed, each lane draws from a private plan derived
/// from `seed` and the lane index (the whole exchange then runs under
/// the core lock), so fault outcomes are reproducible at any thread
/// count. Trace *ordering* from the functional phase is the one relaxed
/// observable; totals, counters and the timing-phase events are not.
pub fn run_nfs_sessions_parallel(
    rig: NfsRig,
    sessions: Vec<Vec<DriverOp>>,
    opts: &SessionsOptions,
    threads: usize,
    seed: u64,
) -> (NfsRig, SessionsResult) {
    let (rig, result, _) = run_nfs_sessions_parallel_timed(rig, sessions, opts, threads, seed);
    (rig, result)
}

/// [`run_nfs_sessions_parallel`], also returning the wall-clock time of
/// the functional phase alone (the part that actually runs on `threads`
/// host threads). The timing phase replays through the sequential event
/// engine whatever the thread count, so measuring end-to-end wall clock
/// would bury the parallel speedup under a serial term; benchmarks and
/// the CI speedup gate use this entry point.
pub fn run_nfs_sessions_parallel_timed(
    mut rig: NfsRig,
    sessions: Vec<Vec<DriverOp>>,
    opts: &SessionsOptions,
    threads: usize,
    seed: u64,
) -> (NfsRig, SessionsResult, std::time::Duration) {
    let n = sessions.len();
    let rec = NfsRig::recorder(&rig).clone();
    let module = rig.module();
    let cache = module.as_ref().map(|m| m.borrow().cache_handle());
    let armed = rig.faults_armed();
    let spec = rig.fault_spec();
    let defer = module.as_ref().is_some_and(|m| {
        let config = m.borrow().config();
        config.substitution && config.csum_inherit
    });
    if defer {
        rig.server_mut().set_defer_transmit(true);
    }
    let root_fh = rig.server_mut().root_fh();
    let client_ledger = rig.ledgers().client.clone();
    let app_ledger = rig.ledgers().app.clone();
    let ties = ncache::epoch::tie_ranks(seed, n);
    let max_epochs = sessions.iter().map(Vec::len).max().unwrap_or(0) as u64;
    let residue = rig.server_mut().fs_mut().store_mut().take_io_log();

    let core = RwLock::new(rig);
    let cx = LaneContext {
        core: &core,
        rec: &rec,
        cache: cache.as_ref(),
        module: module.as_ref(),
        app_ledger: &app_ledger,
        client_ledger: &client_ledger,
        defer,
        spec: &spec,
        seed,
        root_fh,
        residue,
    };
    let adaptive_epoch = cx
        .core
        .read()
        .expect("rig core poisoned")
        .adaptive_epoch();
    let functional_start = std::time::Instant::now();
    let outcomes = match adaptive_epoch.filter(|&l| l > 0) {
        // No controller: the free-running path, byte for byte.
        None => run_cells(threads, n, |lane| {
            run_lane(&cx, &sessions[lane], lane, ties[lane], armed)
        }),
        // A controller is installed: run round-synchronized so ticks
        // land on exactly the op-count boundaries the sequential
        // engine's round rule fires on — a barrier after every round,
        // a tick (under the exclusive core lock, no lane running)
        // after every `l` rounds.
        Some(l) => run_lanes_rounds(&cx, &sessions, &ties, armed, threads, l),
    };
    let functional_wall = functional_start.elapsed();
    let mut rig = core.into_inner().expect("rig core poisoned");

    for outcome in &outcomes {
        rig.absorb_fault_counters(&outcome.counters);
    }
    if defer {
        rig.server_mut().set_defer_transmit(false);
    }
    if let Some(m) = &module {
        // Future plain stamps must sort after every windowed stamp of
        // this run, whatever order the lanes actually drew them in.
        m.borrow()
            .advance_clock_past(ncache::epoch::stamp_base(max_epochs, 0));
    }
    // The FS buffer cache drew from the window's FS half; its plain
    // counter must clear the same bound.
    rig.server_mut()
        .fs_mut()
        .advance_cache_seq_past(ncache::epoch::stamp_base(max_epochs, 0));

    let replay = ReplayRig {
        rec,
        lanes: outcomes
            .into_iter()
            .map(|outcome| VecDeque::from(outcome.ops))
            .collect(),
        current: 0,
    };
    let hook: SessionHook<ReplayRig> = Box::new(|r, sid| r.current = sid);
    let (_, result) = run_sessions(replay, sessions, opts, Some(hook));
    (rig, result, functional_wall)
}

/// Runs one session lane start to finish on the calling thread.
fn run_lane(
    cx: &LaneContext<'_>,
    ops: &[DriverOp],
    lane: usize,
    tie: u64,
    armed: bool,
) -> LaneOutcome {
    let mut client = NfsClient::with_xid_base(cx.client_ledger, (lane as u32 + 1) << 20);
    let mut chan = armed.then(|| FaultChannel {
        plan: sim::Shared::new(FaultPlan::new(
            cx.spec,
            derive_seed(cx.seed, LANE_FAULT_SALT + lane as u64),
        )),
        counters: FaultCounters::default(),
        replay_slot: None,
    });
    let mut poison = SplitMix64::new(derive_seed(cx.seed, LANE_POISON_SALT + lane as u64));
    let mut recorded = Vec::with_capacity(ops.len());
    for (k, op) in ops.iter().enumerate() {
        // Every cache stamp this operation draws — in-lock or deferred —
        // comes from the (epoch, tie) window, and the tally it leaves
        // behind is this operation's exact cache-op count.
        let window = ncache::epoch::enter_window(ncache::epoch::stamp_base(k as u64, tie));
        let _ = ncache::epoch::take_tally();
        let residue: &[IoRecord] = if lane == 0 && k == 0 { &cx.residue } else { &[] };
        let (obs, payload) = run_lane_op(cx, &mut client, chan.as_mut(), &mut poison, op, residue);
        drop(window);
        recorded.push((obs, payload));
    }
    LaneOutcome {
        ops: recorded,
        counters: chan.map_or_else(FaultCounters::default, |chan| chan.counters),
    }
}

/// A lane's private mutable state, carried across rounds of the
/// round-synchronized runner. Mirrors the locals of [`run_lane`].
struct LaneState {
    client: NfsClient,
    chan: Option<FaultChannel>,
    poison: SplitMix64,
    recorded: Vec<(Observation, u64)>,
}

/// Round-synchronized variant of the functional phase, used when the rig
/// carries an adaptive controller. Round `k` runs operation `k` of every
/// lane (concurrently, inside the same epoch windows the free-running
/// path uses), then barriers; after every `l` rounds the controller
/// ticks under the exclusive core lock with no lane in flight. The
/// sequential engine's round rule fires its ticks on the same op-count
/// boundaries, so resizes land at identical points in the merged stamp
/// order and the cache observables stay byte-identical.
fn run_lanes_rounds(
    cx: &LaneContext<'_>,
    sessions: &[Vec<DriverOp>],
    ties: &[u64],
    armed: bool,
    threads: usize,
    l: u64,
) -> Vec<LaneOutcome> {
    let n = sessions.len();
    let lanes: Vec<Mutex<LaneState>> = (0..n)
        .map(|lane| {
            Mutex::new(LaneState {
                client: NfsClient::with_xid_base(cx.client_ledger, (lane as u32 + 1) << 20),
                chan: armed.then(|| FaultChannel {
                    plan: sim::Shared::new(FaultPlan::new(
                        cx.spec,
                        derive_seed(cx.seed, LANE_FAULT_SALT + lane as u64),
                    )),
                    counters: FaultCounters::default(),
                    replay_slot: None,
                }),
                poison: SplitMix64::new(derive_seed(cx.seed, LANE_POISON_SALT + lane as u64)),
                recorded: Vec::with_capacity(sessions[lane].len()),
            })
        })
        .collect();
    let max_ops = sessions.iter().map(Vec::len).max().unwrap_or(0);
    for k in 0..max_ops {
        // run_cells is the barrier: it returns only when every lane has
        // finished its round-k operation (lanes already past their last
        // op are no-ops this round).
        run_cells(threads, n, |lane| {
            let ops = &sessions[lane];
            if k >= ops.len() {
                return;
            }
            let mut st = lanes[lane].lock().expect("lane state poisoned");
            let st = &mut *st;
            let window = ncache::epoch::enter_window(ncache::epoch::stamp_base(k as u64, ties[lane]));
            let _ = ncache::epoch::take_tally();
            let residue: &[IoRecord] = if lane == 0 && k == 0 { &cx.residue } else { &[] };
            let (obs, payload) = run_lane_op(
                cx,
                &mut st.client,
                st.chan.as_mut(),
                &mut st.poison,
                &ops[k],
                residue,
            );
            drop(window);
            st.recorded.push((obs, payload));
        });
        if (k as u64 + 1).is_multiple_of(l) {
            cx.core
                .write()
                .expect("rig core poisoned")
                .adaptive_tick();
        }
    }
    lanes
        .into_iter()
        .map(|state| {
            let st = state.into_inner().expect("lane state poisoned");
            LaneOutcome {
                ops: st.recorded,
                counters: st
                    .chan
                    .map_or_else(FaultCounters::default, |chan| chan.counters),
            }
        })
        .collect()
}

/// Executes one operation for a lane, mirroring the sequential
/// [`RigDriver::run_op`] observation field by field.
fn run_lane_op(
    cx: &LaneContext<'_>,
    client: &mut NfsClient,
    chan: Option<&mut FaultChannel>,
    poison: &mut SplitMix64,
    op: &DriverOp,
    residue: &[IoRecord],
) -> (Observation, u64) {
    // Request building charges only the client ledger (not part of the
    // per-op observation), so it stays outside the lock.
    let (request, payload_hint) = match op {
        DriverOp::Read { fh, offset, len } => (client.read_request(*fh, *offset, *len), 0),
        DriverOp::Write { fh, offset, len } => {
            let data = vec![0xA5u8; *len as usize];
            (client.write_request(*fh, *offset, &data), u64::from(*len))
        }
        DriverOp::Getattr { fh } => (client.getattr_request(*fh), 0),
        DriverOp::Lookup { name } => (client.lookup_request(cx.root_fh, name), 0),
        DriverOp::Get { .. } => panic!("HTTP op on the NFS rig"),
    };
    let request_bytes = request.total_len() as u64 + FRAME_OVERHEAD;
    match chan {
        // LOOKUP bypasses the fault link in the sequential rig too.
        Some(chan) if !matches!(op, DriverOp::Lookup { .. }) => faulted_lane_op(
            cx,
            client,
            chan,
            poison,
            op,
            request,
            payload_hint,
            request_bytes,
            residue,
        ),
        _ => {
            if cx.defer {
                if let DriverOp::Read { fh, offset, len } = op {
                    if let Some(done) = fast_read_op(
                        cx,
                        &request,
                        *fh,
                        u64::from(*offset),
                        *len as usize,
                        request_bytes,
                        residue,
                    ) {
                        return done;
                    }
                }
            }
            clean_lane_op(cx, request, payload_hint, request_bytes, residue)
        }
    }
}

/// The concurrent read fast path: a cache-hit READ served end-to-end
/// under a *shared* core guard, so hits on different lanes overlap on
/// real threads instead of convoying through the exclusive lock.
///
/// Returns `None` — charging and counting nothing — unless the server
/// vouches ([`servers::nfs::NfsServer::read_fast_ready`]) that the READ
/// is a pure, aligned, fully resident, fully resolvable cache hit; the
/// caller then falls back to the exclusive slow path with the request
/// untouched. On the fast path the whole exchange, substitution
/// included, runs while the guard is held: the guard excludes every
/// mutation, so residency and resolvability cannot change between the
/// probe and the payload splice.
///
/// Observation assembly swaps the slow path's snapshot-delta attribution
/// (exact only under an exclusive lock) for per-thread attribution:
/// a TLS ledger window ([`CopyLedger::begin_window`]) over the app
/// ledger, the TLS buffer-cache op tally, and the lane's epoch-window
/// NCache tally — each accumulating exactly this thread's charges, which
/// are exactly this operation's charges.
fn fast_read_op(
    cx: &LaneContext<'_>,
    request: &NetBuf,
    fh: u64,
    offset: u64,
    count: usize,
    request_bytes: u64,
    residue: &[IoRecord],
) -> Option<(Observation, u64)> {
    let rig = cx.core.read().expect("rig core poisoned");
    let server = rig.server();
    if !server.read_fast_ready(fh, offset, count) {
        return None;
    }
    // Drain any residue so the tallies below bracket this op alone.
    let _ = simfs::take_op_tally();
    cx.app_ledger.begin_window();
    let delivered = servers::stack::deliver(request, cx.app_ledger);
    let mut reply = server.handle_read_fast(delivered);
    // The window closes before substitution, mirroring the slow path:
    // the in-lock snapshot delta there never covers substitution either
    // (it charges only fields the timing derivation never reads).
    let app = cx.app_ledger.end_window();
    let bufcache_ops = simfs::take_op_tally();
    let substituted_pkts = match (cx.cache, cx.module) {
        (Some(cache), Some(module)) => {
            let report = ncache::substitute_payload(&mut reply, cache);
            if report.substituted > 0 {
                reply.inherit_csum();
            }
            module.borrow_mut().absorb_substitution(report);
            report.substituted
        }
        _ => 0,
    };
    drop(rig);
    let payload = reply.payload_len() as u64;
    let obs = Observation {
        app,
        // A pure hit does no storage work; the delta is identically zero.
        storage: netbuf::LedgerSnapshot::default(),
        ncache_ops: ncache::epoch::take_tally(),
        substituted_pkts,
        bufcache_ops,
        // A pure hit issues no I/O of its own: only the pre-run residue
        // (lane 0, op 0) can put bursts on a fast read.
        bursts: coalesce(residue),
        request_bytes,
        reply_bytes: reply.total_len() as u64 + FRAME_OVERHEAD,
        // The lane-parallel data plane runs with the control plane off
        // (the fast read path cannot consult a mutable gate).
        rejected: false,
    };
    Some((obs, payload))
}

/// The clean exchange: serialized server section under the core lock,
/// substitution deferred outside it when observation-exact.
fn clean_lane_op(
    cx: &LaneContext<'_>,
    request: NetBuf,
    payload_hint: u64,
    request_bytes: u64,
    residue: &[IoRecord],
) -> (Observation, u64) {
    let (mut reply, io, app, storage, bufcache_ops, in_lock_subs) = {
        let mut rig = cx.core.write().expect("rig core poisoned");
        let app0 = rig.ledgers().app.snapshot();
        let stor0 = rig.ledgers().storage.snapshot();
        // With substitution deferred, other lanes absorb their reports
        // outside this lock, so the module total is only a meaningful
        // per-op delta when substitution happens in-lock.
        let sub0 = if cx.defer { 0 } else { substituted_total(cx) };
        let bc0 = rig.server_mut().fs_mut().cache_stats();
        let delivered = servers::stack::deliver(&request, cx.app_ledger);
        let reply = rig.server_mut().handle_message(delivered);
        let mut io = residue.to_vec();
        io.extend(rig.server_mut().fs_mut().store_mut().take_io_log());
        let bc1 = rig.server_mut().fs_mut().cache_stats();
        let subs = if cx.defer {
            0
        } else {
            substituted_total(cx) - sub0
        };
        (
            reply,
            io,
            rig.ledgers().app.snapshot().delta_since(&app0),
            rig.ledgers().storage.snapshot().delta_since(&stor0),
            (bc1.hits + bc1.misses + bc1.insertions) - (bc0.hits + bc0.misses + bc0.insertions),
            subs,
        )
    };
    let substituted_pkts = if cx.defer {
        match (cx.cache, cx.module) {
            (Some(cache), Some(module)) => {
                let report = ncache::substitute_payload(&mut reply, cache);
                if report.substituted > 0 {
                    reply.inherit_csum();
                }
                module.borrow_mut().absorb_substitution(report);
                report.substituted
            }
            _ => 0,
        }
    } else {
        in_lock_subs
    };
    let reply_payload = reply.payload_len() as u64;
    let reply_bytes = reply.total_len() as u64 + FRAME_OVERHEAD;
    let payload = if payload_hint > 0 {
        payload_hint
    } else {
        reply_payload
    };
    let obs = Observation {
        app,
        storage,
        ncache_ops: ncache::epoch::take_tally(),
        substituted_pkts,
        bufcache_ops,
        bursts: coalesce(&io),
        request_bytes,
        reply_bytes,
        rejected: false,
    };
    (obs, payload)
}

/// The faulted exchange: the whole retransmission loop runs under the
/// core lock against the lane's private fault plan.
#[allow(clippy::too_many_arguments)]
fn faulted_lane_op(
    cx: &LaneContext<'_>,
    client: &NfsClient,
    chan: &mut FaultChannel,
    poison: &mut SplitMix64,
    op: &DriverOp,
    request: NetBuf,
    payload_hint: u64,
    request_bytes: u64,
    residue: &[IoRecord],
) -> (Observation, u64) {
    let mut rig = cx.core.write().expect("rig core poisoned");
    if let Some(module) = cx.module {
        if cx.spec.corrupt > 0.0 && poison.next_bool(cx.spec.corrupt) {
            let pick = poison.next_u64() as usize;
            module.borrow_mut().poison_clean_chunk(pick);
        }
    }
    let app0 = rig.ledgers().app.snapshot();
    let stor0 = rig.ledgers().storage.snapshot();
    let sub0 = substituted_total(cx);
    let bc0 = rig.server_mut().fs_mut().cache_stats();
    // The accepted reply's framing, captured from inside the parse
    // callback (only successful parses see the full reply buffer).
    let reply_len = std::cell::Cell::new(0u64);
    let payload = {
        let server = rig.server_mut();
        // With transmit deferred the server no longer substitutes its
        // own replies, so the step closure finishes every reply the
        // exchange produces — late, duplicated and stale ones included,
        // exactly the set the sequential transmit hook sees. The whole
        // exchange runs under the exclusive guard, so the absorbed
        // report deltas below still bracket this operation alone.
        let mut step = |d: NetBuf| {
            let mut reply = server.handle_message(d);
            if cx.defer {
                if let (Some(cache), Some(module)) = (cx.cache, cx.module) {
                    let report = ncache::substitute_payload(&mut reply, cache);
                    if report.substituted > 0 {
                        reply.inherit_csum();
                    }
                    module.borrow_mut().absorb_substitution(report);
                }
            }
            reply
        };
        match op {
            DriverOp::Read { .. } => faulted_exchange_with(
                &mut step,
                client,
                cx.app_ledger,
                cx.client_ledger,
                cx.rec,
                chan,
                request,
                |c, r| {
                    let parsed = c.try_parse_read_reply(r).map(|(xid, h, d)| (xid, (h, d)));
                    if parsed.is_some() {
                        reply_len.set(r.total_len() as u64 + FRAME_OVERHEAD);
                    }
                    parsed
                },
            )
            .map_or(0, |(_, data)| data.len() as u64),
            DriverOp::Write { .. } => faulted_exchange_with(
                &mut step,
                client,
                cx.app_ledger,
                cx.client_ledger,
                cx.rec,
                chan,
                request,
                |c, r| {
                    let parsed = c.try_parse_write_reply(r);
                    if parsed.is_some() {
                        reply_len.set(r.total_len() as u64 + FRAME_OVERHEAD);
                    }
                    parsed
                },
            )
            .map_or(0, |_| payload_hint),
            DriverOp::Getattr { .. } => {
                faulted_exchange_with(
                    &mut step,
                    client,
                    cx.app_ledger,
                    cx.client_ledger,
                    cx.rec,
                    chan,
                    request,
                    |c, r| {
                        let parsed = c
                            .try_parse_getattr_reply(r)
                            .map(|(xid, status, attrs)| (xid, (status, attrs)));
                        if parsed.is_some() {
                            reply_len.set(r.total_len() as u64 + FRAME_OVERHEAD);
                        }
                        parsed
                    },
                );
                0
            }
            DriverOp::Lookup { .. } | DriverOp::Get { .. } => {
                unreachable!("routed to the clean path")
            }
        }
    };
    let mut io = residue.to_vec();
    io.extend(rig.server_mut().fs_mut().store_mut().take_io_log());
    let bc1 = rig.server_mut().fs_mut().cache_stats();
    let obs = Observation {
        app: rig.ledgers().app.snapshot().delta_since(&app0),
        storage: rig.ledgers().storage.snapshot().delta_since(&stor0),
        ncache_ops: ncache::epoch::take_tally(),
        substituted_pkts: substituted_total(cx) - sub0,
        bufcache_ops: (bc1.hits + bc1.misses + bc1.insertions)
            - (bc0.hits + bc0.misses + bc0.insertions),
        bursts: coalesce(&io),
        request_bytes,
        reply_bytes: reply_len.get(),
        rejected: false,
    };
    (obs, payload)
}

/// Substituted-packet total from the module, or zero without one. Called
/// only while holding the core lock, so the delta brackets one operation.
fn substituted_total(cx: &LaneContext<'_>) -> u64 {
    cx.module
        .map_or(0, |m| m.borrow().substitution_totals().substituted)
}

/// Phase-two driver: replays the functional phase's per-operation
/// observations through the sequential event engine, so timing
/// derivation, resource contention and the measured [`SessionsResult`]
/// come from exactly the code [`run_nfs_sessions`] uses.
struct ReplayRig {
    rec: obs::Recorder,
    lanes: Vec<VecDeque<(Observation, u64)>>,
    current: usize,
}

impl RigDriver for ReplayRig {
    fn run_op(&mut self, _op: &DriverOp) -> (Observation, u64) {
        self.lanes[self.current]
            .pop_front()
            .expect("replay queue drained: functional and timing phases disagree")
    }

    fn transport(&self) -> Transport {
        Transport::Udp
    }

    fn per_request_ns(&self, costs: &CostModel) -> u64 {
        costs.nfs_req_ns
    }

    fn recorder(&self) -> obs::Recorder {
        self.rec.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfs_rig::NfsRigParams;
    use crate::runner::{run, RunOptions};
    use servers::ServerMode;

    fn session_reads(fh: u64, sid: usize, ops: usize, span: u32, file: u64) -> Vec<DriverOp> {
        (0..ops)
            .map(|k| DriverOp::Read {
                fh,
                offset: (((sid * 7 + k) as u64 * u64::from(span)) % (file - u64::from(span)))
                    as u32
                    / 4096
                    * 4096,
                len: span,
            })
            .collect()
    }

    fn rig_with_file(mode: ServerMode, shards: usize) -> (NfsRig, u64) {
        let params = NfsRigParams {
            shards,
            ..NfsRigParams::default()
        };
        let mut rig = NfsRig::new(mode, params);
        let fh = rig.create_file("shared", 2 << 20);
        (rig, fh)
    }

    #[test]
    fn sixteen_sessions_complete_all_ops() {
        let (rig, fh) = rig_with_file(ServerMode::NCache, 1);
        let sessions: Vec<_> = (0..16)
            .map(|sid| session_reads(fh, sid, 8, 16 << 10, 2 << 20))
            .collect();
        let (_rig, r) = run_nfs_sessions(rig, sessions, &SessionsOptions::default());
        assert_eq!(r.ops, 16 * 8);
        assert_eq!(r.per_session_ops, vec![8u64; 16]);
        assert_eq!(r.payload_bytes, 16 * 8 * (16 << 10));
        assert!(r.throughput_mbs > 0.0);
        assert!(r.elapsed > SimTime::ZERO);
    }

    #[test]
    fn single_session_matches_runner_at_concurrency_one() {
        // One session with one outstanding request is exactly the
        // single-stream runner at concurrency 1: same ops, same payload,
        // same simulated elapsed time.
        let mk_ops = |fh| session_reads(fh, 0, 12, 16 << 10, 2 << 20);
        let (rig_a, fh_a) = rig_with_file(ServerMode::NCache, 1);
        let (_, sessions_result) =
            run_nfs_sessions(rig_a, vec![mk_ops(fh_a)], &SessionsOptions::default());
        let (mut rig_b, fh_b) = rig_with_file(ServerMode::NCache, 1);
        let runner_result = run(
            &mut rig_b,
            mk_ops(fh_b),
            &RunOptions {
                concurrency: 1,
                ..RunOptions::default()
            },
        );
        assert_eq!(sessions_result.ops, runner_result.ops);
        assert_eq!(sessions_result.payload_bytes, runner_result.payload_bytes);
        assert_eq!(sessions_result.elapsed, runner_result.elapsed);
    }

    #[test]
    fn interleaving_is_deterministic_and_shard_invariant() {
        let run_once = |shards: usize| {
            let (rig, fh) = rig_with_file(ServerMode::NCache, shards);
            let sessions: Vec<_> = (0..8)
                .map(|sid| session_reads(fh, sid, 6, 16 << 10, 2 << 20))
                .collect();
            let (rig, r) = run_nfs_sessions(rig, sessions, &SessionsOptions::default());
            let stats = rig.module().expect("ncache rig").borrow().stats();
            (r, stats)
        };
        let (r1a, s1a) = run_once(1);
        let (r1b, s1b) = run_once(1);
        assert_eq!(r1a, r1b, "same run twice must be identical");
        assert_eq!(s1a, s1b);
        let (r8, s8) = run_once(8);
        assert_eq!(r1a, r8, "shard count must not change any observable");
        assert_eq!(s1a, s8, "merged cache stats must be shard-invariant");
    }

    #[test]
    fn sessions_get_disjoint_xid_spans() {
        let (rig, fh) = rig_with_file(ServerMode::Original, 1);
        let sessions: Vec<_> = (0..4)
            .map(|sid| session_reads(fh, sid, 3, 4 << 10, 2 << 20))
            .collect();
        let mut clients: Vec<NfsClient> = {
            let ledger = rig.ledgers().client.clone();
            (0..4)
                .map(|i| NfsClient::with_xid_base(&ledger, (i as u32 + 1) << 20))
                .collect()
        };
        let hook: SessionHook<NfsRig> =
            Box::new(move |rig: &mut NfsRig, sid: usize| rig.swap_client(&mut clients[sid]));
        let (mut rig, r) = run_sessions(rig, sessions, &SessionsOptions::default(), Some(hook));
        assert_eq!(r.ops, 12);
        // The rig's own (parked) client never issued a request, and the
        // server saw no DRC hits: no two sessions aliased an xid.
        assert_eq!(rig.client_mut().peek_xid(), 1);
        assert_eq!(rig.server_mut().stats().drc_hits, 0);
    }

    /// Reads the whole file once so every block (and NCache chunk) is
    /// resident: per-op hit/miss outcomes then no longer depend on which
    /// session touches a block first, the discipline under which the
    /// parallel engine is observation-exact against the sequential one.
    fn warm_file(rig: &mut NfsRig, fh: u64, size: u64, span: u32) {
        let mut off = 0u64;
        while off < size {
            let len = span.min((size - off) as u32);
            rig.read(fh, off as u32, len);
            off += u64::from(len);
        }
    }

    #[test]
    fn parallel_engine_matches_sequential_on_warm_reads() {
        for shards in [1usize, 8] {
            let build = || {
                let (mut rig, fh) = rig_with_file(ServerMode::NCache, shards);
                warm_file(&mut rig, fh, 2 << 20, 64 << 10);
                (rig, fh)
            };
            let sessions_for = |fh| -> Vec<Vec<DriverOp>> {
                (0..6)
                    .map(|sid| session_reads(fh, sid, 5, 16 << 10, 2 << 20))
                    .collect()
            };
            let (rig_seq, fh) = build();
            let (rig_seq, seq) =
                run_nfs_sessions(rig_seq, sessions_for(fh), &SessionsOptions::default());
            let (rig_par, fh_par) = build();
            assert_eq!(fh, fh_par);
            let (rig_par, par) = run_nfs_sessions_parallel(
                rig_par,
                sessions_for(fh),
                &SessionsOptions::default(),
                4,
                7,
            );
            assert_eq!(seq, par, "timing must be byte-exact (shards={shards})");
            let stats_seq = rig_seq.module().expect("ncache rig").borrow().stats();
            let stats_par = rig_par.module().expect("ncache rig").borrow().stats();
            assert_eq!(stats_seq, stats_par, "merged cache stats (shards={shards})");
            assert_eq!(
                rig_seq.ledgers().app.snapshot(),
                rig_par.ledgers().app.snapshot(),
                "app ledger totals (shards={shards})"
            );
            assert_eq!(
                rig_seq.ledgers().client.snapshot(),
                rig_par.ledgers().client.snapshot(),
                "client ledger totals (shards={shards})"
            );
        }
    }

    #[test]
    fn parallel_engine_is_thread_count_invariant() {
        let run_at = |threads: usize| {
            let (mut rig, fh) = rig_with_file(ServerMode::NCache, 2);
            warm_file(&mut rig, fh, 2 << 20, 64 << 10);
            let sessions: Vec<_> = (0..8)
                .map(|sid| session_reads(fh, sid, 6, 16 << 10, 2 << 20))
                .collect();
            let (rig, r) =
                run_nfs_sessions_parallel(rig, sessions, &SessionsOptions::default(), threads, 11);
            let stats = rig.module().expect("ncache rig").borrow().stats();
            (r, stats)
        };
        let (r1, s1) = run_at(1);
        let (r2, s2) = run_at(2);
        let (r8, s8) = run_at(8);
        assert_eq!(r1, r2, "threads=2 must reproduce threads=1");
        assert_eq!(r1, r8, "threads=8 must reproduce threads=1");
        assert_eq!(s1, s2);
        assert_eq!(s1, s8);
    }

    #[test]
    fn faulted_parallel_engine_is_deterministic_per_thread_count() {
        let spec = FaultSpec {
            loss: 0.05,
            ..FaultSpec::default()
        };
        let run_at = |threads: usize| {
            let mut rig =
                NfsRig::new_faulted(ServerMode::NCache, NfsRigParams::default(), &spec, 99);
            let fh = rig.create_file("shared", 1 << 20);
            warm_file(&mut rig, fh, 1 << 20, 64 << 10);
            let sessions: Vec<_> = (0..4)
                .map(|sid| session_reads(fh, sid, 4, 16 << 10, 1 << 20))
                .collect();
            let (mut rig, r) =
                run_nfs_sessions_parallel(rig, sessions, &SessionsOptions::default(), threads, 5);
            let retries = rig.fault_counters();
            let requests = rig.server_mut().stats().requests;
            (r, retries, requests)
        };
        let at1 = run_at(1);
        let at2 = run_at(2);
        let at4 = run_at(4);
        assert_eq!(at1, at2, "threads=2 must reproduce the inline run");
        assert_eq!(at1, at4, "threads=4 must reproduce the inline run");
    }

    #[test]
    fn per_session_span_lanes_reach_the_trace() {
        let (mut rig, fh) = rig_with_file(ServerMode::NCache, 2);
        let rec = obs::Recorder::new();
        rec.enable(obs::TraceConfig::default());
        rig.set_recorder(rec.clone());
        let sessions: Vec<_> = (0..3)
            .map(|sid| session_reads(fh, sid, 2, 8 << 10, 2 << 20))
            .collect();
        let (_rig, r) = run_nfs_sessions(rig, sessions, &SessionsOptions::default());
        assert_eq!(r.ops, 6);
        let lanes: std::collections::BTreeSet<u64> =
            rec.events().iter().map(|e| e.lane).collect();
        for sid in 0..3u64 {
            assert!(lanes.contains(&(sid + 1)), "lane {} missing", sid + 1);
        }
        // Every Request event is tagged with its session's lane.
        let req_lanes: Vec<u64> = rec
            .events()
            .iter()
            .filter(|e| matches!(e.kind, obs::EventKind::Request { .. }))
            .map(|e| e.lane)
            .collect();
        assert_eq!(req_lanes.len(), 6);
        assert!(req_lanes.iter().all(|&l| (1..=3).contains(&l)));
    }
}
