//! The interleaved multi-session engine.
//!
//! [`run_sessions`] drives M client sessions against one rig over the
//! discrete-event engine in [`sim::engine`]. Each session holds exactly
//! one outstanding request (a closed loop per client, as the paper's
//! client-scaling runs); its request, storage and reply stages are the
//! same FIFO chains the single-stream [`crate::runner`] builds, but every
//! event is tagged with the session's lane, so events at the same instant
//! fire in `(time, session, seq)` order. The interleaving is therefore a
//! pure function of the workload — byte-identical at any host thread
//! count and any NCache shard count, which the determinism gates in CI
//! compare directly.
//!
//! NFS sessions each carry their own [`NfsClient`] on a disjoint xid
//! base: the server's duplicate-request cache is keyed by xid alone, so
//! without per-session bases two clients' requests would alias in the
//! DRC. [`run_nfs_sessions`] sets this up; the generic entry point takes
//! an optional hook invoked around every functional execution.

use std::collections::VecDeque;

use blockdev::{DiskModel, Raid0};
use servers::nfs::NfsClient;
use sim::costs::CostModel;
use sim::engine::{Engine, Scheduler};
use sim::stats::{LatencyHistogram, Throughput};
use sim::time::{Duration, SimTime};
use sim::Resource;

use crate::nfs_rig::NfsRig;
use crate::runner::{op_label, stage_chains, DriverOp, Res, RigDriver, Stage};
use crate::timing::derive;

/// Called with the rig and the session index immediately before *and*
/// immediately after every functional execution. A swap-based hook (see
/// [`run_nfs_sessions`]) installs per-session client state on the way in
/// and parks it again on the way out.
pub type SessionHook<R> = Box<dyn FnMut(&mut R, usize)>;

/// Multi-session engine configuration.
#[derive(Clone, Debug)]
pub struct SessionsOptions {
    /// NICs on the application server.
    pub nics: usize,
    /// The hardware cost model.
    pub costs: CostModel,
}

impl Default for SessionsOptions {
    fn default() -> Self {
        SessionsOptions {
            nics: 1,
            costs: CostModel::pentium3_gige(),
        }
    }
}

/// Measured outcome of a multi-session run.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionsResult {
    /// Delivered payload, MB/s (decimal).
    pub throughput_mbs: f64,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Simulated wall-clock of the run.
    pub elapsed: SimTime,
    /// Foreground operations completed across all sessions.
    pub ops: u64,
    /// Payload bytes delivered.
    pub payload_bytes: u64,
    /// Operations completed per session, indexed by session id.
    pub per_session_ops: Vec<u64>,
    /// Mean request latency.
    pub mean_latency: Duration,
    /// Approximate 99th-percentile request latency.
    pub p99_latency: Duration,
}

/// The engine's world: the rig, the shared hardware, and per-session
/// bookkeeping. Owned by the [`Engine`], mutated by events.
struct World<R> {
    rig: R,
    hook: Option<SessionHook<R>>,
    queues: Vec<VecDeque<DriverOp>>,
    costs: CostModel,
    rec: obs::Recorder,
    app_cpu: Resource,
    app_tx: Resource,
    app_rx: Resource,
    stor_cpu: Resource,
    stor_tx: Resource,
    stor_rx: Resource,
    array: Raid0,
    meter: Throughput,
    latency: LatencyHistogram,
    per_session_ops: Vec<u64>,
    end: SimTime,
}

impl<R: RigDriver> World<R> {
    fn serve(&mut self, now: SimTime, stage: &Stage) -> SimTime {
        match stage.res {
            Res::AppRx => self.app_rx.serve(now, stage.demand),
            Res::AppCpu => self.app_cpu.serve(now, stage.demand),
            Res::AppTx => self.app_tx.serve(now, stage.demand),
            Res::StorRx => self.stor_rx.serve(now, stage.demand),
            Res::StorCpu => self.stor_cpu.serve(now, stage.demand),
            Res::StorTx => self.stor_tx.serve(now, stage.demand),
            Res::Disk { lbn, blocks } => self.array.io(now, lbn, blocks),
        }
    }
}

/// The obs lane a session's events land on. Lane 0 is the single-session
/// default, so sessions are 1-based.
fn lane(sid: usize) -> u64 {
    sid as u64 + 1
}

/// Issues the next queued operation for session `sid`: executes it
/// functionally at the current instant (with the session's lane stamped
/// into the recorder, so its spans land in the session's timeline lane),
/// then schedules its stage chains.
fn issue<R: RigDriver + 'static>(w: &mut World<R>, s: &mut Scheduler<World<R>>, sid: usize) {
    let Some(op) = w.queues[sid].pop_front() else {
        return;
    };
    let now = s.now();
    let label = op_label(&op);
    w.rec.set_now(now.as_nanos());
    w.rec.set_lane(lane(sid));
    if let Some(hook) = w.hook.as_mut() {
        hook(&mut w.rig, sid);
    }
    let (obs, payload) = w.rig.run_op(&op);
    if let Some(hook) = w.hook.as_mut() {
        hook(&mut w.rig, sid);
    }
    w.rec.set_lane(0);
    let demands = derive(
        &w.costs,
        w.rig.transport(),
        w.rig.per_request_ns(&w.costs),
        &obs,
    );
    let (stages, background) = stage_chains(&w.costs, &demands);
    for bg in background {
        s.schedule_at_lane(now, lane(sid), move |w, s| step(w, s, sid, bg, 0, None));
    }
    let fg = Some((payload, now, label));
    s.schedule_at_lane(now, lane(sid), move |w, s| step(w, s, sid, stages, 0, fg));
}

/// Walks one stage of a chain: occupies the stage's FIFO resource and
/// schedules the next stage at the completion instant, on the session's
/// lane. An exhausted foreground chain records the completed request and
/// refills the session's slot (the closed loop).
fn step<R: RigDriver + 'static>(
    w: &mut World<R>,
    s: &mut Scheduler<World<R>>,
    sid: usize,
    stages: Vec<Stage>,
    cursor: usize,
    foreground: Option<(u64, SimTime, &'static str)>,
) {
    let now = s.now();
    if cursor == stages.len() {
        w.end = w.end.max(now);
        if let Some((payload, start, label)) = foreground {
            w.meter.record(payload);
            w.latency.record(now.since(start));
            w.per_session_ops[sid] += 1;
            w.rec.set_now(now.as_nanos());
            w.rec.set_lane(lane(sid));
            w.rec.emit(obs::EventKind::Request {
                op: label,
                start_ns: start.as_nanos(),
                end_ns: now.as_nanos(),
            });
            w.rec.set_lane(0);
            issue(w, s, sid);
        }
        return;
    }
    let stage = stages[cursor];
    let done = w.serve(now, &stage);
    s.schedule_at_lane(done, lane(sid), move |w, s| {
        step(w, s, sid, stages, cursor + 1, foreground)
    });
}

/// Runs `sessions` (one operation stream per session) against `rig`.
/// Returns the rig (for post-run inspection of caches, ledgers and file
/// contents) alongside the measured result.
///
/// Sessions are primed in session order at time zero; from then on each
/// completion immediately issues the session's next operation, so every
/// session keeps exactly one request outstanding until its stream drains.
pub fn run_sessions<R: RigDriver + 'static>(
    rig: R,
    sessions: Vec<Vec<DriverOp>>,
    opts: &SessionsOptions,
    hook: Option<SessionHook<R>>,
) -> (R, SessionsResult) {
    let rec = rig.recorder();
    let n = sessions.len();
    let mut app_cpu = Resource::new("app-cpu", 1);
    let mut app_tx = Resource::new("app-tx", opts.nics.max(1));
    let mut app_rx = Resource::new("app-rx", opts.nics.max(1));
    let mut stor_cpu = Resource::new("storage-cpu", 1);
    let mut stor_tx = Resource::new("storage-tx", 1);
    let mut stor_rx = Resource::new("storage-rx", 1);
    if rec.is_enabled() {
        app_cpu.set_recorder(rec.clone());
        app_tx.set_recorder(rec.clone());
        app_rx.set_recorder(rec.clone());
        stor_cpu.set_recorder(rec.clone());
        stor_tx.set_recorder(rec.clone());
        stor_rx.set_recorder(rec.clone());
    }
    let world = World {
        rig,
        hook,
        queues: sessions.into_iter().map(VecDeque::from).collect(),
        costs: opts.costs.clone(),
        rec,
        app_cpu,
        app_tx,
        app_rx,
        stor_cpu,
        stor_tx,
        stor_rx,
        array: Raid0::new(DiskModel::dtla_307075(), 4, 16),
        meter: Throughput::new(),
        latency: LatencyHistogram::new(),
        per_session_ops: vec![0; n],
        end: SimTime::ZERO,
    };
    let mut engine = Engine::new(world);
    for sid in 0..n {
        engine.schedule(Duration::ZERO, move |w, s| issue(w, s, sid));
    }
    engine.run();
    let w = engine.into_world();
    let elapsed = w.end;
    let result = SessionsResult {
        throughput_mbs: w.meter.megabytes_per_sec(elapsed),
        ops_per_sec: w.meter.ops_per_sec(elapsed),
        elapsed,
        ops: w.meter.ops(),
        payload_bytes: w.meter.bytes(),
        per_session_ops: w.per_session_ops,
        mean_latency: w.latency.mean(),
        p99_latency: w.latency.quantile(0.99),
    };
    (w.rig, result)
}

/// Builds one [`NfsClient`] per session — session `i` on xid base
/// `(i + 1) << 20`, so a million xids per session never collide in the
/// server's duplicate-request cache — and returns a swap hook installing
/// the active session's client around each operation.
pub fn nfs_session_clients(rig: &NfsRig, sessions: usize) -> SessionHook<NfsRig> {
    let ledger = rig.ledgers().client.clone();
    let mut clients: Vec<NfsClient> = (0..sessions)
        .map(|i| NfsClient::with_xid_base(&ledger, (i as u32 + 1) << 20))
        .collect();
    Box::new(move |rig, sid| rig.swap_client(&mut clients[sid]))
}

/// [`run_sessions`] for the NFS rig with per-session clients on disjoint
/// xid bases (see [`nfs_session_clients`]).
pub fn run_nfs_sessions(
    rig: NfsRig,
    sessions: Vec<Vec<DriverOp>>,
    opts: &SessionsOptions,
) -> (NfsRig, SessionsResult) {
    let hook = nfs_session_clients(&rig, sessions.len());
    run_sessions(rig, sessions, opts, Some(hook))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfs_rig::NfsRigParams;
    use crate::runner::{run, RunOptions};
    use servers::ServerMode;

    fn session_reads(fh: u64, sid: usize, ops: usize, span: u32, file: u64) -> Vec<DriverOp> {
        (0..ops)
            .map(|k| DriverOp::Read {
                fh,
                offset: (((sid * 7 + k) as u64 * u64::from(span)) % (file - u64::from(span)))
                    as u32
                    / 4096
                    * 4096,
                len: span,
            })
            .collect()
    }

    fn rig_with_file(mode: ServerMode, shards: usize) -> (NfsRig, u64) {
        let params = NfsRigParams {
            shards,
            ..NfsRigParams::default()
        };
        let mut rig = NfsRig::new(mode, params);
        let fh = rig.create_file("shared", 2 << 20);
        (rig, fh)
    }

    #[test]
    fn sixteen_sessions_complete_all_ops() {
        let (rig, fh) = rig_with_file(ServerMode::NCache, 1);
        let sessions: Vec<_> = (0..16)
            .map(|sid| session_reads(fh, sid, 8, 16 << 10, 2 << 20))
            .collect();
        let (_rig, r) = run_nfs_sessions(rig, sessions, &SessionsOptions::default());
        assert_eq!(r.ops, 16 * 8);
        assert_eq!(r.per_session_ops, vec![8u64; 16]);
        assert_eq!(r.payload_bytes, 16 * 8 * (16 << 10));
        assert!(r.throughput_mbs > 0.0);
        assert!(r.elapsed > SimTime::ZERO);
    }

    #[test]
    fn single_session_matches_runner_at_concurrency_one() {
        // One session with one outstanding request is exactly the
        // single-stream runner at concurrency 1: same ops, same payload,
        // same simulated elapsed time.
        let mk_ops = |fh| session_reads(fh, 0, 12, 16 << 10, 2 << 20);
        let (rig_a, fh_a) = rig_with_file(ServerMode::NCache, 1);
        let (_, sessions_result) =
            run_nfs_sessions(rig_a, vec![mk_ops(fh_a)], &SessionsOptions::default());
        let (mut rig_b, fh_b) = rig_with_file(ServerMode::NCache, 1);
        let runner_result = run(
            &mut rig_b,
            mk_ops(fh_b),
            &RunOptions {
                concurrency: 1,
                ..RunOptions::default()
            },
        );
        assert_eq!(sessions_result.ops, runner_result.ops);
        assert_eq!(sessions_result.payload_bytes, runner_result.payload_bytes);
        assert_eq!(sessions_result.elapsed, runner_result.elapsed);
    }

    #[test]
    fn interleaving_is_deterministic_and_shard_invariant() {
        let run_once = |shards: usize| {
            let (rig, fh) = rig_with_file(ServerMode::NCache, shards);
            let sessions: Vec<_> = (0..8)
                .map(|sid| session_reads(fh, sid, 6, 16 << 10, 2 << 20))
                .collect();
            let (rig, r) = run_nfs_sessions(rig, sessions, &SessionsOptions::default());
            let stats = rig.module().expect("ncache rig").borrow().stats();
            (r, stats)
        };
        let (r1a, s1a) = run_once(1);
        let (r1b, s1b) = run_once(1);
        assert_eq!(r1a, r1b, "same run twice must be identical");
        assert_eq!(s1a, s1b);
        let (r8, s8) = run_once(8);
        assert_eq!(r1a, r8, "shard count must not change any observable");
        assert_eq!(s1a, s8, "merged cache stats must be shard-invariant");
    }

    #[test]
    fn sessions_get_disjoint_xid_spans() {
        let (rig, fh) = rig_with_file(ServerMode::Original, 1);
        let sessions: Vec<_> = (0..4)
            .map(|sid| session_reads(fh, sid, 3, 4 << 10, 2 << 20))
            .collect();
        let mut clients: Vec<NfsClient> = {
            let ledger = rig.ledgers().client.clone();
            (0..4)
                .map(|i| NfsClient::with_xid_base(&ledger, (i as u32 + 1) << 20))
                .collect()
        };
        let hook: SessionHook<NfsRig> =
            Box::new(move |rig: &mut NfsRig, sid: usize| rig.swap_client(&mut clients[sid]));
        let (mut rig, r) = run_sessions(rig, sessions, &SessionsOptions::default(), Some(hook));
        assert_eq!(r.ops, 12);
        // The rig's own (parked) client never issued a request, and the
        // server saw no DRC hits: no two sessions aliased an xid.
        assert_eq!(rig.client_mut().peek_xid(), 1);
        assert_eq!(rig.server_mut().stats().drc_hits, 0);
    }

    #[test]
    fn per_session_span_lanes_reach_the_trace() {
        let (mut rig, fh) = rig_with_file(ServerMode::NCache, 2);
        let rec = obs::Recorder::new();
        rec.enable(obs::TraceConfig::default());
        rig.set_recorder(rec.clone());
        let sessions: Vec<_> = (0..3)
            .map(|sid| session_reads(fh, sid, 2, 8 << 10, 2 << 20))
            .collect();
        let (_rig, r) = run_nfs_sessions(rig, sessions, &SessionsOptions::default());
        assert_eq!(r.ops, 6);
        let lanes: std::collections::BTreeSet<u64> =
            rec.events().iter().map(|e| e.lane).collect();
        for sid in 0..3u64 {
            assert!(lanes.contains(&(sid + 1)), "lane {} missing", sid + 1);
        }
        // Every Request event is tagged with its session's lane.
        let req_lanes: Vec<u64> = rec
            .events()
            .iter()
            .filter(|e| matches!(e.kind, obs::EventKind::Request { .. }))
            .map(|e| e.lane)
            .collect();
        assert_eq!(req_lanes.len(), 6);
        assert!(req_lanes.iter().all(|&l| (1..=3).contains(&l)));
    }
}
