//! The deterministic parallel experiment executor.
//!
//! Every figure and table of the evaluation decomposes into independent
//! **cells** — one `(server mode, sweep point)` combination each. A cell
//! builds its own rig inside the worker, draws any randomness from a
//! seed derived solely from its cell index, and records into its own
//! `obs::Recorder`. (The lane-parallel sessions engine reuses the same
//! worker loop with *session lanes* as the cells — see
//! `sessions::run_nfs_sessions_parallel`.) Workers pull cells from a
//! shared cursor;
//! results land in per-cell slots and are merged **in cell order**, so the
//! output — tables, metrics, trace bytes — is identical at any thread
//! count, including one.
//!
//! Thread-count resolution (first match wins): an explicit request (the
//! `--threads` flag), the `NCACHE_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count.
pub const THREADS_ENV: &str = "NCACHE_THREADS";

/// Resolves the worker count: `explicit` beats [`THREADS_ENV`] beats the
/// machine's available parallelism. Always at least 1.
pub fn thread_count(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, usize::from)
        })
        .max(1)
}

/// Derives a cell's root-independent seed: SplitMix64 over `root + cell`,
/// so cells are decorrelated yet depend only on their index — never on
/// which worker runs them or in what order.
pub fn derive_seed(root: u64, cell: u64) -> u64 {
    let mut z = root
        .wrapping_add(cell.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs `cells` independent cells on up to `threads` scoped workers and
/// returns their results **indexed by cell**, i.e. in the same order a
/// sequential `(0..cells).map(f)` would produce. `f` must treat the cell
/// index as its only input; workers steal indices from a shared cursor,
/// so execution order is nondeterministic but the result order is not.
///
/// With `threads == 1` (or one cell) the cells run inline on the calling
/// thread — byte-identical to the parallel path by construction, and free
/// of any thread-spawn overhead for the degenerate case.
///
/// # Panics
///
/// Propagates a panic from any cell (the scope joins all workers first).
pub fn run_cells<T, F>(threads: usize, cells: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(cells);
    if workers <= 1 {
        return (0..cells).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..cells).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= cells {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("cell slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("cell slot poisoned")
                .expect("every cell ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_cell_order_at_any_thread_count() {
        let f = |i: usize| i * i;
        let expected: Vec<usize> = (0..37).map(f).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(run_cells(threads, 37, f), expected, "threads {threads}");
        }
    }

    #[test]
    fn zero_cells_is_fine() {
        let out: Vec<u32> = run_cells(4, 0, |_| unreachable!("no cells"));
        assert!(out.is_empty());
    }

    #[test]
    fn every_cell_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        run_cells(7, 100, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn derived_seeds_depend_only_on_the_index() {
        assert_eq!(derive_seed(42, 3), derive_seed(42, 3));
        assert_ne!(derive_seed(42, 3), derive_seed(42, 4));
        assert_ne!(derive_seed(42, 3), derive_seed(43, 3));
    }

    #[test]
    fn explicit_thread_count_wins() {
        assert_eq!(thread_count(Some(3)), 3);
        assert!(thread_count(None) >= 1);
        assert_eq!(thread_count(Some(0)), 1, "zero clamps to one worker");
    }
}
