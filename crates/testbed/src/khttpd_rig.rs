//! The kHTTPd rig: HTTP client ⇄ in-kernel web server ⇄ iSCSI target.


use ncache::{NcacheConfig, NcacheModule};
use proto::http::HttpResponseHeader;
use servers::initiator::IscsiInitiator;
use servers::khttpd::{HttpClient, KhttpdServer};
use servers::{IscsiTarget, ServerMode};
use simfs::{Filesystem, FsParams};

use netbuf::NetBuf;
use sim::{FaultKind, FaultLink, FaultPlan, FaultSpec, SplitMix64};

use crate::nfs_rig::{FaultCounters, NfsRig, NodeLedgers, MAX_RPC_ATTEMPTS};

/// Rig geometry for the web experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KhttpdRigParams {
    /// Exported volume size in blocks.
    pub volume_blocks: u64,
    /// File-system buffer-cache capacity in blocks.
    pub fs_cache_blocks: usize,
    /// NCache pinned capacity in bytes (NCache build only).
    pub ncache_bytes: u64,
    /// Read-ahead window in blocks.
    pub read_ahead_blocks: u64,
    /// Inodes to provision (one per page).
    pub inode_count: u32,
    /// NCache shard count (NCache build only). Sharding only partitions
    /// the key space; every observable is identical at any shard count.
    pub shards: usize,
}

impl Default for KhttpdRigParams {
    fn default() -> Self {
        KhttpdRigParams {
            volume_blocks: 64 << 10,
            fs_cache_blocks: 2 << 10,
            ncache_bytes: 64 << 20,
            read_ahead_blocks: 8,
            inode_count: 16 << 10,
            shards: 1,
        }
    }
}

/// The assembled web rig.
#[derive(Debug)]
pub struct KhttpdRig {
    server: KhttpdServer,
    client: HttpClient,
    target: sim::Shared<IscsiTarget>,
    module: Option<sim::Shared<NcacheModule>>,
    ledgers: NodeLedgers,
    mode: ServerMode,
    params: KhttpdRigParams,
    recorder: obs::Recorder,
    fault_plan: Option<sim::Shared<FaultPlan>>,
    fault_spec: FaultSpec,
    fault_counters: FaultCounters,
    poison_rng: SplitMix64,
    replay_slot: Option<NetBuf>,
    adaptive: Option<ncache::SplitController>,
}

impl KhttpdRig {
    /// Builds the full web rig for `mode`.
    ///
    /// # Panics
    ///
    /// Panics if the volume is too small to format.
    pub fn new(mode: ServerMode, params: KhttpdRigParams) -> Self {
        let ledgers = NodeLedgers::default();
        let target = sim::Shared::new(IscsiTarget::new(
            params.volume_blocks,
            &ledgers.storage,
        ));
        let module = (mode == ServerMode::NCache).then(|| {
            sim::Shared::new(NcacheModule::new(
                NcacheConfig::with_capacity(params.ncache_bytes).with_shards(params.shards),
                &ledgers.app,
            ))
        });
        let initiator = IscsiInitiator::new(
            target.clone(),
            &ledgers.app,
            mode,
            module.clone(),
        );
        let fs = Filesystem::mkfs(
            initiator,
            FsParams {
                total_blocks: params.volume_blocks,
                inode_count: params.inode_count,
                cache_blocks: params.fs_cache_blocks,
                read_ahead_blocks: params.read_ahead_blocks,
            },
            &ledgers.app,
        )
        .expect("volume large enough to format");
        let server = KhttpdServer::new(mode, fs, module.clone(), &ledgers.app);
        KhttpdRig {
            server,
            client: HttpClient::new(&ledgers.client),
            target,
            module,
            ledgers,
            mode,
            params,
            recorder: obs::Recorder::new(),
            fault_plan: None,
            fault_spec: FaultSpec::default(),
            fault_counters: FaultCounters::default(),
            poison_rng: SplitMix64::new(0),
            replay_slot: None,
            adaptive: None,
        }
    }

    /// Builds the web rig and arms the stack with a seeded fault plan:
    /// the client⇄server link (this rig's GET loop), the initiator⇄target
    /// link, transient I/O errors at the target, and checksum-verified
    /// placeholder revalidation at the server.
    pub fn new_faulted(
        mode: ServerMode,
        params: KhttpdRigParams,
        spec: &FaultSpec,
        seed: u64,
    ) -> Self {
        let mut rig = Self::new(mode, params);
        let plan = sim::Shared::new(FaultPlan::new(spec, seed));
        rig.server
            .fs_mut()
            .store_mut()
            .set_fault_plan(plan.clone());
        rig.target
            .borrow_mut()
            .set_transient_faults(blockdev::TransientFaults::new(
                crate::executor::derive_seed(seed, 1),
                spec.io_ppm(),
            ));
        rig.server.set_fault_recovery(true);
        rig.poison_rng = SplitMix64::new(crate::executor::derive_seed(seed, 2));
        rig.fault_spec = *spec;
        rig.fault_plan = Some(plan);
        rig
    }

    /// Whether this rig runs with an armed fault plan.
    pub fn faults_armed(&self) -> bool {
        self.fault_plan.is_some()
    }

    /// Installs the overload control plane on the rig's server
    /// (DESIGN.md §15). Off by default.
    pub fn enable_control(&mut self, cfg: servers::ControlConfig) {
        self.server.enable_control(cfg);
    }

    /// The server's control-plane counters, when a plane is installed.
    pub fn control_stats(&self) -> Option<servers::ControlStats> {
        self.server.control_stats()
    }

    /// Installs the adaptive cache-split plane; see
    /// [`NfsRig::enable_adaptive`] — same semantics on the web rig.
    pub fn enable_adaptive(&mut self, cfg: ncache::SplitConfig) {
        let fs = self.server.fs_mut();
        fs.enable_cache_ghost(cfg.ghost_blocks);
        let fs_blocks = fs.cache_capacity() as u64;
        let ncache_bytes = match &self.module {
            Some(m) => {
                let m = m.borrow();
                m.enable_ghost(cfg.ghost_blocks);
                m.pool_capacity()
            }
            None => 0,
        };
        self.adaptive = Some(ncache::SplitController::new(cfg, fs_blocks, ncache_bytes));
    }

    /// The installed split controller, if any.
    pub fn adaptive_controller(&self) -> Option<&ncache::SplitController> {
        self.adaptive.as_ref()
    }

    /// The controller's epoch length; see [`NfsRig::adaptive_epoch`].
    pub fn adaptive_epoch(&self) -> Option<u64> {
        self.adaptive.as_ref().map(|c| c.config().epoch_ops)
    }

    /// One controller epoch; see [`NfsRig::adaptive_tick`].
    pub fn adaptive_tick(&mut self) {
        if self.adaptive.is_none() {
            return;
        }
        let fs_stats = self.server.fs_mut().cache_stats();
        let fs_ghost = self
            .server
            .fs_mut()
            .cache_ghost_stats()
            .unwrap_or_default();
        let (nc_stats, nc_ghost) = match &self.module {
            Some(m) => {
                let m = m.borrow();
                (m.stats(), m.ghost_stats().unwrap_or_default())
            }
            None => Default::default(),
        };
        let sample = ncache::SplitSample {
            fs_hits: fs_stats.hits,
            fs_misses: fs_stats.misses,
            fs_ghost_hits: fs_ghost.hits,
            nc_hits: nc_stats.hits,
            nc_misses: nc_stats.lookups - nc_stats.hits,
            nc_ghost_hits: nc_ghost.hits,
        };
        let controller = self.adaptive.as_mut().expect("checked above");
        let resize = controller.tick(sample);
        if controller.is_dynamic() {
            let w = controller.window();
            if w.fs_ghost_hits > 0 {
                self.recorder.add_counter("ghost.hit.fs", w.fs_ghost_hits);
            }
            if w.nc_ghost_hits > 0 {
                self.recorder
                    .add_counter("ghost.hit.ncache", w.nc_ghost_hits);
            }
        }
        let Some(resize) = resize else { return };
        let fs = self.server.fs_mut();
        fs.set_cache_capacity(resize.fs_blocks as usize);
        if let Some(m) = &self.module {
            m.borrow().set_pool_capacity(resize.ncache_bytes);
        }
        let _ = self.server.fs_mut().store_mut().take_io_log();
        self.recorder.add_counter("adaptive.resize", 1);
    }

    /// The client-side recovery counters (all zero without faults).
    pub fn fault_counters(&self) -> FaultCounters {
        self.fault_counters
    }

    /// Attaches a recorder to the whole rig: the server span layer, the
    /// data plane below it, and every node's copy ledger.
    pub fn set_recorder(&mut self, rec: obs::Recorder) {
        self.ledgers.client.attach_recorder(&rec);
        self.ledgers.app.attach_recorder(&rec);
        self.ledgers.storage.attach_recorder(&rec);
        self.server.set_recorder(rec.clone());
        self.recorder = rec;
    }

    /// The rig's recorder (disabled unless [`Self::set_recorder`] ran).
    pub fn recorder(&self) -> &obs::Recorder {
        &self.recorder
    }

    /// Snapshots every stats struct in the rig into one unified report.
    pub fn metrics_report(&mut self) -> obs::MetricsReport {
        let mut report = obs::MetricsReport::new();
        report.add_snapshot("khttpd", &self.server.stats());
        report.add_snapshot("fs-cache", &self.server.fs_mut().cache_stats());
        report.add_snapshot("initiator", &self.server.fs_mut().store_mut().stats());
        report.add_snapshot("target", &self.target.borrow().stats());
        if let Some(module) = &self.module {
            report.add_snapshot("ncache", &module.borrow().stats());
        }
        report.add_snapshot("ledger.client", &self.ledgers.client.snapshot());
        report.add_snapshot("ledger.app", &self.ledgers.app.snapshot());
        report.add_snapshot("ledger.storage", &self.ledgers.storage.snapshot());
        if self.fault_plan.is_some() {
            report.add_snapshot("fault-client", &self.fault_counters);
        }
        if let Some(control) = self.server.control_stats() {
            report.add_snapshot("control", &control);
        }
        if let Some(c) = self.adaptive.as_ref().filter(|c| c.is_dynamic()) {
            report.add_snapshot("adaptive", &c.split_stats());
        }
        report
    }

    /// Syncs and drops the buffer cache so measurement starts cold.
    pub fn quiesce(&mut self) {
        // Under an adaptive split the controller owns the FS quota;
        // restore its current figure, not the construction-time one.
        let blocks = self
            .adaptive
            .as_ref()
            .map_or(self.params.fs_cache_blocks, |c| c.fs_blocks() as usize);
        let fs = self.server.fs_mut();
        fs.sync().expect("sync");
        fs.set_cache_capacity(0);
        fs.set_cache_capacity(blocks);
    }

    /// The build this rig runs.
    pub fn mode(&self) -> ServerMode {
        self.mode
    }

    /// The per-node ledgers.
    pub fn ledgers(&self) -> &NodeLedgers {
        &self.ledgers
    }

    /// The web server (stats, file system access).
    pub fn server_mut(&mut self) -> &mut KhttpdServer {
        &mut self.server
    }

    /// The NCache module, under that build.
    pub fn module(&self) -> Option<sim::Shared<NcacheModule>> {
        self.module.clone()
    }

    /// The storage server.
    pub fn target(&self) -> sim::Shared<IscsiTarget> {
        self.target.clone()
    }

    /// Publishes a page with deterministic content (the same pattern the
    /// NFS rig uses, keyed by the page's inode).
    pub fn publish(&mut self, name: &str, size: u64) {
        let fs = self.server.fs_mut();
        let ino = fs
            .create(Filesystem::<IscsiInitiator>::ROOT, name)
            .expect("fresh name");
        let fh = u64::from(ino.0);
        let mut offset = 0u64;
        while offset < size {
            let chunk = (size - offset).min(1 << 20) as usize;
            let data = NfsRig::pattern(fh, offset, chunk);
            fs.write(ino, offset, &data).expect("volume has space");
            offset += chunk as u64;
        }
        self.quiesce();
    }

    /// Publishes a page whose blocks are allocated but unwritten (cheap
    /// setup for working-set sweeps; contents are synthetic blocks).
    pub fn publish_sparse(&mut self, name: &str, size: u64) {
        let fs = self.server.fs_mut();
        let ino = fs
            .create(Filesystem::<IscsiInitiator>::ROOT, name)
            .expect("fresh name");
        fs.allocate(ino, size).expect("volume has space");
        self.quiesce();
    }

    /// The expected contents of a published (non-sparse) page.
    pub fn expected(&mut self, name: &str, size: u64) -> Vec<u8> {
        let fs = self.server.fs_mut();
        let ino = fs
            .lookup(Filesystem::<IscsiInitiator>::ROOT, name)
            .expect("published page");
        NfsRig::pattern(u64::from(ino.0), 0, size as usize)
    }

    /// Issues a GET through the full path; returns header + body.
    pub fn get(&mut self, path: &str) -> (HttpResponseHeader, Vec<u8>) {
        if self.fault_plan.is_some() {
            return self
                .try_get(path)
                .expect("GET exhausted its retransmission budget");
        }
        let req = self.client.get_request(path);
        let delivered = servers::stack::deliver(&req, &self.ledgers.app);
        let response = self.server.handle_request(&delivered);
        self.client.parse_response(&response)
    }

    /// Fault-aware GET: completes through retried requests, or fails
    /// cleanly (`None`) once the retry budget is spent. GET is idempotent,
    /// so re-execution after a duplicated or delayed request is harmless.
    pub fn try_get(&mut self, path: &str) -> Option<(HttpResponseHeader, Vec<u8>)> {
        let Some(plan) = self.fault_plan.clone() else {
            return Some(self.get(path));
        };
        self.maybe_poison();
        let req = self.client.get_request(path);
        let mut span = None;
        for attempt in 0..MAX_RPC_ATTEMPTS {
            if attempt > 0 {
                span.get_or_insert_with(|| self.recorder.begin_span("fault", "retransmit", 0));
                self.fault_counters.retransmits += 1;
                self.recorder.add_counter("fault.retransmits", 1);
            }
            let (delivered, kind) = {
                let mut p = plan.borrow_mut();
                servers::stack::deliver_faulty(
                    &req,
                    &self.ledgers.app,
                    &mut p,
                    FaultLink::ClientServer,
                )
            };
            let response = match (delivered, kind) {
                (None, _) => {
                    self.fault_counters.request_drops += 1;
                    self.recorder.add_counter("fault.request_drops", 1);
                    continue;
                }
                (Some(_), Some(FaultKind::Corrupt { .. } | FaultKind::Truncate { .. })) => {
                    // The transport checksum catches in-flight damage
                    // before the request reaches the server.
                    self.fault_counters.checksum_discards += 1;
                    self.recorder.add_counter("fault.checksum_discards", 1);
                    continue;
                }
                (Some(d), Some(FaultKind::Delay)) => {
                    let _late = self.server.handle_request(&d);
                    self.fault_counters.timeouts += 1;
                    self.recorder.add_counter("fault.timeouts", 1);
                    continue;
                }
                (Some(d), Some(FaultKind::Duplicate)) => {
                    self.fault_counters.duplicates += 1;
                    self.recorder.add_counter("fault.duplicates", 1);
                    let response = self.server.handle_request(&d);
                    let dup = servers::stack::deliver(&req, &self.ledgers.app);
                    let _discarded = self.server.handle_request(&dup);
                    response
                }
                (Some(d), Some(FaultKind::Reorder)) => {
                    self.fault_counters.reorders += 1;
                    self.recorder.add_counter("fault.reorders", 1);
                    if let Some(prev) = self.replay_slot.take() {
                        let old = servers::stack::deliver(&prev, &self.ledgers.app);
                        let _stale = self.server.handle_request(&old);
                        self.replay_slot = Some(prev);
                    }
                    self.server.handle_request(&d)
                }
                (Some(d), _) => self.server.handle_request(&d),
            };
            let (rx, rkind) = {
                let mut p = plan.borrow_mut();
                servers::stack::deliver_faulty(
                    &response,
                    &self.ledgers.client,
                    &mut p,
                    FaultLink::ClientServer,
                )
            };
            let Some(rx) = rx else {
                self.fault_counters.reply_drops += 1;
                self.recorder.add_counter("fault.reply_drops", 1);
                continue;
            };
            if matches!(rkind, Some(FaultKind::Delay)) {
                self.fault_counters.timeouts += 1;
                self.recorder.add_counter("fault.timeouts", 1);
                continue;
            }
            if matches!(rkind, Some(FaultKind::Corrupt { .. })) {
                // TCP's checksum rejects the damaged segment; the flipped
                // bit could sit in the status line or the body, where
                // framing validation alone would miss it.
                self.fault_counters.checksum_discards += 1;
                self.recorder.add_counter("fault.checksum_discards", 1);
                continue;
            }
            match self.client.try_parse_response(&rx) {
                // A status outside the server's vocabulary is a mangled
                // header that still framed correctly: damage, retry.
                Some((hdr, body)) if matches!(hdr.status, 200 | 400 | 404 | 503) => {
                    if let Some(s) = span.take() {
                        self.recorder.end_span(s);
                    }
                    self.replay_slot = Some(req);
                    return Some((hdr, body));
                }
                _ => {
                    self.fault_counters.damaged_replies += 1;
                    self.recorder.add_counter("fault.damaged_replies", 1);
                    continue;
                }
            }
        }
        if let Some(s) = span.take() {
            self.recorder.end_span(s);
        }
        self.fault_counters.failed_requests += 1;
        self.recorder.add_counter("fault.failed_requests", 1);
        None
    }

    /// Occasionally corrupts a clean NCache chunk's stored checksum, at
    /// the spec's corruption rate, so placeholder revalidation exercises
    /// the invalidate-and-fall-back-to-sendfile degradation path.
    fn maybe_poison(&mut self) {
        let Some(module) = &self.module else { return };
        if self.fault_spec.corrupt > 0.0 && self.poison_rng.next_bool(self.fault_spec.corrupt) {
            let pick = self.poison_rng.next_u64() as usize;
            module.borrow_mut().poison_clean_chunk(pick);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faulted_get_with_zero_spec_is_clean() {
        let mut rig = KhttpdRig::new_faulted(
            ServerMode::NCache,
            KhttpdRigParams::default(),
            &FaultSpec::default(),
            11,
        );
        rig.publish("index.html", 20_000);
        let (hdr, body) = rig.try_get("/index.html").expect("clean link");
        assert_eq!(hdr.status, 200);
        assert_eq!(body, rig.expected("index.html", 20_000));
        assert_eq!(rig.fault_counters(), FaultCounters::default());
    }

    #[test]
    fn faulted_get_recovers_in_every_mode() {
        for mode in ServerMode::ALL {
            let spec = FaultSpec {
                loss: 0.10,
                duplicate: 0.05,
                delay: 0.05,
                truncate: 0.05,
                corrupt: 0.03,
                io: 0.05,
                ..FaultSpec::default()
            };
            let mut rig = KhttpdRig::new_faulted(mode, KhttpdRigParams::default(), &spec, 21);
            rig.publish("a.html", 30_000);
            let mut completed = 0;
            for _ in 0..12 {
                if let Some((hdr, body)) = rig.try_get("/a.html") {
                    assert_eq!(hdr.status, 200, "{mode}");
                    if mode != ServerMode::Baseline {
                        assert_eq!(
                            body,
                            rig.expected("a.html", 30_000),
                            "{mode}: completed GETs return correct bytes"
                        );
                    }
                    completed += 1;
                }
            }
            assert!(completed > 0, "{mode}: some GETs complete");
            assert!(rig.fault_counters().retransmits > 0, "{mode}");
        }
    }

    #[test]
    fn faulted_get_same_seed_replays_identically() {
        let spec = FaultSpec {
            loss: 0.15,
            delay: 0.05,
            io: 0.05,
            ..FaultSpec::default()
        };
        let run = |seed: u64| {
            let mut rig =
                KhttpdRig::new_faulted(ServerMode::NCache, KhttpdRigParams::default(), &spec, seed);
            rig.publish("a.html", 12_000);
            let mut out = Vec::new();
            for _ in 0..8 {
                out.push(rig.try_get("/a.html").map(|(_, b)| b));
            }
            (out, rig.fault_counters())
        };
        assert_eq!(run(6), run(6));
    }

    #[test]
    fn get_round_trip_original() {
        let mut rig = KhttpdRig::new(ServerMode::Original, KhttpdRigParams::default());
        rig.publish("index.html", 10_000);
        let (hdr, body) = rig.get("/index.html");
        assert_eq!(hdr.status, 200);
        assert_eq!(hdr.content_length, 10_000);
        assert_eq!(body, rig.expected("index.html", 10_000));
    }

    #[test]
    fn get_round_trip_ncache_substitutes() {
        let mut rig = KhttpdRig::new(ServerMode::NCache, KhttpdRigParams::default());
        rig.publish("page", 75_000);
        let (hdr, body) = rig.get("/page");
        assert_eq!(hdr.status, 200);
        assert_eq!(body, rig.expected("page", 75_000), "real bytes, not junk");
        let module = rig.module().expect("ncache build");
        let totals = module.borrow().substitution_totals();
        assert!(totals.substituted > 0);
        assert_eq!(totals.missing, 0);
        assert_eq!(rig.server_mut().stats().tracked_responses, 1);
    }

    #[test]
    fn baseline_sends_junk_with_correct_length() {
        let mut rig = KhttpdRig::new(ServerMode::Baseline, KhttpdRigParams::default());
        rig.publish("page", 20_000);
        let (hdr, body) = rig.get("/page");
        assert_eq!(hdr.status, 200);
        assert_eq!(body.len(), 20_000);
        assert_ne!(body, rig.expected("page", 20_000));
    }

    #[test]
    fn missing_page_is_404() {
        let mut rig = KhttpdRig::new(ServerMode::Original, KhttpdRigParams::default());
        let (hdr, body) = rig.get("/nope");
        assert_eq!(hdr.status, 404);
        assert!(body.is_empty());
        assert_eq!(rig.server_mut().stats().not_found, 1);
    }

    #[test]
    fn header_survives_substitution_untouched() {
        let mut rig = KhttpdRig::new(ServerMode::NCache, KhttpdRigParams::default());
        rig.publish("p", 4096);
        let (hdr, _) = rig.get("/p");
        assert_eq!(hdr, HttpResponseHeader::ok(4096));
    }
}
