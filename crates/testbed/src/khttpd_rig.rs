//! The kHTTPd rig: HTTP client ⇄ in-kernel web server ⇄ iSCSI target.

use std::cell::RefCell;
use std::rc::Rc;

use ncache::{NcacheConfig, NcacheModule};
use proto::http::HttpResponseHeader;
use servers::initiator::IscsiInitiator;
use servers::khttpd::{HttpClient, KhttpdServer};
use servers::{IscsiTarget, ServerMode};
use simfs::{Filesystem, FsParams};

use crate::nfs_rig::{NfsRig, NodeLedgers};

/// Rig geometry for the web experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KhttpdRigParams {
    /// Exported volume size in blocks.
    pub volume_blocks: u64,
    /// File-system buffer-cache capacity in blocks.
    pub fs_cache_blocks: usize,
    /// NCache pinned capacity in bytes (NCache build only).
    pub ncache_bytes: u64,
    /// Read-ahead window in blocks.
    pub read_ahead_blocks: u64,
    /// Inodes to provision (one per page).
    pub inode_count: u32,
}

impl Default for KhttpdRigParams {
    fn default() -> Self {
        KhttpdRigParams {
            volume_blocks: 64 << 10,
            fs_cache_blocks: 2 << 10,
            ncache_bytes: 64 << 20,
            read_ahead_blocks: 8,
            inode_count: 16 << 10,
        }
    }
}

/// The assembled web rig.
#[derive(Debug)]
pub struct KhttpdRig {
    server: KhttpdServer,
    client: HttpClient,
    target: Rc<RefCell<IscsiTarget>>,
    module: Option<Rc<RefCell<NcacheModule>>>,
    ledgers: NodeLedgers,
    mode: ServerMode,
    params: KhttpdRigParams,
    recorder: obs::Recorder,
}

impl KhttpdRig {
    /// Builds the full web rig for `mode`.
    ///
    /// # Panics
    ///
    /// Panics if the volume is too small to format.
    pub fn new(mode: ServerMode, params: KhttpdRigParams) -> Self {
        let ledgers = NodeLedgers::default();
        let target = Rc::new(RefCell::new(IscsiTarget::new(
            params.volume_blocks,
            &ledgers.storage,
        )));
        let module = (mode == ServerMode::NCache).then(|| {
            Rc::new(RefCell::new(NcacheModule::new(
                NcacheConfig::with_capacity(params.ncache_bytes),
                &ledgers.app,
            )))
        });
        let initiator = IscsiInitiator::new(
            Rc::clone(&target),
            &ledgers.app,
            mode,
            module.clone(),
        );
        let fs = Filesystem::mkfs(
            initiator,
            FsParams {
                total_blocks: params.volume_blocks,
                inode_count: params.inode_count,
                cache_blocks: params.fs_cache_blocks,
                read_ahead_blocks: params.read_ahead_blocks,
            },
            &ledgers.app,
        )
        .expect("volume large enough to format");
        let server = KhttpdServer::new(mode, fs, module.clone(), &ledgers.app);
        KhttpdRig {
            server,
            client: HttpClient::new(&ledgers.client),
            target,
            module,
            ledgers,
            mode,
            params,
            recorder: obs::Recorder::new(),
        }
    }

    /// Attaches a recorder to the whole rig: the server span layer, the
    /// data plane below it, and every node's copy ledger.
    pub fn set_recorder(&mut self, rec: obs::Recorder) {
        self.ledgers.client.attach_recorder(&rec);
        self.ledgers.app.attach_recorder(&rec);
        self.ledgers.storage.attach_recorder(&rec);
        self.server.set_recorder(rec.clone());
        self.recorder = rec;
    }

    /// The rig's recorder (disabled unless [`Self::set_recorder`] ran).
    pub fn recorder(&self) -> &obs::Recorder {
        &self.recorder
    }

    /// Snapshots every stats struct in the rig into one unified report.
    pub fn metrics_report(&mut self) -> obs::MetricsReport {
        let mut report = obs::MetricsReport::new();
        report.add_snapshot("khttpd", &self.server.stats());
        report.add_snapshot("fs-cache", &self.server.fs_mut().cache_stats());
        report.add_snapshot("initiator", &self.server.fs_mut().store_mut().stats());
        report.add_snapshot("target", &self.target.borrow().stats());
        if let Some(module) = &self.module {
            report.add_snapshot("ncache", &module.borrow().stats());
        }
        report.add_snapshot("ledger.client", &self.ledgers.client.snapshot());
        report.add_snapshot("ledger.app", &self.ledgers.app.snapshot());
        report.add_snapshot("ledger.storage", &self.ledgers.storage.snapshot());
        report
    }

    /// Syncs and drops the buffer cache so measurement starts cold.
    pub fn quiesce(&mut self) {
        let fs = self.server.fs_mut();
        fs.sync().expect("sync");
        fs.set_cache_capacity(0);
        fs.set_cache_capacity(self.params.fs_cache_blocks);
    }

    /// The build this rig runs.
    pub fn mode(&self) -> ServerMode {
        self.mode
    }

    /// The per-node ledgers.
    pub fn ledgers(&self) -> &NodeLedgers {
        &self.ledgers
    }

    /// The web server (stats, file system access).
    pub fn server_mut(&mut self) -> &mut KhttpdServer {
        &mut self.server
    }

    /// The NCache module, under that build.
    pub fn module(&self) -> Option<Rc<RefCell<NcacheModule>>> {
        self.module.clone()
    }

    /// The storage server.
    pub fn target(&self) -> Rc<RefCell<IscsiTarget>> {
        Rc::clone(&self.target)
    }

    /// Publishes a page with deterministic content (the same pattern the
    /// NFS rig uses, keyed by the page's inode).
    pub fn publish(&mut self, name: &str, size: u64) {
        let fs = self.server.fs_mut();
        let ino = fs
            .create(Filesystem::<IscsiInitiator>::ROOT, name)
            .expect("fresh name");
        let fh = u64::from(ino.0);
        let mut offset = 0u64;
        while offset < size {
            let chunk = (size - offset).min(1 << 20) as usize;
            let data = NfsRig::pattern(fh, offset, chunk);
            fs.write(ino, offset, &data).expect("volume has space");
            offset += chunk as u64;
        }
        self.quiesce();
    }

    /// Publishes a page whose blocks are allocated but unwritten (cheap
    /// setup for working-set sweeps; contents are synthetic blocks).
    pub fn publish_sparse(&mut self, name: &str, size: u64) {
        let fs = self.server.fs_mut();
        let ino = fs
            .create(Filesystem::<IscsiInitiator>::ROOT, name)
            .expect("fresh name");
        fs.allocate(ino, size).expect("volume has space");
        self.quiesce();
    }

    /// The expected contents of a published (non-sparse) page.
    pub fn expected(&mut self, name: &str, size: u64) -> Vec<u8> {
        let fs = self.server.fs_mut();
        let ino = fs
            .lookup(Filesystem::<IscsiInitiator>::ROOT, name)
            .expect("published page");
        NfsRig::pattern(u64::from(ino.0), 0, size as usize)
    }

    /// Issues a GET through the full path; returns header + body.
    pub fn get(&mut self, path: &str) -> (HttpResponseHeader, Vec<u8>) {
        let req = self.client.get_request(path);
        let delivered = servers::stack::deliver(&req, &self.ledgers.app);
        let response = self.server.handle_request(&delivered);
        self.client.parse_response(&response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_round_trip_original() {
        let mut rig = KhttpdRig::new(ServerMode::Original, KhttpdRigParams::default());
        rig.publish("index.html", 10_000);
        let (hdr, body) = rig.get("/index.html");
        assert_eq!(hdr.status, 200);
        assert_eq!(hdr.content_length, 10_000);
        assert_eq!(body, rig.expected("index.html", 10_000));
    }

    #[test]
    fn get_round_trip_ncache_substitutes() {
        let mut rig = KhttpdRig::new(ServerMode::NCache, KhttpdRigParams::default());
        rig.publish("page", 75_000);
        let (hdr, body) = rig.get("/page");
        assert_eq!(hdr.status, 200);
        assert_eq!(body, rig.expected("page", 75_000), "real bytes, not junk");
        let module = rig.module().expect("ncache build");
        let totals = module.borrow().substitution_totals();
        assert!(totals.substituted > 0);
        assert_eq!(totals.missing, 0);
        assert_eq!(rig.server_mut().stats().tracked_responses, 1);
    }

    #[test]
    fn baseline_sends_junk_with_correct_length() {
        let mut rig = KhttpdRig::new(ServerMode::Baseline, KhttpdRigParams::default());
        rig.publish("page", 20_000);
        let (hdr, body) = rig.get("/page");
        assert_eq!(hdr.status, 200);
        assert_eq!(body.len(), 20_000);
        assert_ne!(body, rig.expected("page", 20_000));
    }

    #[test]
    fn missing_page_is_404() {
        let mut rig = KhttpdRig::new(ServerMode::Original, KhttpdRigParams::default());
        let (hdr, body) = rig.get("/nope");
        assert_eq!(hdr.status, 404);
        assert!(body.is_empty());
        assert_eq!(rig.server_mut().stats().not_found, 1);
    }

    #[test]
    fn header_survives_substitution_untouched() {
        let mut rig = KhttpdRig::new(ServerMode::NCache, KhttpdRigParams::default());
        rig.publish("p", 4096);
        let (hdr, _) = rig.get("/p");
        assert_eq!(hdr, HttpResponseHeader::ok(4096));
    }
}
