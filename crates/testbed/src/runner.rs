//! The closed-loop experiment runner.
//!
//! Replays an operation stream against a rig with a configurable number of
//! outstanding requests (the paper tunes "the number of NFS server
//! daemons", §5.4) over the simulated hardware: per-node CPUs, full-duplex
//! Gigabit links (1 or 2 NICs on the application server — the Figure 5
//! lever), and the RAID-0 IDE array. Each operation executes *functionally*
//! on the data plane at issue time; its measured operation counts become
//! FIFO service demands, and throughput/utilization emerge from whichever
//! resource saturates.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use blockdev::{DiskModel, Raid0, TierConfig, TierStats, TieredArray};
use sim::costs::CostModel;
use sim::stats::{LatencyHistogram, Throughput};
use sim::time::{Duration, SimTime};
use sim::Resource;

use crate::khttpd_rig::KhttpdRig;
use crate::nfs_rig::NfsRig;
use crate::timing::{coalesce, derive, Observation, Transport};

/// One operation the runner can replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriverOp {
    /// NFS READ.
    Read {
        /// File handle.
        fh: u64,
        /// Byte offset.
        offset: u32,
        /// Bytes requested.
        len: u32,
    },
    /// NFS WRITE (the runner fabricates payload bytes).
    Write {
        /// File handle.
        fh: u64,
        /// Byte offset.
        offset: u32,
        /// Bytes written.
        len: u32,
    },
    /// NFS GETATTR.
    Getattr {
        /// File handle.
        fh: u64,
    },
    /// NFS LOOKUP in the export root.
    Lookup {
        /// Name to resolve.
        name: String,
    },
    /// HTTP GET.
    Get {
        /// Page path.
        path: String,
    },
}

/// What one functional execution produced.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOutcome {
    /// Client→server message bytes.
    pub request_bytes: u64,
    /// Server→client message bytes.
    pub reply_bytes: u64,
    /// Application payload delivered (throughput numerator).
    pub payload_bytes: u64,
}

/// A rig the runner can drive.
pub trait RigDriver {
    /// Executes `op` on the data plane and returns the full observation
    /// (ledger deltas, cache ops, coalesced storage I/O) plus the payload
    /// moved.
    fn run_op(&mut self, op: &DriverOp) -> (Observation, u64);

    /// Client-leg transport.
    fn transport(&self) -> Transport;

    /// Fixed per-request CPU cost for this server type.
    fn per_request_ns(&self, costs: &CostModel) -> u64;

    /// The rig's recorder. The runner stamps simulated time into it
    /// before each functional execution and mirrors request / resource
    /// timing as exactly-timed events. The default is a detached,
    /// disabled recorder: every emission is a no-op.
    fn recorder(&self) -> obs::Recorder {
        obs::Recorder::new()
    }

    /// Reports the timing layer's load to the server ahead of a
    /// functional execution: the request's sim arrival instant and the
    /// number of requests currently in flight. The overload control
    /// plane decides admission from exactly these inputs; rigs without
    /// one ignore the call (the default).
    fn set_load(&mut self, _now_ns: u64, _inflight: u64) {}

    /// Adaptive-split epoch length in *operations*, or `None` when no
    /// split controller is installed (the default). When `Some(L)`, the
    /// engines call [`RigDriver::adaptive_tick`] after every `L`
    /// functional executions — a deterministic op-count boundary, never
    /// mid-request, identical between the sequential and parallel engines.
    fn adaptive_epoch(&self) -> Option<u64> {
        None
    }

    /// One controller tick: sample the epoch's ghost/hit window and apply
    /// any quota move. Default: nothing (no controller).
    fn adaptive_tick(&mut self) {}
}

/// The span label the runner files an operation under.
pub(crate) fn op_label(op: &DriverOp) -> &'static str {
    match op {
        DriverOp::Read { .. } => "read",
        DriverOp::Write { .. } => "write",
        DriverOp::Getattr { .. } => "getattr",
        DriverOp::Lookup { .. } => "lookup",
        DriverOp::Get { .. } => "get",
    }
}

/// Framing overhead of one message (Ethernet + IP + UDP/TCP headers).
pub(crate) const FRAME_OVERHEAD: u64 = 42;

fn snapshot_module(rig_module: &Option<sim::Shared<ncache::NcacheModule>>) -> (u64, u64) {
    match rig_module {
        Some(m) => {
            let m = m.borrow();
            (m.stats().total_ops(), m.substitution_totals().substituted)
        }
        None => (0, 0),
    }
}

impl RigDriver for NfsRig {
    fn run_op(&mut self, op: &DriverOp) -> (Observation, u64) {
        let app0 = self.ledgers().app.snapshot();
        let stor0 = self.ledgers().storage.snapshot();
        let (nc0, sub0) = snapshot_module(&self.module());
        let bc0 = self.server_mut().fs_mut().cache_stats();

        let (request, payload_hint) = match op {
            DriverOp::Read { fh, offset, len } => {
                (self.client_mut().read_request(*fh, *offset, *len), 0)
            }
            DriverOp::Write { fh, offset, len } => {
                let data = vec![0xA5u8; *len as usize];
                (
                    self.client_mut().write_request(*fh, *offset, &data),
                    u64::from(*len),
                )
            }
            DriverOp::Getattr { fh } => (self.client_mut().getattr_request(*fh), 0),
            DriverOp::Lookup { name } => {
                let root = self.server_mut().root_fh();
                (self.client_mut().lookup_request(root, name), 0)
            }
            DriverOp::Get { .. } => panic!("HTTP op on the NFS rig"),
        };
        let request_bytes = request.total_len() as u64 + FRAME_OVERHEAD;
        let rej0 = self.server().control_rejections();
        let reply = self.handle_raw(request);
        let rejected = self.server().control_rejections() > rej0;
        let reply_payload = reply.payload_len() as u64;
        let reply_bytes = reply.total_len() as u64 + FRAME_OVERHEAD;
        // A rejected WRITE accepted no payload; the hint only applies to
        // executed operations.
        let payload = if rejected {
            0
        } else if payload_hint > 0 {
            payload_hint
        } else {
            reply_payload
        };

        let io = self.server_mut().fs_mut().store_mut().take_io_log();
        let (nc1, sub1) = snapshot_module(&self.module());
        let bc1 = self.server_mut().fs_mut().cache_stats();
        let obs = Observation {
            app: self.ledgers().app.snapshot().delta_since(&app0),
            storage: self.ledgers().storage.snapshot().delta_since(&stor0),
            ncache_ops: nc1 - nc0,
            substituted_pkts: sub1 - sub0,
            bufcache_ops: (bc1.hits + bc1.misses + bc1.insertions)
                - (bc0.hits + bc0.misses + bc0.insertions),
            bursts: coalesce(&io),
            request_bytes,
            reply_bytes,
            rejected,
        };
        (obs, payload)
    }

    fn transport(&self) -> Transport {
        Transport::Udp
    }

    fn per_request_ns(&self, costs: &CostModel) -> u64 {
        costs.nfs_req_ns
    }

    fn recorder(&self) -> obs::Recorder {
        NfsRig::recorder(self).clone()
    }

    fn set_load(&mut self, now_ns: u64, inflight: u64) {
        self.server_mut().set_load(now_ns, inflight);
    }

    fn adaptive_epoch(&self) -> Option<u64> {
        NfsRig::adaptive_epoch(self)
    }

    fn adaptive_tick(&mut self) {
        NfsRig::adaptive_tick(self);
    }
}

impl RigDriver for KhttpdRig {
    fn run_op(&mut self, op: &DriverOp) -> (Observation, u64) {
        let DriverOp::Get { path } = op else {
            panic!("NFS op on the web rig");
        };
        let app0 = self.ledgers().app.snapshot();
        let stor0 = self.ledgers().storage.snapshot();
        let (nc0, sub0) = snapshot_module(&self.module());
        let bc0 = self.server_mut().fs_mut().cache_stats();

        let req = servers::khttpd::HttpClient::new(&self.ledgers().client).get_request(path);
        let request_bytes = req.total_len() as u64 + FRAME_OVERHEAD;
        let delivered = servers::stack::deliver(&req, &self.ledgers().app);
        let rej0 = self.server_mut().control_rejections();
        let response = self.server_mut().handle_request(&delivered);
        let rejected = self.server_mut().control_rejections() > rej0;
        let payload = response.payload_len() as u64;
        let reply_bytes = response.total_len() as u64 + FRAME_OVERHEAD;

        let io = self.server_mut().fs_mut().store_mut().take_io_log();
        let (nc1, sub1) = snapshot_module(&self.module());
        let bc1 = self.server_mut().fs_mut().cache_stats();
        let obs = Observation {
            app: self.ledgers().app.snapshot().delta_since(&app0),
            storage: self.ledgers().storage.snapshot().delta_since(&stor0),
            ncache_ops: nc1 - nc0,
            substituted_pkts: sub1 - sub0,
            bufcache_ops: (bc1.hits + bc1.misses + bc1.insertions)
                - (bc0.hits + bc0.misses + bc0.insertions),
            bursts: coalesce(&io),
            request_bytes,
            reply_bytes,
            rejected,
        };
        (obs, payload)
    }

    fn transport(&self) -> Transport {
        Transport::Tcp
    }

    fn per_request_ns(&self, costs: &CostModel) -> u64 {
        costs.http_req_ns
    }

    fn recorder(&self) -> obs::Recorder {
        KhttpdRig::recorder(self).clone()
    }

    fn set_load(&mut self, now_ns: u64, inflight: u64) {
        self.server_mut().set_load(now_ns, inflight);
    }

    fn adaptive_epoch(&self) -> Option<u64> {
        KhttpdRig::adaptive_epoch(self)
    }

    fn adaptive_tick(&mut self) {
        KhttpdRig::adaptive_tick(self);
    }
}

/// Runner configuration.
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Outstanding requests (NFS daemon count / concurrent connections).
    pub concurrency: usize,
    /// NICs on the application server (Figure 5: 1 = link-bound,
    /// 2 = CPU-bound).
    pub nics: usize,
    /// The hardware cost model.
    pub costs: CostModel,
    /// Tiered backend configuration; `None` is the paper's flat RAID-0
    /// array (the exact pre-tier timing path).
    pub tier: Option<TierConfig>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            concurrency: 8,
            nics: 1,
            costs: CostModel::pentium3_gige(),
            tier: None,
        }
    }
}

/// Measured outcome of a run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunResult {
    /// Delivered payload, MB/s (decimal), as the paper's throughput plots.
    pub throughput_mbs: f64,
    /// Operations per second (the SPECsfs metric).
    pub ops_per_sec: f64,
    /// Application-server CPU utilization in `[0, 1]`.
    pub app_cpu_util: f64,
    /// Storage-server CPU utilization.
    pub storage_cpu_util: f64,
    /// Application-server transmit-link utilization.
    pub app_tx_util: f64,
    /// Mean member-disk utilization of the array.
    pub disk_util: f64,
    /// Simulated wall-clock of the run.
    pub elapsed: SimTime,
    /// Operations completed.
    pub ops: u64,
    /// Payload bytes delivered.
    pub payload_bytes: u64,
    /// Mean request latency.
    pub mean_latency: Duration,
    /// Approximate 99th-percentile request latency.
    pub p99_latency: Duration,
    /// Per-interval throughput samples over the run (≤ 32 buckets;
    /// empty when no foreground operation completed).
    pub timeline: Vec<TimelineSample>,
    /// Tier counters when the run used a tiered backend.
    pub tier: Option<TierStats>,
}

/// One interval of a run's completion-driven timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimelineSample {
    /// Interval end, simulated nanoseconds.
    pub t_ns: u64,
    /// Payload throughput over the interval, MB/s (decimal).
    pub throughput_mbs: f64,
    /// Foreground operations completed in the interval.
    pub ops: u64,
}

/// Buckets raw completion samples `(t_ns, payload_bytes)` into at most
/// 32 equal-width intervals spanning `[0, elapsed_ns]`.
fn build_timeline(samples: &[(u64, u64)], elapsed_ns: u64) -> Vec<TimelineSample> {
    if samples.is_empty() || elapsed_ns == 0 {
        return Vec::new();
    }
    let buckets = samples.len().min(32);
    let width = elapsed_ns.div_ceil(buckets as u64).max(1);
    let mut out: Vec<TimelineSample> = (0..buckets as u64)
        .map(|i| TimelineSample {
            t_ns: (width * (i + 1)).min(elapsed_ns),
            throughput_mbs: 0.0,
            ops: 0,
        })
        .collect();
    let mut bytes = vec![0u64; buckets];
    for &(t, payload) in samples {
        let idx = (t.saturating_sub(1) / width).min(buckets as u64 - 1) as usize;
        bytes[idx] += payload;
        out[idx].ops += 1;
    }
    for (i, s) in out.iter_mut().enumerate() {
        let start = width * i as u64;
        let w = s.t_ns.saturating_sub(start).max(1);
        // bytes/ns → decimal MB/s is a factor of 1e3.
        s.throughput_mbs = bytes[i] as f64 * 1e3 / w as f64;
    }
    out
}

/// A FIFO resource a request stage occupies. Shared with the
/// multi-session engine in [`crate::sessions`].
#[derive(Clone, Copy, Debug)]
pub(crate) enum Res {
    AppRx,
    AppCpu,
    AppTx,
    StorRx,
    StorCpu,
    StorTx,
    Disk { lbn: u64, blocks: u64, write: bool },
}

impl Res {
    /// The stage name latency attribution files this resource under
    /// (matches the recorder's closed stage-histogram key set).
    pub(crate) fn name(self) -> &'static str {
        match self {
            Res::AppRx => "app-rx",
            Res::AppCpu => "app-cpu",
            Res::AppTx => "app-tx",
            Res::StorRx => "storage-rx",
            Res::StorCpu => "storage-cpu",
            Res::StorTx => "storage-tx",
            Res::Disk { .. } => "disk",
        }
    }
}

/// The storage backend behind the iSCSI target: the paper's flat RAID-0
/// array, or the tiered fast-device-plus-array variant (DESIGN.md §16).
/// `Flat` takes the exact pre-tier timing path byte for byte.
#[derive(Clone, Debug)]
pub(crate) enum Backend {
    Flat(Raid0),
    Tiered(Box<TieredArray>),
}

/// Timing of one backend I/O, with the tier facts the engines turn into
/// stages and counters.
#[derive(Clone, Copy, Debug)]
pub(crate) struct ServeOutcome {
    pub(crate) begin: SimTime,
    pub(crate) done: SimTime,
    /// Completion of a promotion copy chained onto this read, if any.
    pub(crate) promote_done: Option<SimTime>,
    /// Whether a fast read faulted and fell back to the slow array.
    pub(crate) fault_fallback: bool,
}

impl Backend {
    pub(crate) fn new(tier: Option<TierConfig>) -> Backend {
        let array = Raid0::new(DiskModel::dtla_307075(), 4, 16);
        match tier {
            None => Backend::Flat(array),
            Some(cfg) => Backend::Tiered(Box::new(TieredArray::new(cfg, array))),
        }
    }

    pub(crate) fn serve(&mut self, now: SimTime, lbn: u64, blocks: u64, write: bool) -> ServeOutcome {
        match self {
            Backend::Flat(array) => {
                let (begin, done) = array.io_timed(now, lbn, blocks);
                ServeOutcome {
                    begin,
                    done,
                    promote_done: None,
                    fault_fallback: false,
                }
            }
            Backend::Tiered(t) => {
                let o = if write {
                    t.write_timed(now, lbn, blocks)
                } else {
                    t.read_timed(now, lbn, blocks)
                };
                ServeOutcome {
                    begin: o.begin,
                    done: o.done,
                    promote_done: o.promote_done,
                    fault_fallback: o.fault_fallback,
                }
            }
        }
    }

    pub(crate) fn utilization(&self, elapsed_until: SimTime) -> f64 {
        match self {
            Backend::Flat(array) => array.utilization(elapsed_until),
            Backend::Tiered(t) => t.utilization(elapsed_until),
        }
    }

    pub(crate) fn tier_stats(&self) -> Option<TierStats> {
        match self {
            Backend::Flat(_) => None,
            Backend::Tiered(t) => Some(t.stats()),
        }
    }
}

/// The data path a request took, judged from its observation: any
/// foreground read burst puts the disk on the critical path; otherwise a
/// substituted reply was served zero-copy from the network-centric
/// cache; otherwise it was a plain cache hit. (Write-behind bursts are
/// background work and do not change the request's path.)
pub(crate) fn classify_path(obs: &Observation) -> &'static str {
    if obs.bursts.iter().any(|b| !b.is_write) {
        "disk"
    } else if obs.substituted_pkts > 0 {
        "substitution"
    } else {
        "hit"
    }
}

/// One stage of a request's resource chain.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Stage {
    pub(crate) res: Res,
    pub(crate) demand: Duration,
}

/// Builds the foreground stage chain plus any background write-behind
/// chains for one executed request. Read bursts ride the foreground chain
/// (the reply waits for them); write bursts flush on their own chains —
/// they occupy the link, the storage CPU and the array but do not extend
/// the request's latency.
pub(crate) fn stage_chains(
    costs: &CostModel,
    demands: &crate::timing::RequestDemands,
) -> (Vec<Stage>, Vec<Vec<Stage>>) {
    let mut stages = Vec::with_capacity(4 + 5 * demands.bursts.len());
    let mut background = Vec::new();
    stages.push(Stage {
        res: Res::AppRx,
        demand: costs.link_tx_time(demands.request_bytes),
    });
    stages.push(Stage {
        res: Res::AppCpu,
        demand: demands.app_cpu,
    });
    for (b, cpu) in &demands.bursts {
        let data_time = costs.link_tx_time(b.bytes());
        if b.is_write {
            background.push(vec![
                Stage {
                    res: Res::AppTx,
                    demand: data_time,
                },
                Stage {
                    res: Res::StorRx,
                    demand: data_time,
                },
                Stage {
                    res: Res::StorCpu,
                    demand: *cpu,
                },
                Stage {
                    res: Res::Disk {
                        lbn: b.lbn,
                        blocks: b.blocks,
                        write: true,
                    },
                    demand: Duration::ZERO,
                },
            ]);
        } else {
            stages.push(Stage {
                res: Res::StorRx,
                demand: costs.link_tx_time(96),
            });
            stages.push(Stage {
                res: Res::StorCpu,
                demand: *cpu,
            });
            stages.push(Stage {
                res: Res::Disk {
                    lbn: b.lbn,
                    blocks: b.blocks,
                    write: false,
                },
                demand: Duration::ZERO,
            });
            stages.push(Stage {
                res: Res::StorTx,
                demand: data_time,
            });
            stages.push(Stage {
                res: Res::AppRx,
                demand: data_time,
            });
        }
    }
    stages.push(Stage {
        res: Res::AppTx,
        demand: costs.link_tx_time(demands.reply_bytes),
    });
    (stages, background)
}

/// Runs `ops` against `rig` under `opts`. Operations execute functionally
/// in issue order; timing is an exact FIFO simulation.
pub fn run<R: RigDriver>(
    rig: &mut R,
    ops: impl IntoIterator<Item = DriverOp>,
    opts: &RunOptions,
) -> RunResult {
    let costs = &opts.costs;
    let mut ops = ops.into_iter();
    let rec = rig.recorder();

    let mut app_cpu = Resource::new("app-cpu", 1);
    let mut app_tx = Resource::new("app-tx", opts.nics.max(1));
    let mut app_rx = Resource::new("app-rx", opts.nics.max(1));
    let mut stor_cpu = Resource::new("storage-cpu", 1);
    let mut stor_tx = Resource::new("storage-tx", 1);
    let mut stor_rx = Resource::new("storage-rx", 1);
    let mut array = Backend::new(opts.tier);
    if rec.is_enabled() {
        app_cpu.set_recorder(rec.clone());
        app_tx.set_recorder(rec.clone());
        app_rx.set_recorder(rec.clone());
        stor_cpu.set_recorder(rec.clone());
        stor_tx.set_recorder(rec.clone());
        stor_rx.set_recorder(rec.clone());
    }

    let mut meter = Throughput::new();
    let mut heap: BinaryHeap<Reverse<(SimTime, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    // In-flight requests: stage lists, cursors and the accumulated
    // per-stage latency breakdown, keyed by seq.
    type Flight = (Vec<Stage>, usize, Option<u64>, Vec<obs::StageNs>);
    let mut inflight: std::collections::HashMap<u64, Flight> = std::collections::HashMap::new();
    let mut issued_at: std::collections::HashMap<u64, (SimTime, &'static str, &'static str)> =
        std::collections::HashMap::new();
    let mut latency = LatencyHistogram::new();
    let mut end = SimTime::ZERO;
    // Raw completion samples (t_ns, payload) for the timeline.
    let mut samples: Vec<(u64, u64)> = Vec::new();

    // `payload = None` marks a background write-behind job: it consumes
    // resources but completes silently (no throughput record, no refill).
    // Returns the issued request's id and data-path label so the caller
    // can timestamp and attribute it.
    let issue = |rig: &mut R,
                     op: DriverOp,
                     now: SimTime,
                     seq: &mut u64,
                     heap: &mut BinaryHeap<Reverse<(SimTime, u64)>>,
                     inflight: &mut std::collections::HashMap<u64, Flight>| {
        // Stamp the functional execution with its simulated issue time so
        // every data-plane event lands at the right spot on the timeline.
        rec.set_now(now.as_nanos());
        let (obs, payload) = rig.run_op(&op);
        let path = classify_path(&obs);
        let demands = derive(costs, rig.transport(), rig.per_request_ns(costs), &obs);
        let (stages, background) = stage_chains(costs, &demands);
        for bg in background {
            let id = *seq;
            *seq += 1;
            inflight.insert(id, (bg, 0, None, Vec::new()));
            heap.push(Reverse((now, id)));
        }
        let id = *seq;
        *seq += 1;
        inflight.insert(id, (stages, 0, Some(payload), Vec::new()));
        heap.push(Reverse((now, id)));
        (id, path)
    };

    // Controller epochs are op-count boundaries: tick after every
    // `epoch` functional executions, never mid-request.
    let epoch = rig.adaptive_epoch();
    let mut executed = 0u64;

    // Prime the closed loop.
    for _ in 0..opts.concurrency.max(1) {
        match ops.next() {
            Some(op) => {
                let label = op_label(&op);
                let (id, path) = issue(rig, op, SimTime::ZERO, &mut seq, &mut heap, &mut inflight);
                issued_at.insert(id, (SimTime::ZERO, label, path));
                executed += 1;
                if epoch.is_some_and(|l| executed.is_multiple_of(l)) {
                    rig.adaptive_tick();
                }
            }
            None => break,
        }
    }

    while let Some(Reverse((now, id))) = heap.pop() {
        let entry = inflight.get(&id).expect("in flight");
        let cursor = entry.1;
        if cursor == entry.0.len() {
            let (_, _, payload, stage_log) = inflight.remove(&id).expect("in flight");
            end = end.max(now);
            if let Some(payload) = payload {
                // A client request completed: record and refill the slot.
                meter.record(payload);
                samples.push((now.as_nanos(), payload));
                if let Some((start, label, path)) = issued_at.remove(&id) {
                    latency.record(now.since(start));
                    rec.emit(obs::EventKind::Request {
                        op: label,
                        path,
                        start_ns: start.as_nanos(),
                        end_ns: now.as_nanos(),
                        stages: stage_log,
                    });
                }
                if let Some(op) = ops.next() {
                    let label = op_label(&op);
                    let (next, path) = issue(rig, op, now, &mut seq, &mut heap, &mut inflight);
                    issued_at.insert(next, (now, label, path));
                    executed += 1;
                    if epoch.is_some_and(|l| executed.is_multiple_of(l)) {
                        rig.adaptive_tick();
                    }
                }
            }
            continue;
        }
        let stage = entry.0[cursor];
        let mut promote_done = None;
        let (started, done) = match stage.res {
            Res::AppRx => app_rx.serve_timed(now, stage.demand),
            Res::AppCpu => app_cpu.serve_timed(now, stage.demand),
            Res::AppTx => app_tx.serve_timed(now, stage.demand),
            Res::StorRx => stor_rx.serve_timed(now, stage.demand),
            Res::StorCpu => stor_cpu.serve_timed(now, stage.demand),
            Res::StorTx => stor_tx.serve_timed(now, stage.demand),
            Res::Disk { lbn, blocks, write } => {
                let o = array.serve(now, lbn, blocks, write);
                if o.fault_fallback {
                    rec.add_counter("fault.tier_fallback", 1);
                }
                if o.promote_done.is_some() {
                    rec.add_counter("tier.promote", 1);
                }
                promote_done = o.promote_done;
                (o.begin, o.done)
            }
        };
        let entry = inflight.get_mut(&id).expect("in flight");
        entry.1 = cursor + 1;
        // Stage arrival is exactly `now` (the previous stage's completion
        // or the issue instant), so queue + service telescopes across the
        // chain to end-to-end latency, exactly, in integer nanoseconds.
        entry.3.push(obs::StageNs {
            stage: stage.res.name(),
            queue_ns: started.since(now).as_nanos(),
            service_ns: done.since(started).as_nanos(),
        });
        // A promotion copy chains onto the read it was triggered by: the
        // stage starts exactly at `done` (queue 0), so the chain still
        // telescopes to end-to-end latency.
        let next_at = match promote_done {
            Some(p) => {
                entry.3.push(obs::StageNs {
                    stage: "tier-promote",
                    queue_ns: 0,
                    service_ns: p.since(done).as_nanos(),
                });
                p
            }
            None => done,
        };
        heap.push(Reverse((next_at, id)));
    }

    let elapsed = end;
    let timeline = build_timeline(&samples, elapsed.as_nanos());
    for s in &timeline {
        rec.set_now(s.t_ns);
        rec.emit(obs::EventKind::Gauge {
            name: "throughput_mbs",
            value: s.throughput_mbs,
        });
    }
    RunResult {
        throughput_mbs: meter.megabytes_per_sec(elapsed),
        ops_per_sec: meter.ops_per_sec(elapsed),
        app_cpu_util: app_cpu.utilization(elapsed),
        storage_cpu_util: stor_cpu.utilization(elapsed),
        app_tx_util: app_tx.utilization(elapsed),
        disk_util: array.utilization(elapsed),
        elapsed,
        ops: meter.ops(),
        payload_bytes: meter.bytes(),
        mean_latency: latency.mean(),
        p99_latency: latency.quantile(0.99),
        timeline,
        tier: array.tier_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfs_rig::NfsRigParams;
    use servers::ServerMode;

    fn seq_reads(fh: u64, total: u64, req: u32) -> Vec<DriverOp> {
        (0..total / u64::from(req))
            .map(|i| DriverOp::Read {
                fh,
                offset: (i * u64::from(req)) as u32,
                len: req,
            })
            .collect()
    }

    #[test]
    fn closed_loop_produces_throughput_and_utilization() {
        let mut rig = NfsRig::new(ServerMode::Original, NfsRigParams::default());
        let fh = rig.create_sparse_file("big", 4 << 20);
        let ops = seq_reads(fh, 4 << 20, 32 << 10);
        let r = run(&mut rig, ops, &RunOptions::default());
        assert_eq!(r.ops, 128);
        assert_eq!(r.payload_bytes, 4 << 20);
        assert!(r.throughput_mbs > 1.0, "throughput = {}", r.throughput_mbs);
        assert!(r.app_cpu_util > 0.0 && r.app_cpu_util <= 1.0);
        assert!(r.storage_cpu_util > 0.0, "all-miss load reaches storage");
        assert!(r.elapsed > SimTime::ZERO);
    }

    #[test]
    fn ncache_all_hit_beats_original() {
        // Warm both rigs with one pass, then measure a hot pass: the
        // NCache build must be faster (fewer copies on the read path).
        let mut results = Vec::new();
        for mode in [ServerMode::Original, ServerMode::NCache] {
            let mut rig = NfsRig::new(mode, NfsRigParams::default());
            let fh = rig.create_file("hot", 1 << 20);
            // Functional warmup (not timed).
            for op in seq_reads(fh, 1 << 20, 32 << 10) {
                rig.run_op(&op);
            }
            let opts = RunOptions {
                nics: 2,
                ..RunOptions::default()
            };
            let r = run(&mut rig, seq_reads(fh, 1 << 20, 32 << 10), &opts);
            assert!(
                r.storage_cpu_util < 0.01,
                "{mode}: all-hit must not touch storage (util {})",
                r.storage_cpu_util
            );
            results.push(r.throughput_mbs);
        }
        assert!(
            results[1] > results[0] * 1.3,
            "NCache {} vs original {}",
            results[1],
            results[0]
        );
    }

    #[test]
    fn two_nics_relieve_the_link() {
        let make = || {
            let mut rig = NfsRig::new(ServerMode::Baseline, NfsRigParams::default());
            let fh = rig.create_file("hot", 1 << 20);
            for op in seq_reads(fh, 1 << 20, 32 << 10) {
                rig.run_op(&op);
            }
            (rig, fh)
        };
        let (mut rig1, fh1) = make();
        let one = run(
            &mut rig1,
            seq_reads(fh1, 1 << 20, 32 << 10),
            &RunOptions {
                nics: 1,
                ..RunOptions::default()
            },
        );
        let (mut rig2, fh2) = make();
        let two = run(
            &mut rig2,
            seq_reads(fh2, 1 << 20, 32 << 10),
            &RunOptions {
                nics: 2,
                ..RunOptions::default()
            },
        );
        // The zero-copy baseline is link-bound on one NIC; a second NIC
        // must raise throughput substantially.
        assert!(
            two.throughput_mbs > one.throughput_mbs * 1.4,
            "1 NIC {} vs 2 NICs {}",
            one.throughput_mbs,
            two.throughput_mbs
        );
        assert!(one.app_tx_util > 0.9, "link saturated: {}", one.app_tx_util);
    }

    #[test]
    fn recorder_captures_requests_resources_and_timeline() {
        let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
        let rec = obs::Recorder::new();
        rec.enable(obs::TraceConfig::default());
        rig.set_recorder(rec.clone());
        let fh = rig.create_sparse_file("f", 1 << 20);
        let r = run(
            &mut rig,
            seq_reads(fh, 1 << 20, 32 << 10),
            &RunOptions::default(),
        );
        assert_eq!(r.ops, 32);
        // Every completed request produced an exactly-timed Request event.
        assert_eq!(rec.counter("requests.read"), 0, "runner labels go via spans");
        let reqs = rec
            .events()
            .iter()
            .filter(|e| matches!(e.kind, obs::EventKind::Request { .. }))
            .count() as u64;
        assert_eq!(reqs, r.ops);
        // The server opened (and closed) one span per request.
        assert_eq!(rec.spans_opened(), r.ops);
        assert!(rec.spans_balanced());
        // Resources reported busy intervals in simulated time.
        assert!(rec.counter("resource.app-cpu.busy_ns") > 0);
        assert!(rec.counter("resource.app-tx.busy_ns") > 0);
        // The timeline covers the run and sums to the op count.
        assert!(!r.timeline.is_empty() && r.timeline.len() <= 32);
        assert_eq!(r.timeline.iter().map(|s| s.ops).sum::<u64>(), r.ops);
        assert_eq!(r.timeline.last().unwrap().t_ns, r.elapsed.as_nanos());
    }

    #[test]
    fn stage_breakdowns_reconcile_exactly() {
        let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
        let rec = obs::Recorder::new();
        rec.enable(obs::TraceConfig::default());
        rig.set_recorder(rec.clone());
        let fh = rig.create_sparse_file("f", 1 << 20);
        // Mixed hits and misses: read the file twice.
        let mut ops = seq_reads(fh, 1 << 20, 32 << 10);
        ops.extend(seq_reads(fh, 1 << 20, 32 << 10));
        let r = run(&mut rig, ops, &RunOptions::default());
        assert_eq!(r.ops, 64);
        let mut paths = std::collections::BTreeSet::new();
        let mut checked = 0;
        for ev in rec.events() {
            if let obs::EventKind::Request {
                path,
                start_ns,
                end_ns,
                stages,
                ..
            } = ev.kind
            {
                assert!(!stages.is_empty());
                let sum: u64 = stages.iter().map(|s| s.queue_ns + s.service_ns).sum();
                assert_eq!(sum, end_ns - start_ns, "stages must sum to latency");
                paths.insert(path);
                checked += 1;
            }
        }
        assert_eq!(checked, r.ops);
        assert!(paths.contains("disk"), "first pass misses");
        assert!(
            paths.contains("hit") || paths.contains("substitution"),
            "second pass hits: {paths:?}"
        );
        // The aggregate histograms reconcile too: per-stage sums account
        // for every end-to-end nanosecond.
        let hists = rec.histograms();
        let total = hists["request.latency_ns"].sum;
        let staged: u64 = hists
            .iter()
            .filter(|(k, _)| k.starts_with("stage."))
            .map(|(_, h)| h.sum)
            .sum();
        assert_eq!(staged, total);
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        let measure = |trace: bool| {
            let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
            if trace {
                let rec = obs::Recorder::new();
                rec.enable(obs::TraceConfig::default());
                rig.set_recorder(rec);
            }
            let fh = rig.create_sparse_file("f", 1 << 20);
            run(
                &mut rig,
                seq_reads(fh, 1 << 20, 16 << 10),
                &RunOptions::default(),
            )
        };
        let plain = measure(false);
        let traced = measure(true);
        assert_eq!(plain.elapsed, traced.elapsed);
        assert_eq!(plain.payload_bytes, traced.payload_bytes);
        assert!((plain.throughput_mbs - traced.throughput_mbs).abs() < 1e-12);
    }

    #[test]
    fn empty_op_stream() {
        let mut rig = NfsRig::new(ServerMode::Original, NfsRigParams::default());
        let r = run(&mut rig, Vec::new(), &RunOptions::default());
        assert_eq!(r.ops, 0);
        assert_eq!(r.throughput_mbs, 0.0);
    }

    #[test]
    fn deterministic_runs() {
        let make = || {
            let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
            let fh = rig.create_sparse_file("f", 2 << 20);
            run(
                &mut rig,
                seq_reads(fh, 2 << 20, 16 << 10),
                &RunOptions::default(),
            )
        };
        let a = make();
        let b = make();
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.payload_bytes, b.payload_bytes);
        assert!((a.throughput_mbs - b.throughput_mbs).abs() < 1e-12);
    }
}
