#![warn(missing_docs)]
//! The simulated testbed: wires the paper's four machines together and
//! regenerates every figure and table of the evaluation (§5).
//!
//! The testbed has two layers:
//!
//! 1. **The data plane** ([`nfs_rig`], [`khttpd_rig`]) — a functionally
//!    complete pass-through server: real packets through real protocol
//!    codecs, a real file system and buffer cache, a real iSCSI target,
//!    and (in the NCache build) the real cache module. A client read
//!    returns exactly the stored bytes; every physical copy is counted in
//!    per-node ledgers.
//! 2. **The timing layer** ([`timing`], [`runner`]) — a discrete-event
//!    simulation of the paper's hardware (PIII 1 GHz nodes, Gigabit links,
//!    a RAID-0 IDE array). Each request's *measured* operation counts
//!    (copies, packets, cache ops, storage bursts) become service demands
//!    at FIFO resources; throughput and utilization fall out of whichever
//!    resource saturates — exactly the mechanics behind Figures 4-7.
//!
//! [`experiments`] packages the whole evaluation: one function per figure
//! and table, each returning a [`sim::stats::SeriesTable`] that prints the
//! same rows the paper plots.

pub mod ablations;
pub mod executor;
pub mod experiments;
pub mod khttpd_rig;
pub mod nfs_rig;
pub mod openloop;
pub mod runner;
pub mod sessions;
pub mod timing;

pub use khttpd_rig::{KhttpdRig, KhttpdRigParams};
pub use nfs_rig::{NfsRig, NfsRigParams};

