//! The paper's evaluation, experiment by experiment (§5).
//!
//! One function per figure and table. Each returns [`SeriesTable`]s with
//! the same axes the paper plots; the `repro` binary in `ncache-bench`
//! prints them. Absolute numbers are calibrated, shapes are measured —
//! see EXPERIMENTS.md for the paper-vs-measured comparison.

use servers::ServerMode;
use sim::stats::SeriesTable;
use sim::FaultSpec;
use workload::micro::{SeqRead, HTTP_REQUEST_SIZES, NFS_REQUEST_SIZES};
use workload::specsfs::{SpecSfs, SpecSfsParams};
use workload::specweb::{PageSet, SpecWeb};
use workload::{FileId, NfsOp};

use crate::executor::{self, run_cells};
use crate::khttpd_rig::{KhttpdRig, KhttpdRigParams};
use crate::nfs_rig::{FaultCounters, NfsRig, NfsRigParams};
use crate::runner::{run, DriverOp, RigDriver, RunOptions};
use crate::sessions::{run_nfs_sessions, run_nfs_sessions_parallel, SessionsOptions};

/// A fresh per-cell recorder mirroring the parent's configuration, or
/// `None` when the experiment is untraced. Cells never share a recorder:
/// each records privately and the parent absorbs them in cell order, so a
/// traced run's exported bytes are identical at any thread count.
fn cell_recorder(parent: Option<&obs::Recorder>) -> Option<obs::Recorder> {
    parent.map(|p| {
        let r = obs::Recorder::new();
        if p.is_enabled() {
            r.enable(p.config());
        }
        r
    })
}

/// Merges one cell's recorder back into the parent (cell-order calls only).
fn absorb_cell(parent: Option<&obs::Recorder>, cell: Option<obs::Recorder>) {
    if let (Some(parent), Some(cell)) = (parent, cell) {
        parent.absorb(&cell);
    }
}

/// Experiment sizing. `quick()` runs in seconds for tests and CI;
/// `paper()` uses the paper's parameters (2 GB all-miss file, 250 MB-1 GB
/// web working sets) and takes correspondingly longer.
#[derive(Clone, Debug)]
pub struct Scale {
    /// All-miss sequential file size (paper: 2 GB).
    pub allmiss_file: u64,
    /// All-hit hot file size (paper: 5 MB).
    pub allhit_file: u64,
    /// Measured passes over the hot set.
    pub allhit_passes: u32,
    /// SPECweb working-set sizes to sweep (paper: 250 MB-1 GB).
    pub specweb_working_sets: Vec<u64>,
    /// Memory available for caching on the web server (paper: 896 MB RAM).
    pub web_cache_bytes: u64,
    /// GET requests measured per SPECweb point.
    pub specweb_requests: usize,
    /// SPECsfs operations measured per point.
    pub specsfs_ops: usize,
    /// SPECsfs file count × file size (paper: 10 % of a 2 GB volume).
    pub specsfs_files: u32,
    /// SPECsfs file size in bytes.
    pub specsfs_file_size: u64,
    /// Requests per open-loop overload point.
    pub overload_requests: usize,
}

impl Scale {
    /// Seconds-scale sizing for tests.
    pub fn quick() -> Self {
        Scale {
            allmiss_file: 16 << 20,
            allhit_file: 5 << 20,
            allhit_passes: 2,
            specweb_working_sets: vec![16 << 20, 32 << 20, 48 << 20, 64 << 20],
            web_cache_bytes: 32 << 20,
            specweb_requests: 600,
            specsfs_ops: 1_500,
            specsfs_files: 32,
            specsfs_file_size: 256 << 10,
            overload_requests: 384,
        }
    }

    /// The paper's sizing (long-running).
    pub fn paper() -> Self {
        Scale {
            allmiss_file: 2 << 30,
            allhit_file: 5 << 20,
            allhit_passes: 4,
            specweb_working_sets: vec![250 << 20, 500 << 20, 750 << 20, 1 << 30],
            web_cache_bytes: 700 << 20,
            specweb_requests: 20_000,
            specsfs_ops: 50_000,
            specsfs_files: 200,
            specsfs_file_size: 1 << 20,
            overload_requests: 20_000,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::quick()
    }
}

fn nfs_params_for(scale_bytes: u64, read_ahead_blocks: u64) -> NfsRigParams {
    // Volume: data + ~12% metadata slack.
    let blocks = (scale_bytes / 4096).max(1024);
    NfsRigParams {
        volume_blocks: blocks + blocks / 8 + 2048,
        fs_cache_blocks: 2 << 10,
        ncache_bytes: 64 << 20,
        read_ahead_blocks,
        inode_count: 8 << 10,
        shards: 1,
    }
}

fn attach_nfs(rig: &mut NfsRig, rec: Option<&obs::Recorder>) {
    if let Some(rec) = rec {
        rig.set_recorder(rec.clone());
    }
}

fn attach_web(rig: &mut KhttpdRig, rec: Option<&obs::Recorder>) {
    if let Some(rec) = rec {
        rig.set_recorder(rec.clone());
    }
}

fn seq_ops(fh: u64, total: u64, req: u32) -> Vec<DriverOp> {
    SeqRead::new(FileId(0), total, req)
        .map(|op| match op {
            NfsOp::Read { offset, len, .. } => DriverOp::Read {
                fh,
                offset: offset as u32,
                len,
            },
            _ => unreachable!("SeqRead only reads"),
        })
        .collect()
}

/// Figure 4: all-miss NFS throughput (a) and server CPU utilization (b)
/// versus request size, for all three builds. Returns `(throughput MB/s,
/// CPU %)` tables keyed by request size in KB.
pub fn fig4(scale: &Scale) -> (SeriesTable, SeriesTable) {
    fig4_with(scale, None, executor::thread_count(None))
}

/// As [`fig4`], with every rig reporting into `rec`.
pub fn fig4_traced(scale: &Scale, rec: &obs::Recorder) -> (SeriesTable, SeriesTable) {
    fig4_with(scale, Some(rec), executor::thread_count(None))
}

/// [`fig4`] on an explicit worker count; one cell per `(mode, size)`.
pub fn fig4_with(
    scale: &Scale,
    rec: Option<&obs::Recorder>,
    threads: usize,
) -> (SeriesTable, SeriesTable) {
    let mut thr = SeriesTable::new(
        "Fig 4(a): all-miss NFS throughput (MB/s)",
        "req KB",
    );
    let mut cpu = SeriesTable::new(
        "Fig 4(b): all-miss NFS server CPU utilization (%)",
        "req KB",
    );
    let cells: Vec<(ServerMode, u32)> = ServerMode::ALL
        .into_iter()
        .flat_map(|mode| NFS_REQUEST_SIZES.into_iter().map(move |req| (mode, req)))
        .collect();
    let results = run_cells(threads, cells.len(), |i| {
        let (mode, req) = cells[i];
        // "The file system read ahead window was tuned appropriately so
        // that the average disk request size matches with the NFS
        // request size" (§5.4).
        let params = nfs_params_for(scale.allmiss_file, u64::from(req / 4096));
        let cell_rec = cell_recorder(rec);
        let mut rig = NfsRig::new(mode, params);
        attach_nfs(&mut rig, cell_rec.as_ref());
        let fh = rig.create_sparse_file("bigfile", scale.allmiss_file);
        // "The number of NFS server daemons was also adjusted to reach
        // the best performance" (§5.4): the all-miss pipeline needs
        // deep concurrency to saturate the storage server.
        let result = run(
            &mut rig,
            seq_ops(fh, scale.allmiss_file, req),
            &RunOptions {
                concurrency: 64,
                ..RunOptions::default()
            },
        );
        (result.throughput_mbs, result.app_cpu_util, cell_rec)
    });
    for ((mode, req), (mbs, util, cell_rec)) in cells.iter().zip(results) {
        absorb_cell(rec, cell_rec);
        let x = f64::from(req / 1024);
        thr.put(x, mode.label(), mbs);
        cpu.put(x, mode.label(), util * 100.0);
    }
    (thr, cpu)
}

/// Figure 5: all-hit NFS. `(a)` server CPU utilization with one NIC
/// (link-bound); `(b)` throughput with two NICs (CPU-bound).
pub fn fig5(scale: &Scale) -> (SeriesTable, SeriesTable) {
    fig5_with(scale, None, executor::thread_count(None))
}

/// As [`fig5`], with every rig reporting into `rec`.
pub fn fig5_traced(scale: &Scale, rec: &obs::Recorder) -> (SeriesTable, SeriesTable) {
    fig5_with(scale, Some(rec), executor::thread_count(None))
}

/// [`fig5`] on an explicit worker count; one cell per `(NIC count, mode,
/// size)`.
pub fn fig5_with(
    scale: &Scale,
    rec: Option<&obs::Recorder>,
    threads: usize,
) -> (SeriesTable, SeriesTable) {
    let mut cpu1 = SeriesTable::new(
        "Fig 5(a): all-hit NFS server CPU utilization, 1 NIC (%)",
        "req KB",
    );
    let mut thr2 = SeriesTable::new(
        "Fig 5(b): all-hit NFS throughput, 2 NICs (MB/s)",
        "req KB",
    );
    let cells: Vec<(usize, ServerMode, u32)> = [1usize, 2]
        .into_iter()
        .flat_map(|nics| {
            ServerMode::ALL.into_iter().flat_map(move |mode| {
                NFS_REQUEST_SIZES.into_iter().map(move |req| (nics, mode, req))
            })
        })
        .collect();
    let results = run_cells(threads, cells.len(), |i| {
        let (nics, mode, req) = cells[i];
        let params = nfs_params_for(scale.allhit_file * 4, u64::from(req / 4096));
        let cell_rec = cell_recorder(rec);
        let mut rig = NfsRig::new(mode, params);
        attach_nfs(&mut rig, cell_rec.as_ref());
        let fh = rig.create_file("hotfile", scale.allhit_file);
        // Warm pass (functional only, untimed).
        for op in seq_ops(fh, scale.allhit_file, req) {
            rig.run_op(&op);
        }
        let mut ops = Vec::new();
        for _ in 0..scale.allhit_passes {
            ops.extend(seq_ops(fh, scale.allhit_file, req));
        }
        let result = run(
            &mut rig,
            ops,
            &RunOptions {
                nics,
                ..RunOptions::default()
            },
        );
        (result.app_cpu_util, result.throughput_mbs, cell_rec)
    });
    for ((nics, mode, req), (util, mbs, cell_rec)) in cells.iter().zip(results) {
        absorb_cell(rec, cell_rec);
        let x = f64::from(req / 1024);
        match nics {
            1 => cpu1.put(x, mode.label(), util * 100.0),
            _ => thr2.put(x, mode.label(), mbs),
        }
    }
    (cpu1, thr2)
}

fn khttpd_params(working_set: u64, cache_bytes: u64, mode: ServerMode) -> KhttpdRigParams {
    // The page set rounds up to whole directories; size the volume from
    // the real total plus metadata slack.
    let actual = PageSet::with_working_set(working_set).total_bytes();
    let blocks = (actual / 4096).max(1024) * 3 / 2 + 4096;
    // The memory budget: the original/baseline builds give it all to the
    // FS buffer cache; the NCache build pins most of it for the
    // network-centric cache and leaves the FS cache small (§3.4, §4.1).
    let (fs_cache_blocks, ncache_bytes) = match mode {
        ServerMode::NCache => {
            let fs_small = (cache_bytes / 8 / 4096) as usize;
            (fs_small, cache_bytes - fs_small as u64 * 4096)
        }
        _ => ((cache_bytes / 4096) as usize, 0),
    };
    KhttpdRigParams {
        volume_blocks: blocks,
        fs_cache_blocks,
        ncache_bytes: ncache_bytes.max(1 << 20),
        read_ahead_blocks: 8,
        inode_count: 64 << 10,
        shards: 1,
    }
}

/// Figure 6(a): kHTTPd SPECweb99-like throughput versus working-set size.
pub fn fig6a(scale: &Scale) -> SeriesTable {
    fig6a_with(scale, None, executor::thread_count(None))
}

/// As [`fig6a`], with every rig reporting into `rec`.
pub fn fig6a_traced(scale: &Scale, rec: &obs::Recorder) -> SeriesTable {
    fig6a_with(scale, Some(rec), executor::thread_count(None))
}

/// [`fig6a`] on an explicit worker count; one cell per `(mode, working
/// set)`.
pub fn fig6a_with(scale: &Scale, rec: Option<&obs::Recorder>, threads: usize) -> SeriesTable {
    let mut thr = SeriesTable::new(
        "Fig 6(a): kHTTPd SPECweb99 throughput (MB/s)",
        "workset MB",
    );
    let cells: Vec<(ServerMode, u64)> = ServerMode::ALL
        .into_iter()
        .flat_map(|mode| {
            scale
                .specweb_working_sets
                .iter()
                .map(move |&ws| (mode, ws))
        })
        .collect();
    let results = run_cells(threads, cells.len(), |i| {
        let (mode, ws) = cells[i];
        let cell_rec = cell_recorder(rec);
        let mut rig = KhttpdRig::new(mode, khttpd_params(ws, scale.web_cache_bytes, mode));
        attach_web(&mut rig, cell_rec.as_ref());
        let set = PageSet::with_working_set(ws);
        for (name, size) in set.pages() {
            rig.server_mut()
                .fs_mut()
                .create(simfs::Filesystem::<servers::IscsiInitiator>::ROOT, &name)
                .map(|ino| {
                    rig.server_mut()
                        .fs_mut()
                        .allocate(ino, size)
                        .expect("volume has space")
                })
                .expect("fresh page name");
        }
        rig.quiesce();
        // The workload stream is seeded per cell (by working set), never
        // by worker or execution order.
        let gen = SpecWeb::new(set, 0xC0FFEE ^ ws);
        let ops: Vec<DriverOp> = gen
            .take(scale.specweb_requests + scale.specweb_requests / 3)
            .map(|op| DriverOp::Get { path: op.path })
            .collect();
        // First third warms caches functionally.
        let (warm, measured) = ops.split_at(scale.specweb_requests / 3);
        for op in warm {
            rig.run_op(op);
        }
        let result = run(&mut rig, measured.to_vec(), &RunOptions::default());
        (result.throughput_mbs, cell_rec)
    });
    for ((mode, ws), (mbs, cell_rec)) in cells.iter().zip(results) {
        absorb_cell(rec, cell_rec);
        thr.put((ws >> 20) as f64, mode.label(), mbs);
    }
    thr
}

/// Figure 6(b): kHTTPd all-hit throughput versus request (page) size.
pub fn fig6b(scale: &Scale) -> SeriesTable {
    fig6b_with(scale, None, executor::thread_count(None))
}

/// As [`fig6b`], with every rig reporting into `rec`.
pub fn fig6b_traced(scale: &Scale, rec: &obs::Recorder) -> SeriesTable {
    fig6b_with(scale, Some(rec), executor::thread_count(None))
}

/// [`fig6b`] on an explicit worker count; one cell per `(mode, size)`.
pub fn fig6b_with(scale: &Scale, rec: Option<&obs::Recorder>, threads: usize) -> SeriesTable {
    let mut thr = SeriesTable::new(
        "Fig 6(b): kHTTPd all-hit throughput vs request size (MB/s)",
        "req KB",
    );
    let cells: Vec<(ServerMode, u32)> = ServerMode::ALL
        .into_iter()
        .flat_map(|mode| HTTP_REQUEST_SIZES.into_iter().map(move |req| (mode, req)))
        .collect();
    let results = run_cells(threads, cells.len(), |i| {
        let (mode, req) = cells[i];
        let pages = (scale.allhit_file / u64::from(req)).max(1) as u32;
        let cell_rec = cell_recorder(rec);
        let mut rig = KhttpdRig::new(
            mode,
            khttpd_params(scale.allhit_file * 4, scale.allhit_file * 4, mode),
        );
        attach_web(&mut rig, cell_rec.as_ref());
        for p in 0..pages {
            rig.publish_sparse(&format!("page{p}"), u64::from(req));
        }
        let paths: Vec<DriverOp> = (0..pages)
            .map(|p| DriverOp::Get {
                path: format!("/page{p}"),
            })
            .collect();
        for op in &paths {
            rig.run_op(op); // warm
        }
        let mut ops = Vec::new();
        for _ in 0..scale.allhit_passes.max(2) {
            ops.extend(paths.iter().cloned());
        }
        let result = run(&mut rig, ops, &RunOptions::default());
        (result.throughput_mbs, cell_rec)
    });
    for ((mode, req), (mbs, cell_rec)) in cells.iter().zip(results) {
        absorb_cell(rec, cell_rec);
        thr.put(f64::from(req / 1024), mode.label(), mbs);
    }
    thr
}

/// Figure 7: SPECsfs-like throughput (ops/s) versus the percentage of
/// regular-data operations.
pub fn fig7(scale: &Scale) -> SeriesTable {
    fig7_with(scale, None, executor::thread_count(None))
}

/// As [`fig7`], with every rig reporting into `rec`.
pub fn fig7_traced(scale: &Scale, rec: &obs::Recorder) -> SeriesTable {
    fig7_with(scale, Some(rec), executor::thread_count(None))
}

/// [`fig7`] on an explicit worker count; one cell per `(mode, data-op %)`.
pub fn fig7_with(scale: &Scale, rec: Option<&obs::Recorder>, threads: usize) -> SeriesTable {
    let mut table = SeriesTable::new(
        "Fig 7: SPECsfs throughput (ops/sec) vs % regular-data requests",
        "% data ops",
    );
    let cells: Vec<(ServerMode, u32)> = ServerMode::ALL
        .into_iter()
        .flat_map(|mode| [30u32, 45, 60, 75].into_iter().map(move |pct| (mode, pct)))
        .collect();
    let results = run_cells(threads, cells.len(), |i| {
        {
            let (mode, pct) = cells[i];
            let total = u64::from(scale.specsfs_files) * scale.specsfs_file_size;
            // The paper's file set is 10 % of the volume and fits the
            // server's 896 MB of RAM: after warm-up, data operations are
            // mostly cache hits. Budget memory accordingly (the NCache
            // build pins most of it for the network-centric cache).
            let cache_budget = total * 3 / 2;
            let (fs_cache_blocks, ncache_bytes) = match mode {
                ServerMode::NCache => (
                    (cache_budget / 8 / 4096) as usize,
                    cache_budget - cache_budget / 8,
                ),
                _ => ((cache_budget / 4096) as usize, 0),
            };
            let params = NfsRigParams {
                fs_cache_blocks,
                ncache_bytes: ncache_bytes.max(1 << 20),
                ..nfs_params_for(total * 2, 8)
            };
            let cell_rec = cell_recorder(rec);
            let mut rig = NfsRig::new(mode, params);
            attach_nfs(&mut rig, cell_rec.as_ref());
            let mut fhs = Vec::new();
            let mut names = Vec::new();
            for i in 0..scale.specsfs_files {
                let name = format!("sfs{i:05}");
                fhs.push(rig.create_sparse_file(&name, scale.specsfs_file_size));
                names.push(name);
            }
            rig.quiesce();
            // Warm pass: sequentially touch every file (functional only).
            for (i, &fh) in fhs.iter().enumerate() {
                let _ = i;
                let mut off = 0u64;
                while off < scale.specsfs_file_size {
                    rig.run_op(&DriverOp::Read {
                        fh,
                        offset: off as u32,
                        len: 64 << 10,
                    });
                    off += 64 << 10;
                }
            }
            // Seeded per cell (by operation mix), independent of workers.
            let gen = SpecSfs::new(
                SpecSfsParams {
                    file_count: scale.specsfs_files,
                    file_size: scale.specsfs_file_size,
                    data_op_fraction: f64::from(pct) / 100.0,
                    reads_per_write: 5,
                },
                0x5F5 ^ u64::from(pct),
            );
            let ops: Vec<DriverOp> = gen
                .take(scale.specsfs_ops)
                .map(|op| to_driver_op(op, &fhs, &names))
                .collect();
            let result = run(&mut rig, ops, &RunOptions::default());
            (result.ops_per_sec, cell_rec)
        }
    });
    for ((mode, pct), (ops_per_sec, cell_rec)) in cells.iter().zip(results) {
        absorb_cell(rec, cell_rec);
        table.put(f64::from(*pct), mode.label(), ops_per_sec);
    }
    table
}

fn to_driver_op(op: NfsOp, fhs: &[u64], names: &[String]) -> DriverOp {
    match op {
        NfsOp::Read { file, offset, len } => DriverOp::Read {
            fh: fhs[file.0 as usize],
            offset: offset as u32,
            len,
        },
        NfsOp::Write { file, offset, len } => DriverOp::Write {
            fh: fhs[file.0 as usize],
            offset: offset as u32,
            len,
        },
        NfsOp::Getattr { file } => DriverOp::Getattr {
            fh: fhs[file.0 as usize],
        },
        NfsOp::Lookup { file } => DriverOp::Lookup {
            name: names[file.0 as usize].clone(),
        },
    }
}

/// Loss rates swept by [`fault_sweep`]: the fraction of PDUs lost per
/// link, 0 → 10 %.
pub const FAULT_SWEEP_LOSS: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.10];

/// The fault sweep: every build under a seeded fault schedule at each
/// loss rate, `spec`'s other fault rates held constant. Each cell drives
/// a mixed read/write NFS workload through the faulted rig and asserts
/// the headline invariants in-line: completed reads return the expected
/// bytes (never stale, never junk), acknowledged writes are visible, and
/// a zero fault spec produces zero recovery actions. Returns
/// `(requests completed %, recovery actions per request)` tables.
pub fn fault_sweep(spec: &FaultSpec, seed: u64) -> (SeriesTable, SeriesTable) {
    fault_sweep_with(spec, seed, None, executor::thread_count(None))
}

/// As [`fault_sweep`], with every rig reporting into `rec` (fault spans
/// and `fault.*` counters land in the trace).
pub fn fault_sweep_traced(
    spec: &FaultSpec,
    seed: u64,
    rec: &obs::Recorder,
) -> (SeriesTable, SeriesTable) {
    fault_sweep_with(spec, seed, Some(rec), executor::thread_count(None))
}

/// [`fault_sweep`] on an explicit worker count; one cell per `(mode,
/// loss rate)`, each seeded via `derive_seed` so results are identical at
/// any thread count.
pub fn fault_sweep_with(
    spec: &FaultSpec,
    seed: u64,
    rec: Option<&obs::Recorder>,
    threads: usize,
) -> (SeriesTable, SeriesTable) {
    let mut done = SeriesTable::new(
        "Fault sweep: requests completed cleanly (%)",
        "loss %",
    );
    let mut recov = SeriesTable::new(
        "Fault sweep: recovery actions per request",
        "loss %",
    );
    let cells: Vec<(ServerMode, f64)> = ServerMode::ALL
        .into_iter()
        .flat_map(|mode| FAULT_SWEEP_LOSS.into_iter().map(move |loss| (mode, loss)))
        .collect();
    let spec = *spec;
    let results = run_cells(threads, cells.len(), |i| {
        let (mode, loss) = cells[i];
        let cell_spec = FaultSpec { loss, ..spec };
        let cell_seed = executor::derive_seed(seed, i as u64);
        let cell_rec = cell_recorder(rec);
        let mut rig = NfsRig::new_faulted(mode, NfsRigParams::default(), &cell_spec, cell_seed);
        attach_nfs(&mut rig, cell_rec.as_ref());
        let file: u64 = 128 << 10;
        let fh = rig.create_file("sweep", file);
        let half = (file / 2) as u32;
        let span: u32 = 16 << 10;
        let mut attempted = 0u64;
        let mut completed = 0u64;
        for op in 0..50u64 {
            attempted += 1;
            if op % 5 == 4 {
                // Writes stay in the first half; reads in the second, so
                // every read's expected contents are known exactly.
                let off = ((op / 5) % (u64::from(half) / 4096)) as u32 * 4096;
                let data = vec![0xA0u8 ^ op as u8; 4096];
                let acked = rig
                    .try_write(fh, off, &data)
                    .is_some_and(|r| r.status == proto::nfs::NFS_OK);
                if acked {
                    completed += 1;
                }
                if let Some((hdr, got)) = rig.try_read(fh, off, 4096) {
                    // Baseline replies carry junk payload by design, so
                    // byte-level freshness is only checkable on the
                    // copying builds.
                    if hdr.status == proto::nfs::NFS_OK && mode != ServerMode::Baseline {
                        let old = NfsRig::pattern(fh, u64::from(off), 4096);
                        if acked {
                            assert_eq!(got, data, "acknowledged write must be visible");
                        } else {
                            // Unacknowledged: the write may or may not
                            // have executed, but never partially.
                            assert!(got == data || got == old, "torn write observed");
                        }
                    }
                }
            } else {
                let off = half + ((op as u32 * span) % (half - span) / 4096) * 4096;
                if let Some((hdr, got)) = rig.try_read(fh, off, span) {
                    if hdr.status == proto::nfs::NFS_OK {
                        if mode != ServerMode::Baseline {
                            assert_eq!(
                                got,
                                NfsRig::pattern(fh, u64::from(off), span as usize),
                                "completed read must return correct bytes"
                            );
                        }
                        completed += 1;
                    }
                }
            }
        }
        let fc = rig.fault_counters();
        let init = rig.server_mut().fs_mut().store_mut().stats();
        let srv = rig.server_mut().stats();
        let inval = rig.module().map_or(0, |m| m.borrow().invalidations());
        if cell_spec.is_zero() {
            assert_eq!(fc, FaultCounters::default(), "no faults, no client recovery");
            assert_eq!(init.retries, 0, "no faults, no initiator retries");
            assert_eq!(srv.drc_hits, 0, "no faults, no DRC hits");
            assert_eq!(inval, 0, "no faults, no invalidations");
        }
        let recovery = fc.retransmits + init.retries + srv.drc_hits + inval;
        (
            completed as f64 / attempted as f64 * 100.0,
            recovery as f64 / attempted as f64,
            cell_rec,
        )
    });
    for ((mode, loss), (pct, per_req, cell_rec)) in cells.iter().zip(results) {
        absorb_cell(rec, cell_rec);
        let x = loss * 100.0;
        done.put(x, mode.label(), pct);
        recov.put(x, mode.label(), per_req);
    }
    (done, recov)
}

/// Client counts swept by [`clients_sweep`]: a monotone axis from one
/// session to 256.
pub const CLIENTS_SWEEP_POINTS: [usize; 5] = [1, 4, 16, 64, 256];

/// Client scaling: M interleaved NFS sessions, each one outstanding
/// request, against a shared hot file. Returns `(throughput, hit ratio)`
/// tables over the client axis.
pub fn clients_sweep(scale: &Scale) -> (SeriesTable, SeriesTable) {
    clients_sweep_with(scale, None, executor::thread_count(None), 1)
}

/// As [`clients_sweep`], traced into `rec`.
pub fn clients_sweep_traced(scale: &Scale, rec: &obs::Recorder) -> (SeriesTable, SeriesTable) {
    clients_sweep_with(scale, rec.is_enabled().then_some(rec), executor::thread_count(None), 1)
}

/// [`clients_sweep`] on explicit worker and NCache shard counts. One cell
/// per `(mode, clients)`; the multi-session engine interleaves each
/// cell's sessions deterministically, and sharding only partitions the
/// cache's key space, so stdout is byte-identical at any `threads` and
/// any `shards` — the CI determinism gate diffs exactly that.
pub fn clients_sweep_with(
    scale: &Scale,
    rec: Option<&obs::Recorder>,
    threads: usize,
    shards: usize,
) -> (SeriesTable, SeriesTable) {
    let mut thr = SeriesTable::new(
        "Client scaling: delivered throughput (MB/s)",
        "clients",
    );
    let mut hits = SeriesTable::new(
        "Client scaling: server cache hit ratio",
        "clients",
    );
    let cells: Vec<(ServerMode, usize)> = ServerMode::ALL
        .into_iter()
        .flat_map(|mode| CLIENTS_SWEEP_POINTS.into_iter().map(move |c| (mode, c)))
        .collect();
    // The shared hot set: small enough that every build's cache holds it,
    // so the hit ratio climbs as sessions re-read each other's blocks.
    let file = scale.allhit_file.min(8 << 20);
    let span: u32 = 16 << 10;
    let results = run_cells(threads, cells.len(), |i| {
        let (mode, clients) = cells[i];
        let cell_rec = cell_recorder(rec);
        let params = NfsRigParams {
            shards,
            ..NfsRigParams::default()
        };
        let mut rig = NfsRig::new(mode, params);
        attach_nfs(&mut rig, cell_rec.as_ref());
        let fh = rig.create_file("shared", file);
        // Total work is roughly constant across the axis so every point
        // runs in comparable time; each session strides the file from its
        // own phase, overlapping the others.
        let per_session = (512 / clients).max(2);
        let sessions: Vec<Vec<DriverOp>> = (0..clients)
            .map(|sid| {
                (0..per_session)
                    .map(|k| DriverOp::Read {
                        fh,
                        offset: ((sid as u64 * 7 + k as u64) * u64::from(span)
                            % (file - u64::from(span)))
                            as u32
                            / 4096
                            * 4096,
                        len: span,
                    })
                    .collect()
            })
            .collect();
        let (mut rig, r) = run_nfs_sessions(rig, sessions, &SessionsOptions::default());
        // The NCache build's hits happen in the network-centric cache;
        // the copying builds hit the file-system buffer cache.
        let hit_ratio = match mode {
            ServerMode::NCache => rig
                .module()
                .map_or(0.0, |m| m.borrow().stats().hit_ratio()),
            _ => {
                let bc = rig.server_mut().fs_mut().cache_stats();
                let looked = bc.hits + bc.misses;
                if looked == 0 {
                    0.0
                } else {
                    bc.hits as f64 / looked as f64
                }
            }
        };
        (r.throughput_mbs, hit_ratio, cell_rec)
    });
    for ((mode, clients), (mbs, hit, cell_rec)) in cells.iter().zip(results) {
        absorb_cell(rec, cell_rec);
        thr.put(*clients as f64, mode.label(), mbs);
        hits.put(*clients as f64, mode.label(), hit);
    }
    (thr, hits)
}

/// Root seed for the lane-parallel client sweep: it derives the epoch
/// tie ranks (and, under faults, the per-lane fault plans), so a fixed
/// value makes stdout reproducible run over run.
pub const CLIENTS_SWEEP_LANE_SEED: u64 = 7;

/// [`clients_sweep`] on the lane-parallel engine: the same
/// `(mode, clients)` cells, but each cell warms the shared file first
/// and then runs its sessions concurrently on `lane_threads` host
/// threads. `lane_threads = None` routes the identical warmed workload
/// through the sequential engine — the oracle the CI diff gate compares
/// against.
///
/// The warm pass pins the whole hot set before any lane starts, and the
/// hot set is held strictly below every cache capacity so nothing
/// evicts mid-run. That is the commutativity discipline under which the
/// parallel engine is byte-exact, so the printed tables are identical
/// for the oracle and for every `lane_threads` value. Cells run one
/// after another — the parallelism under test is *inside* each cell.
///
/// `faults` arms every cell's rig with the given spec and seed. Faulted
/// outcomes derive from per-lane `(seed, lane)` fault plans inside the
/// parallel engine, so the reference for a faulted sweep is the
/// `lane_threads = Some(1)` run (not the sequential oracle), and the
/// printed tables must match it at every other thread count.
pub fn clients_sweep_lanes(
    scale: &Scale,
    shards: usize,
    lane_threads: Option<usize>,
    faults: Option<(&FaultSpec, u64)>,
) -> (SeriesTable, SeriesTable) {
    let mut thr = SeriesTable::new(
        "Client scaling, warmed hot set: delivered throughput (MB/s)",
        "clients",
    );
    let mut hits = SeriesTable::new(
        "Client scaling, warmed hot set: server cache hit ratio",
        "clients",
    );
    // Strictly below the 8 MiB fs buffer cache (and far below the
    // NCache), so the warm pass pins every block for the whole run.
    let file = scale.allhit_file.min(4 << 20);
    let span: u32 = 16 << 10;
    for mode in ServerMode::ALL {
        for clients in CLIENTS_SWEEP_POINTS {
            let params = NfsRigParams {
                shards,
                ..NfsRigParams::default()
            };
            let mut rig = match faults {
                Some((spec, seed)) => NfsRig::new_faulted(mode, params, spec, seed),
                None => NfsRig::new(mode, params),
            };
            let fh = rig.create_file("shared", file);
            let mut off = 0u64;
            while off < file {
                rig.read(fh, off as u32, 64 << 10);
                off += 64 << 10;
            }
            let per_session = (512 / clients).max(2);
            let sessions: Vec<Vec<DriverOp>> = (0..clients)
                .map(|sid| {
                    (0..per_session)
                        .map(|k| DriverOp::Read {
                            fh,
                            offset: ((sid as u64 * 7 + k as u64) * u64::from(span)
                                % (file - u64::from(span)))
                                as u32
                                / 4096
                                * 4096,
                            len: span,
                        })
                        .collect()
                })
                .collect();
            let opts = SessionsOptions::default();
            let (mut rig, r) = match lane_threads {
                Some(n) => {
                    run_nfs_sessions_parallel(rig, sessions, &opts, n, CLIENTS_SWEEP_LANE_SEED)
                }
                None => run_nfs_sessions(rig, sessions, &opts),
            };
            let hit_ratio = match mode {
                ServerMode::NCache => rig
                    .module()
                    .map_or(0.0, |m| m.borrow().stats().hit_ratio()),
                _ => {
                    let bc = rig.server_mut().fs_mut().cache_stats();
                    let looked = bc.hits + bc.misses;
                    if looked == 0 {
                        0.0
                    } else {
                        bc.hits as f64 / looked as f64
                    }
                }
            };
            thr.put(clients as f64, mode.label(), r.throughput_mbs);
            hits.put(clients as f64, mode.label(), hit_ratio);
        }
    }
    (thr, hits)
}

/// Offered-load factors swept by [`overload_sweep`], as multiples of each
/// build's measured closed-loop capacity: from half load to twice past
/// saturation.
pub const OVERLOAD_SWEEP_FACTORS: [f64; 5] = [0.5, 0.8, 1.0, 1.2, 2.0];

/// Root seed for the overload sweep's arrival and popularity draws.
pub const OVERLOAD_SWEEP_SEED: u64 = 29;

/// The open-loop overload sweep: each build's closed-loop capacity is
/// probed first, then a seeded Poisson arrival schedule offers each
/// [`OVERLOAD_SWEEP_FACTORS`] multiple of it against a warmed Zipf hot
/// set. Returns three tables over the offered-load factor: delivered
/// goodput per build, tail latency (p50/p99/p999, µs) per build, and the
/// NCache build's per-stage share of end-to-end latency — the curve that
/// names the stage the tail migrates into past saturation.
pub fn overload_sweep(scale: &Scale) -> (SeriesTable, SeriesTable, SeriesTable) {
    overload_sweep_with(scale, None, executor::thread_count(None), 1)
}

/// As [`overload_sweep`], traced into `rec` (per-request spans, latency
/// and stage histograms land in the recorder for the attribution report).
pub fn overload_sweep_traced(
    scale: &Scale,
    rec: &obs::Recorder,
) -> (SeriesTable, SeriesTable, SeriesTable) {
    overload_sweep_with(scale, Some(rec), executor::thread_count(None), 1)
}

/// [`overload_sweep`] on explicit worker and NCache shard counts. One
/// cell per `(mode, factor)`; the open-loop engine is single-threaded
/// inside each cell and the cells are seeded by position, so the tables
/// (and an attached recorder's histograms, absorbed in cell order) are
/// byte-identical at any `threads` and any `shards`.
pub fn overload_sweep_with(
    scale: &Scale,
    rec: Option<&obs::Recorder>,
    threads: usize,
    shards: usize,
) -> (SeriesTable, SeriesTable, SeriesTable) {
    let mut goodput = SeriesTable::new(
        "Overload sweep: delivered goodput (MB/s)",
        "offered/capacity",
    );
    let mut tails = SeriesTable::new(
        "Overload sweep: request latency quantiles (us)",
        "offered/capacity",
    );
    let mut shares = SeriesTable::new(
        "Overload sweep: ncache stage share of end-to-end latency",
        "offered/capacity",
    );
    let cells: Vec<(ServerMode, f64)> = ServerMode::ALL
        .into_iter()
        .flat_map(|mode| OVERLOAD_SWEEP_FACTORS.into_iter().map(move |f| (mode, f)))
        .collect();
    // The hot set fits every build's cache, so after the warm pass the
    // sweep measures queueing, not eviction.
    let file = scale.allhit_file.min(4 << 20);
    let span: u32 = 16 << 10;
    let results = run_cells(threads, cells.len(), |i| {
        let (mode, factor) = cells[i];
        let cell_rec = cell_recorder(rec);
        let params = NfsRigParams {
            shards,
            ..NfsRigParams::default()
        };
        let mut rig = NfsRig::new(mode, params);
        attach_nfs(&mut rig, cell_rec.as_ref());
        let fh = rig.create_file("hot", file);
        let mut off = 0u64;
        while off < file {
            rig.read(fh, off as u32, span);
            off += u64::from(span);
        }
        // Drop the warm-up's storage backlog so the first measured
        // request's burst chain carries only its own work.
        let _ = rig.server_mut().fs_mut().store_mut().take_io_log();
        // Closed-loop capacity probe: 8 saturating sessions over the same
        // hot set. Identical across factors, so offered rates scale
        // exactly with the factor axis.
        let probe: Vec<Vec<DriverOp>> = (0..8)
            .map(|sid| {
                (0..32)
                    .map(|k| DriverOp::Read {
                        fh,
                        offset: ((sid as u64 * 7 + k as u64) * u64::from(span)
                            % (file - u64::from(span)))
                            as u32
                            / 4096
                            * 4096,
                        len: span,
                    })
                    .collect()
            })
            .collect();
        let (rig, cap) = run_nfs_sessions(rig, probe, &SessionsOptions::default());
        let capacity = cap.ops_per_sec.max(1.0);
        let mean_interarrival_ns = ((1e9 / (factor * capacity)).round() as u64).max(1);
        let ops = crate::openloop::zipf_reads(
            executor::derive_seed(OVERLOAD_SWEEP_SEED, i as u64),
            fh,
            scale.overload_requests,
            file,
            span,
            1.0,
        );
        let opts = crate::openloop::OpenLoopOptions {
            mean_interarrival_ns,
            seed: executor::derive_seed(OVERLOAD_SWEEP_SEED, 100 + i as u64),
            ..crate::openloop::OpenLoopOptions::default()
        };
        let (_rig, r) = crate::openloop::run_open_loop(rig, ops, &opts);
        (r, cell_rec)
    });
    for ((mode, factor), (r, cell_rec)) in cells.iter().zip(results) {
        absorb_cell(rec, cell_rec);
        goodput.put(*factor, mode.label(), r.goodput_mbs);
        for (q, name) in [(0.5, "p50"), (0.99, "p99"), (0.999, "p999")] {
            tails.put(
                *factor,
                &format!("{} {}", mode.label(), name),
                r.latency.quantile(q) as f64 / 1000.0,
            );
        }
        if *mode == ServerMode::NCache && r.latency.sum > 0 {
            for st in &r.stages {
                shares.put(
                    *factor,
                    st.stage,
                    (st.queue_ns + st.service_ns) as f64 / r.latency.sum as f64,
                );
            }
        }
    }
    (goodput, tails, shares)
}

/// Root seed for the overload ablation's arrival, popularity and backoff
/// draws (distinct from [`OVERLOAD_SWEEP_SEED`] so the two experiments
/// never share a stream).
pub const OVERLOAD_ABLATION_SEED: u64 = 31;

/// The protected-vs-unprotected overload ablation: the NCache build under
/// the open-loop sweep's offered-load factors, once with the control
/// plane off (every request executes, no deadline protection on the
/// server) and once with admission control, backpressure and client
/// retry budgets on. Both variants run the same mixed read/write
/// workload under the same per-request deadline, so the comparison
/// isolates the control plane itself.
///
/// Returns three tables over the offered-load factor: delivered (on-time)
/// goodput, latency quantiles (p50/p99, µs), and request outcomes
/// (shed / deadline-exceeded / retransmissions / gate rejections).
pub fn overload_ablation(scale: &Scale) -> (SeriesTable, SeriesTable, SeriesTable) {
    overload_ablation_with(scale, None, executor::thread_count(None), 1)
}

/// [`overload_ablation`] on explicit worker and NCache shard counts. One
/// cell per `(variant, factor)`, each single-threaded inside and seeded
/// by position, so the tables are byte-identical at any `threads` and
/// any `shards`.
pub fn overload_ablation_with(
    scale: &Scale,
    rec: Option<&obs::Recorder>,
    threads: usize,
    shards: usize,
) -> (SeriesTable, SeriesTable, SeriesTable) {
    let mut goodput = SeriesTable::new(
        "Overload ablation: delivered on-time goodput (MB/s)",
        "offered/capacity",
    );
    let mut tails = SeriesTable::new(
        "Overload ablation: request latency quantiles (us)",
        "offered/capacity",
    );
    let mut outcomes = SeriesTable::new(
        "Overload ablation: request outcomes per point",
        "offered/capacity",
    );
    let variants = ["unprotected", "protected"];
    let cells: Vec<(usize, f64)> = (0..variants.len())
        .flat_map(|v| OVERLOAD_SWEEP_FACTORS.into_iter().map(move |f| (v, f)))
        .collect();
    let file = scale.allhit_file.min(4 << 20);
    let span: u32 = 16 << 10;
    let results = run_cells(threads, cells.len(), |i| {
        let (variant, factor) = cells[i];
        let cell_rec = cell_recorder(rec);
        let params = NfsRigParams {
            shards,
            ..NfsRigParams::default()
        };
        let mut rig = NfsRig::new(ServerMode::NCache, params);
        attach_nfs(&mut rig, cell_rec.as_ref());
        let fh = rig.create_file("hot", file);
        let mut off = 0u64;
        while off < file {
            rig.read(fh, off as u32, span);
            off += u64::from(span);
        }
        let _ = rig.server_mut().fs_mut().store_mut().take_io_log();
        // Capacity is probed with the control plane OFF in both
        // variants: the offered schedules (and the deadline) must be
        // identical so the ablation isolates the gate, not the probe.
        let probe: Vec<Vec<DriverOp>> = (0..8)
            .map(|sid| {
                (0..32)
                    .map(|k| DriverOp::Read {
                        fh,
                        offset: ((sid as u64 * 7 + k as u64) * u64::from(span)
                            % (file - u64::from(span)))
                            as u32
                            / 4096
                            * 4096,
                        len: span,
                    })
                    .collect()
            })
            .collect();
        let (mut rig, cap) = run_nfs_sessions(rig, probe, &SessionsOptions::default());
        let capacity = cap.ops_per_sec.max(1.0);
        let per_op_ns = ((1e9 / capacity).round() as u64).max(1);
        let mean_interarrival_ns = ((1e9 / (factor * capacity)).round() as u64).max(1);
        // Every 8th request is a WRITE over the same hot range, so the
        // dirty-cache watermark and write-first shedding have something
        // to act on.
        let ops: Vec<DriverOp> = crate::openloop::zipf_reads(
            executor::derive_seed(OVERLOAD_ABLATION_SEED, i as u64),
            fh,
            scale.overload_requests,
            file,
            span,
            1.0,
        )
        .into_iter()
        .enumerate()
        .map(|(k, op)| match op {
            DriverOp::Read { fh, offset, len } if k % 8 == 7 => {
                DriverOp::Write { fh, offset, len }
            }
            other => other,
        })
        .collect();
        let mut opts = crate::openloop::OpenLoopOptions {
            mean_interarrival_ns,
            seed: executor::derive_seed(OVERLOAD_ABLATION_SEED, 100 + i as u64),
            // Both variants answer to the same client patience: a
            // request completing past 24 service times of queueing is
            // worthless to its caller.
            deadline_ns: per_op_ns.saturating_mul(24),
            ..crate::openloop::OpenLoopOptions::default()
        };
        if variant == 1 {
            // The in-flight bound is the primary control: it admits at
            // exactly the service rate when saturated (every completion
            // frees a slot), and 12 slots of queueing keep admitted
            // requests comfortably inside the 24-service-time deadline.
            // No token bucket — an open-loop rate cap either barely
            // rejects (queues still go critical) or over-rejects.
            let cfg = servers::ControlConfig {
                max_inflight: 12,
                queue_hi: 10,
                queue_lo: 6,
                token_cost_ns: 0,
                token_burst: 0,
                ..servers::ControlConfig::protective()
            };
            rig.enable_control(cfg);
            opts.retry = Some(servers::RetryPolicy::standard(executor::derive_seed(
                OVERLOAD_ABLATION_SEED,
                200 + i as u64,
            )));
        }
        let (rig, r) = crate::openloop::run_open_loop(rig, ops, &opts);
        let control = rig.control_stats().unwrap_or_default();
        (r, control, cell_rec)
    });
    for ((variant, factor), (r, control, cell_rec)) in cells.iter().zip(results) {
        absorb_cell(rec, cell_rec);
        let name = variants[*variant];
        goodput.put(*factor, name, r.goodput_mbs);
        for (q, label) in [(0.5, "p50"), (0.99, "p99")] {
            tails.put(
                *factor,
                &format!("{name} {label}"),
                r.latency.quantile(q) as f64 / 1000.0,
            );
        }
        outcomes.put(*factor, &format!("{name} shed"), r.shed as f64);
        outcomes.put(*factor, &format!("{name} late"), r.deadline_exceeded as f64);
        outcomes.put(*factor, &format!("{name} retries"), r.retries as f64);
        outcomes.put(*factor, &format!("{name} rejected"), control.rejected as f64);
    }
    (goodput, tails, outcomes)
}

/// Root seed for the adaptive-split ablation's Zipf draws (distinct from
/// the overload experiments' 29/31 so no streams are shared).
pub const ADAPTIVE_ABLATION_SEED: u64 = 37;

/// The static-vs-adaptive cache-split ablation (DESIGN.md §16): the
/// NCache build under a phase-changing Zipf workload, once with the
/// split controller frozen ([`ncache::SplitConfig`] with `dynamic:
/// false`) and once live. The initial split is deliberately lopsided —
/// most of the quota sits in the FS buffer cache, which under NCache
/// only ever sees NCache-miss traffic — so the live controller's job is
/// to discover, from marginal ghost-hit rates, that quota belongs in
/// the network-centric cache (the paper's §3.4 sizing argument, run in
/// reverse as a control experiment).
///
/// Six workload segments of Zipf-hot reads over a region larger than
/// any static partition; the hot region jumps at segment 3 (the phase
/// shift the windowed controller signal must register — a cumulative
/// ratio would not). Both variants run the identical request schedule
/// over the identical tiered backend, so the comparison isolates the
/// controller.
///
/// Returns three tables over the segment index: delivered goodput
/// (MB/s), NCache hit ratio per segment, and fast-tier residency
/// (blocks at segment end; the backend — placement map included — is
/// rebuilt per segment, so residency is per-segment, not cumulative).
pub fn adaptive_ablation(scale: &Scale) -> (SeriesTable, SeriesTable, SeriesTable) {
    adaptive_ablation_with(scale, None, executor::thread_count(None), 1)
}

/// [`adaptive_ablation`] on explicit worker and NCache shard counts. One
/// cell per variant, each single-threaded inside and seeded by position,
/// so the tables are byte-identical at any `threads` and any `shards`.
pub fn adaptive_ablation_with(
    scale: &Scale,
    rec: Option<&obs::Recorder>,
    threads: usize,
    shards: usize,
) -> (SeriesTable, SeriesTable, SeriesTable) {
    let mut goodput = SeriesTable::new(
        "Adaptive split ablation: delivered goodput (MB/s)",
        "segment",
    );
    let mut hits = SeriesTable::new(
        "Adaptive split ablation: NCache hit ratio per segment",
        "segment",
    );
    let mut residency = SeriesTable::new(
        "Adaptive split ablation: fast-tier residency (blocks)",
        "segment",
    );
    // Static first: the CI gate compares column 2 (static) against
    // column 3 (adaptive) row by row.
    let variants = ["static", "adaptive"];
    const SEGMENTS: usize = 6;
    const SESSIONS: usize = 4;
    const SPAN: u32 = 16 << 10;
    const FILE: u64 = 16 << 20;
    // Hot region: larger than either static partition, smaller than the
    // consolidated quota.
    const REGION: u64 = 5 << 20;
    const SHIFT_BASE: u32 = 8 << 20;
    let per_seg = scale.overload_requests.max(SESSIONS);
    let results = run_cells(threads, variants.len(), |variant| {
        let cell_rec = cell_recorder(rec);
        let params = NfsRigParams {
            // Lopsided on purpose: 4 MiB FS cache + 2 MiB NCache pool.
            fs_cache_blocks: 1024,
            ncache_bytes: 2 << 20,
            shards,
            ..NfsRigParams::default()
        };
        let mut rig = NfsRig::new(ServerMode::NCache, params);
        attach_nfs(&mut rig, cell_rec.as_ref());
        let fh = rig.create_file("hot", FILE);
        let cfg = ncache::SplitConfig {
            dynamic: variant == 1,
            epoch_ops: 16,
            step_blocks: 128,
            hysteresis: 12,
            cooldown_epochs: 2,
            min_fs_blocks: 64,
            min_ncache_bytes: 64 * ncache::adaptive::QUOTA_BLOCK,
            ghost_blocks: 4096,
        };
        rig.enable_adaptive(cfg);
        let opts = SessionsOptions {
            tier: Some(blockdev::TierConfig::nvme_front(2048)),
            ..SessionsOptions::default()
        };
        let mut rows = Vec::with_capacity(SEGMENTS);
        let mut prev = rig.module().expect("ncache build").borrow().stats();
        for seg in 0..SEGMENTS {
            let base = if seg >= SEGMENTS / 2 { SHIFT_BASE } else { 0 };
            let stream = crate::openloop::zipf_reads(
                executor::derive_seed(ADAPTIVE_ABLATION_SEED, seg as u64),
                fh,
                per_seg,
                REGION,
                SPAN,
                1.0,
            );
            let mut sessions: Vec<Vec<DriverOp>> = vec![Vec::new(); SESSIONS];
            for (k, op) in stream.into_iter().enumerate() {
                let DriverOp::Read { fh, offset, len } = op else {
                    unreachable!("zipf_reads only reads");
                };
                sessions[k % SESSIONS].push(DriverOp::Read {
                    fh,
                    offset: base + offset,
                    len,
                });
            }
            let (back, r) = run_nfs_sessions(rig, sessions, &opts);
            rig = back;
            let now = rig.module().expect("ncache build").borrow().stats();
            let lookups = now.lookups - prev.lookups;
            let ratio = if lookups == 0 {
                0.0
            } else {
                (now.hits - prev.hits) as f64 / lookups as f64
            };
            prev = now;
            let fast_blocks = r.tier.map_or(0, |t| t.fast_resident_blocks);
            rows.push((r.throughput_mbs, ratio, fast_blocks));
        }
        (rows, cell_rec)
    });
    for (variant, (rows, cell_rec)) in results.into_iter().enumerate() {
        absorb_cell(rec, cell_rec);
        let name = variants[variant];
        for (seg, (mbs, ratio, fast)) in rows.into_iter().enumerate() {
            goodput.put((seg + 1) as f64, name, mbs);
            hits.put((seg + 1) as f64, name, ratio);
            residency.put((seg + 1) as f64, name, fast as f64);
        }
    }
    (goodput, hits, residency)
}

/// One row of Table 2: copy operations per request, measured on the data
/// plane's ledgers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CopyCountRow {
    /// The path ("NFS read hit", ...).
    pub path: String,
    /// Copies per request per build, in [`ServerMode::ALL`] order.
    pub copies: [u64; 3],
}

/// Table 2: data copies per request for every path, per build. The
/// original build must measure exactly the paper's numbers (NFS read 2/3,
/// write 1/2; kHTTPd 1/2); the zero-copy builds measure 0 on regular data.
pub fn table2() -> Vec<CopyCountRow> {
    table2_with(None, executor::thread_count(None))
}

/// As [`table2`], with every rig (and its copy ledgers) reporting into
/// `rec`, so each measured copy also appears as a trace event.
pub fn table2_traced(rec: &obs::Recorder) -> Vec<CopyCountRow> {
    table2_with(Some(rec), executor::thread_count(None))
}

/// [`table2`] on an explicit worker count; one cell per server build.
pub fn table2_with(rec: Option<&obs::Recorder>, threads: usize) -> Vec<CopyCountRow> {
    table2_impl(rec, threads, None)
}

/// [`table2`] under a seeded fault schedule: the same per-path
/// measurement, but every exchange crosses faulty links and the copy
/// counts include whatever recovery work the schedule forces. Still
/// deterministic: the same `(spec, seed)` yields identical rows at any
/// thread count.
pub fn table2_faulted(
    spec: &FaultSpec,
    seed: u64,
    rec: Option<&obs::Recorder>,
    threads: usize,
) -> Vec<CopyCountRow> {
    table2_impl(rec, threads, Some((*spec, seed)))
}

fn table2_impl(
    rec: Option<&obs::Recorder>,
    threads: usize,
    faults: Option<(FaultSpec, u64)>,
) -> Vec<CopyCountRow> {
    let mut rows = vec![
        CopyCountRow {
            path: "NFS read (hit)".into(),
            copies: [0; 3],
        },
        CopyCountRow {
            path: "NFS read (miss)".into(),
            copies: [0; 3],
        },
        CopyCountRow {
            path: "NFS write (overwritten)".into(),
            copies: [0; 3],
        },
        CopyCountRow {
            path: "NFS write (flushed)".into(),
            copies: [0; 3],
        },
        CopyCountRow {
            path: "kHTTPd (hit)".into(),
            copies: [0; 3],
        },
        CopyCountRow {
            path: "kHTTPd (miss)".into(),
            copies: [0; 3],
        },
    ];
    let cells = ServerMode::ALL;
    let results = run_cells(threads, cells.len(), |i| {
        let mode = cells[i];
        let mut col = [0u64; 6];
        // --- NFS paths, one 4 KiB block per request so copy ops == the
        // paper's per-request copy counts.
        let params = NfsRigParams {
            read_ahead_blocks: 0,
            ..NfsRigParams::default()
        };
        let cell_rec = cell_recorder(rec);
        let mut rig = match faults {
            Some((spec, seed)) => {
                NfsRig::new_faulted(mode, params, &spec, executor::derive_seed(seed, i as u64))
            }
            None => NfsRig::new(mode, params),
        };
        attach_nfs(&mut rig, cell_rec.as_ref());
        let fh = rig.create_sparse_file("t2", 64 << 10);
        // Warm the metadata (inode + directory) so only data copies count.
        rig.getattr(fh);

        let copies = |rig: &NfsRig, before: &netbuf::LedgerSnapshot| {
            rig.ledgers()
                .app
                .snapshot()
                .delta_since(before)
                .payload_copies
        };

        // Read miss.
        let before = rig.ledgers().app.snapshot();
        rig.read(fh, 0, 4096);
        col[1] = copies(&rig, &before);
        // Read hit (same block again).
        let before = rig.ledgers().app.snapshot();
        rig.read(fh, 0, 4096);
        col[0] = copies(&rig, &before);
        // Write overwritten (block stays cached, not yet flushed).
        let before = rig.ledgers().app.snapshot();
        rig.write(fh, 4096, &vec![0x5Au8; 4096]);
        col[2] = copies(&rig, &before);
        // Write flushed: a fresh write plus the sync that pushes it out.
        // Metadata flushes (inode, bitmaps) are charged to the ledger's
        // separate metadata counters, so only the data-block copies count.
        // First drain the previous measurement's dirty block.
        rig.server_mut().fs_mut().sync().expect("sync");
        let before = rig.ledgers().app.snapshot();
        rig.write(fh, 8192, &vec![0x5Bu8; 4096]);
        rig.server_mut().fs_mut().sync().expect("sync");
        col[3] = copies(&rig, &before);

        // --- kHTTPd paths, one 4 KiB page.
        let mut web = match faults {
            Some((spec, seed)) => KhttpdRig::new_faulted(
                mode,
                KhttpdRigParams::default(),
                &spec,
                executor::derive_seed(seed, 100 + i as u64),
            ),
            None => KhttpdRig::new(mode, KhttpdRigParams::default()),
        };
        attach_web(&mut web, cell_rec.as_ref());
        web.publish_sparse("t2page", 4096);
        let (hdr, _) = web.get("/t2page"); // warms metadata and data
        assert_eq!(hdr.status, 200);
        web.quiesce(); // drop the page data (and metadata; only data copies count)
        let before = web.ledgers().app.snapshot();
        web.get("/t2page");
        col[5] = web
            .ledgers()
            .app
            .snapshot()
            .delta_since(&before)
            .payload_copies;
        let before = web.ledgers().app.snapshot();
        web.get("/t2page");
        col[4] = web
            .ledgers()
            .app
            .snapshot()
            .delta_since(&before)
            .payload_copies;
        (col, cell_rec)
    });
    for (mi, (col, cell_rec)) in results.into_iter().enumerate() {
        absorb_cell(rec, cell_rec);
        for (row, copies) in rows.iter_mut().zip(col) {
            row.copies[mi] = copies;
        }
    }
    rows
}

/// Renders Table 2 in the paper's layout.
pub fn render_table2(rows: &[CopyCountRow]) -> String {
    let mut out = String::from("# Table 2: data copies per request\n");
    out.push_str(&format!(
        "{:<26} {:>9} {:>9} {:>9}\n",
        "Path", "original", "ncache", "baseline"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<26} {:>9} {:>9} {:>9}\n",
            row.path, row.copies[0], row.copies[1], row.copies[2]
        ));
    }
    out
}

/// Table 1 (the modification footprint) — delegated to the servers crate.
pub fn table1() -> String {
    servers::hooks::render_table1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_original_matches_the_paper() {
        let rows = table2();
        let get = |path: &str| {
            rows.iter()
                .find(|r| r.path == path)
                .unwrap_or_else(|| panic!("row {path}"))
                .copies
        };
        // Paper Table 2, original build: read 2 hit / 3 miss; write 1
        // overwritten / 2 flushed; kHTTPd 1 hit / 2 miss.
        assert_eq!(get("NFS read (hit)")[0], 2);
        assert_eq!(get("NFS read (miss)")[0], 3);
        assert_eq!(get("NFS write (overwritten)")[0], 1);
        assert_eq!(get("NFS write (flushed)")[0], 2);
        assert_eq!(get("kHTTPd (hit)")[0], 1);
        assert_eq!(get("kHTTPd (miss)")[0], 2);
        // Zero-copy builds: no regular-data copies on any path.
        for row in &rows {
            assert_eq!(row.copies[1], 0, "{}: ncache copies", row.path);
            assert_eq!(row.copies[2], 0, "{}: baseline copies", row.path);
        }
        let rendered = render_table2(&rows);
        assert!(rendered.contains("NFS read (hit)"));
    }

    #[test]
    fn fault_sweep_is_thread_count_invariant() {
        let spec = FaultSpec {
            duplicate: 0.02,
            delay: 0.02,
            corrupt: 0.01,
            io: 0.02,
            ..FaultSpec::default()
        };
        let one = fault_sweep_with(&spec, 7, None, 1);
        let four = fault_sweep_with(&spec, 7, None, 4);
        assert_eq!(one, four, "same seed + spec must be identical at any thread count");
        // The zero-loss column completes everything; recovery appears as
        // loss rises.
        for mode in ServerMode::ALL {
            assert_eq!(one.0.get(0.0, mode.label()), Some(100.0), "{mode}");
        }
    }

    #[test]
    fn table2_faulted_is_deterministic_and_clean() {
        let spec = FaultSpec::parse("loss=0.05").expect("spec");
        let a = table2_faulted(&spec, 7, None, 1);
        let b = table2_faulted(&spec, 7, None, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn overload_sweep_is_thread_and_shard_invariant() {
        let scale = Scale {
            overload_requests: 64,
            ..Scale::quick()
        };
        let base = overload_sweep_with(&scale, None, 1, 1);
        let threaded = overload_sweep_with(&scale, None, 4, 1);
        assert_eq!(base, threaded, "identical at any thread count");
        let sharded = overload_sweep_with(&scale, None, 4, 8);
        assert_eq!(base, sharded, "identical at any shard count");
        let (_, tails, shares) = base;
        // Open-loop overload makes the tail grow: past saturation, p999
        // must dominate its half-load value on every build.
        for mode in ServerMode::ALL {
            let s = format!("{} p999", mode.label());
            let low = tails.get(0.5, &s).expect("half-load point");
            let high = tails.get(2.0, &s).expect("overload point");
            assert!(high > low, "{mode}: p999 {high} vs {low}");
        }
        // Stage shares are fractions of end-to-end latency and sum to 1
        // at every swept factor (the reconciliation invariant).
        for f in OVERLOAD_SWEEP_FACTORS {
            let total: f64 = shares
                .series()
                .iter()
                .filter_map(|s| shares.get(f, s))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "shares at {f} sum to {total}");
        }
    }

    #[test]
    fn overload_ablation_is_thread_and_shard_invariant() {
        // Needs enough arrivals for the unprotected backlog to outgrow
        // the deadline (the collapse the ablation exists to show); at 2x
        // the queue passes 24 service times after ~48 arrivals.
        let scale = Scale {
            overload_requests: 192,
            ..Scale::quick()
        };
        let base = overload_ablation_with(&scale, None, 1, 1);
        let threaded = overload_ablation_with(&scale, None, 4, 1);
        assert_eq!(base, threaded, "identical at any thread count");
        let sharded = overload_ablation_with(&scale, None, 4, 8);
        assert_eq!(base, sharded, "identical at any shard count");
        let (goodput, _, outcomes) = base;
        // The headline claim of the control plane: past saturation the
        // protected server delivers at least the unprotected goodput.
        let unprot = goodput.get(2.0, "unprotected").expect("unprotected 2.0");
        let prot = goodput.get(2.0, "protected").expect("protected 2.0");
        assert!(
            prot >= unprot,
            "protected goodput at 2x ({prot}) must not trail unprotected ({unprot})"
        );
        // Control off means nothing is rejected or retried on the
        // unprotected variant; on it, overload must actually trip the gate.
        assert_eq!(outcomes.get(2.0, "unprotected rejected"), Some(0.0));
        assert_eq!(outcomes.get(2.0, "unprotected retries"), Some(0.0));
        let rejected = outcomes.get(2.0, "protected rejected").expect("rejected");
        assert!(rejected > 0.0, "overload must trip the admission gate");
    }

    #[test]
    fn clients_sweep_is_thread_and_shard_invariant() {
        let scale = Scale::quick();
        let base = clients_sweep_with(&scale, None, 1, 1);
        let threaded = clients_sweep_with(&scale, None, 4, 1);
        assert_eq!(base, threaded, "identical at any thread count");
        let sharded = clients_sweep_with(&scale, None, 4, 8);
        assert_eq!(base, sharded, "identical at any shard count");
        // The axis is the monotone client count.
        let xs = base.0.xs();
        assert!(xs.windows(2).all(|w| w[0] < w[1]), "client axis monotone");
        assert_eq!(xs.len(), CLIENTS_SWEEP_POINTS.len());
    }
}
