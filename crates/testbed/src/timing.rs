//! From measured operations to simulated time.
//!
//! The data plane executes each request functionally and *counts* what it
//! did: physical copies (per-node ledgers), NCache management operations,
//! buffer-cache operations, block I/Os to the storage server. This module
//! turns those counts into service demands at the simulated hardware using
//! the calibrated [`CostModel`] — so NCache is only ever faster because it
//! demonstrably performed fewer expensive operations.

use netbuf::LedgerSnapshot;
use servers::initiator::IoRecord;
use sim::costs::CostModel;
use sim::time::Duration;

/// Transport of the client-facing leg (NFS runs on UDP, HTTP on TCP —
/// §5.5 attributes part of kHTTPd's higher per-packet cost to this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// UDP per-packet costs.
    Udp,
    /// TCP per-packet costs.
    Tcp,
}

/// A coalesced run of contiguous, same-direction block I/O — one iSCSI
/// command on the wire (the file system's read-ahead makes the average
/// disk request match the NFS request size, §5.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageBurst {
    /// First block.
    pub lbn: u64,
    /// Blocks in the run.
    pub blocks: u64,
    /// Direction.
    pub is_write: bool,
}

impl StorageBurst {
    /// Payload bytes this burst moves.
    pub fn bytes(&self) -> u64 {
        self.blocks * 4096
    }
}

/// Coalesces a request's block I/O log into bursts: adjacent records
/// merge when they continue the same direction contiguously.
pub fn coalesce(io: &[IoRecord]) -> Vec<StorageBurst> {
    let mut out: Vec<StorageBurst> = Vec::new();
    for rec in io {
        if let Some(last) = out.last_mut() {
            if last.is_write == rec.is_write && last.lbn + last.blocks == rec.lbn {
                last.blocks += 1;
                continue;
            }
        }
        out.push(StorageBurst {
            lbn: rec.lbn,
            blocks: 1,
            is_write: rec.is_write,
        });
    }
    out
}

/// Everything observed while one request executed on the data plane.
#[derive(Clone, Debug, Default)]
pub struct Observation {
    /// The application server's ledger delta.
    pub app: LedgerSnapshot,
    /// The storage server's ledger delta.
    pub storage: LedgerSnapshot,
    /// NCache management operations (lookups + insertions + remaps).
    pub ncache_ops: u64,
    /// Packets substituted at the driver hook.
    pub substituted_pkts: u64,
    /// Buffer-cache operations (lookups + insertions).
    pub bufcache_ops: u64,
    /// Coalesced storage I/O.
    pub bursts: Vec<StorageBurst>,
    /// Client→server message bytes (headers + payload).
    pub request_bytes: u64,
    /// Server→client message bytes.
    pub reply_bytes: u64,
    /// The server's admission gate rejected this request with a
    /// retryable error (NFS `RETRY_LATER` / HTTP 503): the reply is a
    /// short rejection header, no payload was delivered, and the client
    /// should back off and retransmit under its retry budget.
    pub rejected: bool,
}

/// The request's derived service demands.
#[derive(Clone, Debug)]
pub struct RequestDemands {
    /// Application-server CPU time.
    pub app_cpu: Duration,
    /// The storage I/O, each with its storage-server CPU demand. Read
    /// bursts are foreground (the request waits); write bursts are
    /// background write-behind (they consume resources but do not extend
    /// the request's latency).
    pub bursts: Vec<(StorageBurst, Duration)>,
    /// Client→server wire bytes.
    pub request_bytes: u64,
    /// Server→client wire bytes.
    pub reply_bytes: u64,
}

/// Derives simulated service demands from an observation.
///
/// The application CPU pays: fixed per-request processing, per-packet
/// costs on the client leg (`transport`) and the storage leg (TCP), the
/// measured physical copies and checksums, buffer-cache bookkeeping, and —
/// only in the NCache build, because only it performs them — cache
/// management and substitution. The storage CPU pays per-command, packet,
/// copy, and per-byte target costs.
pub fn derive(
    costs: &CostModel,
    transport: Transport,
    per_request_ns: u64,
    obs: &Observation,
) -> RequestDemands {
    // Client-leg packets at the app server: the request in, the reply out.
    let client_pkts = costs.segments(obs.request_bytes) + costs.segments(obs.reply_bytes);
    let client_pkt_cost = match transport {
        Transport::Udp => costs.udp_pkt_cost(client_pkts),
        Transport::Tcp => costs.tcp_pkt_cost(client_pkts),
    };

    // Storage-leg packets at *both* ends: data segments plus one
    // command/response exchange per burst. iSCSI rides TCP. The storage
    // server's CPU demand is computed per burst (the target's copies are
    // one per block per direction, verified by its ledger in tests).
    let mut storage_pkts = 0u64;
    let mut bursts = Vec::with_capacity(obs.bursts.len());
    for b in &obs.bursts {
        let pkts = costs.segments(b.bytes()) + 2;
        storage_pkts += pkts;
        let cpu = Duration::from_nanos(costs.iscsi_req_ns)
            + costs.tcp_pkt_cost(pkts)
            + costs.copy_cost(b.bytes())
            + costs.iscsi_byte_cost(b.bytes());
        bursts.push((*b, cpu));
    }

    let app_cpu = Duration::from_nanos(per_request_ns)
        + client_pkt_cost
        + costs.tcp_pkt_cost(storage_pkts)
        + costs.copy_cost(
            obs.app.payload_bytes_copied + obs.app.meta_bytes_copied + obs.app.header_bytes,
        )
        + costs.csum_cost(obs.app.csum_bytes)
        + costs.bufcache_ops_cost(obs.bufcache_ops)
        + costs.ncache_ops_cost(obs.ncache_ops)
        + costs.ncache_subst_cost(obs.substituted_pkts);

    RequestDemands {
        app_cpu,
        bursts,
        request_bytes: obs.request_bytes,
        reply_bytes: obs.reply_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::BlockClass;

    fn rec(lbn: u64, is_write: bool) -> IoRecord {
        IoRecord {
            lbn,
            is_write,
            class: BlockClass::Data,
        }
    }

    #[test]
    fn coalesce_merges_contiguous_runs() {
        let io = vec![rec(10, false), rec(11, false), rec(12, false), rec(20, false)];
        let bursts = coalesce(&io);
        assert_eq!(
            bursts,
            vec![
                StorageBurst {
                    lbn: 10,
                    blocks: 3,
                    is_write: false
                },
                StorageBurst {
                    lbn: 20,
                    blocks: 1,
                    is_write: false
                },
            ]
        );
        assert_eq!(bursts[0].bytes(), 3 * 4096);
    }

    #[test]
    fn coalesce_splits_on_direction_change() {
        let io = vec![rec(10, false), rec(11, true), rec(12, true)];
        let bursts = coalesce(&io);
        assert_eq!(bursts.len(), 2);
        assert!(!bursts[0].is_write);
        assert!(bursts[1].is_write);
        assert_eq!(bursts[1].blocks, 2);
    }

    #[test]
    fn coalesce_empty() {
        assert!(coalesce(&[]).is_empty());
    }

    #[test]
    fn more_copies_cost_more_app_cpu() {
        let costs = CostModel::pentium3_gige();
        let mut with_copies = Observation {
            reply_bytes: 32 << 10,
            request_bytes: 128,
            ..Observation::default()
        };
        let without = derive(&costs, Transport::Udp, costs.nfs_req_ns, &with_copies);
        with_copies.app.payload_bytes_copied = 2 * (32 << 10);
        with_copies.app.payload_copies = 2;
        let with = derive(&costs, Transport::Udp, costs.nfs_req_ns, &with_copies);
        assert!(with.app_cpu > without.app_cpu);
        let delta = with.app_cpu - without.app_cpu;
        assert_eq!(delta, costs.copy_cost(2 * (32 << 10)));
    }

    #[test]
    fn ncache_management_is_charged() {
        let costs = CostModel::pentium3_gige();
        let base = Observation {
            reply_bytes: 32 << 10,
            request_bytes: 128,
            ..Observation::default()
        };
        let plain = derive(&costs, Transport::Udp, costs.nfs_req_ns, &base);
        let mut managed = base;
        managed.ncache_ops = 8;
        managed.substituted_pkts = 8;
        let with = derive(&costs, Transport::Udp, costs.nfs_req_ns, &managed);
        assert!(with.app_cpu > plain.app_cpu, "overhead separates NCache from baseline");
    }

    #[test]
    fn tcp_leg_costs_more_than_udp() {
        let costs = CostModel::pentium3_gige();
        let obs = Observation {
            reply_bytes: 64 << 10,
            request_bytes: 200,
            ..Observation::default()
        };
        let udp = derive(&costs, Transport::Udp, 0, &obs);
        let tcp = derive(&costs, Transport::Tcp, 0, &obs);
        assert!(tcp.app_cpu > udp.app_cpu);
    }

    #[test]
    fn storage_bursts_load_both_cpus() {
        let costs = CostModel::pentium3_gige();
        let obs = Observation {
            bursts: vec![StorageBurst {
                lbn: 0,
                blocks: 8,
                is_write: false,
            }],
            ..Observation::default()
        };
        let d = derive(&costs, Transport::Udp, 0, &obs);
        assert_eq!(d.bursts.len(), 1);
        assert!(d.bursts[0].1 > Duration::ZERO, "bursts carry storage CPU");
        assert!(d.app_cpu > Duration::ZERO, "PDU processing costs app CPU too");
    }
}
