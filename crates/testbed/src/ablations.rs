//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each ablation flips exactly one mechanism of the NCache design and
//! measures what the paper's choice buys:
//!
//! 1. **Substitution off** — the headline mechanism. Without it the junk
//!    placeholders go out (as in the baseline build), so this isolates the
//!    CPU cost of substitution itself.
//! 2. **Checksum inheritance off** — substituted packets recompute their
//!    checksums in software (§1 argues inheritance avoids exactly this).
//! 3. **FS-cache share sweep** — the double-buffering question (§3.4):
//!    how much of the memory budget should the (duplicated) file-system
//!    cache keep when the network-centric cache backs it as a second
//!    level?
//! 4. **LBN-before-FHO lookup** — flipping §3.4's resolution order, which
//!    must produce stale reads after writes.

use servers::ServerMode;
use sim::stats::SeriesTable;

use crate::khttpd_rig::{KhttpdRig, KhttpdRigParams};
use crate::nfs_rig::{NfsRig, NfsRigParams};
use crate::runner::{run, DriverOp, RigDriver, RunOptions};

fn seq_reads(fh: u64, total: u64, req: u32) -> Vec<DriverOp> {
    (0..total / u64::from(req))
        .map(|i| DriverOp::Read {
            fh,
            offset: (i * u64::from(req)) as u32,
            len: req,
        })
        .collect()
}

/// Ablation 1 + 2: all-hit NFS throughput (2 NICs, 32 KB requests) with
/// substitution and checksum-inheritance toggled. Returns a table with one
/// row per variant.
pub fn ablation_mechanisms(hot_file: u64) -> SeriesTable {
    let mut table = SeriesTable::new(
        "Ablation: NCache mechanisms (all-hit NFS, 32 KB, 2 NICs, MB/s)",
        "variant",
    );
    let variants: [(&str, bool, bool); 3] = [
        ("full ncache", true, true),
        ("no csum inheritance", true, false),
        ("no substitution", false, true),
    ];
    for (i, (label, substitution, csum_inherit)) in variants.into_iter().enumerate() {
        let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
        if let Some(module) = rig.module() {
            let mut m = module.borrow_mut();
            let mut config = m.config();
            config.substitution = substitution;
            config.csum_inherit = csum_inherit;
            *m = ncache::NcacheModule::new(config, &rig.ledgers().app);
        }
        let fh = rig.create_file("hot", hot_file);
        for op in seq_reads(fh, hot_file, 32 << 10) {
            rig.run_op(&op);
        }
        let result = run(
            &mut rig,
            seq_reads(fh, hot_file, 32 << 10),
            &RunOptions {
                nics: 2,
                ..RunOptions::default()
            },
        );
        table.put(i as f64, "MB/s", result.throughput_mbs);
        table.put(i as f64, "cpu %", result.app_cpu_util * 100.0);
        let _ = label;
    }
    table
}

/// Human-readable variant names for [`ablation_mechanisms`] rows.
pub const MECHANISM_VARIANTS: [&str; 3] =
    ["full ncache", "no csum inheritance", "no substitution"];

/// Ablation 3: the double-buffering sweep. A fixed memory budget is split
/// between the FS buffer cache and the network-centric cache; the paper's
/// design keeps the FS share small. Returns throughput per FS share.
pub fn ablation_fs_cache_share(budget: u64, working_set: u64, requests: usize) -> SeriesTable {
    let mut table = SeriesTable::new(
        "Ablation: FS-cache share of the memory budget (kHTTPd, MB/s)",
        "fs share %",
    );
    for share_pct in [6u64, 12, 25, 50, 75] {
        let fs_bytes = budget * share_pct / 100;
        let params = KhttpdRigParams {
            volume_blocks: (working_set / 4096) * 2 + 4096,
            fs_cache_blocks: (fs_bytes / 4096) as usize,
            ncache_bytes: (budget - fs_bytes).max(1 << 20),
            read_ahead_blocks: 8,
            inode_count: 64 << 10,
            shards: 1,
        };
        let mut rig = KhttpdRig::new(ServerMode::NCache, params);
        let set = workload::specweb::PageSet::with_working_set(working_set);
        for (name, size) in set.pages() {
            rig.publish_sparse(&name, size);
        }
        rig.quiesce();
        let gen = workload::specweb::SpecWeb::new(set, 99);
        let ops: Vec<DriverOp> = gen
            .take(requests + requests / 3)
            .map(|op| DriverOp::Get { path: op.path })
            .collect();
        let (warm, measured) = ops.split_at(requests / 3);
        for op in warm {
            rig.run_op(op);
        }
        let result = run(&mut rig, measured.to_vec(), &RunOptions::default());
        table.put(share_pct as f64, "MB/s", result.throughput_mbs);
    }
    table
}

/// Ablation 4: flip the FHO-before-LBN resolution order and count stale
/// reads. Returns `(stale_reads_with_paper_order, stale_reads_lbn_first)`
/// over a read → write → read pattern across `blocks` blocks.
pub fn ablation_lookup_order(blocks: u32) -> (u32, u32) {
    let mut stale = [0u32; 2];
    for (variant, lbn_first) in [(0usize, false), (1, true)] {
        let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
        let fh = rig.create_file("order", u64::from(blocks) * 4096);
        if let Some(module) = rig.module() {
            module
                .borrow_mut()
                .cache_mut()
                .set_resolve_lbn_first(lbn_first);
        }
        for blk in 0..blocks {
            // Read first: the block lands in the LBN cache.
            rig.read(fh, blk * 4096, 4096);
            // Overwrite: the fresh data lands in the FHO cache; the stale
            // LBN chunk is still resident.
            let fresh = vec![blk as u8 ^ 0x77; 4096];
            rig.write(fh, blk * 4096, &fresh);
            // Read back: the paper's order must return the fresh bytes.
            let got = rig.read(fh, blk * 4096, 4096);
            if got != fresh {
                stale[variant] += 1;
            }
        }
    }
    (stale[0], stale[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_and_inheritance_cost_what_they_save() {
        let t = ablation_mechanisms(1 << 20);
        let full = t.get(0.0, "MB/s").expect("cell");
        let no_csum = t.get(1.0, "MB/s").expect("cell");
        let no_subst = t.get(2.0, "MB/s").expect("cell");
        // Recomputing checksums costs throughput on the CPU-bound path.
        assert!(
            no_csum < full,
            "inheritance must help: {no_csum} vs {full}"
        );
        // Without substitution the server does strictly less work (it
        // ships junk), so it cannot be slower than the full design; the
        // gap is the substitution cost the paper accepts for correctness.
        assert!(no_subst >= full * 0.98, "{no_subst} vs {full}");
    }

    #[test]
    fn small_fs_cache_share_wins_under_pressure() {
        // With the working set around the budget, giving most memory to
        // the network-centric cache (small FS share) must beat giving most
        // of it to the duplicating FS cache.
        let t = ablation_fs_cache_share(24 << 20, 24 << 20, 300);
        let small = t.get(12.0, "MB/s").expect("cell");
        let large = t.get(75.0, "MB/s").expect("cell");
        assert!(
            small > large,
            "small FS share {small} must beat large {large} (double buffering)"
        );
    }

    #[test]
    fn lbn_first_order_serves_stale_data() {
        let (paper_order, lbn_first) = ablation_lookup_order(16);
        assert_eq!(paper_order, 0, "the paper's FHO-first order is always fresh");
        assert!(
            lbn_first > 0,
            "LBN-first must exhibit the staleness bug (§3.4)"
        );
    }
}
