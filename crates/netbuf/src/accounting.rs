//! The copy ledger: counts every data-movement operation in the data plane.
//!
//! Table 2 of the paper reports *data copying operations per request* for
//! each server configuration and path. Rather than asserting those numbers,
//! the reproduction measures them: every physical copy, logical copy,
//! checksum pass and header movement flows through a [`CopyLedger`], and the
//! testbed's CPU model converts the counted operations into simulated time.
//!
//! Since the concurrent-data-plane refactor the counters are plain
//! atomics (a per-charge mutex would serialize the read fast path right
//! back into a global lock), and the ledger additionally supports
//! *per-thread observation windows*
//! ([`CopyLedger::begin_window`]/[`CopyLedger::end_window`]): a window
//! accumulates only the charges made by the calling thread, which is
//! exactly a request's charge set in the lane-parallel engine (every
//! charge of an op happens on its lane's thread). Windows are what let
//! concurrent readers attribute charges per-op without excluding each
//! other the way snapshot-delta attribution under a big lock did.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A point-in-time copy of the ledger's counters.
///
/// Subtract two snapshots ([`LedgerSnapshot::delta_since`]) to obtain the
/// operations performed by a single request — this is how the Table 2
/// benchmark extracts per-request copy counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerSnapshot {
    /// Number of physical *regular-data* payload copy operations (each
    /// moves one payload's worth of bytes between layers). This is the
    /// column Table 2 reports.
    pub payload_copies: u64,
    /// Total payload bytes moved by physical copies.
    pub payload_bytes_copied: u64,
    /// Number of physical copies of *metadata* blocks (inodes,
    /// directories, bitmaps, indirect blocks). The paper's servers copy
    /// these in every build; they cost CPU but are not Table 2's regular
    /// data copies.
    pub meta_copies: u64,
    /// Total metadata bytes moved by physical copies.
    pub meta_bytes_copied: u64,
    /// Number of logical copies (key/pointer movements instead of payload).
    pub logical_copies: u64,
    /// Header bytes built or moved (metadata; the paper treats these as
    /// negligible but we count them for completeness).
    pub header_bytes: u64,
    /// Bytes checksummed in software.
    pub csum_bytes: u64,
    /// Checksum passes avoided by inheritance/pre-computation (NCache §1).
    pub csum_inherited: u64,
    /// Buffer allocations performed.
    pub allocations: u64,
}

impl LedgerSnapshot {
    /// The operations performed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is not actually earlier;
    /// counters are monotone.
    pub fn delta_since(&self, earlier: &LedgerSnapshot) -> LedgerSnapshot {
        LedgerSnapshot {
            payload_copies: self.payload_copies - earlier.payload_copies,
            payload_bytes_copied: self.payload_bytes_copied - earlier.payload_bytes_copied,
            meta_copies: self.meta_copies - earlier.meta_copies,
            meta_bytes_copied: self.meta_bytes_copied - earlier.meta_bytes_copied,
            logical_copies: self.logical_copies - earlier.logical_copies,
            header_bytes: self.header_bytes - earlier.header_bytes,
            csum_bytes: self.csum_bytes - earlier.csum_bytes,
            csum_inherited: self.csum_inherited - earlier.csum_inherited,
            allocations: self.allocations - earlier.allocations,
        }
    }
}

impl obs::StatsSnapshot for LedgerSnapshot {
    fn source(&self) -> &'static str {
        "copy-ledger"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("payload_copies", self.payload_copies),
            ("payload_bytes_copied", self.payload_bytes_copied),
            ("meta_copies", self.meta_copies),
            ("meta_bytes_copied", self.meta_bytes_copied),
            ("logical_copies", self.logical_copies),
            ("header_bytes", self.header_bytes),
            ("csum_bytes", self.csum_bytes),
            ("csum_inherited", self.csum_inherited),
            ("allocations", self.allocations),
        ]
    }
}

impl fmt::Display for LedgerSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "copies={} ({} B), meta={} ({} B), logical={}, hdr={} B, csum={} B (inherited {}), allocs={}",
            self.payload_copies,
            self.payload_bytes_copied,
            self.meta_copies,
            self.meta_bytes_copied,
            self.logical_copies,
            self.header_bytes,
            self.csum_bytes,
            self.csum_inherited,
            self.allocations
        )
    }
}

/// The shared counter cells. Plain relaxed atomics: each field is an
/// independent monotone event count, and whole-snapshot reads are only
/// compared at quiescent points (sequential code, or after the lane
/// threads have joined), where every load reads a settled value.
#[derive(Debug, Default)]
struct Shared {
    payload_copies: AtomicU64,
    payload_bytes_copied: AtomicU64,
    meta_copies: AtomicU64,
    meta_bytes_copied: AtomicU64,
    logical_copies: AtomicU64,
    header_bytes: AtomicU64,
    csum_bytes: AtomicU64,
    csum_inherited: AtomicU64,
    allocations: AtomicU64,
    /// Cheap gate in front of the recorder mutex: charges skip the lock
    /// entirely until a recorder is attached.
    has_recorder: AtomicBool,
    /// Mirror every charge as an [`obs::EventKind::Copy`] event. Lives
    /// inside the shared state so attaching once propagates to all clones
    /// of the handle. The recorder never calls back into the ledger, so
    /// emitting under this lock cannot deadlock.
    recorder: Mutex<Option<obs::Recorder>>,
}

thread_local! {
    /// Open observation windows on this thread: (ledger identity, charges
    /// accumulated since the window opened). A Vec because windows on
    /// *different* ledgers routinely nest (an op windows the app and
    /// storage ledgers together).
    static WINDOWS: RefCell<Vec<(usize, LedgerSnapshot)>> =
        const { RefCell::new(Vec::new()) };
}

/// Shared handle to a copy ledger. Cloning the handle shares the counters.
///
/// # Examples
///
/// ```
/// use netbuf::CopyLedger;
/// let ledger = CopyLedger::new();
/// let before = ledger.snapshot();
/// ledger.charge_payload_copy(4096);
/// let delta = ledger.snapshot().delta_since(&before);
/// assert_eq!(delta.payload_copies, 1);
/// assert_eq!(delta.payload_bytes_copied, 4096);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CopyLedger {
    shared: Arc<Shared>,
}

impl CopyLedger {
    /// Creates a ledger with all counters at zero.
    pub fn new() -> Self {
        CopyLedger::default()
    }

    /// Mirrors every subsequent charge (from any clone of this handle) as
    /// an [`obs::EventKind::Copy`] event on `rec`.
    pub fn attach_recorder(&self, rec: &obs::Recorder) {
        *self.shared.recorder.lock().expect("copy ledger poisoned") = Some(rec.clone());
        self.shared.has_recorder.store(true, Ordering::Relaxed);
    }

    fn emit(&self, category: &'static str, bytes: u64) {
        if self.shared.has_recorder.load(Ordering::Relaxed) {
            if let Some(rec) = &*self.shared.recorder.lock().expect("copy ledger poisoned") {
                rec.emit(obs::EventKind::Copy { category, bytes });
            }
        }
    }

    fn ledger_id(&self) -> usize {
        Arc::as_ptr(&self.shared) as usize
    }

    /// Applies `add` to every window this thread has open on this ledger.
    fn tally_windows(&self, add: impl Fn(&mut LedgerSnapshot)) {
        let id = self.ledger_id();
        WINDOWS.with(|w| {
            for (k, snap) in w.borrow_mut().iter_mut() {
                if *k == id {
                    add(snap);
                }
            }
        });
    }

    /// Opens an observation window: until the matching
    /// [`CopyLedger::end_window`], every charge made *by this thread*
    /// through any clone of this handle also accumulates into the window.
    /// Windows on the same ledger nest (each sees the charges made while
    /// it is open); windows on different ledgers are independent.
    pub fn begin_window(&self) {
        let id = self.ledger_id();
        WINDOWS.with(|w| w.borrow_mut().push((id, LedgerSnapshot::default())));
    }

    /// Closes the innermost window this thread has open on this ledger
    /// and returns the charges it observed.
    ///
    /// # Panics
    ///
    /// Panics if this thread has no open window on this ledger.
    pub fn end_window(&self) -> LedgerSnapshot {
        let id = self.ledger_id();
        WINDOWS.with(|w| {
            let mut w = w.borrow_mut();
            let idx = w
                .iter()
                .rposition(|(k, _)| *k == id)
                .expect("end_window without a matching begin_window");
            w.remove(idx).1
        })
    }

    /// Records one physical copy of `bytes` payload bytes.
    pub fn charge_payload_copy(&self, bytes: u64) {
        self.shared.payload_copies.fetch_add(1, Ordering::Relaxed);
        self.shared
            .payload_bytes_copied
            .fetch_add(bytes, Ordering::Relaxed);
        self.tally_windows(|s| {
            s.payload_copies += 1;
            s.payload_bytes_copied += bytes;
        });
        self.emit("payload", bytes);
    }

    /// Records one physical copy of `bytes` metadata bytes.
    pub fn charge_meta_copy(&self, bytes: u64) {
        self.shared.meta_copies.fetch_add(1, Ordering::Relaxed);
        self.shared
            .meta_bytes_copied
            .fetch_add(bytes, Ordering::Relaxed);
        self.tally_windows(|s| {
            s.meta_copies += 1;
            s.meta_bytes_copied += bytes;
        });
        self.emit("meta", bytes);
    }

    /// Records one logical copy (a key or pointer moved instead of data).
    pub fn charge_logical_copy(&self) {
        self.shared.logical_copies.fetch_add(1, Ordering::Relaxed);
        self.tally_windows(|s| s.logical_copies += 1);
        self.emit("logical", 0);
    }

    /// Records `bytes` of protocol header construction or movement.
    pub fn charge_header_bytes(&self, bytes: u64) {
        self.shared.header_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.tally_windows(|s| s.header_bytes += bytes);
        self.emit("header", bytes);
    }

    /// Records a software checksum pass over `bytes` bytes.
    pub fn charge_csum(&self, bytes: u64) {
        self.shared.csum_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.tally_windows(|s| s.csum_bytes += bytes);
        self.emit("csum", bytes);
    }

    /// Records a checksum pass that was *avoided* by inheriting or reusing
    /// a stored checksum.
    pub fn charge_csum_inherited(&self) {
        self.shared.csum_inherited.fetch_add(1, Ordering::Relaxed);
        self.tally_windows(|s| s.csum_inherited += 1);
        self.emit("csum_inherited", 0);
    }

    /// Records a buffer allocation.
    pub fn charge_allocation(&self) {
        self.shared.allocations.fetch_add(1, Ordering::Relaxed);
        self.tally_windows(|s| s.allocations += 1);
        self.emit("alloc", 0);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> LedgerSnapshot {
        let s = &self.shared;
        LedgerSnapshot {
            payload_copies: s.payload_copies.load(Ordering::Relaxed),
            payload_bytes_copied: s.payload_bytes_copied.load(Ordering::Relaxed),
            meta_copies: s.meta_copies.load(Ordering::Relaxed),
            meta_bytes_copied: s.meta_bytes_copied.load(Ordering::Relaxed),
            logical_copies: s.logical_copies.load(Ordering::Relaxed),
            header_bytes: s.header_bytes.load(Ordering::Relaxed),
            csum_bytes: s.csum_bytes.load(Ordering::Relaxed),
            csum_inherited: s.csum_inherited.load(Ordering::Relaxed),
            allocations: s.allocations.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        let s = &self.shared;
        s.payload_copies.store(0, Ordering::Relaxed);
        s.payload_bytes_copied.store(0, Ordering::Relaxed);
        s.meta_copies.store(0, Ordering::Relaxed);
        s.meta_bytes_copied.store(0, Ordering::Relaxed);
        s.logical_copies.store(0, Ordering::Relaxed);
        s.header_bytes.store(0, Ordering::Relaxed);
        s.csum_bytes.store(0, Ordering::Relaxed);
        s.csum_inherited.store(0, Ordering::Relaxed);
        s.allocations.store(0, Ordering::Relaxed);
    }

    /// Whether two handles share the same underlying counters.
    pub fn same_ledger(&self, other: &CopyLedger) -> bool {
        Arc::ptr_eq(&self.shared, &other.shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let l = CopyLedger::new();
        l.charge_payload_copy(100);
        l.charge_payload_copy(200);
        l.charge_meta_copy(50);
        l.charge_logical_copy();
        l.charge_header_bytes(42);
        l.charge_csum(300);
        l.charge_csum_inherited();
        l.charge_allocation();
        let s = l.snapshot();
        assert_eq!(s.payload_copies, 2);
        assert_eq!(s.payload_bytes_copied, 300);
        assert_eq!(s.meta_copies, 1);
        assert_eq!(s.meta_bytes_copied, 50);
        assert_eq!(s.logical_copies, 1);
        assert_eq!(s.header_bytes, 42);
        assert_eq!(s.csum_bytes, 300);
        assert_eq!(s.csum_inherited, 1);
        assert_eq!(s.allocations, 1);
    }

    #[test]
    fn clones_share_counters() {
        let a = CopyLedger::new();
        let b = a.clone();
        b.charge_payload_copy(10);
        assert_eq!(a.snapshot().payload_copies, 1);
        assert!(a.same_ledger(&b));
        assert!(!a.same_ledger(&CopyLedger::new()));
    }

    #[test]
    fn delta_since_isolates_a_request() {
        let l = CopyLedger::new();
        l.charge_payload_copy(10);
        let before = l.snapshot();
        l.charge_payload_copy(20);
        l.charge_logical_copy();
        let d = l.snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 1);
        assert_eq!(d.payload_bytes_copied, 20);
        assert_eq!(d.logical_copies, 1);
    }

    #[test]
    fn reset_zeroes() {
        let l = CopyLedger::new();
        l.charge_payload_copy(10);
        l.reset();
        assert_eq!(l.snapshot(), LedgerSnapshot::default());
    }

    #[test]
    fn display_is_nonempty() {
        let s = CopyLedger::new().snapshot().to_string();
        assert!(s.contains("copies=0"));
    }

    #[test]
    fn attached_recorder_mirrors_charges() {
        let l = CopyLedger::new();
        let rec = obs::Recorder::new();
        rec.enable(obs::TraceConfig::default());
        l.attach_recorder(&rec);
        let clone = l.clone(); // attach propagates through shared state
        clone.charge_payload_copy(4096);
        l.charge_csum(4096);
        l.charge_logical_copy();
        assert_eq!(rec.counter("copy.payload.ops"), 1);
        assert_eq!(rec.counter("copy.payload.bytes"), 4096);
        assert_eq!(rec.counter("copy.csum.bytes"), 4096);
        assert_eq!(rec.counter("copy.logical.ops"), 1);
        assert_eq!(rec.events().len(), 3);
    }

    #[test]
    fn snapshot_exposes_stats_counters() {
        use obs::StatsSnapshot;
        let l = CopyLedger::new();
        l.charge_payload_copy(100);
        let snap = l.snapshot();
        assert_eq!(snap.source(), "copy-ledger");
        let counters = snap.counters();
        assert!(counters.contains(&("payload_copies", 1)));
        assert!(counters.contains(&("payload_bytes_copied", 100)));
    }

    #[test]
    fn ledger_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CopyLedger>();
    }

    #[test]
    fn window_sees_only_this_threads_charges() {
        let l = CopyLedger::new();
        l.charge_payload_copy(1); // before the window: invisible
        l.begin_window();
        l.charge_payload_copy(10);
        l.charge_header_bytes(42);
        // A charge from another thread lands in the global counters but
        // not in this thread's window.
        std::thread::scope(|s| {
            let l2 = l.clone();
            s.spawn(move || l2.charge_payload_copy(100));
        });
        let w = l.end_window();
        assert_eq!(w.payload_copies, 1);
        assert_eq!(w.payload_bytes_copied, 10);
        assert_eq!(w.header_bytes, 42);
        let total = l.snapshot();
        assert_eq!(total.payload_copies, 3);
        assert_eq!(total.payload_bytes_copied, 111);
    }

    #[test]
    fn windows_on_different_ledgers_are_independent() {
        let a = CopyLedger::new();
        let b = CopyLedger::new();
        a.begin_window();
        b.begin_window();
        a.charge_meta_copy(7);
        b.charge_csum(9);
        let wa = a.end_window();
        let wb = b.end_window();
        assert_eq!(wa.meta_copies, 1);
        assert_eq!(wa.meta_bytes_copied, 7);
        assert_eq!(wa.csum_bytes, 0);
        assert_eq!(wb.csum_bytes, 9);
        assert_eq!(wb.meta_copies, 0);
    }

    #[test]
    fn nested_windows_on_one_ledger_both_observe() {
        let l = CopyLedger::new();
        l.begin_window();
        l.charge_logical_copy();
        l.begin_window();
        l.charge_logical_copy();
        let inner = l.end_window();
        l.charge_logical_copy();
        let outer = l.end_window();
        assert_eq!(inner.logical_copies, 1);
        assert_eq!(outer.logical_copies, 3);
    }

    #[test]
    fn window_charges_go_through_any_clone() {
        let l = CopyLedger::new();
        let clone = l.clone();
        l.begin_window();
        clone.charge_allocation();
        assert_eq!(l.end_window().allocations, 1);
    }

    #[test]
    #[should_panic(expected = "end_window without a matching begin_window")]
    fn end_window_without_begin_panics() {
        CopyLedger::new().end_window();
    }

    #[test]
    fn concurrent_charges_sum_exactly() {
        let l = CopyLedger::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = l.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        l.charge_payload_copy(3);
                    }
                });
            }
        });
        let snap = l.snapshot();
        assert_eq!(snap.payload_copies, 4000);
        assert_eq!(snap.payload_bytes_copied, 12000);
    }
}
