//! The copy ledger: counts every data-movement operation in the data plane.
//!
//! Table 2 of the paper reports *data copying operations per request* for
//! each server configuration and path. Rather than asserting those numbers,
//! the reproduction measures them: every physical copy, logical copy,
//! checksum pass and header movement flows through a [`CopyLedger`], and the
//! testbed's CPU model converts the counted operations into simulated time.

use std::fmt;
use std::sync::{Arc, Mutex};

/// A point-in-time copy of the ledger's counters.
///
/// Subtract two snapshots ([`LedgerSnapshot::delta_since`]) to obtain the
/// operations performed by a single request — this is how the Table 2
/// benchmark extracts per-request copy counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerSnapshot {
    /// Number of physical *regular-data* payload copy operations (each
    /// moves one payload's worth of bytes between layers). This is the
    /// column Table 2 reports.
    pub payload_copies: u64,
    /// Total payload bytes moved by physical copies.
    pub payload_bytes_copied: u64,
    /// Number of physical copies of *metadata* blocks (inodes,
    /// directories, bitmaps, indirect blocks). The paper's servers copy
    /// these in every build; they cost CPU but are not Table 2's regular
    /// data copies.
    pub meta_copies: u64,
    /// Total metadata bytes moved by physical copies.
    pub meta_bytes_copied: u64,
    /// Number of logical copies (key/pointer movements instead of payload).
    pub logical_copies: u64,
    /// Header bytes built or moved (metadata; the paper treats these as
    /// negligible but we count them for completeness).
    pub header_bytes: u64,
    /// Bytes checksummed in software.
    pub csum_bytes: u64,
    /// Checksum passes avoided by inheritance/pre-computation (NCache §1).
    pub csum_inherited: u64,
    /// Buffer allocations performed.
    pub allocations: u64,
}

impl LedgerSnapshot {
    /// The operations performed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is not actually earlier;
    /// counters are monotone.
    pub fn delta_since(&self, earlier: &LedgerSnapshot) -> LedgerSnapshot {
        LedgerSnapshot {
            payload_copies: self.payload_copies - earlier.payload_copies,
            payload_bytes_copied: self.payload_bytes_copied - earlier.payload_bytes_copied,
            meta_copies: self.meta_copies - earlier.meta_copies,
            meta_bytes_copied: self.meta_bytes_copied - earlier.meta_bytes_copied,
            logical_copies: self.logical_copies - earlier.logical_copies,
            header_bytes: self.header_bytes - earlier.header_bytes,
            csum_bytes: self.csum_bytes - earlier.csum_bytes,
            csum_inherited: self.csum_inherited - earlier.csum_inherited,
            allocations: self.allocations - earlier.allocations,
        }
    }
}

impl obs::StatsSnapshot for LedgerSnapshot {
    fn source(&self) -> &'static str {
        "copy-ledger"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("payload_copies", self.payload_copies),
            ("payload_bytes_copied", self.payload_bytes_copied),
            ("meta_copies", self.meta_copies),
            ("meta_bytes_copied", self.meta_bytes_copied),
            ("logical_copies", self.logical_copies),
            ("header_bytes", self.header_bytes),
            ("csum_bytes", self.csum_bytes),
            ("csum_inherited", self.csum_inherited),
            ("allocations", self.allocations),
        ]
    }
}

impl fmt::Display for LedgerSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "copies={} ({} B), meta={} ({} B), logical={}, hdr={} B, csum={} B (inherited {}), allocs={}",
            self.payload_copies,
            self.payload_bytes_copied,
            self.meta_copies,
            self.meta_bytes_copied,
            self.logical_copies,
            self.header_bytes,
            self.csum_bytes,
            self.csum_inherited,
            self.allocations
        )
    }
}

#[derive(Debug, Default)]
struct Inner {
    snap: LedgerSnapshot,
    /// Mirror every charge as an [`obs::EventKind::Copy`] event. Lives
    /// inside the shared state so attaching once propagates to all clones
    /// of the handle. The recorder never calls back into the ledger, so
    /// emitting under the ledger lock cannot deadlock.
    recorder: Option<obs::Recorder>,
}

impl Inner {
    fn emit(&self, category: &'static str, bytes: u64) {
        if let Some(rec) = &self.recorder {
            rec.emit(obs::EventKind::Copy { category, bytes });
        }
    }
}

/// Shared handle to a copy ledger. Cloning the handle shares the counters.
///
/// # Examples
///
/// ```
/// use netbuf::CopyLedger;
/// let ledger = CopyLedger::new();
/// let before = ledger.snapshot();
/// ledger.charge_payload_copy(4096);
/// let delta = ledger.snapshot().delta_since(&before);
/// assert_eq!(delta.payload_copies, 1);
/// assert_eq!(delta.payload_bytes_copied, 4096);
/// ```
#[derive(Clone, Debug, Default)]
pub struct CopyLedger {
    inner: Arc<Mutex<Inner>>,
}

impl CopyLedger {
    /// Creates a ledger with all counters at zero.
    pub fn new() -> Self {
        CopyLedger::default()
    }

    /// Mirrors every subsequent charge (from any clone of this handle) as
    /// an [`obs::EventKind::Copy`] event on `rec`.
    pub fn attach_recorder(&self, rec: &obs::Recorder) {
        self.lock().recorder = Some(rec.clone());
    }

    /// Records one physical copy of `bytes` payload bytes.
    pub fn charge_payload_copy(&self, bytes: u64) {
        let mut g = self.lock();
        g.snap.payload_copies += 1;
        g.snap.payload_bytes_copied += bytes;
        g.emit("payload", bytes);
    }

    /// Records one physical copy of `bytes` metadata bytes.
    pub fn charge_meta_copy(&self, bytes: u64) {
        let mut g = self.lock();
        g.snap.meta_copies += 1;
        g.snap.meta_bytes_copied += bytes;
        g.emit("meta", bytes);
    }

    /// Records one logical copy (a key or pointer moved instead of data).
    pub fn charge_logical_copy(&self) {
        let mut g = self.lock();
        g.snap.logical_copies += 1;
        g.emit("logical", 0);
    }

    /// Records `bytes` of protocol header construction or movement.
    pub fn charge_header_bytes(&self, bytes: u64) {
        let mut g = self.lock();
        g.snap.header_bytes += bytes;
        g.emit("header", bytes);
    }

    /// Records a software checksum pass over `bytes` bytes.
    pub fn charge_csum(&self, bytes: u64) {
        let mut g = self.lock();
        g.snap.csum_bytes += bytes;
        g.emit("csum", bytes);
    }

    /// Records a checksum pass that was *avoided* by inheriting or reusing
    /// a stored checksum.
    pub fn charge_csum_inherited(&self) {
        let mut g = self.lock();
        g.snap.csum_inherited += 1;
        g.emit("csum_inherited", 0);
    }

    /// Records a buffer allocation.
    pub fn charge_allocation(&self) {
        let mut g = self.lock();
        g.snap.allocations += 1;
        g.emit("alloc", 0);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> LedgerSnapshot {
        self.lock().snap
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.lock().snap = LedgerSnapshot::default();
    }

    /// Whether two handles share the same underlying counters.
    pub fn same_ledger(&self, other: &CopyLedger) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("copy ledger poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let l = CopyLedger::new();
        l.charge_payload_copy(100);
        l.charge_payload_copy(200);
        l.charge_meta_copy(50);
        l.charge_logical_copy();
        l.charge_header_bytes(42);
        l.charge_csum(300);
        l.charge_csum_inherited();
        l.charge_allocation();
        let s = l.snapshot();
        assert_eq!(s.payload_copies, 2);
        assert_eq!(s.payload_bytes_copied, 300);
        assert_eq!(s.meta_copies, 1);
        assert_eq!(s.meta_bytes_copied, 50);
        assert_eq!(s.logical_copies, 1);
        assert_eq!(s.header_bytes, 42);
        assert_eq!(s.csum_bytes, 300);
        assert_eq!(s.csum_inherited, 1);
        assert_eq!(s.allocations, 1);
    }

    #[test]
    fn clones_share_counters() {
        let a = CopyLedger::new();
        let b = a.clone();
        b.charge_payload_copy(10);
        assert_eq!(a.snapshot().payload_copies, 1);
        assert!(a.same_ledger(&b));
        assert!(!a.same_ledger(&CopyLedger::new()));
    }

    #[test]
    fn delta_since_isolates_a_request() {
        let l = CopyLedger::new();
        l.charge_payload_copy(10);
        let before = l.snapshot();
        l.charge_payload_copy(20);
        l.charge_logical_copy();
        let d = l.snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 1);
        assert_eq!(d.payload_bytes_copied, 20);
        assert_eq!(d.logical_copies, 1);
    }

    #[test]
    fn reset_zeroes() {
        let l = CopyLedger::new();
        l.charge_payload_copy(10);
        l.reset();
        assert_eq!(l.snapshot(), LedgerSnapshot::default());
    }

    #[test]
    fn display_is_nonempty() {
        let s = CopyLedger::new().snapshot().to_string();
        assert!(s.contains("copies=0"));
    }

    #[test]
    fn attached_recorder_mirrors_charges() {
        let l = CopyLedger::new();
        let rec = obs::Recorder::new();
        rec.enable(obs::TraceConfig::default());
        l.attach_recorder(&rec);
        let clone = l.clone(); // attach propagates through shared state
        clone.charge_payload_copy(4096);
        l.charge_csum(4096);
        l.charge_logical_copy();
        assert_eq!(rec.counter("copy.payload.ops"), 1);
        assert_eq!(rec.counter("copy.payload.bytes"), 4096);
        assert_eq!(rec.counter("copy.csum.bytes"), 4096);
        assert_eq!(rec.counter("copy.logical.ops"), 1);
        assert_eq!(rec.events().len(), 3);
    }

    #[test]
    fn snapshot_exposes_stats_counters() {
        use obs::StatsSnapshot;
        let l = CopyLedger::new();
        l.charge_payload_copy(100);
        let snap = l.snapshot();
        assert_eq!(snap.source(), "copy-ledger");
        let counters = snap.counters();
        assert!(counters.contains(&("payload_copies", 1)));
        assert!(counters.contains(&("payload_bytes_copied", 100)));
    }

    #[test]
    fn ledger_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CopyLedger>();
    }
}
