//! `NetBuf`: the sk_buff analogue — protocol headers plus a chain of payload
//! segments, with every byte movement charged to the copy ledger.
//!
//! Receive path: the NIC DMAs a wire frame into a single segment
//! ([`NetBuf::from_wire`]); protocol layers strip headers with
//! [`NetBuf::pull`]; what remains is payload. Send path: payload segments
//! are attached logically ([`NetBuf::append_segment`]) or copied in
//! ([`NetBuf::append_bytes`]); layers prepend headers with
//! [`NetBuf::push_header`]; [`NetBuf::to_wire`] hands the frame to the NIC
//! (a DMA, not a CPU copy).

use std::collections::VecDeque;
use std::fmt;

use crate::accounting::CopyLedger;
use crate::segment::Segment;

/// Checksum state of a buffer (the paper's checksum-inheritance
/// optimization: cached blocks keep a valid checksum so retransmission
/// never recomputes it).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CsumState {
    /// No checksum computed yet.
    #[default]
    None,
    /// Computed in software (cost was charged).
    Computed,
    /// Inherited from the payload's originator or from a cached copy —
    /// no CPU was spent.
    Inherited,
    /// Left to NIC hardware offload.
    Offloaded,
}

/// A network buffer: linear header area + chained payload segments.
///
/// # Examples
///
/// ```
/// use netbuf::{CopyLedger, NetBuf, Segment};
/// let ledger = CopyLedger::new();
/// let mut b = NetBuf::new(&ledger);
/// b.append_segment(Segment::from_vec(vec![1, 2, 3]));
/// b.push_header(&[0xAA, 0xBB]);
/// assert_eq!(b.header(), &[0xAA, 0xBB]);
/// assert_eq!(b.payload_len(), 3);
/// assert_eq!(b.to_wire(), vec![0xAA, 0xBB, 1, 2, 3]);
/// ```
#[derive(Clone)]
pub struct NetBuf {
    ledger: CopyLedger,
    header: Vec<u8>,
    segs: VecDeque<Segment>,
    csum: CsumState,
}

impl NetBuf {
    /// An empty buffer charged to `ledger`.
    pub fn new(ledger: &CopyLedger) -> Self {
        ledger.charge_allocation();
        NetBuf {
            ledger: ledger.clone(),
            header: Vec::new(),
            segs: VecDeque::new(),
            csum: CsumState::None,
        }
    }

    /// Wraps a frame the NIC DMA'd into memory. Not a CPU copy: the bytes
    /// were placed by the device, as in the paper's receive path.
    pub fn from_wire(ledger: &CopyLedger, frame: Vec<u8>) -> Self {
        ledger.charge_allocation();
        let mut segs = VecDeque::new();
        segs.push_back(Segment::from_vec(frame));
        NetBuf {
            ledger: ledger.clone(),
            header: Vec::new(),
            segs,
            csum: CsumState::None,
        }
    }

    /// The ledger this buffer charges.
    pub fn ledger(&self) -> &CopyLedger {
        &self.ledger
    }

    /// The (already-built) header bytes, outermost first.
    pub fn header(&self) -> &[u8] {
        &self.header
    }

    /// Header length in bytes.
    pub fn header_len(&self) -> usize {
        self.header.len()
    }

    /// Payload length in bytes (sum of all segments).
    pub fn payload_len(&self) -> usize {
        self.segs.iter().map(Segment::len).sum()
    }

    /// Header + payload length.
    pub fn total_len(&self) -> usize {
        self.header.len() + self.payload_len()
    }

    /// Whether the buffer carries neither header nor payload.
    pub fn is_empty(&self) -> bool {
        self.total_len() == 0
    }

    /// Current checksum state.
    pub fn csum_state(&self) -> CsumState {
        self.csum
    }

    /// Prepends `bytes` to the header area (one protocol layer's header).
    /// Charged as header-byte movement, which Table 2 does not count as a
    /// payload copy ("since these packets are typically small, the overhead
    /// of physically copying them is not significant", §1).
    pub fn push_header(&mut self, bytes: &[u8]) {
        self.ledger.charge_header_bytes(bytes.len() as u64);
        let mut new = Vec::with_capacity(bytes.len() + self.header.len());
        new.extend_from_slice(bytes);
        new.extend_from_slice(&self.header);
        self.header = new;
    }

    /// Strips and returns the first `n` bytes of *payload* (receive-side
    /// header parsing: the stripped bytes are protocol metadata). Charged
    /// as header-byte movement.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` payload bytes remain.
    pub fn pull(&mut self, n: usize) -> Vec<u8> {
        assert!(
            n <= self.payload_len(),
            "pull of {n} bytes exceeds payload of {} bytes",
            self.payload_len()
        );
        self.ledger.charge_header_bytes(n as u64);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let need = n - out.len();
            let front = self.segs.pop_front().expect("payload length checked");
            if front.len() <= need {
                out.extend_from_slice(front.as_slice());
            } else {
                let (head, tail) = front.split_at(need);
                out.extend_from_slice(head.as_slice());
                self.segs.push_front(tail);
            }
        }
        out
    }

    /// Reads payload bytes `[off, off+len)` without consuming or charging —
    /// for protocol classification only (peeking an RPC procedure number or
    /// an HTTP header; the paper's NCache module does exactly this at the
    /// driver boundary).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the payload.
    pub fn peek(&self, off: usize, len: usize) -> Vec<u8> {
        assert!(
            off + len <= self.payload_len(),
            "peek [{off}, {}) exceeds payload of {} bytes",
            off + len,
            self.payload_len()
        );
        let mut out = Vec::with_capacity(len);
        let mut skip = off;
        for seg in &self.segs {
            if out.len() == len {
                break;
            }
            let s = seg.as_slice();
            if skip >= s.len() {
                skip -= s.len();
                continue;
            }
            let avail = &s[skip..];
            skip = 0;
            let take = avail.len().min(len - out.len());
            out.extend_from_slice(&avail[..take]);
        }
        out
    }

    /// Attaches a payload segment by reference — a **logical copy**; no
    /// payload bytes move.
    pub fn append_segment(&mut self, seg: Segment) {
        self.ledger.charge_logical_copy();
        self.segs.push_back(seg);
    }

    /// Copies `bytes` into a fresh payload segment — a **physical copy**,
    /// charged to the ledger.
    pub fn append_bytes(&mut self, bytes: &[u8]) {
        self.ledger.charge_payload_copy(bytes.len() as u64);
        self.segs.push_back(Segment::from_vec(bytes.to_vec()));
    }

    /// Moves an owned `bytes` vector in as a payload segment. Charged
    /// exactly like [`NetBuf::append_bytes`] — the *modeled* copy (producer
    /// buffer → network buffer) is the same — but the host moves the
    /// allocation instead of duplicating it, so call sites that already own
    /// the buffer skip one memcpy.
    pub fn append_vec(&mut self, bytes: Vec<u8>) {
        self.ledger.charge_payload_copy(bytes.len() as u64);
        self.segs.push_back(Segment::from_vec(bytes));
    }

    /// Copies `bytes` into a recycled slab from `pool` — same ledger charge
    /// as [`NetBuf::append_bytes`], but the segment storage comes from (and
    /// returns to) the pool's free list instead of the host allocator.
    pub fn append_pooled(&mut self, pool: &crate::BufPool, bytes: &[u8]) {
        self.ledger.charge_payload_copy(bytes.len() as u64);
        self.segs.push_back(pool.seg_from_slice(bytes));
    }

    /// Builds a `len`-byte payload segment in place on a recycled slab:
    /// `fill` receives a zero-initialized buffer. Charged exactly like
    /// [`NetBuf::append_bytes`] of `len` bytes (the producer still moves
    /// the payload into the network buffer; only the host-side scratch
    /// vector disappears).
    pub fn append_filled(
        &mut self,
        pool: &crate::BufPool,
        len: usize,
        fill: impl FnOnce(&mut [u8]),
    ) {
        self.ledger.charge_payload_copy(len as u64);
        self.segs.push_back(pool.seg_filled(len, fill));
    }

    /// Logical copy of the whole buffer: shares every segment. Charged as a
    /// single logical copy.
    pub fn share(&self) -> NetBuf {
        self.ledger.charge_logical_copy();
        self.clone()
    }

    /// Physically copies the entire payload into `out` — charged.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not exactly payload-sized.
    pub fn copy_payload_into(&self, out: &mut [u8]) {
        assert_eq!(
            out.len(),
            self.payload_len(),
            "destination must match payload length"
        );
        self.ledger.charge_payload_copy(out.len() as u64);
        let mut at = 0;
        for seg in &self.segs {
            out[at..at + seg.len()].copy_from_slice(seg.as_slice());
            at += seg.len();
        }
    }

    /// Physically copies the payload into a fresh vector — charged.
    pub fn copy_payload_to_vec(&self) -> Vec<u8> {
        let mut v = vec![0u8; self.payload_len()];
        self.copy_payload_into(&mut v);
        v
    }

    /// Physically copies the whole payload into one pooled segment —
    /// charged exactly like [`NetBuf::copy_payload_to_vec`] (one payload
    /// copy of the full length), with the destination drawn from `pool`'s
    /// slab free list.
    pub fn copy_payload_to_pooled(&self, pool: &crate::BufPool) -> Segment {
        let len = self.payload_len();
        self.ledger.charge_payload_copy(len as u64);
        pool.seg_filled(len, |out| {
            let mut at = 0;
            for seg in &self.segs {
                out[at..at + seg.len()].copy_from_slice(seg.as_slice());
                at += seg.len();
            }
        })
    }

    /// Removes and returns all payload segments (pointer manipulation; the
    /// substitution engine uses this to splice cached payload into an
    /// outgoing packet).
    pub fn take_payload(&mut self) -> Vec<Segment> {
        self.segs.drain(..).collect()
    }

    /// Replaces the payload with `segs` (logical; charged as one logical
    /// copy — this is NCache packet substitution).
    pub fn replace_payload(&mut self, segs: Vec<Segment>) {
        self.ledger.charge_logical_copy();
        self.segs = segs.into();
    }

    /// Iterates over payload segments.
    pub fn segments(&self) -> impl Iterator<Item = &Segment> {
        self.segs.iter()
    }

    /// Number of payload segments in the chain.
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// Computes the payload checksum in software, charging the ledger, and
    /// marks the buffer [`CsumState::Computed`]. Returns the 16-bit Internet
    /// checksum of the payload.
    pub fn compute_csum(&mut self) -> u16 {
        self.ledger.charge_csum(self.payload_len() as u64);
        // A 64-bit accumulator cannot overflow below 2^48 payload bytes.
        let mut sum: u64 = 0;
        let mut odd: Option<u8> = None;
        for seg in &self.segs {
            for &b in seg.as_slice() {
                match odd.take() {
                    None => odd = Some(b),
                    Some(hi) => sum += u64::from(u16::from_be_bytes([hi, b])),
                }
            }
        }
        if let Some(hi) = odd {
            sum += u64::from(u16::from_be_bytes([hi, 0]));
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        self.csum = CsumState::Computed;
        !(sum as u16)
    }

    /// Marks the checksum as inherited from the payload's originator (free;
    /// charged as an avoided checksum pass).
    pub fn inherit_csum(&mut self) {
        self.ledger.charge_csum_inherited();
        self.csum = CsumState::Inherited;
    }

    /// Marks the checksum as left to NIC hardware.
    pub fn offload_csum(&mut self) {
        self.csum = CsumState::Offloaded;
    }

    /// Serializes header + payload into one wire frame. This models the NIC
    /// gathering the chain by DMA, so it is *not* charged as a CPU copy.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.total_len());
        v.extend_from_slice(&self.header);
        for seg in &self.segs {
            v.extend_from_slice(seg.as_slice());
        }
        v
    }
}

impl fmt::Debug for NetBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetBuf")
            .field("header_len", &self.header.len())
            .field("payload_len", &self.payload_len())
            .field("segments", &self.segs.len())
            .field("csum", &self.csum)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> CopyLedger {
        CopyLedger::new()
    }

    #[test]
    fn netbuf_is_send_and_sync() {
        // Replies move between the serialized server section and the
        // lane thread that substitutes their payload.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetBuf>();
    }

    #[test]
    fn build_and_serialize() {
        let l = ledger();
        let mut b = NetBuf::new(&l);
        b.append_bytes(&[1, 2, 3]);
        b.push_header(&[9]);
        b.push_header(&[7, 8]); // outer layer prepends
        assert_eq!(b.to_wire(), vec![7, 8, 9, 1, 2, 3]);
        assert_eq!(b.header_len(), 3);
        assert_eq!(b.payload_len(), 3);
        assert_eq!(b.total_len(), 6);
        assert!(!b.is_empty());
        let s = l.snapshot();
        assert_eq!(s.payload_copies, 1);
        assert_eq!(s.payload_bytes_copied, 3);
        assert_eq!(s.header_bytes, 3);
    }

    #[test]
    fn from_wire_and_pull_parse_headers() {
        let l = ledger();
        let mut b = NetBuf::from_wire(&l, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(b.pull(2), vec![1, 2]);
        assert_eq!(b.pull(1), vec![3]);
        assert_eq!(b.payload_len(), 3);
        assert_eq!(b.copy_payload_to_vec(), vec![4, 5, 6]);
        // Pulls were charged as header bytes, not payload copies.
        let s = l.snapshot();
        assert_eq!(s.header_bytes, 3);
        assert_eq!(s.payload_copies, 1); // only the copy_payload_to_vec
    }

    #[test]
    fn pull_across_segment_boundaries() {
        let l = ledger();
        let mut b = NetBuf::new(&l);
        b.append_segment(Segment::from_vec(vec![1, 2]));
        b.append_segment(Segment::from_vec(vec![3, 4, 5]));
        assert_eq!(b.pull(3), vec![1, 2, 3]);
        assert_eq!(b.payload_len(), 2);
        assert_eq!(b.copy_payload_to_vec(), vec![4, 5]);
    }

    #[test]
    #[should_panic(expected = "exceeds payload")]
    fn pull_too_much_panics() {
        let l = ledger();
        let mut b = NetBuf::from_wire(&l, vec![1]);
        b.pull(2);
    }

    #[test]
    fn peek_is_free_and_nonconsuming() {
        let l = ledger();
        let mut b = NetBuf::new(&l);
        b.append_segment(Segment::from_vec(vec![1, 2, 3]));
        b.append_segment(Segment::from_vec(vec![4, 5]));
        let before = l.snapshot();
        assert_eq!(b.peek(1, 3), vec![2, 3, 4]);
        assert_eq!(b.peek(0, 5), vec![1, 2, 3, 4, 5]);
        assert_eq!(b.peek(4, 1), vec![5]);
        assert_eq!(l.snapshot(), before, "peek must not charge the ledger");
        assert_eq!(b.payload_len(), 5);
    }

    #[test]
    #[should_panic(expected = "exceeds payload")]
    fn peek_out_of_range_panics() {
        let l = ledger();
        let b = NetBuf::from_wire(&l, vec![1, 2]);
        b.peek(1, 2);
    }

    #[test]
    fn logical_copies_move_no_bytes() {
        let l = ledger();
        let seg = Segment::from_vec(vec![9u8; 8192]);
        let mut a = NetBuf::new(&l);
        a.append_segment(seg.clone());
        let b = a.share();
        let s = l.snapshot();
        assert_eq!(s.payload_bytes_copied, 0);
        assert_eq!(s.logical_copies, 2); // append + share
        assert!(b.segments().next().expect("one segment").same_storage(&seg));
    }

    #[test]
    fn substitution_replaces_payload_logically() {
        let l = ledger();
        let mut pkt = NetBuf::new(&l);
        pkt.append_bytes(&[0u8; 64]); // junk placeholder
        pkt.push_header(&[0xEE]);
        let cached = Segment::from_vec(vec![42u8; 64]);
        let before = l.snapshot();
        pkt.replace_payload(vec![cached]);
        let d = l.snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 0, "substitution is pointer surgery");
        assert_eq!(d.logical_copies, 1);
        assert_eq!(pkt.to_wire()[0], 0xEE);
        assert_eq!(&pkt.to_wire()[1..], &[42u8; 64][..]);
    }

    #[test]
    fn take_payload_empties_chain() {
        let l = ledger();
        let mut b = NetBuf::new(&l);
        b.append_segment(Segment::from_vec(vec![1]));
        b.append_segment(Segment::from_vec(vec![2]));
        let segs = b.take_payload();
        assert_eq!(segs.len(), 2);
        assert_eq!(b.payload_len(), 0);
        assert_eq!(b.segment_count(), 0);
    }

    #[test]
    fn copy_payload_into_wrong_size_panics() {
        let l = ledger();
        let mut b = NetBuf::new(&l);
        b.append_bytes(&[1, 2, 3]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut out = [0u8; 2];
            b.copy_payload_into(&mut out);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn checksum_matches_reference() {
        // RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7.
        let l = ledger();
        let mut b = NetBuf::new(&l);
        b.append_segment(Segment::from_vec(vec![0x00, 0x01, 0xf2, 0x03]));
        b.append_segment(Segment::from_vec(vec![0xf4, 0xf5, 0xf6, 0xf7]));
        let c = b.compute_csum();
        assert_eq!(c, !0xddf2u16);
        assert_eq!(b.csum_state(), CsumState::Computed);
        assert_eq!(l.snapshot().csum_bytes, 8);
    }

    #[test]
    fn checksum_odd_length_and_split_invariance() {
        let l = ledger();
        let mut one = NetBuf::new(&l);
        one.append_segment(Segment::from_vec(vec![1, 2, 3, 4, 5]));
        let mut two = NetBuf::new(&l);
        two.append_segment(Segment::from_vec(vec![1, 2]));
        two.append_segment(Segment::from_vec(vec![3, 4, 5]));
        assert_eq!(one.compute_csum(), two.compute_csum());
    }

    #[test]
    fn csum_inheritance_is_free() {
        let l = ledger();
        let mut b = NetBuf::new(&l);
        b.append_bytes(&[1u8; 100]);
        let before = l.snapshot();
        b.inherit_csum();
        let d = l.snapshot().delta_since(&before);
        assert_eq!(d.csum_bytes, 0);
        assert_eq!(d.csum_inherited, 1);
        assert_eq!(b.csum_state(), CsumState::Inherited);
        b.offload_csum();
        assert_eq!(b.csum_state(), CsumState::Offloaded);
    }

    #[test]
    fn owning_and_pooled_appends_charge_like_append_bytes() {
        let pool = crate::BufPool::slab_only();
        let data = vec![0x42u8; 4096];

        let l_ref = ledger();
        let mut a = NetBuf::new(&l_ref);
        a.append_bytes(&data);

        let l_vec = ledger();
        let mut b = NetBuf::new(&l_vec);
        b.append_vec(data.clone());

        let l_pool = ledger();
        let mut c = NetBuf::new(&l_pool);
        c.append_pooled(&pool, &data);

        let l_fill = ledger();
        let mut d = NetBuf::new(&l_fill);
        d.append_filled(&pool, 4096, |out| out.fill(0x42));

        let reference = l_ref.snapshot();
        assert_eq!(l_vec.snapshot(), reference);
        assert_eq!(l_pool.snapshot(), reference);
        assert_eq!(l_fill.snapshot(), reference);
        assert_eq!(reference.payload_copies, 1);
        assert_eq!(reference.payload_bytes_copied, 4096);
        for buf in [&a, &b, &c, &d] {
            assert_eq!(buf.copy_payload_to_vec(), data);
        }
    }

    #[test]
    fn copy_payload_to_pooled_matches_to_vec() {
        let pool = crate::BufPool::slab_only();
        let l = ledger();
        let mut b = NetBuf::new(&l);
        b.append_segment(Segment::from_vec(vec![1, 2, 3]));
        b.append_segment(Segment::from_vec(vec![4, 5]));
        let before = l.snapshot();
        let seg = b.copy_payload_to_pooled(&pool);
        let d = l.snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 1);
        assert_eq!(d.payload_bytes_copied, 5);
        assert_eq!(seg.as_slice(), &[1, 2, 3, 4, 5]);
        assert!(seg.is_pooled());
    }

    #[test]
    fn allocation_is_counted() {
        let l = ledger();
        let _a = NetBuf::new(&l);
        let _b = NetBuf::from_wire(&l, vec![1]);
        assert_eq!(l.snapshot().allocations, 2);
    }
}
