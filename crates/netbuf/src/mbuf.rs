//! BSD-style `mbuf` chains — the FreeBSD flavour of the network buffer.
//!
//! The paper ports NCache to FreeBSD (§4.2) and observes that "using mbuf,
//! rather than sk_buff, does not lead to any structural change to NCache":
//! both buffer structures support variable-size chained storage, and the
//! cache only ever needs reference-counted views of payload bytes. This
//! module provides an mbuf-faithful chain — small inline buffers for
//! headers, shared external *clusters* for payload — and the conversions
//! that let the NCache chunk store hold mbuf payloads unchanged. The
//! portability claim is enforced by tests in the `ncache` crate: a chunk
//! built from an mbuf chain substitutes into an sk_buff-style [`NetBuf`]
//! byte-for-byte.
//!
//! [`NetBuf`]: crate::buf::NetBuf

use crate::accounting::CopyLedger;
use crate::segment::Segment;

/// Bytes of inline data storage in an mbuf (BSD's `MLEN` for a 256-byte
/// mbuf with a packet header).
pub const MLEN: usize = 224;
/// Bytes in an external cluster (BSD's `MCLBYTES`).
pub const MCLBYTES: usize = 2048;

/// One mbuf: either inline data or a reference to (part of) an external
/// cluster.
#[derive(Clone, Debug)]
enum Storage {
    /// Small data held inline in the mbuf itself.
    Inline(Vec<u8>),
    /// A reference-counted external cluster (or a view into one).
    Cluster(Segment),
}

/// One link of an mbuf chain.
#[derive(Clone, Debug)]
pub struct Mbuf {
    storage: Storage,
}

impl Mbuf {
    /// An inline mbuf holding `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds [`MLEN`] — larger data belongs in a
    /// cluster.
    pub fn inline(data: &[u8]) -> Self {
        assert!(
            data.len() <= MLEN,
            "{} bytes exceed MLEN = {MLEN}; use a cluster",
            data.len()
        );
        Mbuf {
            storage: Storage::Inline(data.to_vec()),
        }
    }

    /// An mbuf referencing an external cluster (shared, not copied).
    pub fn cluster(seg: Segment) -> Self {
        Mbuf {
            storage: Storage::Cluster(seg),
        }
    }

    /// Bytes this mbuf carries.
    pub fn len(&self) -> usize {
        match &self.storage {
            Storage::Inline(v) => v.len(),
            Storage::Cluster(s) => s.len(),
        }
    }

    /// Whether the mbuf is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the data lives in an external cluster.
    pub fn is_cluster(&self) -> bool {
        matches!(self.storage, Storage::Cluster(_))
    }

    /// A view of the carried bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.storage {
            Storage::Inline(v) => v,
            Storage::Cluster(s) => s.as_slice(),
        }
    }
}

/// An mbuf chain: the unit FreeBSD's stack passes around (`m_next`
/// linkage), with the same logical/physical copy discipline as
/// [`crate::buf::NetBuf`].
#[derive(Clone, Debug, Default)]
pub struct MbufChain {
    bufs: Vec<Mbuf>,
}

impl MbufChain {
    /// An empty chain.
    pub fn new() -> Self {
        MbufChain::default()
    }

    /// Builds a chain for `payload`, splitting across clusters the way
    /// `m_getcl` would — a *physical* copy, charged to `ledger`.
    pub fn from_bytes(ledger: &CopyLedger, payload: &[u8]) -> Self {
        ledger.charge_payload_copy(payload.len() as u64);
        let bufs = payload
            .chunks(MCLBYTES)
            .map(|c| Mbuf::cluster(Segment::from_vec(c.to_vec())))
            .collect();
        MbufChain { bufs }
    }

    /// Builds a chain referencing existing segments — a *logical* copy
    /// (cluster reference counting), charged as such.
    pub fn from_segments(ledger: &CopyLedger, segs: Vec<Segment>) -> Self {
        ledger.charge_logical_copy();
        MbufChain {
            bufs: segs.into_iter().map(Mbuf::cluster).collect(),
        }
    }

    /// Prepends header bytes (an inline mbuf at the front, as `M_PREPEND`
    /// does). Charged as header movement.
    pub fn prepend(&mut self, ledger: &CopyLedger, header: &[u8]) {
        ledger.charge_header_bytes(header.len() as u64);
        self.bufs.insert(0, Mbuf::inline(header));
    }

    /// Appends a cluster by reference (logical).
    pub fn append_cluster(&mut self, ledger: &CopyLedger, seg: Segment) {
        ledger.charge_logical_copy();
        self.bufs.push(Mbuf::cluster(seg));
    }

    /// Total bytes across the chain.
    pub fn len(&self) -> usize {
        self.bufs.iter().map(Mbuf::len).sum()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Number of mbufs in the chain.
    pub fn mbuf_count(&self) -> usize {
        self.bufs.len()
    }

    /// Iterates over the chain's links.
    pub fn iter(&self) -> impl Iterator<Item = &Mbuf> {
        self.bufs.iter()
    }

    /// Shares the chain's payload as segments — what NCache stores. Cluster
    /// mbufs share storage (logical); inline mbufs (headers, small data)
    /// are materialized, which is the same copy `m_pullup` would do.
    pub fn share_segments(&self, ledger: &CopyLedger) -> Vec<Segment> {
        ledger.charge_logical_copy();
        self.bufs
            .iter()
            .map(|m| match &m.storage {
                Storage::Cluster(s) => s.clone(),
                Storage::Inline(v) => {
                    ledger.charge_header_bytes(v.len() as u64);
                    Segment::from_vec(v.clone())
                }
            })
            .collect()
    }

    /// Materializes the whole chain — a physical copy, charged.
    pub fn to_bytes(&self, ledger: &CopyLedger) -> Vec<u8> {
        ledger.charge_payload_copy(self.len() as u64);
        let mut out = Vec::with_capacity(self.len());
        for m in &self.bufs {
            out.extend_from_slice(m.as_slice());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_and_cluster_basics() {
        let i = Mbuf::inline(b"header");
        assert_eq!(i.len(), 6);
        assert!(!i.is_cluster());
        assert!(!i.is_empty());
        let c = Mbuf::cluster(Segment::from_vec(vec![7; MCLBYTES]));
        assert!(c.is_cluster());
        assert_eq!(c.len(), MCLBYTES);
    }

    #[test]
    #[should_panic(expected = "use a cluster")]
    fn oversized_inline_panics() {
        Mbuf::inline(&vec![0u8; MLEN + 1]);
    }

    #[test]
    fn from_bytes_splits_at_cluster_size() {
        let l = CopyLedger::new();
        let chain = MbufChain::from_bytes(&l, &vec![3u8; MCLBYTES * 2 + 100]);
        assert_eq!(chain.mbuf_count(), 3);
        assert_eq!(chain.len(), MCLBYTES * 2 + 100);
        assert!(chain.iter().all(Mbuf::is_cluster));
        assert_eq!(l.snapshot().payload_copies, 1, "building copies once");
    }

    #[test]
    fn from_segments_is_logical() {
        let l = CopyLedger::new();
        let seg = Segment::from_vec(vec![9u8; 4096]);
        let chain = MbufChain::from_segments(&l, vec![seg.clone()]);
        assert_eq!(l.snapshot().payload_copies, 0);
        assert_eq!(l.snapshot().logical_copies, 1);
        // The cluster shares storage with the source segment.
        let shared = chain.share_segments(&l);
        assert!(shared[0].same_storage(&seg));
    }

    #[test]
    fn prepend_builds_protocol_headers() {
        let l = CopyLedger::new();
        let mut chain = MbufChain::from_bytes(&l, b"payload");
        chain.prepend(&l, b"tcp");
        chain.prepend(&l, b"ip");
        assert_eq!(chain.to_bytes(&l), b"iptcppayload");
        assert_eq!(l.snapshot().header_bytes, 5);
    }

    #[test]
    fn round_trip_preserves_bytes() {
        let l = CopyLedger::new();
        let data: Vec<u8> = (0..5000u16).map(|x| x as u8).collect();
        let chain = MbufChain::from_bytes(&l, &data);
        assert_eq!(chain.to_bytes(&l), data);
    }

    #[test]
    fn empty_chain() {
        let l = CopyLedger::new();
        let chain = MbufChain::new();
        assert!(chain.is_empty());
        assert_eq!(chain.len(), 0);
        assert!(chain.to_bytes(&l).is_empty());
    }
}
