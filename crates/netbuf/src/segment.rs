//! Reference-counted byte segments — the payload-carrying unit.
//!
//! A [`Segment`] is an immutable view into shared byte storage. Cloning a
//! segment never moves payload bytes (that is the *logical copy* the paper
//! exploits); materializing its bytes elsewhere is a physical copy and goes
//! through ledger-charged [`crate::buf::NetBuf`] operations.
//!
//! Storage is a boxed slice behind an [`std::sync::Arc`], optionally owned
//! by a [`crate::pool::BufPool`] slab free list: when the last reference to
//! a pool-backed segment drops, its buffer returns to the pool (scrubbed)
//! instead of hitting the allocator — the driver-context buffer recycling
//! the Linux prototype gets from `skb` slab caches.

use std::fmt;
use std::sync::Arc;

use crate::pool::SlabHome;

/// The shared backing store of one or more [`Segment`] views.
pub(crate) struct SegStore {
    /// `None` only transiently during drop (the buffer is being returned
    /// to its pool).
    buf: Option<Box<[u8]>>,
    /// The slab free list this buffer recycles into, if pool-backed.
    home: Option<SlabHome>,
}

impl SegStore {
    pub(crate) fn new(buf: Box<[u8]>, home: Option<SlabHome>) -> Self {
        SegStore {
            buf: Some(buf),
            home,
        }
    }

    fn bytes(&self) -> &[u8] {
        self.buf.as_deref().expect("storage live until drop")
    }
}

impl Drop for SegStore {
    fn drop(&mut self) {
        if let (Some(home), Some(buf)) = (self.home.take(), self.buf.take()) {
            home.recycle(buf);
        }
    }
}

/// An immutable, cheaply-cloneable view of shared bytes.
///
/// # Examples
///
/// ```
/// use netbuf::Segment;
/// let s = Segment::from_vec(vec![1, 2, 3, 4, 5]);
/// let mid = s.slice(1, 3);
/// assert_eq!(mid.as_slice(), &[2, 3, 4]);
/// assert_eq!(s.refcount(), 2); // slice shares storage
/// ```
#[derive(Clone)]
pub struct Segment {
    store: Arc<SegStore>,
    off: usize,
    len: usize,
}

impl Segment {
    /// Wraps an owned byte vector without copying it (the vector is turned
    /// into its boxed slice in place when capacity equals length).
    pub fn from_vec(data: Vec<u8>) -> Self {
        let len = data.len();
        Segment {
            store: Arc::new(SegStore::new(data.into_boxed_slice(), None)),
            off: 0,
            len,
        }
    }

    /// Wraps a boxed buffer, viewing its first `len` bytes; the buffer
    /// recycles into `home` when the last reference drops.
    pub(crate) fn from_boxed(buf: Box<[u8]>, len: usize, home: Option<SlabHome>) -> Self {
        debug_assert!(len <= buf.len());
        Segment {
            store: Arc::new(SegStore::new(buf, home)),
            off: 0,
            len,
        }
    }

    /// A zero-filled segment of `len` bytes (fresh "junk" payload — the
    /// placeholder contents of key-carrying blocks in the NCache design).
    pub fn zeroed(len: usize) -> Self {
        Segment::from_vec(vec![0u8; len])
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.store.bytes()[self.off..self.off + self.len]
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-view of `len` bytes starting at `off` (relative to this view).
    /// Shares storage; no bytes move.
    ///
    /// # Panics
    ///
    /// Panics if `off + len` exceeds the view.
    pub fn slice(&self, off: usize, len: usize) -> Segment {
        assert!(
            off + len <= self.len,
            "slice [{off}, {}) out of bounds of segment of {} bytes",
            off + len,
            self.len
        );
        Segment {
            store: Arc::clone(&self.store),
            off: self.off + off,
            len,
        }
    }

    /// Splits the view at `at`, returning `(front, back)`. Shares storage.
    ///
    /// # Panics
    ///
    /// Panics if `at` exceeds the view length.
    pub fn split_at(&self, at: usize) -> (Segment, Segment) {
        (self.slice(0, at), self.slice(at, self.len - at))
    }

    /// Number of live references to the underlying storage (diagnostic;
    /// used by tests to prove logical copies share memory).
    pub fn refcount(&self) -> usize {
        Arc::strong_count(&self.store)
    }

    /// Whether two segments view the same underlying storage (regardless of
    /// offsets).
    pub fn same_storage(&self, other: &Segment) -> bool {
        Arc::ptr_eq(&self.store, &other.store)
    }

    /// Whether the storage recycles into a pool free list when dropped.
    pub fn is_pooled(&self) -> bool {
        self.store.home.is_some()
    }
}

impl fmt::Debug for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Segment")
            .field("off", &self.off)
            .field("len", &self.len)
            .field("refcount", &self.refcount())
            .field("pooled", &self.is_pooled())
            .finish()
    }
}

impl PartialEq for Segment {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Segment {}

impl AsRef<[u8]> for Segment {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Segment {
    fn from(v: Vec<u8>) -> Self {
        Segment::from_vec(v)
    }
}

impl From<&[u8]> for Segment {
    fn from(v: &[u8]) -> Self {
        Segment::from_vec(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_round_trips() {
        let s = Segment::from_vec(vec![9, 8, 7]);
        assert_eq!(s.as_slice(), &[9, 8, 7]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(!s.is_pooled());
    }

    #[test]
    fn zeroed_is_zero() {
        let s = Segment::zeroed(16);
        assert_eq!(s.as_slice(), &[0u8; 16]);
    }

    #[test]
    fn clone_shares_storage_without_copying() {
        let s = Segment::from_vec(vec![1; 1024]);
        let t = s.clone();
        assert!(s.same_storage(&t));
        assert_eq!(s.refcount(), 2);
        drop(t);
        assert_eq!(s.refcount(), 1);
    }

    #[test]
    fn slice_and_split() {
        let s = Segment::from_vec((0..10).collect());
        let (a, b) = s.split_at(4);
        assert_eq!(a.as_slice(), &[0, 1, 2, 3]);
        assert_eq!(b.as_slice(), &[4, 5, 6, 7, 8, 9]);
        let inner = b.slice(1, 2);
        assert_eq!(inner.as_slice(), &[5, 6]);
        assert!(inner.same_storage(&s));
    }

    #[test]
    fn split_at_boundaries() {
        let s = Segment::from_vec(vec![1, 2]);
        let (a, b) = s.split_at(0);
        assert!(a.is_empty());
        assert_eq!(b.len(), 2);
        let (c, d) = s.split_at(2);
        assert_eq!(c.len(), 2);
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Segment::from_vec(vec![0; 4]).slice(2, 3);
    }

    #[test]
    fn equality_is_by_content() {
        let a = Segment::from_vec(vec![1, 2, 3]);
        let b = Segment::from_vec(vec![1, 2, 3]);
        assert_eq!(a, b);
        assert!(!a.same_storage(&b));
    }

    #[test]
    fn conversions() {
        let a: Segment = vec![5u8, 6].into();
        let b: Segment = (&[5u8, 6][..]).into();
        assert_eq!(a, b);
        assert_eq!(a.as_ref(), &[5, 6]);
    }

    #[test]
    fn segment_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Segment>();
    }
}
