#![warn(missing_docs)]
//! Network buffers with copy accounting — the data plane of the NCache
//! reproduction.
//!
//! The paper's central claim is about *how many times payload bytes are
//! physically copied* inside a pass-through server (Table 2), and how
//! replacing those physical copies with **logical copies** (moving a small
//! key instead of the payload) changes CPU load and throughput. To keep the
//! reproduction honest, this crate implements the kernel network-buffer
//! machinery as real data structures moving real bytes:
//!
//! * [`segment::Segment`] — a reference-counted byte region, the analogue of
//!   an `sk_buff` data area / page fragment. Cloning a segment is pointer
//!   manipulation (a *logical copy*); extracting its bytes is a physical
//!   copy and is charged to the ledger.
//! * [`buf::NetBuf`] — a chain of segments plus protocol header area, the
//!   analogue of a full `sk_buff` with its frag list. This is the unit that
//!   NCache caches and substitutes.
//! * [`accounting::CopyLedger`] — counts every physical copy, logical copy,
//!   checksum pass, and header-byte movement. The simulated CPU charges
//!   time *per counted operation*, so Figures 4-7 follow from Table 2.
//! * [`pool::BufPool`] — allocation arena with pinned-memory accounting:
//!   NCache buffers are pinned device-driver memory, which is exactly how
//!   the Linux prototype limits the file-system buffer cache size (§4.1).
//! * [`key`] — the logical-copy key types: logical block numbers
//!   ([`key::Lbn`]) and file-handle/offset pairs ([`key::Fho`]).
//!
//! # Examples
//!
//! ```
//! use netbuf::{CopyLedger, NetBuf, Segment};
//!
//! let ledger = CopyLedger::new();
//! let payload = Segment::from_vec(vec![7u8; 4096]);
//! let mut pkt = NetBuf::new(&ledger);
//! pkt.append_segment(payload.clone());      // logical: no bytes move
//! let twin = pkt.share();                   // logical copy of the chain
//! assert_eq!(ledger.snapshot().payload_bytes_copied, 0);
//!
//! let mut out = vec![0u8; 4096];
//! twin.copy_payload_into(&mut out);         // physical copy, charged
//! assert_eq!(ledger.snapshot().payload_bytes_copied, 4096);
//! assert_eq!(out, vec![7u8; 4096]);
//! ```

pub mod accounting;
pub mod buf;
pub mod key;
pub mod mbuf;
pub mod pool;
pub mod segment;

pub use accounting::{CopyLedger, LedgerSnapshot};
pub use buf::NetBuf;
pub use mbuf::MbufChain;
pub use key::{CacheKey, FileHandle, Fho, Lbn};
pub use pool::{BufPool, SlabStats, SLAB_SIZE};
pub use segment::Segment;
