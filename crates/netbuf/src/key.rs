//! Logical-copy keys.
//!
//! Under NCache, the layers of a pass-through server exchange *keys* instead
//! of payloads (paper §3.1). Two kinds of key identify a cached block:
//!
//! * [`Lbn`] — the logical block number of an iSCSI read/write, keying data
//!   that arrived from (or is bound for) the storage server;
//! * [`Fho`] — a ⟨file handle, offset⟩ pair, keying data that arrived in an
//!   NFS write request from a client.
//!
//! A key travels *inside* the placeholder block that the file-system buffer
//! cache stores ("the retrieved block contains only a key and some junk
//! data", §3.2). [`KeyStamp`] is that in-block encoding; a block may carry
//! both keys at once ("some NFS read replies may contain both an FHO key
//! and an LBN key", §3.4), and the substitution engine must then consult the
//! FHO cache before the LBN cache to preserve freshness.

use std::fmt;

/// A logical block number on the storage server's virtual disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lbn(pub u64);

impl fmt::Display for Lbn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lbn:{}", self.0)
    }
}

/// An opaque NFS file handle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileHandle(pub u64);

impl fmt::Display for FileHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fh:{:x}", self.0)
    }
}

/// A ⟨file handle, byte offset⟩ pair — the unique identity of a file block
/// written by an NFS client (paper §3.4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fho {
    /// The file's NFS handle.
    pub fh: FileHandle,
    /// Byte offset of the block within the file.
    pub offset: u64,
}

impl Fho {
    /// Creates a key for the block of `fh` at byte `offset`.
    pub fn new(fh: FileHandle, offset: u64) -> Self {
        Fho { fh, offset }
    }
}

impl fmt::Display for Fho {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fho:{:x}+{}", self.fh.0, self.offset)
    }
}

/// Either kind of cache key; the index type of the network-centric cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheKey {
    /// Keys the LBN cache (data from the storage server).
    Lbn(Lbn),
    /// Keys the FHO cache (data from NFS write requests).
    Fho(Fho),
}

impl From<Lbn> for CacheKey {
    fn from(l: Lbn) -> Self {
        CacheKey::Lbn(l)
    }
}

impl From<Fho> for CacheKey {
    fn from(f: Fho) -> Self {
        CacheKey::Fho(f)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheKey::Lbn(l) => l.fmt(f),
            CacheKey::Fho(o) => o.fmt(f),
        }
    }
}

/// The encoded stamp a placeholder block carries in lieu of payload.
///
/// Wire layout (25 bytes):
/// `magic "NCKY" (4) | flags (1) | fh (8 LE) | offset (8 LE) | lbn (8 LE)`
/// where flag bit 0 = FHO present, bit 1 = LBN present. The remainder of the
/// block is junk (zeroes).
///
/// # Examples
///
/// ```
/// use netbuf::key::{Fho, FileHandle, KeyStamp, Lbn};
///
/// let stamp = KeyStamp::new()
///     .with_fho(Fho::new(FileHandle(0xBEEF), 8192))
///     .with_lbn(Lbn(77));
/// let mut block = vec![0u8; 4096];
/// stamp.encode_into(&mut block);
/// assert_eq!(KeyStamp::decode(&block), Some(stamp));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct KeyStamp {
    /// FHO key, present when the block was last written by an NFS client.
    pub fho: Option<Fho>,
    /// LBN key, present when the block was read from the storage server.
    pub lbn: Option<Lbn>,
}

impl KeyStamp {
    /// Magic prefix marking a placeholder block.
    pub const MAGIC: [u8; 4] = *b"NCKY";
    /// Encoded size in bytes.
    pub const LEN: usize = 4 + 1 + 8 + 8 + 8;

    /// Creates an empty stamp (no keys).
    pub fn new() -> Self {
        KeyStamp::default()
    }

    /// Returns the stamp with the FHO key set.
    pub fn with_fho(mut self, fho: Fho) -> Self {
        self.fho = Some(fho);
        self
    }

    /// Returns the stamp with the LBN key set.
    pub fn with_lbn(mut self, lbn: Lbn) -> Self {
        self.lbn = Some(lbn);
        self
    }

    /// Whether the stamp carries at least one key.
    pub fn is_keyed(&self) -> bool {
        self.fho.is_some() || self.lbn.is_some()
    }

    /// Writes the stamp into the head of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is shorter than [`KeyStamp::LEN`].
    pub fn encode_into(&self, block: &mut [u8]) {
        assert!(
            block.len() >= Self::LEN,
            "block of {} bytes too small for a {}-byte key stamp",
            block.len(),
            Self::LEN
        );
        block[0..4].copy_from_slice(&Self::MAGIC);
        let mut flags = 0u8;
        if self.fho.is_some() {
            flags |= 1;
        }
        if self.lbn.is_some() {
            flags |= 2;
        }
        block[4] = flags;
        let fho = self.fho.unwrap_or_default();
        block[5..13].copy_from_slice(&fho.fh.0.to_le_bytes());
        block[13..21].copy_from_slice(&fho.offset.to_le_bytes());
        block[21..29].copy_from_slice(&self.lbn.unwrap_or_default().0.to_le_bytes());
    }

    /// Parses a stamp from the head of `block`. Returns `None` when the
    /// block does not carry the magic (i.e. it holds real payload).
    pub fn decode(block: &[u8]) -> Option<KeyStamp> {
        if block.len() < Self::LEN || block[0..4] != Self::MAGIC {
            return None;
        }
        let flags = block[4];
        let fh = u64::from_le_bytes(block[5..13].try_into().expect("8 bytes"));
        let off = u64::from_le_bytes(block[13..21].try_into().expect("8 bytes"));
        let lbn = u64::from_le_bytes(block[21..29].try_into().expect("8 bytes"));
        Some(KeyStamp {
            fho: (flags & 1 != 0).then_some(Fho::new(FileHandle(fh), off)),
            lbn: (flags & 2 != 0).then_some(Lbn(lbn)),
        })
    }
}

impl fmt::Display for KeyStamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stamp[")?;
        if let Some(fho) = self.fho {
            write!(f, "{fho}")?;
        }
        if let Some(lbn) = self.lbn {
            if self.fho.is_some() {
                write!(f, ",")?;
            }
            write!(f, "{lbn}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_round_trip_all_combinations() {
        let fho = Fho::new(FileHandle(0x1234_5678_9abc_def0), 65_536);
        let lbn = Lbn(424_242);
        for stamp in [
            KeyStamp::new(),
            KeyStamp::new().with_fho(fho),
            KeyStamp::new().with_lbn(lbn),
            KeyStamp::new().with_fho(fho).with_lbn(lbn),
        ] {
            let mut block = vec![0u8; 64];
            stamp.encode_into(&mut block);
            assert_eq!(KeyStamp::decode(&block), Some(stamp));
        }
    }

    #[test]
    fn decode_rejects_real_payload() {
        assert_eq!(KeyStamp::decode(&[0u8; 64]), None);
        assert_eq!(KeyStamp::decode(b"hello world padding padding pad"), None);
        assert_eq!(KeyStamp::decode(&[]), None);
        // Too short even with magic.
        assert_eq!(KeyStamp::decode(b"NCKY"), None);
    }

    #[test]
    fn is_keyed() {
        assert!(!KeyStamp::new().is_keyed());
        assert!(KeyStamp::new().with_lbn(Lbn(1)).is_keyed());
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn encode_into_small_block_panics() {
        KeyStamp::new().encode_into(&mut [0u8; 8]);
    }

    #[test]
    fn cache_key_conversions_and_display() {
        let k: CacheKey = Lbn(5).into();
        assert_eq!(k, CacheKey::Lbn(Lbn(5)));
        let k2: CacheKey = Fho::new(FileHandle(0xff), 4096).into();
        assert_eq!(k.to_string(), "lbn:5");
        assert_eq!(k2.to_string(), "fho:ff+4096");
        assert_eq!(
            KeyStamp::new().with_lbn(Lbn(9)).to_string(),
            "stamp[lbn:9]"
        );
    }

    #[test]
    fn cache_keys_order_and_hash() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(CacheKey::from(Lbn(1)), "a");
        m.insert(CacheKey::from(Fho::new(FileHandle(1), 0)), "b");
        assert_eq!(m.len(), 2);
        assert_eq!(m[&CacheKey::Lbn(Lbn(1))], "a");
    }
}
