//! Pinned-memory pool accounting.
//!
//! The Linux prototype limits the file-system buffer cache *indirectly*:
//! NCache's buffers are allocated in device-driver context, so they are
//! pinned physical memory, and whatever NCache pins is unavailable to the
//! page cache (paper §4.1). [`BufPool`] models that: it has a fixed byte
//! capacity; pinned allocations ([`BufPool::pin`]) succeed until the
//! capacity is exhausted, and the testbed sizes the FS buffer cache from
//! what remains of the machine's RAM.

use std::fmt;
use std::sync::{Arc, Mutex};

/// Error returned when a pinned allocation would exceed the pool capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolExhausted {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently free.
    pub available: u64,
}

impl fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pinned pool exhausted: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for PoolExhausted {}

#[derive(Debug)]
struct Inner {
    capacity: u64,
    pinned: u64,
    peak: u64,
}

/// A fixed-capacity pinned-memory pool. Clones share the same capacity.
///
/// # Examples
///
/// ```
/// use netbuf::BufPool;
/// let pool = BufPool::new(8192);
/// let a = pool.pin(4096)?;
/// assert_eq!(pool.pinned(), 4096);
/// drop(a);                       // releasing the guard unpins
/// assert_eq!(pool.pinned(), 0);
/// # Ok::<(), netbuf::pool::PoolExhausted>(())
/// ```
#[derive(Clone, Debug)]
pub struct BufPool {
    inner: Arc<Mutex<Inner>>,
}

impl BufPool {
    /// A pool that can pin up to `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        BufPool {
            inner: Arc::new(Mutex::new(Inner {
                capacity,
                pinned: 0,
                peak: 0,
            })),
        }
    }

    /// Pins `bytes` of memory, returning a guard that unpins on drop.
    ///
    /// # Errors
    ///
    /// Returns [`PoolExhausted`] when fewer than `bytes` remain free;
    /// nothing is pinned in that case.
    pub fn pin(&self, bytes: u64) -> Result<Pinned, PoolExhausted> {
        let mut g = self.lock();
        let available = g.capacity - g.pinned;
        if bytes > available {
            return Err(PoolExhausted {
                requested: bytes,
                available,
            });
        }
        g.pinned += bytes;
        g.peak = g.peak.max(g.pinned);
        Ok(Pinned {
            pool: self.clone(),
            bytes,
        })
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.lock().capacity
    }

    /// Bytes currently pinned.
    pub fn pinned(&self) -> u64 {
        self.lock().pinned
    }

    /// Bytes currently free.
    pub fn available(&self) -> u64 {
        let g = self.lock();
        g.capacity - g.pinned
    }

    /// High-water mark of pinned bytes.
    pub fn peak_pinned(&self) -> u64 {
        self.lock().peak
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("buf pool poisoned")
    }

    fn release(&self, bytes: u64) {
        let mut g = self.lock();
        debug_assert!(g.pinned >= bytes, "double release");
        g.pinned = g.pinned.saturating_sub(bytes);
    }
}

/// A pinned-memory reservation; dropping it returns the bytes to the pool.
#[derive(Debug)]
pub struct Pinned {
    pool: BufPool,
    bytes: u64,
}

impl Pinned {
    /// Size of this reservation in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Pinned {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_and_release() {
        let p = BufPool::new(100);
        let a = p.pin(60).expect("fits");
        assert_eq!(p.pinned(), 60);
        assert_eq!(p.available(), 40);
        assert_eq!(a.bytes(), 60);
        drop(a);
        assert_eq!(p.pinned(), 0);
        assert_eq!(p.peak_pinned(), 60);
    }

    #[test]
    fn exhaustion_is_an_error_and_pins_nothing() {
        let p = BufPool::new(100);
        let _a = p.pin(80).expect("fits");
        let err = p.pin(30).expect_err("must not fit");
        assert_eq!(err.requested, 30);
        assert_eq!(err.available, 20);
        assert_eq!(p.pinned(), 80);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn exact_fit_is_allowed() {
        let p = BufPool::new(100);
        let _a = p.pin(100).expect("exact fit");
        assert_eq!(p.available(), 0);
        assert!(p.pin(1).is_err());
    }

    #[test]
    fn zero_byte_pin_is_fine() {
        let p = BufPool::new(0);
        let _a = p.pin(0).expect("zero always fits");
        assert!(p.pin(1).is_err());
    }

    #[test]
    fn clones_share_capacity() {
        let p = BufPool::new(100);
        let q = p.clone();
        let _a = q.pin(70).expect("fits");
        assert_eq!(p.pinned(), 70);
    }

    #[test]
    fn peak_tracks_high_water() {
        let p = BufPool::new(100);
        let a = p.pin(50).expect("fits");
        let b = p.pin(40).expect("fits");
        drop(a);
        drop(b);
        let _c = p.pin(10).expect("fits");
        assert_eq!(p.peak_pinned(), 90);
    }
}
