//! Pinned-memory pool accounting and segment-slab recycling.
//!
//! The Linux prototype limits the file-system buffer cache *indirectly*:
//! NCache's buffers are allocated in device-driver context, so they are
//! pinned physical memory, and whatever NCache pins is unavailable to the
//! page cache (paper §4.1). [`BufPool`] models that: it has a fixed byte
//! capacity; pinned allocations ([`BufPool::pin`]) succeed until the
//! capacity is exhausted, and the testbed sizes the FS buffer cache from
//! what remains of the machine's RAM.
//!
//! The pool also recycles fixed-capacity segment buffers ("slabs") through
//! a free list, mirroring the kernel's `skb` slab caches: the data plane
//! builds one segment per packet, and allocating/freeing a `Vec` for each
//! dominates the hot path. [`BufPool::seg_from_slice`] and
//! [`BufPool::seg_filled`] hand out [`Segment`]s whose storage returns to
//! the free list when the last reference drops. Recycled buffers are
//! scrubbed (zero-filled) before reuse, so a recycled segment can never
//! leak a previous packet's bytes. Slab recycling is pure host-allocator
//! mechanics: it charges nothing to the copy ledgers and does not count
//! against the pinned-byte capacity.

use std::fmt;
use std::sync::{Arc, Mutex, Weak};

use crate::segment::Segment;

/// Slab capacity in bytes: one 4 KiB block, the unit the data plane moves.
pub const SLAB_SIZE: usize = 4096;

/// Free-list depth: slabs returned beyond this are released to the host
/// allocator instead (bounds idle memory at 16 MiB per pool).
const FREE_LIMIT: usize = 4096;

/// Error returned when a pinned allocation would exceed the pool capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolExhausted {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes currently free.
    pub available: u64,
}

impl fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pinned pool exhausted: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for PoolExhausted {}

#[derive(Debug)]
struct Inner {
    capacity: u64,
    pinned: u64,
    peak: u64,
    free: Vec<Box<[u8]>>,
    slab_allocs: u64,
    slab_recycles: u64,
    slab_returns: u64,
}

/// Slab free-list counters (diagnostic; tests prove recycling happens).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlabStats {
    /// Slabs allocated fresh from the host allocator.
    pub allocs: u64,
    /// Slab takes served from the free list.
    pub recycles: u64,
    /// Slabs returned to the free list on segment drop.
    pub returns: u64,
    /// Slabs currently sitting in the free list.
    pub free: u64,
}

/// Where a pool-backed segment's buffer goes when its last reference
/// drops: back into the owning pool's free list, scrubbed. Holds a weak
/// reference so in-flight segments never keep a dropped pool alive.
pub(crate) struct SlabHome {
    inner: Weak<Mutex<Inner>>,
}

impl SlabHome {
    pub(crate) fn recycle(&self, mut buf: Box<[u8]>) {
        if let Some(inner) = self.inner.upgrade() {
            let mut g = inner.lock().expect("buf pool poisoned");
            if g.free.len() < FREE_LIMIT {
                buf.fill(0);
                g.free.push(buf);
                g.slab_returns += 1;
            }
        }
    }
}

/// A fixed-capacity pinned-memory pool. Clones share the same capacity.
///
/// # Examples
///
/// ```
/// use netbuf::BufPool;
/// let pool = BufPool::new(8192);
/// let a = pool.pin(4096)?;
/// assert_eq!(pool.pinned(), 4096);
/// drop(a);                       // releasing the guard unpins
/// assert_eq!(pool.pinned(), 0);
/// # Ok::<(), netbuf::pool::PoolExhausted>(())
/// ```
#[derive(Clone, Debug)]
pub struct BufPool {
    inner: Arc<Mutex<Inner>>,
}

impl BufPool {
    /// A pool that can pin up to `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        BufPool {
            inner: Arc::new(Mutex::new(Inner {
                capacity,
                pinned: 0,
                peak: 0,
                free: Vec::new(),
                slab_allocs: 0,
                slab_recycles: 0,
                slab_returns: 0,
            })),
        }
    }

    /// A pool used only for slab recycling: nothing can be pinned. The
    /// data-plane components (iSCSI target/initiator, server daemons) use
    /// this for per-packet buffer churn, separate from cache-residency
    /// pools.
    pub fn slab_only() -> Self {
        BufPool::new(0)
    }

    /// A pooled segment holding a copy of `bytes`. Falls back to a plain
    /// heap segment when `bytes` exceeds [`SLAB_SIZE`]. The copy itself is
    /// *not* charged here — callers go through the ledger-charging
    /// [`crate::NetBuf`] operations.
    pub fn seg_from_slice(&self, bytes: &[u8]) -> Segment {
        if bytes.len() > SLAB_SIZE {
            return Segment::from_vec(bytes.to_vec());
        }
        let mut slab = self.take_slab();
        slab[..bytes.len()].copy_from_slice(bytes);
        Segment::from_boxed(slab, bytes.len(), Some(self.home()))
    }

    /// A pooled segment of `len` bytes built in place: `fill` receives a
    /// zero-initialized buffer (fresh or scrubbed) and writes whatever
    /// prefix it needs. Falls back to a plain heap segment past
    /// [`SLAB_SIZE`]. Not ledger-charged; see [`BufPool::seg_from_slice`].
    pub fn seg_filled(&self, len: usize, fill: impl FnOnce(&mut [u8])) -> Segment {
        if len > SLAB_SIZE {
            let mut buf = vec![0u8; len];
            fill(&mut buf);
            return Segment::from_vec(buf);
        }
        let mut slab = self.take_slab();
        fill(&mut slab[..len]);
        Segment::from_boxed(slab, len, Some(self.home()))
    }

    /// Slab free-list counters.
    pub fn slab_stats(&self) -> SlabStats {
        let g = self.lock();
        SlabStats {
            allocs: g.slab_allocs,
            recycles: g.slab_recycles,
            returns: g.slab_returns,
            free: g.free.len() as u64,
        }
    }

    fn take_slab(&self) -> Box<[u8]> {
        let mut g = self.lock();
        if let Some(slab) = g.free.pop() {
            g.slab_recycles += 1;
            slab
        } else {
            g.slab_allocs += 1;
            drop(g);
            vec![0u8; SLAB_SIZE].into_boxed_slice()
        }
    }

    fn home(&self) -> SlabHome {
        SlabHome {
            inner: Arc::downgrade(&self.inner),
        }
    }

    /// Pins `bytes` of memory, returning a guard that unpins on drop.
    ///
    /// # Errors
    ///
    /// Returns [`PoolExhausted`] when fewer than `bytes` remain free;
    /// nothing is pinned in that case.
    pub fn pin(&self, bytes: u64) -> Result<Pinned, PoolExhausted> {
        let mut g = self.lock();
        let available = g.capacity.saturating_sub(g.pinned);
        if bytes > available {
            return Err(PoolExhausted {
                requested: bytes,
                available,
            });
        }
        g.pinned += bytes;
        g.peak = g.peak.max(g.pinned);
        Ok(Pinned {
            pool: self.clone(),
            bytes,
        })
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.lock().capacity
    }

    /// Resizes the pool's capacity. Shrinking below the currently pinned
    /// bytes is allowed — existing pins stay valid and [`BufPool::pin`]
    /// simply sees zero available until enough is released (the adaptive
    /// split controller relies on this lazy-drain semantics: a quota cut
    /// never invalidates in-flight chunks).
    pub fn set_capacity(&self, capacity: u64) {
        self.lock().capacity = capacity;
    }

    /// Bytes currently pinned.
    pub fn pinned(&self) -> u64 {
        self.lock().pinned
    }

    /// Bytes currently free (zero while shrunk below the pinned bytes).
    pub fn available(&self) -> u64 {
        let g = self.lock();
        g.capacity.saturating_sub(g.pinned)
    }

    /// High-water mark of pinned bytes.
    pub fn peak_pinned(&self) -> u64 {
        self.lock().peak
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("buf pool poisoned")
    }

    fn release(&self, bytes: u64) {
        let mut g = self.lock();
        debug_assert!(g.pinned >= bytes, "double release");
        g.pinned = g.pinned.saturating_sub(bytes);
    }
}

/// A pinned-memory reservation; dropping it returns the bytes to the pool.
#[derive(Debug)]
pub struct Pinned {
    pool: BufPool,
    bytes: u64,
}

impl Pinned {
    /// Size of this reservation in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Pinned {
    fn drop(&mut self) {
        self.pool.release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_types_are_send_and_sync() {
        // Lane-parallel runs clone one pool handle into every worker
        // thread; the pool, its reservations and its recycling hook must
        // all cross threads.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BufPool>();
        assert_send_sync::<Pinned>();
        assert_send_sync::<SlabHome>();
    }

    #[test]
    fn slabs_recycle_across_threads() {
        // A segment built on one thread and dropped on another must hand
        // its slab back to the shared free list (the SlabHome holds the
        // pool weakly, from any thread).
        let pool = BufPool::slab_only();
        let seg = pool.seg_from_slice(&[7u8; 64]);
        std::thread::spawn(move || drop(seg))
            .join()
            .expect("drop thread panicked");
        let stats = pool.slab_stats();
        assert_eq!(stats.allocs, 1);
        assert_eq!(stats.returns, 1);
        assert_eq!(stats.free, 1);
        // The recycled slab comes back scrubbed on the original thread.
        let again = pool.seg_from_slice(&[1u8; 16]);
        assert_eq!(pool.slab_stats().recycles, 1);
        drop(again);
    }

    #[test]
    fn pin_and_release() {
        let p = BufPool::new(100);
        let a = p.pin(60).expect("fits");
        assert_eq!(p.pinned(), 60);
        assert_eq!(p.available(), 40);
        assert_eq!(a.bytes(), 60);
        drop(a);
        assert_eq!(p.pinned(), 0);
        assert_eq!(p.peak_pinned(), 60);
    }

    #[test]
    fn exhaustion_is_an_error_and_pins_nothing() {
        let p = BufPool::new(100);
        let _a = p.pin(80).expect("fits");
        let err = p.pin(30).expect_err("must not fit");
        assert_eq!(err.requested, 30);
        assert_eq!(err.available, 20);
        assert_eq!(p.pinned(), 80);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn set_capacity_resizes_and_shrink_drains_lazily() {
        let p = BufPool::new(100);
        let a = p.pin(80).expect("fits");
        // Shrink below the pinned bytes: nothing is invalidated, the pool
        // just reports zero available until pins drain.
        p.set_capacity(50);
        assert_eq!(p.capacity(), 50);
        assert_eq!(p.pinned(), 80);
        assert_eq!(p.available(), 0);
        let err = p.pin(1).expect_err("over quota");
        assert_eq!(err.available, 0);
        drop(a);
        assert_eq!(p.available(), 50);
        // Growing opens room immediately.
        p.set_capacity(200);
        let _b = p.pin(150).expect("grown");
    }

    #[test]
    fn exact_fit_is_allowed() {
        let p = BufPool::new(100);
        let _a = p.pin(100).expect("exact fit");
        assert_eq!(p.available(), 0);
        assert!(p.pin(1).is_err());
    }

    #[test]
    fn zero_byte_pin_is_fine() {
        let p = BufPool::new(0);
        let _a = p.pin(0).expect("zero always fits");
        assert!(p.pin(1).is_err());
    }

    #[test]
    fn clones_share_capacity() {
        let p = BufPool::new(100);
        let q = p.clone();
        let _a = q.pin(70).expect("fits");
        assert_eq!(p.pinned(), 70);
    }

    #[test]
    fn slabs_recycle_through_the_free_list() {
        let p = BufPool::slab_only();
        let a = p.seg_from_slice(&[0xAA; 100]);
        assert!(a.is_pooled());
        assert_eq!(a.as_slice(), &[0xAA; 100]);
        let s = p.slab_stats();
        assert_eq!((s.allocs, s.recycles, s.returns, s.free), (1, 0, 0, 0));
        drop(a);
        let s = p.slab_stats();
        assert_eq!((s.allocs, s.returns, s.free), (1, 1, 1));
        let b = p.seg_from_slice(&[0xBB; 8]);
        assert_eq!(p.slab_stats().recycles, 1, "take must reuse the slab");
        assert_eq!(b.as_slice(), &[0xBB; 8]);
        drop(b);
    }

    #[test]
    fn recycled_slabs_are_scrubbed() {
        let p = BufPool::slab_only();
        drop(p.seg_from_slice(&[0xFF; SLAB_SIZE]));
        // A filled segment that writes nothing must see only zeros, even
        // though the recycled slab previously held 0xFF everywhere.
        let s = p.seg_filled(SLAB_SIZE, |_| {});
        assert_eq!(p.slab_stats().recycles, 1);
        assert!(s.as_slice().iter().all(|&b| b == 0), "stale bytes leaked");
    }

    #[test]
    fn slab_survives_pool_drop() {
        let p = BufPool::slab_only();
        let seg = p.seg_from_slice(&[7; 16]);
        drop(p);
        assert_eq!(seg.as_slice(), &[7; 16]); // weak home: buffer just frees
    }

    #[test]
    fn oversized_requests_fall_back_to_the_heap() {
        let p = BufPool::slab_only();
        let big = p.seg_from_slice(&vec![3u8; SLAB_SIZE + 1]);
        assert!(!big.is_pooled());
        assert_eq!(big.len(), SLAB_SIZE + 1);
        let filled = p.seg_filled(SLAB_SIZE + 1, |b| b[0] = 9);
        assert!(!filled.is_pooled());
        assert_eq!(filled.as_slice()[0], 9);
        assert_eq!(p.slab_stats().allocs, 0);
    }

    #[test]
    fn slicing_keeps_the_slab_out_of_the_free_list() {
        let p = BufPool::slab_only();
        let a = p.seg_from_slice(&[1, 2, 3, 4]);
        let part = a.slice(1, 2);
        drop(a);
        assert_eq!(p.slab_stats().returns, 0, "live view pins the slab");
        assert_eq!(part.as_slice(), &[2, 3]);
        drop(part);
        assert_eq!(p.slab_stats().returns, 1);
    }

    #[test]
    fn slab_recycling_never_touches_pinned_accounting() {
        let p = BufPool::new(100);
        let _guard = p.pin(40).expect("fits");
        let seg = p.seg_from_slice(&[5; 64]);
        assert_eq!(p.pinned(), 40);
        assert_eq!(p.available(), 60);
        drop(seg);
        assert_eq!(p.pinned(), 40);
        assert_eq!(p.peak_pinned(), 40);
    }

    #[test]
    fn peak_tracks_high_water() {
        let p = BufPool::new(100);
        let a = p.pin(50).expect("fits");
        let b = p.pin(40).expect("fits");
        drop(a);
        drop(b);
        let _c = p.pin(10).expect("fits");
        assert_eq!(p.peak_pinned(), 90);
    }
}
