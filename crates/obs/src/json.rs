//! A minimal JSON parser for the trace-validation tooling.
//!
//! The exporters in this crate *write* JSON by hand; this module lets the
//! CLI and tests *read* it back (schema checks, determinism diagnostics)
//! without external dependencies. It accepts the JSON the exporters emit
//! plus ordinary interchange JSON; it is not meant as a general-purpose
//! spec-complete parser.

/// A parsed JSON value. Object keys keep document order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match), `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let slice = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    slice
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {slice:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Collect a run of plain bytes at once.
                let start = *pos;
                let mut end = *pos;
                let mut cur = c;
                loop {
                    if cur == b'"' || cur == b'\\' {
                        break;
                    }
                    end += 1;
                    match b.get(end) {
                        Some(&n) => cur = n,
                        None => break,
                    }
                }
                out.push_str(std::str::from_utf8(&b[start..end]).map_err(|e| e.to_string())?);
                *pos = end;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' in array, got {other:?}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            other => return Err(format!("expected ',' or '}}' in object, got {other:?}")),
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (used by exporters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a": [1, {"b": "c"}], "d": {}}"#).unwrap();
        let a = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(doc.get("d").unwrap().as_obj().unwrap().len(), 0);
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"k\" 1}").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let raw = "line\none\t\"quoted\" \\slash\u{1}";
        let parsed = parse(&format!("\"{}\"", escape(raw))).unwrap();
        assert_eq!(parsed.as_str(), Some(raw));
    }

    #[test]
    fn object_keys_keep_document_order() {
        let doc = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let fields = doc.as_obj().unwrap();
        assert_eq!(fields[0].0, "z");
        assert_eq!(fields[1].0, "a");
    }
}
