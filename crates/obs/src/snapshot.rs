//! [`StatsSnapshot`]: one trait unifying the workspace's per-component
//! statistics structs, and [`MetricsReport`], the single renderer that
//! replaces their ad-hoc pretty-printing.

use std::collections::BTreeMap;

/// A uniform, read-only view over a component's statistics: a source name
/// plus named counters. Every `*Stats` struct in the workspace implements
/// this so `repro --metrics`, the examples, and the bench harness can
/// render any of them identically.
pub trait StatsSnapshot {
    /// Stable component name ("fs-cache", "nfs-server", "copy-ledger", ...).
    fn source(&self) -> &'static str;
    /// Counter names and values, in render order.
    fn counters(&self) -> Vec<(&'static str, u64)>;
}

/// An assembled multi-component metrics summary with one deterministic
/// text rendering.
///
/// # Examples
///
/// ```
/// use obs::{MetricsReport, StatsSnapshot};
///
/// struct Demo;
/// impl StatsSnapshot for Demo {
///     fn source(&self) -> &'static str { "demo" }
///     fn counters(&self) -> Vec<(&'static str, u64)> { vec![("ops", 3)] }
/// }
///
/// let mut rep = MetricsReport::new();
/// rep.add_snapshot("app", &Demo);
/// let text = rep.render();
/// assert!(text.contains("app [demo]"));
/// assert!(text.contains("ops"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MetricsReport {
    sections: Vec<(String, Vec<(String, String)>)>,
}

impl MetricsReport {
    /// An empty report.
    pub fn new() -> Self {
        MetricsReport::default()
    }

    /// Appends a component snapshot as a section titled
    /// `"<label> [<source>]"`.
    pub fn add_snapshot(&mut self, label: &str, snap: &dyn StatsSnapshot) {
        let entries = snap
            .counters()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        self.sections
            .push((format!("{} [{}]", label, snap.source()), entries));
    }

    /// Appends a free-form section of pre-rendered entries.
    pub fn add_section(&mut self, label: &str, entries: Vec<(String, String)>) {
        self.sections.push((label.to_string(), entries));
    }

    /// Appends recorder counters as one section, sorted by name.
    pub fn add_counters(&mut self, label: &str, counters: &BTreeMap<String, u64>) {
        let entries = counters
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        self.sections.push((label.to_string(), entries));
    }

    /// Whether nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Renders the report as aligned plain text, sections in insertion
    /// order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, entries) in &self.sections {
            out.push_str(title);
            out.push('\n');
            let width = entries.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (k, v) in entries {
                out.push_str(&format!("  {k:<width$}  {v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl StatsSnapshot for Fake {
        fn source(&self) -> &'static str {
            "fake"
        }
        fn counters(&self) -> Vec<(&'static str, u64)> {
            vec![("alpha", 1), ("beta_longer", 22)]
        }
    }

    #[test]
    fn renders_aligned_sections_in_order() {
        let mut rep = MetricsReport::new();
        rep.add_snapshot("first", &Fake);
        rep.add_section(
            "second",
            vec![("k".to_string(), "v".to_string())],
        );
        let text = rep.render();
        let first = text.find("first [fake]").unwrap();
        let second = text.find("second").unwrap();
        assert!(first < second);
        assert!(text.contains("  alpha        1\n"));
        assert!(text.contains("  beta_longer  22\n"));
    }

    #[test]
    fn counters_section_is_sorted() {
        let mut counters = BTreeMap::new();
        counters.insert("z".to_string(), 1u64);
        counters.insert("a".to_string(), 2u64);
        let mut rep = MetricsReport::new();
        rep.add_counters("trace counters", &counters);
        let text = rep.render();
        assert!(text.find("a").unwrap() < text.find("z").unwrap());
        assert!(!rep.is_empty());
    }
}
