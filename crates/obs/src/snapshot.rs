//! [`StatsSnapshot`]: one trait unifying the workspace's per-component
//! statistics structs, and [`MetricsReport`], the single renderer that
//! replaces their ad-hoc pretty-printing.

use crate::hist::HistogramSnapshot;
use std::collections::BTreeMap;

/// The runner's stage names, in pipeline order. Fixed here so rendered
/// reports list stages in execution order (not alphabetically) and the
/// bottleneck tie-break is deterministic.
const STAGE_ORDER: [&str; 7] = [
    "app-rx",
    "app-cpu",
    "app-tx",
    "storage-rx",
    "storage-cpu",
    "storage-tx",
    "disk",
];

/// A uniform, read-only view over a component's statistics: a source name
/// plus named counters. Every `*Stats` struct in the workspace implements
/// this so `repro --metrics`, the examples, and the bench harness can
/// render any of them identically.
pub trait StatsSnapshot {
    /// Stable component name ("fs-cache", "nfs-server", "copy-ledger", ...).
    fn source(&self) -> &'static str;
    /// Counter names and values, in render order.
    fn counters(&self) -> Vec<(&'static str, u64)>;
}

/// An assembled multi-component metrics summary with one deterministic
/// text rendering.
///
/// # Examples
///
/// ```
/// use obs::{MetricsReport, StatsSnapshot};
///
/// struct Demo;
/// impl StatsSnapshot for Demo {
///     fn source(&self) -> &'static str { "demo" }
///     fn counters(&self) -> Vec<(&'static str, u64)> { vec![("ops", 3)] }
/// }
///
/// let mut rep = MetricsReport::new();
/// rep.add_snapshot("app", &Demo);
/// let text = rep.render();
/// assert!(text.contains("app [demo]"));
/// assert!(text.contains("ops"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct MetricsReport {
    sections: Vec<(String, Vec<(String, String)>)>,
}

impl MetricsReport {
    /// An empty report.
    pub fn new() -> Self {
        MetricsReport::default()
    }

    /// Appends a component snapshot as a section titled
    /// `"<label> [<source>]"`.
    pub fn add_snapshot(&mut self, label: &str, snap: &dyn StatsSnapshot) {
        let entries = snap
            .counters()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        self.sections
            .push((format!("{} [{}]", label, snap.source()), entries));
    }

    /// Appends a free-form section of pre-rendered entries.
    pub fn add_section(&mut self, label: &str, entries: Vec<(String, String)>) {
        self.sections.push((label.to_string(), entries));
    }

    /// Appends recorder counters as one section, sorted by name.
    pub fn add_counters(&mut self, label: &str, counters: &BTreeMap<String, u64>) {
        let entries = counters
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        self.sections.push((label.to_string(), entries));
    }

    /// Appends the latency-attribution view of a recorder's histogram
    /// map: a `latency` section (count / mean / tail quantiles per data
    /// path) and a `stages` section (queue and service sums per pipeline
    /// stage, each stage's share of total end-to-end latency, and a
    /// `bottleneck` line naming the dominant stage). Stage shares are
    /// derived from sums that reconcile exactly against the end-to-end
    /// latencies, so they total 100% up to per-stage rounding. No-op
    /// when no request latencies were recorded.
    pub fn add_latency(&mut self, hists: &BTreeMap<String, HistogramSnapshot>) {
        let Some(total) = hists.get("request.latency_ns") else {
            return;
        };
        let quantiles = |h: &HistogramSnapshot| {
            format!(
                "count {:>8}  mean {:>10}  p50 {:>10}  p90 {:>10}  p99 {:>10}  p999 {:>10}  max {:>10}",
                h.count,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.quantile(0.999),
                h.max,
            )
        };
        let mut entries = vec![("all".to_string(), quantiles(total))];
        for path in ["hit", "substitution", "disk"] {
            if let Some(h) = hists.get(&format!("request.latency_ns.{path}")) {
                entries.push((path.to_string(), quantiles(h)));
            }
        }
        self.add_section("latency [request.latency_ns]", entries);

        // Integer permille of the total latency sum: deterministic, and
        // exact enough that the shares visibly account for all the time.
        let share = |ns: u64| {
            let permille = (ns * 1000).checked_div(total.sum).unwrap_or(0);
            format!("{:>3}.{}%", permille / 10, permille % 10)
        };
        let mut entries = Vec::new();
        let mut bottleneck: Option<(&str, u64)> = None;
        for stage in STAGE_ORDER {
            let q = hists.get(&format!("stage.{stage}.queue_ns"));
            let s = hists.get(&format!("stage.{stage}.service_ns"));
            if q.is_none() && s.is_none() {
                continue;
            }
            let qsum = q.map_or(0, |h| h.sum);
            let ssum = s.map_or(0, |h| h.sum);
            entries.push((
                stage.to_string(),
                format!(
                    "queue {:>12}  service {:>12}  share {}",
                    qsum,
                    ssum,
                    share(qsum + ssum)
                ),
            ));
            if bottleneck.is_none_or(|(_, best)| qsum + ssum > best) {
                bottleneck = Some((stage, qsum + ssum));
            }
        }
        if let Some((stage, ns)) = bottleneck {
            entries.push((
                "bottleneck".to_string(),
                format!("{stage} ({} of end-to-end latency)", share(ns).trim_start()),
            ));
        }
        self.add_section("stages [queue/service ns]", entries);
    }

    /// Whether nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Renders the report as aligned plain text, sections in insertion
    /// order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, entries) in &self.sections {
            out.push_str(title);
            out.push('\n');
            let width = entries.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (k, v) in entries {
                out.push_str(&format!("  {k:<width$}  {v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl StatsSnapshot for Fake {
        fn source(&self) -> &'static str {
            "fake"
        }
        fn counters(&self) -> Vec<(&'static str, u64)> {
            vec![("alpha", 1), ("beta_longer", 22)]
        }
    }

    #[test]
    fn renders_aligned_sections_in_order() {
        let mut rep = MetricsReport::new();
        rep.add_snapshot("first", &Fake);
        rep.add_section(
            "second",
            vec![("k".to_string(), "v".to_string())],
        );
        let text = rep.render();
        let first = text.find("first [fake]").unwrap();
        let second = text.find("second").unwrap();
        assert!(first < second);
        assert!(text.contains("  alpha        1\n"));
        assert!(text.contains("  beta_longer  22\n"));
    }

    #[test]
    fn latency_sections_render_quantiles_and_bottleneck() {
        use crate::hist::Histogram;
        let mut hists = BTreeMap::new();
        let mut record = |key: &str, vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            hists.insert(key.to_string(), h.snapshot());
        };
        record("request.latency_ns", &[1000, 1000, 2000]);
        record("request.latency_ns.hit", &[1000, 1000]);
        record("request.latency_ns.disk", &[2000]);
        record("stage.app-cpu.queue_ns", &[0, 0, 0]);
        record("stage.app-cpu.service_ns", &[500, 500, 500]);
        record("stage.disk.queue_ns", &[100]);
        record("stage.disk.service_ns", &[2400]);
        let mut rep = MetricsReport::new();
        rep.add_latency(&hists);
        let text = rep.render();
        assert!(text.contains("latency [request.latency_ns]"), "{text}");
        assert!(text.contains("p999"), "{text}");
        // disk carries 2500 of 4000 total ns → 62.5%, the bottleneck.
        assert!(text.contains("share  62.5%"), "{text}");
        assert!(text.contains("bottleneck"), "{text}");
        assert!(text.contains("disk (62.5% of end-to-end latency)"), "{text}");
        // No request histogram → no sections.
        let mut empty = MetricsReport::new();
        empty.add_latency(&BTreeMap::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn counters_section_is_sorted() {
        let mut counters = BTreeMap::new();
        counters.insert("z".to_string(), 1u64);
        counters.insert("a".to_string(), 2u64);
        let mut rep = MetricsReport::new();
        rep.add_counters("trace counters", &counters);
        let text = rep.render();
        assert!(text.find("a").unwrap() < text.find("z").unwrap());
        assert!(!rep.is_empty());
    }
}
