//! The fine-grained quantile engine: a sub-bucketed log₂ histogram
//! (HDR-style) whose tail quantiles are accurate to one sub-bucket.
//!
//! Layout: values below [`SUBS`] land in exact width-1 buckets; above
//! that, each power-of-two octave splits into [`SUBS`] equal sub-buckets,
//! bounding the relative quantile error at `1 / SUBS` (6.25%). The bucket
//! index of a value is a pure function of the value, so merging two
//! histograms bucket-wise ([`Histogram::absorb`]) is exactly equivalent
//! to recording both value streams into one histogram — the property the
//! parallel experiment executor relies on for thread-count-invariant
//! latency reports.

/// Sub-buckets per octave (and the width of the exact low range).
const SUBS: u64 = 16;
/// log₂ of [`SUBS`].
const SUB_BITS: u32 = 4;
/// One past the largest representable bucket index (`bucket_index(u64::MAX)`).
const MAX_BUCKETS: usize = 976;

/// The bucket index holding `v`. Strictly monotone in `v` (non-strictly:
/// buckets hold ranges), continuous at the exact/sub-bucketed boundary,
/// and bounded by [`MAX_BUCKETS`].
fn bucket_index(v: u64) -> usize {
    if v < SUBS {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    // Sub-bucket: the SUB_BITS bits right below the leading one.
    let sub = (v >> (msb - SUB_BITS)) - SUBS;
    (SUBS as usize) + (msb - SUB_BITS) as usize * SUBS as usize + sub as usize
}

/// The inclusive value range `[lo, hi]` bucket `i` holds.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i < 2 * SUBS as usize {
        return (i as u64, i as u64);
    }
    let g = (i - SUBS as usize) / SUBS as usize;
    let sub = (i - SUBS as usize) % SUBS as usize;
    let lo = (SUBS + sub as u64) << g;
    (lo, lo + ((1u64 << g) - 1))
}

/// A mergeable sub-bucketed histogram of `u64` samples (sim-time
/// nanoseconds, byte counts). Buckets allocate lazily up to the largest
/// index actually hit.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        debug_assert!(idx < MAX_BUCKETS);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        self.max = self.max.max(v);
        self.count += 1;
        self.sum += v;
    }

    /// Merges `other` into `self`, bucket-wise. Because a sample's bucket
    /// depends only on its value, the merge equals recording both streams
    /// into one histogram, in any order.
    pub fn absorb(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// An immutable snapshot (canonical: trailing empty buckets trimmed,
    /// so equal sample multisets snapshot equal regardless of history).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = self.buckets.clone();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            buckets,
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
        }
    }
}

/// A point-in-time view of a [`Histogram`], with quantile queries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`Histogram`] for the bucket layout).
    pub buckets: Vec<u64>,
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The `p`-quantile of the recorded samples, `0.0 ≤ p ≤ 1.0`.
    ///
    /// Semantics: an empty histogram returns 0; `p ≤ 0` returns the
    /// minimum and `p ≥ 1` the maximum (both exact). Otherwise the result
    /// is the value at rank `⌈p·count⌉` (1-based): the bucket holding
    /// that rank is located, and the estimate interpolates linearly
    /// within the bucket's `[lo, hi]` range by the rank's position among
    /// the bucket's samples, clamped to `[min, max]`. Values below 32 sit
    /// in width-1 buckets, so small quantiles are exact; above that the
    /// estimate errs by at most one sub-bucket (≤ 6.25% of the value).
    /// The result is monotone non-decreasing in `p`.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if p <= 0.0 {
            return self.min;
        }
        if p >= 1.0 {
            return self.max;
        }
        // ceil(p * count), clamped into [1, count]. The product is exact
        // enough: counts here are far below 2^53.
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_bounds(i);
                let r = rank - seen; // 1-based rank within this bucket
                let est = lo + (hi - lo) * r / n;
                return est.clamp(self.min, self.max);
            }
            seen += n;
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_continuous() {
        // Exhaustive over the exact range and the first octaves.
        let mut prev = bucket_index(0);
        for v in 1..=4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "monotone at {v}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "{v} in [{lo},{hi}]");
            prev = idx;
        }
        // Spot-check the top: u64::MAX must fit.
        assert!(bucket_index(u64::MAX) < MAX_BUCKETS);
        let (lo, hi) = bucket_bounds(bucket_index(u64::MAX));
        assert!(lo <= hi && hi == u64::MAX);
        // Values below 2*SUBS are exact.
        for v in 0..32u64 {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v));
        }
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(1.0), 0);
    }

    #[test]
    fn quantile_of_single_sample_is_that_sample() {
        for v in [0u64, 1, 31, 32, 1_000_000, u64::MAX] {
            let mut h = Histogram::new();
            h.record(v);
            let s = h.snapshot();
            for p in [0.0, 0.001, 0.5, 0.999, 1.0] {
                assert_eq!(s.quantile(p), v, "p={p} v={v}");
            }
        }
    }

    #[test]
    fn quantile_edges_are_min_and_max() {
        let mut h = Histogram::new();
        for v in [5u64, 10, 100, 5_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 5);
        assert_eq!(s.quantile(-1.0), 5);
        assert_eq!(s.quantile(1.0), 5_000);
        assert_eq!(s.quantile(2.0), 5_000);
    }

    #[test]
    fn small_quantiles_are_exact() {
        // Values < 32 occupy exact buckets: every quantile is a sample.
        let mut h = Histogram::new();
        for v in 0..20u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.05), 0); // rank 1
        assert_eq!(s.quantile(0.5), 9); // rank 10
        assert_eq!(s.quantile(0.95), 18); // rank 19
        assert_eq!(s.quantile(1.0), 19);
    }

    #[test]
    fn large_quantiles_within_subbucket_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        for (p, exact) in [(0.5, 5_000_000u64), (0.9, 9_000_000), (0.99, 9_900_000)] {
            let got = s.quantile(p);
            let err = got.abs_diff(exact) as f64 / exact as f64;
            assert!(err <= 1.0 / SUBS as f64, "p={p}: got {got}, exact {exact}");
        }
    }

    #[test]
    fn quantiles_are_monotone_in_p() {
        let mut h = Histogram::new();
        let mut x = 1u64;
        for i in 0..500u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i) >> 16;
            h.record(x % 10_000_000);
        }
        let s = h.snapshot();
        let mut prev = 0u64;
        for i in 0..=1000 {
            let q = s.quantile(i as f64 / 1000.0);
            assert!(q >= prev, "quantile must be monotone at p={}", i as f64 / 1000.0);
            prev = q;
        }
    }

    #[test]
    fn absorb_equals_single_recorder() {
        let vals: Vec<u64> = (0..300u64).map(|i| i * i * 37 % 1_000_000).collect();
        let mut whole = Histogram::new();
        for &v in &vals {
            whole.record(v);
        }
        let (mut a, mut b) = (Histogram::new(), Histogram::new());
        for (i, &v) in vals.iter().enumerate() {
            if i % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.absorb(&b);
        assert_eq!(a, whole);
        assert_eq!(a.snapshot(), whole.snapshot());
        // Absorbing an empty histogram changes nothing, either way.
        let empty = Histogram::new();
        let before = a.clone();
        a.absorb(&empty);
        assert_eq!(a, before);
        let mut e = Histogram::new();
        e.absorb(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn snapshot_is_canonical() {
        // Two histograms over the same samples but different high-water
        // marks (one saw a large value absorbed away... simulate by
        // resizing) snapshot identically.
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(5);
        b.buckets.resize(100, 0); // internal padding only
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
