//! Observability: the unified tracing & metrics layer.
//!
//! The rest of the workspace reports end-of-run aggregates (six `*Stats`
//! structs plus the copy ledger); this crate adds the *per-request* view:
//! a [`Recorder`] collects typed events (cache hits per tier, FHO→LBN
//! remaps, packet substitutions, physical copies with byte counts, resource
//! busy intervals) stamped with **simulated** nanoseconds, aggregates them
//! into counters and log-bucketed histograms, and exports them as a
//! line-delimited JSON event stream or a Chrome trace-event file that
//! Perfetto / `chrome://tracing` opens directly.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** Every emission path first checks one
//!    relaxed atomic; a rig that never enables tracing pays an `Option`
//!    check plus at most that load. Tier-1 timings and determinism are
//!    unaffected.
//! 2. **Deterministic traces.** Events carry only simulated time and data
//!    already derived deterministically from the workload; storage is a
//!    bounded ring with deterministic drops; every exporter iterates in a
//!    fixed order. Same seed → byte-identical trace file.
//! 3. **Zero dependencies.** Exporters build JSON by hand;
//!    [`json`] holds the small parser the schema-validation tooling uses.
//!
//! Simulated-time semantics: the data plane executes *functionally*, outside
//! simulated time — the testbed runner calls [`Recorder::set_now`] with each
//! request's issue instant before executing it, so all of a request's
//! functional events share that timestamp. Exactly-timed intervals (request
//! latency, resource busy spans) are emitted by the runner and the FIFO
//! resources themselves as [`EventKind::Request`] / [`EventKind::ResourceBusy`].

pub mod export;
pub mod hist;
pub mod json;
pub mod recorder;
pub mod snapshot;

pub use export::{export_chrome_trace, export_jsonl, validate_chrome_trace, validate_jsonl};
pub use hist::{Histogram, HistogramSnapshot};
pub use recorder::{Event, EventKind, Recorder, StageNs, TraceConfig};
pub use snapshot::{MetricsReport, StatsSnapshot};
