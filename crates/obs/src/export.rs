//! Deterministic exporters: line-delimited JSON events and Chrome
//! trace-event JSON (`chrome://tracing` / Perfetto), plus the validators
//! the CLI and CI use to check emitted files.
//!
//! Determinism contract: both exporters are pure functions of the event
//! slice — fixed key order, fixed iteration order, fixed number
//! formatting — so identical event streams serialize to identical bytes.

use crate::json::{self, escape, Json};
use crate::recorder::{Event, EventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Chrome trace pid for data-plane (functional) events and request spans.
const PID_DATA: u32 = 1;
/// Chrome trace pid for FIFO-resource busy intervals.
const PID_RES: u32 = 2;
/// Chrome trace pid for counter/gauge series.
const PID_METRICS: u32 = 3;

/// Request spans spread across this many lanes so concurrent requests
/// render side by side instead of on one overloaded row.
const REQ_LANES: u64 = 32;

/// Simulated ns → Chrome's microsecond `ts`, with deterministic
/// fixed-point formatting (no float round-trip).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn kind_name(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::SpanBegin { .. } => "span_begin",
        EventKind::SpanEnd => "span_end",
        EventKind::CacheAccess { .. } => "cache_access",
        EventKind::CacheInsert { .. } => "cache_insert",
        EventKind::Eviction { .. } => "eviction",
        EventKind::Remap => "remap",
        EventKind::Substitution { .. } => "substitution",
        EventKind::Writeback { .. } => "writeback",
        EventKind::Copy { .. } => "copy",
        EventKind::Request { .. } => "request",
        EventKind::ResourceBusy { .. } => "resource_busy",
        EventKind::Gauge { .. } => "gauge",
    }
}

/// Extra `"key":value` JSON fields for a kind (shared by both exporters'
/// args), in fixed order.
fn kind_fields(kind: &EventKind) -> Vec<(&'static str, String)> {
    match kind {
        EventKind::SpanBegin { op, config, bytes } => vec![
            ("op", format!("\"{}\"", escape(op))),
            ("config", format!("\"{}\"", escape(config))),
            ("bytes", bytes.to_string()),
        ],
        EventKind::SpanEnd | EventKind::Remap => vec![],
        EventKind::CacheAccess { tier, hit } => vec![
            ("tier", format!("\"{}\"", escape(tier))),
            ("hit", hit.to_string()),
        ],
        EventKind::CacheInsert { tier, dirty } => vec![
            ("tier", format!("\"{}\"", escape(tier))),
            ("dirty", dirty.to_string()),
        ],
        EventKind::Eviction { tier, class, dirty } => vec![
            ("tier", format!("\"{}\"", escape(tier))),
            ("class", format!("\"{}\"", escape(class))),
            ("dirty", dirty.to_string()),
        ],
        EventKind::Substitution {
            substituted,
            missing,
        } => vec![
            ("substituted", substituted.to_string()),
            ("missing", missing.to_string()),
        ],
        EventKind::Writeback { blocks } => vec![("blocks", blocks.to_string())],
        EventKind::Copy { category, bytes } => vec![
            ("category", format!("\"{}\"", escape(category))),
            ("bytes", bytes.to_string()),
        ],
        EventKind::Request {
            op,
            path,
            start_ns,
            end_ns,
            stages,
        } => {
            let mut arr = String::from("[");
            for (i, st) in stages.iter().enumerate() {
                if i > 0 {
                    arr.push(',');
                }
                let _ = write!(
                    arr,
                    "{{\"stage\":\"{}\",\"queue_ns\":{},\"service_ns\":{}}}",
                    escape(st.stage),
                    st.queue_ns,
                    st.service_ns
                );
            }
            arr.push(']');
            vec![
                ("op", format!("\"{}\"", escape(op))),
                ("path", format!("\"{}\"", escape(path))),
                ("start_ns", start_ns.to_string()),
                ("end_ns", end_ns.to_string()),
                ("stages", arr),
            ]
        }
        EventKind::ResourceBusy {
            resource,
            slot,
            start_ns,
            end_ns,
        } => vec![
            ("resource", format!("\"{}\"", escape(resource))),
            ("slot", slot.to_string()),
            ("start_ns", start_ns.to_string()),
            ("end_ns", end_ns.to_string()),
        ],
        EventKind::Gauge { name, value } => vec![
            ("name", format!("\"{}\"", escape(name))),
            ("value", format!("{value}")),
        ],
    }
}

/// Serializes events as line-delimited JSON, one object per event, oldest
/// first: `{"ts":<ns>,"req":<span>,"kind":"<kind>",...}`.
pub fn export_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = write!(
            out,
            "{{\"ts\":{},\"req\":{},\"lane\":{},\"kind\":\"{}\"",
            ev.ts_ns,
            ev.req,
            ev.lane,
            kind_name(&ev.kind)
        );
        for (key, value) in kind_fields(&ev.kind) {
            let _ = write!(out, ",\"{key}\":{value}");
        }
        out.push_str("}\n");
    }
    out
}

fn args_json(fields: &[(&'static str, String)], extra: &[(&'static str, String)]) -> String {
    let mut out = String::from("{");
    let mut first = true;
    for (key, value) in fields.iter().chain(extra.iter()) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\"{key}\":{value}");
    }
    out.push('}');
    out
}

/// Serializes events as a Chrome trace-event file (JSON object format)
/// keyed on simulated microseconds.
///
/// Layout: pid 1 "data-plane" carries the functional stream — span B/E
/// pairs and instant events on tid `1 + session-lane` (tid 1 for
/// single-session runs, one row per session otherwise) — plus
/// exactly-timed request intervals as "X" slices on `100 + session-lane`
/// (fanned over `REQ_LANES` rows when no session lane is set); pid 2
/// "resources" has one tid per (resource, slot) busy lane; pid 3
/// "metrics" carries "C" counter samples.
pub fn export_chrome_trace(events: &[Event]) -> String {
    // Assign resource lanes deterministically: sorted by (name, slot).
    let mut lanes: BTreeMap<(String, u32), u32> = BTreeMap::new();
    for ev in events {
        if let EventKind::ResourceBusy { resource, slot, .. } = &ev.kind {
            let key = (resource.clone(), *slot);
            let next = lanes.len() as u32 + 1;
            lanes.entry(key).or_insert(next);
        }
    }
    // Re-number in sorted order so insertion order cannot leak through.
    for (idx, (_, lane)) in lanes.iter_mut().enumerate() {
        *lane = idx as u32 + 1;
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let push = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };

    for (pid, name) in [
        (PID_DATA, "data-plane"),
        (PID_RES, "resources"),
        (PID_METRICS, "metrics"),
    ] {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":\"{name}\"}}}}"
            ),
            &mut out,
            &mut first,
        );
    }
    for ((resource, slot), lane) in &lanes {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID_RES},\"tid\":{lane},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}#{slot}\"}}}}",
                escape(resource)
            ),
            &mut out,
            &mut first,
        );
    }

    for ev in events {
        let fields = kind_fields(&ev.kind);
        let line = match &ev.kind {
            EventKind::SpanBegin { op, .. } => format!(
                "{{\"ph\":\"B\",\"pid\":{PID_DATA},\"tid\":{},\"ts\":{},\"name\":\"{}\",\"args\":{}}}",
                1 + ev.lane,
                ts_us(ev.ts_ns),
                escape(op),
                args_json(&fields, &[("req", ev.req.to_string())]),
            ),
            EventKind::SpanEnd => format!(
                "{{\"ph\":\"E\",\"pid\":{PID_DATA},\"tid\":{},\"ts\":{}}}",
                1 + ev.lane,
                ts_us(ev.ts_ns),
            ),
            EventKind::Request { op, start_ns, end_ns, .. } => format!(
                "{{\"ph\":\"X\",\"pid\":{PID_DATA},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"args\":{}}}",
                if ev.lane != 0 { 100 + ev.lane } else { 100 + ev.req % REQ_LANES },
                ts_us(*start_ns),
                ts_us(end_ns.saturating_sub(*start_ns)),
                escape(op),
                args_json(&fields, &[("req", ev.req.to_string())]),
            ),
            EventKind::ResourceBusy {
                resource,
                slot,
                start_ns,
                end_ns,
            } => format!(
                "{{\"ph\":\"X\",\"pid\":{PID_RES},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"serve\",\"args\":{{\"req\":{}}}}}",
                lanes[&(resource.clone(), *slot)],
                ts_us(*start_ns),
                ts_us(end_ns.saturating_sub(*start_ns)),
                ev.req,
            ),
            EventKind::Gauge { name, value } => format!(
                "{{\"ph\":\"C\",\"pid\":{PID_METRICS},\"tid\":0,\"ts\":{},\"name\":\"{}\",\"args\":{{\"{}\":{}}}}}",
                ts_us(ev.ts_ns),
                escape(name),
                escape(name),
                value,
            ),
            _ => format!(
                "{{\"ph\":\"i\",\"pid\":{PID_DATA},\"tid\":{},\"ts\":{},\"s\":\"t\",\"name\":\"{}\",\"args\":{}}}",
                1 + ev.lane,
                ts_us(ev.ts_ns),
                kind_name(&ev.kind),
                args_json(&fields, &[("req", ev.req.to_string())]),
            ),
        };
        push(line, &mut out, &mut first);
    }

    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

const KNOWN_KINDS: &[&str] = &[
    "span_begin",
    "span_end",
    "cache_access",
    "cache_insert",
    "eviction",
    "remap",
    "substitution",
    "writeback",
    "copy",
    "request",
    "resource_busy",
    "gauge",
];

fn required_fields(kind: &str) -> &'static [&'static str] {
    match kind {
        "span_begin" => &["op", "config", "bytes"],
        "cache_access" => &["tier", "hit"],
        "cache_insert" => &["tier", "dirty"],
        "eviction" => &["tier", "class", "dirty"],
        "substitution" => &["substituted", "missing"],
        "writeback" => &["blocks"],
        "copy" => &["category", "bytes"],
        "request" => &["op", "path", "start_ns", "end_ns", "stages"],
        "resource_busy" => &["resource", "slot", "start_ns", "end_ns"],
        "gauge" => &["name", "value"],
        _ => &[],
    }
}

/// Checks a request record's stage breakdown against its interval: `obj`
/// must carry numeric `start_ns`/`end_ns` and a `stages` array of
/// `{stage, queue_ns, service_ns}` objects whose queue + service times
/// sum exactly to `end_ns - start_ns`. (Sums stay far below 2⁵³, so the
/// f64 arithmetic is exact.)
fn check_stage_sum(obj: &Json) -> Result<(), String> {
    let num = |field: &str| {
        obj.get(field)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("missing numeric {field:?}"))
    };
    let (start, end) = (num("start_ns")?, num("end_ns")?);
    let stages = obj
        .get("stages")
        .and_then(Json::as_arr)
        .ok_or("\"stages\" is not an array")?;
    let mut total = 0.0;
    for (i, st) in stages.iter().enumerate() {
        st.get("stage")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("stage {i}: missing \"stage\" name"))?;
        for field in ["queue_ns", "service_ns"] {
            let v = st
                .get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("stage {i}: missing numeric {field:?}"))?;
            if v < 0.0 {
                return Err(format!("stage {i}: negative {field:?}"));
            }
            total += v;
        }
    }
    if total != end - start {
        return Err(format!(
            "stage sum {total} != span duration {}",
            end - start
        ));
    }
    Ok(())
}

/// Validates a line-delimited event stream: every line parses as JSON,
/// carries `ts`/`req`/`kind`, names a known kind, and has that kind's
/// required fields; `request` records additionally reconcile their stage
/// breakdown against the span duration. Returns the number of validated
/// events.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        for field in ["ts", "req"] {
            doc.get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("line {}: missing numeric \"{field}\"", lineno + 1))?;
        }
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"kind\"", lineno + 1))?;
        if !KNOWN_KINDS.contains(&kind) {
            return Err(format!("line {}: unknown kind {kind:?}", lineno + 1));
        }
        for field in required_fields(kind) {
            if doc.get(field).is_none() {
                return Err(format!(
                    "line {}: kind {kind:?} missing field {field:?}",
                    lineno + 1
                ));
            }
        }
        if kind == "request" {
            check_stage_sum(&doc).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        count += 1;
    }
    Ok(count)
}

/// Validates a Chrome trace-event file: parses as a JSON object with a
/// `traceEvents` array whose entries each carry `ph`/`pid`, a `ts` for
/// timed phases, and a `dur` for complete ("X") slices; request slices
/// (args carrying a `stages` array) additionally reconcile their stage
/// breakdown against the span duration. Returns the number of trace
/// events.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing \"traceEvents\" array")?;
    for (idx, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {idx}: missing \"ph\""))?;
        ev.get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {idx}: missing \"pid\""))?;
        if ph != "M" {
            ev.get("ts")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {idx}: missing \"ts\""))?;
        }
        if ph == "X" {
            ev.get("dur")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {idx}: missing \"dur\""))?;
        }
        if !matches!(ph, "B" | "E" | "X" | "i" | "C" | "M") {
            return Err(format!("event {idx}: unexpected phase {ph:?}"));
        }
        if let Some(args) = ev.get("args") {
            if args.get("stages").is_some() {
                check_stage_sum(args).map_err(|e| format!("event {idx}: {e}"))?;
            }
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Recorder, TraceConfig};

    fn sample_events() -> Vec<Event> {
        let r = Recorder::new();
        r.enable(TraceConfig::default());
        r.set_now(1_500);
        let s = r.begin_span("read", "ncache", 4096);
        r.emit(EventKind::CacheAccess { tier: "fs", hit: false });
        r.emit(EventKind::Copy { category: "payload", bytes: 4096 });
        r.emit(EventKind::Substitution { substituted: 2, missing: 0 });
        r.end_span(s);
        r.emit(EventKind::Request {
            op: "read",
            path: "disk",
            start_ns: 1_500,
            end_ns: 9_000,
            stages: vec![
                crate::StageNs { stage: "app-cpu", queue_ns: 500, service_ns: 2_000 },
                crate::StageNs { stage: "disk", queue_ns: 0, service_ns: 5_000 },
            ],
        });
        r.emit(EventKind::ResourceBusy {
            resource: "app-cpu".to_string(),
            slot: 0,
            start_ns: 2_000,
            end_ns: 3_000,
        });
        r.emit(EventKind::Gauge { name: "throughput_mbs", value: 12.5 });
        r.emit(EventKind::Writeback { blocks: 3 });
        r.emit(EventKind::Eviction { tier: "fs", class: "data", dirty: false });
        r.emit(EventKind::CacheInsert { tier: "ncache-lbn", dirty: true });
        r.emit(EventKind::Remap);
        r.events()
    }

    #[test]
    fn jsonl_round_trips_through_validator() {
        let text = export_jsonl(&sample_events());
        let n = validate_jsonl(&text).unwrap();
        assert_eq!(n, 12);
        assert!(text.contains("\"kind\":\"substitution\",\"substituted\":2,\"missing\":0"));
        assert!(text.contains("\"kind\":\"copy\",\"category\":\"payload\",\"bytes\":4096"));
    }

    #[test]
    fn chrome_trace_round_trips_through_validator() {
        let text = export_chrome_trace(&sample_events());
        let n = validate_chrome_trace(&text).unwrap();
        // 12 events + 3 process_name + 1 thread_name metadata records.
        assert_eq!(n, 16);
        assert!(text.contains("\"ph\":\"B\""));
        assert!(text.contains("\"ph\":\"E\""));
        assert!(text.contains("\"ts\":1.500"));
        assert!(text.contains("\"name\":\"app-cpu#0\""));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_events();
        let b = sample_events();
        assert_eq!(export_jsonl(&a), export_jsonl(&b));
        assert_eq!(export_chrome_trace(&a), export_chrome_trace(&b));
    }

    #[test]
    fn validators_reject_malformed_input() {
        assert!(validate_jsonl("{\"ts\":1}\n").is_err());
        assert!(validate_jsonl("{\"ts\":1,\"req\":0,\"kind\":\"bogus\"}\n").is_err());
        assert!(validate_jsonl("{\"ts\":1,\"req\":0,\"kind\":\"copy\"}\n").is_err());
        assert!(validate_jsonl("not json\n").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"B\"}]}").is_err());
        assert_eq!(validate_jsonl("\n\n").unwrap(), 0);
    }

    #[test]
    fn validators_enforce_stage_sum_reconciliation() {
        let line = |stages: &str| {
            format!(
                "{{\"ts\":0,\"req\":1,\"kind\":\"request\",\"op\":\"read\",\
                 \"path\":\"hit\",\"start_ns\":100,\"end_ns\":400,\"stages\":{stages}}}\n"
            )
        };
        // Exact reconciliation passes.
        let good = line("[{\"stage\":\"app-cpu\",\"queue_ns\":100,\"service_ns\":200}]");
        assert_eq!(validate_jsonl(&good).unwrap(), 1);
        // Off-by-one stage sums fail.
        let short = line("[{\"stage\":\"app-cpu\",\"queue_ns\":100,\"service_ns\":199}]");
        let err = validate_jsonl(&short).unwrap_err();
        assert!(err.contains("stage sum"), "{err}");
        // Negative stage times fail.
        let neg = line("[{\"stage\":\"app-cpu\",\"queue_ns\":-100,\"service_ns\":400}]");
        assert!(validate_jsonl(&neg).unwrap_err().contains("negative"));
        // Malformed stage entries fail.
        let nameless = line("[{\"queue_ns\":100,\"service_ns\":200}]");
        assert!(validate_jsonl(&nameless).is_err());
        // The Chrome validator checks the same invariant on args.
        let trace = "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":1,\"tid\":100,\"ts\":0.100,\
             \"dur\":0.300,\"name\":\"read\",\"args\":{\"start_ns\":100,\"end_ns\":400,\
             \"stages\":[{\"stage\":\"disk\",\"queue_ns\":0,\"service_ns\":299}]}}]}";
        assert!(validate_chrome_trace(trace).unwrap_err().contains("stage sum"));
    }

    #[test]
    fn ts_formatting_is_fixed_point() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(999), "0.999");
        assert_eq!(ts_us(1_500), "1.500");
        assert_eq!(ts_us(1_234_567), "1234.567");
    }

    #[test]
    fn resource_lanes_sorted_not_first_seen() {
        let mk = |name: &str| EventKind::ResourceBusy {
            resource: name.to_string(),
            slot: 0,
            start_ns: 0,
            end_ns: 1,
        };
        let events = vec![
            Event { ts_ns: 0, req: 0, lane: 0, kind: mk("zeta") },
            Event { ts_ns: 0, req: 0, lane: 0, kind: mk("alpha") },
        ];
        let text = export_chrome_trace(&events);
        // alpha sorts first → lane 1 even though zeta appeared first.
        assert!(text.contains("\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"alpha#0\"}"));
        assert!(text.contains("\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"zeta#0\"}"));
    }
}
