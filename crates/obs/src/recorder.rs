//! The [`Recorder`]: typed event emission, counters, gauges and
//! log-bucketed histograms over simulated time.

use crate::hist::{Histogram, HistogramSnapshot};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// One stage of a request's latency breakdown: how long the request
/// waited behind the named resource, then how long the resource worked
/// on it, both in simulated nanoseconds. A request's stages sum exactly
/// to its end-to-end latency (asserted by the trace validators).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageNs {
    /// Stage name ("app-cpu", "disk", ...), from the runner's fixed set.
    pub stage: &'static str,
    /// Nanoseconds spent queued before service began.
    pub queue_ns: u64,
    /// Nanoseconds in service.
    pub service_ns: u64,
}

/// One traced occurrence on the data plane or the timing plane.
///
/// Variants carry `&'static str` labels wherever the label set is fixed at
/// compile time, so emission does not allocate; only resource names (built
/// at rig construction) are owned strings.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// A request span opened ([`Recorder::begin_span`]).
    SpanBegin {
        /// Operation ("read", "write", "get", ...).
        op: &'static str,
        /// Server configuration ("original", "ncache", "baseline").
        config: &'static str,
        /// Request size in bytes (message payload).
        bytes: u64,
    },
    /// The matching span closed.
    SpanEnd,
    /// A cache lookup on some tier ("fs", "ncache", "ncache-lbn", ...).
    CacheAccess {
        /// Which cache.
        tier: &'static str,
        /// Hit or miss.
        hit: bool,
    },
    /// A block/chunk entered a cache tier.
    CacheInsert {
        /// Which cache.
        tier: &'static str,
        /// Inserted dirty (write path) or clean.
        dirty: bool,
    },
    /// A block/chunk was reclaimed from a cache tier.
    Eviction {
        /// Which cache.
        tier: &'static str,
        /// "data" or "meta".
        class: &'static str,
        /// Dirty evictions imply a writeback.
        dirty: bool,
    },
    /// An FHO→LBN remap (the paper's §3.3 key move).
    Remap,
    /// Driver-boundary substitution of placeholder payload.
    Substitution {
        /// Placeholders substituted from the cache.
        substituted: u64,
        /// Placeholders whose chunk was missing (must be zero in
        /// correctness runs).
        missing: u64,
    },
    /// A write-back batch left the file system.
    Writeback {
        /// Blocks flushed in this batch.
        blocks: u64,
    },
    /// A copy-ledger charge ("payload", "meta", "logical", "header",
    /// "csum", "csum_inherited", "alloc").
    Copy {
        /// The ledger category.
        category: &'static str,
        /// Bytes moved / checksummed (zero for count-only categories).
        bytes: u64,
    },
    /// A completed foreground request with exact simulated interval and
    /// its per-stage latency breakdown.
    Request {
        /// Operation label.
        op: &'static str,
        /// Data path the request took ("hit", "substitution", "disk").
        path: &'static str,
        /// Issue instant, simulated ns.
        start_ns: u64,
        /// Completion instant, simulated ns.
        end_ns: u64,
        /// Queue/service time per stage, in execution order; sums
        /// exactly to `end_ns - start_ns`.
        stages: Vec<StageNs>,
    },
    /// A FIFO resource served one job over an exact busy interval.
    ResourceBusy {
        /// Resource name ("app-cpu", "storage-tx", ...).
        resource: String,
        /// Server slot within the resource.
        slot: u32,
        /// Busy-start instant, simulated ns.
        start_ns: u64,
        /// Busy-end instant, simulated ns.
        end_ns: u64,
    },
    /// A sampled scalar (timeline series point).
    Gauge {
        /// Series name.
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
}

/// A recorded event: simulated timestamp, owning request span (0 when none
/// was open), and the payload.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Simulated nanoseconds (the owning request's issue instant for
    /// functional events; exact instants for `Request`/`ResourceBusy`).
    pub ts_ns: u64,
    /// Request span id, or 0 outside any span.
    pub req: u64,
    /// Session lane the event belongs to (0 for single-session runs).
    /// The multi-client engine stamps each session's events with its
    /// session id so the Chrome exporter can render one row per session.
    pub lane: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Recorder tuning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring-buffer capacity in events; the oldest events drop
    /// (deterministically) past this. Counters keep aggregating regardless.
    pub capacity: usize,
    /// Span sampling: span `n` (1-based) keeps its events iff
    /// `(n - 1) % sample_every == 0`. Unsampled spans still update
    /// counters. 1 = keep everything.
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 1 << 20,
            sample_every: 1,
        }
    }
}

/// The per-path latency histogram key for a request path label.
fn path_hist_key(path: &str) -> Option<&'static str> {
    match path {
        "hit" => Some("request.latency_ns.hit"),
        "substitution" => Some("request.latency_ns.substitution"),
        "disk" => Some("request.latency_ns.disk"),
        _ => None,
    }
}

/// The `(queue, service)` histogram keys for a stage name. Keys must be
/// `&'static str` (the histogram map never allocates key strings), so
/// the stage set is closed here; unknown stages aggregate nowhere.
fn stage_hist_keys(stage: &str) -> Option<(&'static str, &'static str)> {
    match stage {
        "app-rx" => Some(("stage.app-rx.queue_ns", "stage.app-rx.service_ns")),
        "app-cpu" => Some(("stage.app-cpu.queue_ns", "stage.app-cpu.service_ns")),
        "app-tx" => Some(("stage.app-tx.queue_ns", "stage.app-tx.service_ns")),
        "storage-rx" => Some(("stage.storage-rx.queue_ns", "stage.storage-rx.service_ns")),
        "storage-cpu" => Some(("stage.storage-cpu.queue_ns", "stage.storage-cpu.service_ns")),
        "storage-tx" => Some(("stage.storage-tx.queue_ns", "stage.storage-tx.service_ns")),
        "disk" => Some(("stage.disk.queue_ns", "stage.disk.service_ns")),
        _ => None,
    }
}

#[derive(Debug)]
struct State {
    cfg: TraceConfig,
    now_ns: u64,
    lane: u64,
    next_span: u64,
    /// Open spans, innermost last: (id, sampled).
    span_stack: Vec<(u64, bool)>,
    events: VecDeque<Event>,
    dropped: u64,
    spans_opened: u64,
    spans_closed: u64,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl State {
    fn new() -> Self {
        State {
            cfg: TraceConfig::default(),
            now_ns: 0,
            lane: 0,
            next_span: 1,
            span_stack: Vec::new(),
            events: VecDeque::new(),
            dropped: 0,
            spans_opened: 0,
            spans_closed: 0,
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    fn bump(&mut self, name: &str, delta: u64) {
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Folds an event into the aggregate counters/histograms. Runs for
    /// every emission, sampled or not, so `--metrics` is always exact.
    fn aggregate(&mut self, kind: &EventKind) {
        match kind {
            EventKind::SpanBegin { op, config, .. } => {
                self.bump("requests", 1);
                self.bump(&format!("requests.{config}.{op}"), 1);
            }
            EventKind::SpanEnd => {}
            EventKind::CacheAccess { tier, hit } => {
                let what = if *hit { "hits" } else { "misses" };
                self.bump(&format!("cache.{tier}.{what}"), 1);
            }
            EventKind::CacheInsert { tier, .. } => {
                self.bump(&format!("cache.{tier}.insertions"), 1);
            }
            EventKind::Eviction { tier, dirty, .. } => {
                let kind = if *dirty { "dirty" } else { "clean" };
                self.bump(&format!("cache.{tier}.evicted_{kind}"), 1);
            }
            EventKind::Remap => self.bump("ncache.remaps", 1),
            EventKind::Substitution {
                substituted,
                missing,
            } => {
                self.bump("ncache.substituted", *substituted);
                self.bump("ncache.substitution_missing", *missing);
            }
            EventKind::Writeback { blocks } => {
                self.bump("fs.writeback.batches", 1);
                self.bump("fs.writeback.blocks", *blocks);
            }
            EventKind::Copy { category, bytes } => {
                self.bump(&format!("copy.{category}.ops"), 1);
                self.bump(&format!("copy.{category}.bytes"), *bytes);
                if *category == "payload" {
                    self.hists.entry("copy.payload.bytes").or_default().record(*bytes);
                }
            }
            EventKind::Request {
                path,
                start_ns,
                end_ns,
                stages,
                ..
            } => {
                let latency = end_ns.saturating_sub(*start_ns);
                self.hists
                    .entry("request.latency_ns")
                    .or_default()
                    .record(latency);
                if let Some(key) = path_hist_key(path) {
                    self.hists.entry(key).or_default().record(latency);
                }
                for st in stages {
                    if let Some((qk, sk)) = stage_hist_keys(st.stage) {
                        self.hists.entry(qk).or_default().record(st.queue_ns);
                        self.hists.entry(sk).or_default().record(st.service_ns);
                    }
                }
            }
            EventKind::ResourceBusy {
                resource,
                start_ns,
                end_ns,
                ..
            } => {
                self.bump(
                    &format!("resource.{resource}.busy_ns"),
                    end_ns.saturating_sub(*start_ns),
                );
            }
            EventKind::Gauge { .. } => {}
        }
    }

    fn store(&mut self, ev: Event) {
        if self.events.len() >= self.cfg.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

#[derive(Debug)]
struct RecorderInner {
    enabled: AtomicBool,
    state: Mutex<State>,
}

/// Shared handle to the trace/metrics recorder. Cloning shares state; a rig
/// hands clones to every instrumented component.
///
/// # Examples
///
/// ```
/// use obs::{EventKind, Recorder, TraceConfig};
///
/// let rec = Recorder::new();
/// rec.emit(EventKind::Remap); // disabled: dropped for free
/// rec.enable(TraceConfig::default());
/// rec.set_now(1_000);
/// let span = rec.begin_span("read", "ncache", 4096);
/// rec.emit(EventKind::CacheAccess { tier: "fs", hit: true });
/// rec.end_span(span);
/// let events = rec.events();
/// assert_eq!(events.len(), 3);
/// assert_eq!(events[1].ts_ns, 1_000);
/// assert_eq!(events[1].req, span);
/// assert_eq!(rec.counter("cache.fs.hits"), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A disabled recorder (enable with [`Recorder::enable`]).
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(RecorderInner {
                enabled: AtomicBool::new(false),
                state: Mutex::new(State::new()),
            }),
        }
    }

    /// Whether two handles share state.
    pub fn same_recorder(&self, other: &Recorder) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Starts recording under `cfg`, clearing any previous state.
    pub fn enable(&self, cfg: TraceConfig) {
        let mut st = self.lock();
        *st = State::new();
        st.cfg = cfg;
        drop(st);
        self.inner.enabled.store(true, Ordering::Release);
    }

    /// Stops recording (state is kept for inspection/export).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Release);
    }

    /// The fast-path gate every emission checks first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Acquire)
    }

    /// Sets the simulated clock that stamps subsequent events.
    pub fn set_now(&self, ns: u64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().now_ns = ns;
    }

    /// Sets the session lane that stamps subsequent events (0 = the
    /// default single-session lane). The multi-client engine switches
    /// lanes as it switches sessions, like [`Recorder::set_now`].
    pub fn set_lane(&self, lane: u64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().lane = lane;
    }

    /// Opens a request span; returns its id (0 when disabled). All events
    /// emitted before the matching [`Recorder::end_span`] carry this id.
    pub fn begin_span(&self, op: &'static str, config: &'static str, bytes: u64) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let mut st = self.lock();
        let id = st.next_span;
        st.next_span += 1;
        let sampled = (id - 1).is_multiple_of(st.cfg.sample_every.max(1));
        st.spans_opened += 1;
        let kind = EventKind::SpanBegin { op, config, bytes };
        st.aggregate(&kind);
        if sampled {
            let ev = Event {
                ts_ns: st.now_ns,
                req: id,
                lane: st.lane,
                kind,
            };
            st.store(ev);
        }
        st.span_stack.push((id, sampled));
        id
    }

    /// Closes the span `id` (no-op for id 0 or when disabled).
    pub fn end_span(&self, id: u64) {
        if id == 0 || !self.is_enabled() {
            return;
        }
        let mut st = self.lock();
        let Some(pos) = st.span_stack.iter().rposition(|&(sid, _)| sid == id) else {
            return;
        };
        let (_, sampled) = st.span_stack.remove(pos);
        st.spans_closed += 1;
        if sampled {
            let ev = Event {
                ts_ns: st.now_ns,
                req: id,
                lane: st.lane,
                kind: EventKind::SpanEnd,
            };
            st.store(ev);
        }
    }

    /// Records one event at the current simulated time, attributed to the
    /// innermost open span. Always aggregates into counters; stores the
    /// event unless the owning span was sampled out.
    pub fn emit(&self, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.lock();
        st.aggregate(&kind);
        let (req, sampled) = st.span_stack.last().copied().unwrap_or((0, true));
        if sampled {
            let ev = Event {
                ts_ns: st.now_ns,
                req,
                lane: st.lane,
                kind,
            };
            st.store(ev);
        }
    }

    /// Adds `delta` to a named counter directly.
    pub fn add_counter(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        self.lock().bump(name, delta);
    }

    /// A counter's current value (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.lock().counters.clone()
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> BTreeMap<String, HistogramSnapshot> {
        self.lock()
            .hists
            .iter()
            .map(|(k, v)| (k.to_string(), v.snapshot()))
            .collect()
    }

    /// The stored events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.iter().cloned().collect()
    }

    /// Events dropped by the ring buffer.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Spans opened so far.
    pub fn spans_opened(&self) -> u64 {
        self.lock().spans_opened
    }

    /// Spans closed so far.
    pub fn spans_closed(&self) -> u64 {
        self.lock().spans_closed
    }

    /// Whether every opened span has closed (the span invariant).
    pub fn spans_balanced(&self) -> bool {
        let st = self.lock();
        st.spans_opened == st.spans_closed && st.span_stack.is_empty()
    }

    /// The active trace configuration (the default when never enabled).
    pub fn config(&self) -> TraceConfig {
        self.lock().cfg
    }

    /// Merges `cell`'s recorded state into this recorder, exactly as if
    /// every one of `cell`'s emissions had happened here, in order, after
    /// everything recorded so far. The parallel experiment executor gives
    /// each cell its own recorder and absorbs them **in deterministic cell
    /// order**, which makes the merged stream independent of thread count:
    ///
    /// * span ids are renumbered by the spans already issued here, so ids
    ///   stay dense and unique across cells;
    /// * events append through the same ring buffer (capacity drops behave
    ///   identically to one shared recorder, because each cell's ring has
    ///   the same capacity and therefore retains a superset of the final
    ///   window);
    /// * counters, histograms, span totals, and drop counts sum;
    /// * the clock adopts the cell's final instant, as a sequential run
    ///   would leave it.
    ///
    /// Span *sampling* is applied per cell (each cell numbers its own
    /// spans), which is what keeps sampled traces thread-count-invariant.
    ///
    /// No-op when this recorder is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is this recorder (the merge would self-deadlock).
    pub fn absorb(&self, cell: &Recorder) {
        assert!(
            !self.same_recorder(cell),
            "a recorder cannot absorb itself"
        );
        if !self.is_enabled() {
            return;
        }
        let other = cell.lock();
        let mut st = self.lock();
        let base = st.next_span - 1;
        for ev in &other.events {
            let mut ev = ev.clone();
            if ev.req != 0 {
                ev.req += base;
            }
            st.store(ev);
        }
        st.dropped += other.dropped;
        st.next_span += other.next_span - 1;
        st.spans_opened += other.spans_opened;
        st.spans_closed += other.spans_closed;
        st.now_ns = other.now_ns;
        for (name, v) in &other.counters {
            st.bump(name, *v);
        }
        for (name, hist) in &other.hists {
            st.hists.entry(name).or_default().absorb(hist);
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.inner.state.lock().expect("recorder poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_stores_nothing() {
        let r = Recorder::new();
        assert_eq!(r.begin_span("read", "original", 1), 0);
        r.emit(EventKind::Remap);
        r.end_span(0);
        assert!(r.events().is_empty());
        assert!(r.counters().is_empty());
        assert!(r.spans_balanced());
    }

    #[test]
    fn events_carry_the_current_lane() {
        let r = Recorder::new();
        r.enable(TraceConfig::default());
        let s = r.begin_span("read", "ncache", 1);
        r.end_span(s);
        r.set_lane(3);
        let s = r.begin_span("read", "ncache", 1);
        r.emit(EventKind::Remap);
        r.end_span(s);
        r.set_lane(0);
        r.emit(EventKind::Remap);
        let evs = r.events();
        assert_eq!(
            evs.iter().map(|e| e.lane).collect::<Vec<_>>(),
            vec![0, 0, 3, 3, 3, 0],
            "lane sticks like the clock until switched"
        );
    }

    #[test]
    fn events_carry_sim_time_and_span() {
        let r = Recorder::new();
        r.enable(TraceConfig::default());
        r.set_now(500);
        let s = r.begin_span("write", "ncache", 8192);
        assert_eq!(s, 1);
        r.set_now(500); // functional events share the issue instant
        r.emit(EventKind::Copy {
            category: "payload",
            bytes: 4096,
        });
        r.end_span(s);
        r.emit(EventKind::Remap); // outside any span
        let evs = r.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[1].req, 1);
        assert_eq!(evs[1].ts_ns, 500);
        assert_eq!(evs[3].req, 0);
        assert!(r.spans_balanced());
    }

    #[test]
    fn counters_aggregate_even_when_sampled_out() {
        let r = Recorder::new();
        r.enable(TraceConfig {
            capacity: 1024,
            sample_every: 2,
        });
        for i in 0..4 {
            let s = r.begin_span("read", "original", 0);
            r.emit(EventKind::CacheAccess {
                tier: "fs",
                hit: i % 2 == 0,
            });
            r.end_span(s);
        }
        // Spans 1 and 3 sampled (ids 1,3 → (id-1)%2==0): 2 begin + 2 event
        // + 2 end stored.
        assert_eq!(r.events().len(), 6);
        // But counters see all four.
        assert_eq!(r.counter("requests"), 4);
        assert_eq!(r.counter("cache.fs.hits"), 2);
        assert_eq!(r.counter("cache.fs.misses"), 2);
        assert!(r.spans_balanced());
    }

    #[test]
    fn ring_buffer_drops_oldest_deterministically() {
        let r = Recorder::new();
        r.enable(TraceConfig {
            capacity: 3,
            sample_every: 1,
        });
        for i in 0..5 {
            r.set_now(i);
            r.emit(EventKind::Remap);
        }
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(evs[0].ts_ns, 2);
        assert_eq!(r.counter("ncache.remaps"), 5, "counters never drop");
    }

    #[test]
    fn request_latency_feeds_histogram() {
        let r = Recorder::new();
        r.enable(TraceConfig::default());
        r.emit(EventKind::Request {
            op: "read",
            path: "hit",
            start_ns: 100,
            end_ns: 1100,
            stages: vec![
                StageNs {
                    stage: "app-rx",
                    queue_ns: 0,
                    service_ns: 400,
                },
                StageNs {
                    stage: "app-cpu",
                    queue_ns: 100,
                    service_ns: 500,
                },
            ],
        });
        let hists = r.histograms();
        let h = &hists["request.latency_ns"];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 1000);
        assert_eq!(hists["request.latency_ns.hit"].sum, 1000);
        assert_eq!(hists["stage.app-rx.queue_ns"].sum, 0);
        assert_eq!(hists["stage.app-rx.service_ns"].sum, 400);
        assert_eq!(hists["stage.app-cpu.queue_ns"].sum, 100);
        assert_eq!(hists["stage.app-cpu.service_ns"].sum, 500);
        assert!(!hists.contains_key("request.latency_ns.disk"));
    }

    #[test]
    fn enable_clears_previous_state() {
        let r = Recorder::new();
        r.enable(TraceConfig::default());
        r.emit(EventKind::Remap);
        r.enable(TraceConfig::default());
        assert!(r.events().is_empty());
        assert_eq!(r.counter("ncache.remaps"), 0);
    }

    #[test]
    fn clones_share_state() {
        let a = Recorder::new();
        let b = a.clone();
        a.enable(TraceConfig::default());
        b.emit(EventKind::Remap);
        assert_eq!(a.counter("ncache.remaps"), 1);
        assert!(a.same_recorder(&b));
        assert!(!a.same_recorder(&Recorder::new()));
    }

    fn emit_workload(r: &Recorder, cells: &[u64]) {
        for &salt in cells {
            r.set_now(salt * 100);
            let s = r.begin_span("read", "ncache", salt);
            r.emit(EventKind::Copy {
                category: "payload",
                bytes: 4096 + salt,
            });
            r.emit(EventKind::Request {
                op: "read",
                path: "disk",
                start_ns: salt,
                end_ns: salt + 1000,
                stages: vec![StageNs {
                    stage: "disk",
                    queue_ns: salt,
                    service_ns: 1000 - salt,
                }],
            });
            r.end_span(s);
            r.emit(EventKind::Remap);
        }
    }

    #[test]
    fn absorbing_per_cell_recorders_equals_one_shared_recorder() {
        for capacity in [1 << 10, 4usize] {
            let cfg = TraceConfig {
                capacity,
                sample_every: 1,
            };
            let seq = Recorder::new();
            seq.enable(cfg);
            emit_workload(&seq, &[1]);
            emit_workload(&seq, &[2, 3]);

            let merged = Recorder::new();
            merged.enable(cfg);
            for cell in [&[1u64][..], &[2, 3][..]] {
                let r = Recorder::new();
                r.enable(cfg);
                emit_workload(&r, cell);
                merged.absorb(&r);
            }

            assert_eq!(seq.events(), merged.events(), "capacity {capacity}");
            assert_eq!(seq.counters(), merged.counters());
            assert_eq!(seq.histograms(), merged.histograms());
            assert_eq!(seq.dropped(), merged.dropped());
            assert_eq!(seq.spans_opened(), merged.spans_opened());
            assert!(merged.spans_balanced());
        }
    }

    #[test]
    fn absorb_renumbers_span_ids_densely() {
        let a = Recorder::new();
        a.enable(TraceConfig::default());
        let s = a.begin_span("read", "original", 0);
        a.end_span(s);
        let b = Recorder::new();
        b.enable(TraceConfig::default());
        let s = b.begin_span("write", "original", 0);
        b.end_span(s);
        a.absorb(&b);
        let spans: Vec<u64> = a.events().iter().map(|e| e.req).collect();
        assert_eq!(spans, vec![1, 1, 2, 2]);
        let s = a.begin_span("get", "original", 0);
        assert_eq!(s, 3, "next local span continues after absorbed ids");
        a.end_span(s);
    }

    #[test]
    fn absorb_into_disabled_recorder_is_a_noop() {
        let a = Recorder::new();
        let b = Recorder::new();
        b.enable(TraceConfig::default());
        b.emit(EventKind::Remap);
        a.absorb(&b);
        assert!(a.events().is_empty());
        assert!(a.counters().is_empty());
    }

    #[test]
    fn recorder_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Recorder>();
    }
}
