//! Deterministic fault injection for the pass-through data path.
//!
//! A [`FaultPlan`] is a seeded source of fault decisions for the two
//! network links of the testbed (client ⇄ NFS/kHTTPd server and iSCSI
//! initiator ⇄ target) plus the block device underneath the target. Each
//! link owns an independent [`SplitMix64`](crate::rng::SplitMix64) stream
//! derived from the plan seed, so the decision sequence on one link never
//! depends on traffic (or thread scheduling) on another: the same seed and
//! [`FaultSpec`] reproduce the same faults byte for byte at any worker
//! count, because each experiment cell owns its own plan seeded by the
//! executor's `derive_seed`.
//!
//! Faults are drawn per PDU in parts-per-million space — one `u64` draw
//! partitioned into [drop | duplicate | reorder | delay | truncate |
//! corrupt | deliver] bands — and a plan never injects more than
//! [`MAX_CONSECUTIVE_FAULTS`] faults in a row on one link. Together with
//! each layer's bounded retries this guarantees the headline liveness
//! invariant: under *any* schedule every request eventually completes or
//! fails cleanly.

use crate::rng::SplitMix64;

/// Fault rates are fixed-point parts-per-million so decisions are pure
/// integer comparisons (no float accumulation anywhere in the draw path).
pub const PPM: u64 = 1_000_000;

/// A plan never injects more than this many faults in a row on one link;
/// the draw after the bound is reached is forced to deliver cleanly. With
/// every retry loop in the stack allowing at least this many attempts plus
/// one, recovery always terminates.
pub const MAX_CONSECUTIVE_FAULTS: u32 = 3;

/// The interposition points a [`FaultPlan`] covers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultLink {
    /// The client ⇄ NFS (or kHTTPd) server link, both directions.
    ClientServer,
    /// The iSCSI initiator ⇄ target link, both directions.
    InitiatorTarget,
    /// Transient read/write errors of the block device under the target
    /// (drawn through [`FaultPlan::link_seed`] by `blockdev`'s transient
    /// fault stream rather than [`FaultPlan::draw`]).
    BlockIo,
}

impl FaultLink {
    fn index(self) -> usize {
        match self {
            FaultLink::ClientServer => 0,
            FaultLink::InitiatorTarget => 1,
            FaultLink::BlockIo => 2,
        }
    }
}

/// One injected fault, with the parameters the interposer needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The PDU vanishes; the receiver never sees it.
    Drop,
    /// The PDU arrives twice back to back.
    Duplicate,
    /// A stale copy of the *previous* PDU on this link arrives first
    /// (the synchronous testbed's rendering of reordering).
    Reorder,
    /// The PDU arrives after the sender's timeout already fired, so the
    /// sender retransmits even though the receiver processed it.
    Delay,
    /// The PDU arrives cut short; `keep_ppm`/[`PPM`] of its bytes survive.
    Truncate {
        /// Fraction of the PDU that survives, in parts per million.
        keep_ppm: u32,
    },
    /// A single bit of the PDU flips in flight.
    Corrupt {
        /// Raw byte-position draw; reduce modulo the PDU length.
        pos: u64,
        /// Which bit of that byte flips (0..8).
        bit: u8,
    },
}

/// Per-category fault rates, parsed from a `--faults` spec string.
///
/// # Examples
///
/// ```
/// use sim::fault::FaultSpec;
/// let spec = FaultSpec::parse("loss=0.05,corrupt=0.01").unwrap();
/// assert_eq!(spec.loss, 0.05);
/// assert!(FaultSpec::parse("loss=0").unwrap().is_zero());
/// assert!(FaultSpec::parse("bogus=1").is_err());
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability a PDU is dropped in flight.
    pub loss: f64,
    /// Probability a PDU is delivered twice.
    pub duplicate: f64,
    /// Probability a stale previous PDU is replayed first.
    pub reorder: f64,
    /// Probability a PDU is delayed past the sender's timeout.
    pub delay: f64,
    /// Probability a PDU is truncated in flight.
    pub truncate: f64,
    /// Probability a single bit of a PDU flips in flight.
    pub corrupt: f64,
    /// Probability one block-device read/write fails transiently.
    pub io: f64,
}

impl FaultSpec {
    /// A spec injecting only packet loss at rate `loss`.
    pub fn loss_only(loss: f64) -> FaultSpec {
        FaultSpec {
            loss,
            ..FaultSpec::default()
        }
    }

    /// Parses a comma-separated `key=rate` list. Keys: `loss`, `dup` (or
    /// `duplicate`), `reorder`, `delay`, `truncate`, `corrupt`, `io`.
    /// Rates are probabilities in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on unknown keys, malformed
    /// numbers, or rates outside `[0, 1]`.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}`: expected key=rate"))?;
            let rate: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("fault spec `{part}`: `{value}` is not a number"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault spec `{part}`: rate must be in [0, 1]"));
            }
            match key.trim() {
                "loss" => spec.loss = rate,
                "dup" | "duplicate" => spec.duplicate = rate,
                "reorder" => spec.reorder = rate,
                "delay" => spec.delay = rate,
                "truncate" => spec.truncate = rate,
                "corrupt" => spec.corrupt = rate,
                "io" => spec.io = rate,
                other => {
                    return Err(format!(
                        "fault spec: unknown key `{other}` (expected loss, dup, \
                         reorder, delay, truncate, corrupt, io)"
                    ));
                }
            }
        }
        Ok(spec)
    }

    /// True when every rate is zero — an all-zero spec must inject nothing
    /// and leave every counter at zero.
    pub fn is_zero(&self) -> bool {
        self.to_ppm().iter().all(|&r| r == 0) && ppm(self.io) == 0
    }

    /// Link-fault rates in draw order, parts per million.
    fn to_ppm(self) -> [u64; 6] {
        [
            ppm(self.loss),
            ppm(self.duplicate),
            ppm(self.reorder),
            ppm(self.delay),
            ppm(self.truncate),
            ppm(self.corrupt),
        ]
    }

    /// The transient block-I/O error rate in parts per million (consumed
    /// by `blockdev`'s transient fault stream).
    pub fn io_ppm(&self) -> u32 {
        ppm(self.io) as u32
    }
}

fn ppm(rate: f64) -> u64 {
    (rate.clamp(0.0, 1.0) * PPM as f64).round() as u64
}

#[derive(Clone, Debug)]
struct LinkState {
    rng: SplitMix64,
    consecutive: u32,
}

/// A seeded, per-link-deterministic source of fault decisions.
///
/// # Examples
///
/// ```
/// use sim::fault::{FaultLink, FaultPlan, FaultSpec};
/// let spec = FaultSpec::parse("loss=0.5").unwrap();
/// let mut a = FaultPlan::new(&spec, 7);
/// let mut b = FaultPlan::new(&spec, 7);
/// for _ in 0..100 {
///     assert_eq!(
///         a.draw(FaultLink::ClientServer),
///         b.draw(FaultLink::ClientServer)
///     );
/// }
/// ```
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: [u64; 6],
    links: [LinkState; 3],
}

impl FaultPlan {
    /// Builds a plan for `spec`, all link streams derived from `seed`.
    pub fn new(spec: &FaultSpec, seed: u64) -> FaultPlan {
        let link = |i: u64| LinkState {
            rng: SplitMix64::new(
                seed ^ (i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ),
            consecutive: 0,
        };
        FaultPlan {
            seed,
            rates: spec.to_ppm(),
            links: [link(0), link(1), link(2)],
        }
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A stable seed for auxiliary fault streams attached to `link`
    /// (e.g. `blockdev`'s transient I/O errors). Does not consume any
    /// randomness from the plan itself.
    pub fn link_seed(&self, link: FaultLink) -> u64 {
        self.seed ^ (link.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Draws the fault (if any) for the next PDU crossing `link`. One call
    /// per PDU; `None` means clean delivery. At most
    /// [`MAX_CONSECUTIVE_FAULTS`] consecutive calls return a fault.
    pub fn draw(&mut self, link: FaultLink) -> Option<FaultKind> {
        let rates = self.rates;
        let st = &mut self.links[link.index()];
        if st.consecutive >= MAX_CONSECUTIVE_FAULTS {
            st.consecutive = 0;
            return None;
        }
        let mut x = st.rng.next_u64() % PPM;
        let mut kind = None;
        for (i, &rate) in rates.iter().enumerate() {
            if x < rate {
                kind = Some(i);
                break;
            }
            x -= rate;
        }
        let kind = match kind? {
            0 => FaultKind::Drop,
            1 => FaultKind::Duplicate,
            2 => FaultKind::Reorder,
            3 => FaultKind::Delay,
            4 => FaultKind::Truncate {
                keep_ppm: (st.rng.next_u64() % PPM) as u32,
            },
            _ => FaultKind::Corrupt {
                pos: st.rng.next_u64(),
                bit: (st.rng.next_u64() % 8) as u8,
            },
        };
        st.consecutive += 1;
        Some(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_key() {
        let spec = FaultSpec::parse(
            "loss=0.1, dup=0.2, reorder=0.05, delay=0.01, truncate=0.02, corrupt=0.03, io=0.04",
        )
        .unwrap();
        assert_eq!(spec.loss, 0.1);
        assert_eq!(spec.duplicate, 0.2);
        assert_eq!(spec.reorder, 0.05);
        assert_eq!(spec.delay, 0.01);
        assert_eq!(spec.truncate, 0.02);
        assert_eq!(spec.corrupt, 0.03);
        assert_eq!(spec.io, 0.04);
        assert_eq!(spec.io_ppm(), 40_000);
        assert!(!spec.is_zero());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultSpec::parse("nope=0.1").is_err());
        assert!(FaultSpec::parse("loss").is_err());
        assert!(FaultSpec::parse("loss=x").is_err());
        assert!(FaultSpec::parse("loss=1.5").is_err());
        assert!(FaultSpec::parse("loss=-0.5").is_err());
    }

    #[test]
    fn empty_spec_is_zero() {
        assert!(FaultSpec::parse("").unwrap().is_zero());
        assert!(FaultSpec::default().is_zero());
    }

    #[test]
    fn links_are_independent_streams() {
        let spec = FaultSpec::loss_only(0.5);
        // Draining one link must not disturb another: compare a fresh
        // plan's InitiatorTarget stream against one whose ClientServer
        // stream was heavily consumed.
        let mut fresh = FaultPlan::new(&spec, 42);
        let mut used = FaultPlan::new(&spec, 42);
        for _ in 0..1000 {
            used.draw(FaultLink::ClientServer);
        }
        for _ in 0..100 {
            assert_eq!(
                fresh.draw(FaultLink::InitiatorTarget),
                used.draw(FaultLink::InitiatorTarget)
            );
        }
    }

    #[test]
    fn consecutive_faults_are_bounded() {
        let spec = FaultSpec::loss_only(1.0);
        let mut plan = FaultPlan::new(&spec, 1);
        let mut consecutive = 0u32;
        for _ in 0..1000 {
            match plan.draw(FaultLink::ClientServer) {
                Some(_) => {
                    consecutive += 1;
                    assert!(consecutive <= MAX_CONSECUTIVE_FAULTS);
                }
                None => consecutive = 0,
            }
        }
    }

    #[test]
    fn zero_rate_never_faults() {
        let mut plan = FaultPlan::new(&FaultSpec::default(), 99);
        for _ in 0..1000 {
            assert_eq!(plan.draw(FaultLink::ClientServer), None);
            assert_eq!(plan.draw(FaultLink::InitiatorTarget), None);
        }
    }

    #[test]
    fn rates_partition_the_draw_space() {
        // With loss=1.0 every draw inside the bound is a Drop; with
        // corrupt=1.0 every one is a Corrupt.
        let mut plan = FaultPlan::new(&FaultSpec::loss_only(1.0), 5);
        assert_eq!(plan.draw(FaultLink::ClientServer), Some(FaultKind::Drop));
        let spec = FaultSpec {
            corrupt: 1.0,
            ..FaultSpec::default()
        };
        let mut plan = FaultPlan::new(&spec, 5);
        assert!(matches!(
            plan.draw(FaultLink::ClientServer),
            Some(FaultKind::Corrupt { .. })
        ));
    }

    #[test]
    fn link_seed_is_stable_and_distinct() {
        let plan = FaultPlan::new(&FaultSpec::default(), 7);
        assert_eq!(
            plan.link_seed(FaultLink::BlockIo),
            FaultPlan::new(&FaultSpec::default(), 7).link_seed(FaultLink::BlockIo)
        );
        assert_ne!(
            plan.link_seed(FaultLink::BlockIo),
            plan.link_seed(FaultLink::ClientServer)
        );
    }
}
