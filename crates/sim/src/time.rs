//! Simulated time.
//!
//! All simulation time is kept in integer nanoseconds so that event ordering
//! is exact and runs are bit-for-bit reproducible. [`SimTime`] is an absolute
//! instant on the virtual clock; [`Duration`] is a span between instants.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the run.
///
/// # Examples
///
/// ```
/// use sim::time::{Duration, SimTime};
/// let t = SimTime::ZERO + Duration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use sim::time::Duration;
/// let d = Duration::from_micros(2) + Duration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 2_500);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Duration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after the start of the run.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the start of the run.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the start of the run.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the start of the run.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` must not be later than `self`"),
        )
    }

    /// Saturating version of [`SimTime::since`]: returns zero when
    /// `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000_000)
    }

    /// Creates a span from a float number of seconds, rounding to the
    /// nearest nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Duration::ZERO;
        }
        Duration((secs * 1e9).round() as u64)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in seconds, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether this span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction of spans.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_exact() {
        assert_eq!(SimTime::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimTime::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Duration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(Duration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_micros(10);
        let t2 = t + Duration::from_micros(5);
        assert_eq!(t2.since(t), Duration::from_micros(5));
        assert_eq!(t2 - Duration::from_micros(5), t);
        assert_eq!(t.max(t2), t2);
        assert_eq!(t2.max(t), t2);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_micros(1));
    }

    #[test]
    #[should_panic(expected = "`earlier` must not be later")]
    fn since_panics_on_reversed_order() {
        let _ = SimTime::from_nanos(1).since(SimTime::from_nanos(2));
    }

    #[test]
    fn duration_arithmetic() {
        let d = Duration::from_micros(4);
        assert_eq!(d * 3, Duration::from_micros(12));
        assert_eq!(d / 2, Duration::from_micros(2));
        assert_eq!(d + d, Duration::from_micros(8));
        assert_eq!(d - Duration::from_micros(1), Duration::from_micros(3));
        assert!(Duration::ZERO.is_zero());
        assert!(!d.is_zero());
    }

    #[test]
    fn duration_from_secs_f64_edge_cases() {
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::INFINITY), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(1e-9), Duration::from_nanos(1));
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
    }

    #[test]
    fn duration_sum() {
        let total: Duration = (1..=4).map(Duration::from_micros).sum();
        assert_eq!(total, Duration::from_micros(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Duration::from_nanos(12).to_string(), "12ns");
        assert_eq!(Duration::from_micros(12).to_string(), "12.000us");
        assert_eq!(Duration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Duration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
