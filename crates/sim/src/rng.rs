//! Deterministic pseudo-randomness for the simulator.
//!
//! The simulator must be reproducible run-to-run, so all stochastic choices
//! (workload think times, Zipf draws, file selection) flow from seeded
//! [`SplitMix64`] streams. SplitMix64 passes BigCrush for this use and needs
//! no dependencies; heavier distributions (Zipf) live in the `workload`
//! crate on top of this primitive.

/// A tiny, fast, deterministic PRNG (Steele et al.'s SplitMix64).
///
/// # Examples
///
/// ```
/// use sim::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds yield independent
    /// streams for practical purposes.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives a new independent generator from this one (for giving each
    /// workload source its own stream).
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's multiply-shift rejection method: unbiased.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Fisher-Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "cannot choose from an empty slice");
        &xs[self.next_below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_streams_are_independent_of_parent_reuse() {
        let mut parent = SplitMix64::new(99);
        let mut child = parent.split();
        let c1 = child.next_u64();
        // Re-derive: same parent state evolution gives same child.
        let mut parent2 = SplitMix64::new(99);
        let mut child2 = parent2.split();
        assert_eq!(c1, child2.next_u64());
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
        // bound of 1 always yields 0
        assert_eq!(r.next_below(1), 0);
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = SplitMix64::new(5);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.next_below(8) as usize] += 1;
        }
        let expect = n / 8;
        for &c in &counts {
            assert!(
                (c as i64 - expect as i64).unsigned_abs() < expect as u64 / 10,
                "bucket count {c} too far from {expect}"
            );
        }
    }

    #[test]
    fn next_range_inclusive() {
        let mut r = SplitMix64::new(11);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
        assert_eq!(r.next_range(9, 9), 9);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(13);
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SplitMix64::new(17);
        assert!(!r.next_bool(0.0));
        assert!(r.next_bool(1.0));
        assert!(!r.next_bool(-3.0));
        assert!(r.next_bool(7.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100-element shuffle should move something");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(1).next_below(0);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn choose_empty_panics() {
        SplitMix64::new(1).choose::<u8>(&[]);
    }
}
