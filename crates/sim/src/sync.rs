//! Shared mutable handles for the concurrent data plane.
//!
//! The rigs historically wired their components together with
//! `Rc<RefCell<T>>`: cheap, single-threaded, and deliberately not `Send`.
//! The lane-parallel session engine runs functional executions on real
//! threads, so every cross-component handle must be sharable. [`Shared`]
//! is the drop-in replacement: an `Arc<Mutex<T>>` that keeps the
//! `borrow()` / `borrow_mut()` call-site vocabulary of `RefCell`, so the
//! servers and rigs read the same while becoming `Send + Sync`.
//!
//! The mutex is uncontended on every sequential path (one thread, short
//! critical sections), so the byte-determinism of the sequential engines
//! is unaffected; under the parallel engine it serializes per-component
//! access exactly where `RefCell` would have panicked.
//!
//! Unlike `RefCell`, the lock is **not** re-entrant: holding a borrow
//! while taking another borrow of the *same* handle on the same thread
//! deadlocks rather than panics. Keep guards short-lived and never nest
//! borrows of one handle — the same discipline the `RefCell` rigs already
//! followed for `borrow_mut`.

use std::sync::{Arc, Mutex, MutexGuard};

/// A sharable, internally-locked handle: `Arc<Mutex<T>>` with `RefCell`
/// vocabulary. Clones share the same underlying value.
#[derive(Debug, Default)]
pub struct Shared<T>(Arc<Mutex<T>>);

impl<T> Shared<T> {
    /// Wraps `value` in a fresh shared handle.
    pub fn new(value: T) -> Self {
        Shared(Arc::new(Mutex::new(value)))
    }

    /// Locks the value for shared-by-convention access. The returned
    /// guard is exclusive (it is a mutex), but the name keeps read-only
    /// call sites (`handle.borrow().stats()`) unchanged.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked while holding the lock.
    pub fn borrow(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("Shared value poisoned")
    }

    /// Locks the value for mutation.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked while holding the lock.
    pub fn borrow_mut(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("Shared value poisoned")
    }

    /// Whether two handles share the same underlying value.
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(Arc::clone(&self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn shared_is_send_and_sync() {
        // The point of the type: a rig component behind `Shared` can be
        // reached from lane worker threads.
        assert_send_sync::<Shared<u64>>();
        assert_send_sync::<Shared<Vec<u8>>>();
    }

    #[test]
    fn clones_alias_one_value() {
        let a = Shared::new(1u32);
        let b = a.clone();
        *b.borrow_mut() += 41;
        assert_eq!(*a.borrow(), 42);
        assert!(Shared::ptr_eq(&a, &b));
        assert!(!Shared::ptr_eq(&a, &Shared::new(42)));
    }

    #[test]
    fn cross_thread_mutation_lands() {
        let v = Shared::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let v = v.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *v.borrow_mut() += 1;
                    }
                });
            }
        });
        assert_eq!(*v.borrow(), 4000);
    }
}
