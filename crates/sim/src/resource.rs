//! FIFO-queued service resources (CPUs, network links, disks).
//!
//! A [`Resource`] models `k` identical work-conserving FIFO servers using
//! exact virtual-time bookkeeping: a job arriving at `t` with demand `d` is
//! assigned to the earliest-free server and completes at
//! `max(t, server_free) + d`. Between events nothing changes, so this is an
//! exact discrete-event simulation of a FIFO multi-server queue while being
//! far cheaper than token-based process simulation.
//!
//! Utilization is tracked as accumulated busy time per server, which is how
//! the paper reports "CPU utilization ratio" in Figures 4 and 5.

use crate::time::{Duration, SimTime};

/// A work-conserving FIFO resource with one or more identical servers.
///
/// # Examples
///
/// ```
/// use sim::resource::Resource;
/// use sim::time::{Duration, SimTime};
///
/// let mut cpu = Resource::new("cpu", 1);
/// let t0 = SimTime::ZERO;
/// let c1 = cpu.serve(t0, Duration::from_micros(10));
/// let c2 = cpu.serve(t0, Duration::from_micros(10));
/// assert_eq!(c1, SimTime::from_micros(10));
/// assert_eq!(c2, SimTime::from_micros(20)); // queued behind the first job
/// assert_eq!(cpu.utilization(c2), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct Resource {
    name: String,
    /// Earliest instant each server becomes free.
    free_at: Vec<SimTime>,
    busy: Duration,
    jobs: u64,
    demand_total: Duration,
    /// Mirrors each exact busy interval as an
    /// [`obs::EventKind::ResourceBusy`] event.
    recorder: Option<obs::Recorder>,
}

impl Resource {
    /// Creates a resource with `servers` identical FIFO servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(name: impl Into<String>, servers: usize) -> Self {
        assert!(servers > 0, "a resource needs at least one server");
        Resource {
            name: name.into(),
            free_at: vec![SimTime::ZERO; servers],
            busy: Duration::ZERO,
            jobs: 0,
            demand_total: Duration::ZERO,
            recorder: None,
        }
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Emits every subsequent busy interval (server slot plus exact
    /// `[start, done)` in simulated time) on `rec`.
    pub fn set_recorder(&mut self, rec: obs::Recorder) {
        self.recorder = Some(rec);
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }

    /// Enqueues a job arriving at `now` with service demand `demand`;
    /// returns its completion instant.
    pub fn serve(&mut self, now: SimTime, demand: Duration) -> SimTime {
        self.serve_timed(now, demand).1
    }

    /// As [`Resource::serve`], but also returns the instant service
    /// began: `start - now` is the job's queue wait, `done - start` its
    /// service time — the split the latency-attribution layer records.
    pub fn serve_timed(&mut self, now: SimTime, demand: Duration) -> (SimTime, SimTime) {
        let slot = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one server");
        let start = self.free_at[slot].max(now);
        let done = start + demand;
        self.free_at[slot] = done;
        self.busy += demand;
        self.jobs += 1;
        self.demand_total += demand;
        if demand > Duration::ZERO {
            if let Some(rec) = &self.recorder {
                rec.emit(obs::EventKind::ResourceBusy {
                    resource: self.name.clone(),
                    slot: slot as u32,
                    start_ns: start.as_nanos(),
                    end_ns: done.as_nanos(),
                });
            }
        }
        (start, done)
    }

    /// The instant the earliest server becomes free (i.e. when a job
    /// arriving now could start).
    pub fn earliest_free(&self) -> SimTime {
        self.free_at
            .iter()
            .copied()
            .min()
            .expect("at least one server")
    }

    /// Whether a job arriving at `now` would have to wait.
    pub fn is_busy_at(&self, now: SimTime) -> bool {
        self.free_at.iter().all(|&t| t > now)
    }

    /// Total busy time accumulated across all servers.
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Number of jobs served (including queued-but-not-yet-complete ones).
    pub fn jobs_served(&self) -> u64 {
        self.jobs
    }

    /// Mean service demand per job, or zero if no jobs ran.
    pub fn mean_demand(&self) -> Duration {
        if self.jobs == 0 {
            Duration::ZERO
        } else {
            self.demand_total / self.jobs
        }
    }

    /// Utilization in `[0, 1]` over the window `[0, elapsed_until]`:
    /// busy time divided by (elapsed × servers). Demand scheduled beyond
    /// `elapsed_until` is excluded so mid-run samples never exceed 1.
    pub fn utilization(&self, elapsed_until: SimTime) -> f64 {
        if elapsed_until == SimTime::ZERO {
            return 0.0;
        }
        // Busy time that falls after the sampling instant must not count.
        let overhang: Duration = self
            .free_at
            .iter()
            .map(|&t| t.saturating_since(elapsed_until))
            .sum();
        let busy = self.busy.saturating_sub(overhang);
        let capacity = elapsed_until.as_secs_f64() * self.free_at.len() as f64;
        (busy.as_secs_f64() / capacity).min(1.0)
    }

    /// Resets all counters and server availability to time zero.
    pub fn reset(&mut self) {
        for t in &mut self.free_at {
            *t = SimTime::ZERO;
        }
        self.busy = Duration::ZERO;
        self.jobs = 0;
        self.demand_total = Duration::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_fifo_queues() {
        let mut r = Resource::new("r", 1);
        let c1 = r.serve(SimTime::ZERO, Duration::from_nanos(100));
        let c2 = r.serve(SimTime::from_nanos(10), Duration::from_nanos(50));
        assert_eq!(c1, SimTime::from_nanos(100));
        assert_eq!(c2, SimTime::from_nanos(150));
        assert_eq!(r.jobs_served(), 2);
    }

    #[test]
    fn idle_gap_is_not_busy() {
        let mut r = Resource::new("r", 1);
        r.serve(SimTime::ZERO, Duration::from_nanos(100));
        // Arrives long after the first completes: the gap is idle.
        let c = r.serve(SimTime::from_nanos(1_000), Duration::from_nanos(100));
        assert_eq!(c, SimTime::from_nanos(1_100));
        assert_eq!(r.busy_time(), Duration::from_nanos(200));
        let util = r.utilization(SimTime::from_nanos(1_100));
        assert!((util - 200.0 / 1_100.0).abs() < 1e-12);
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let mut r = Resource::new("r", 2);
        let c1 = r.serve(SimTime::ZERO, Duration::from_nanos(100));
        let c2 = r.serve(SimTime::ZERO, Duration::from_nanos(100));
        let c3 = r.serve(SimTime::ZERO, Duration::from_nanos(100));
        assert_eq!(c1, SimTime::from_nanos(100));
        assert_eq!(c2, SimTime::from_nanos(100));
        assert_eq!(c3, SimTime::from_nanos(200));
        assert_eq!(r.servers(), 2);
    }

    #[test]
    fn utilization_excludes_overhang() {
        let mut r = Resource::new("r", 1);
        r.serve(SimTime::ZERO, Duration::from_nanos(1_000));
        // Sample halfway through the job: only half the demand has run.
        let util = r.utilization(SimTime::from_nanos(500));
        assert!((util - 1.0).abs() < 1e-12);
        // And it never exceeds 1.
        r.serve(SimTime::ZERO, Duration::from_nanos(1_000));
        assert!(r.utilization(SimTime::from_nanos(100)) <= 1.0);
    }

    #[test]
    fn utilization_at_time_zero_is_zero() {
        let r = Resource::new("r", 1);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn mean_demand() {
        let mut r = Resource::new("r", 1);
        assert_eq!(r.mean_demand(), Duration::ZERO);
        r.serve(SimTime::ZERO, Duration::from_nanos(100));
        r.serve(SimTime::ZERO, Duration::from_nanos(300));
        assert_eq!(r.mean_demand(), Duration::from_nanos(200));
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new("r", 2);
        r.serve(SimTime::ZERO, Duration::from_nanos(100));
        r.reset();
        assert_eq!(r.busy_time(), Duration::ZERO);
        assert_eq!(r.jobs_served(), 0);
        assert_eq!(r.earliest_free(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = Resource::new("r", 0);
    }

    #[test]
    fn recorder_sees_exact_busy_intervals() {
        let rec = obs::Recorder::new();
        rec.enable(obs::TraceConfig::default());
        let mut r = Resource::new("cpu", 1);
        r.set_recorder(rec.clone());
        r.serve(SimTime::from_nanos(10), Duration::from_nanos(100));
        // Queued job: starts when the first frees, not at its arrival.
        r.serve(SimTime::from_nanos(20), Duration::from_nanos(50));
        // Zero-demand jobs occupy no time and emit nothing.
        r.serve(SimTime::from_nanos(20), Duration::ZERO);
        let evs = rec.events();
        assert_eq!(evs.len(), 2);
        match &evs[1].kind {
            obs::EventKind::ResourceBusy {
                resource,
                slot,
                start_ns,
                end_ns,
            } => {
                assert_eq!(resource, "cpu");
                assert_eq!(*slot, 0);
                assert_eq!(*start_ns, 110);
                assert_eq!(*end_ns, 160);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert_eq!(rec.counter("resource.cpu.busy_ns"), 150);
    }

    #[test]
    fn serve_timed_splits_queue_and_service() {
        let mut r = Resource::new("r", 1);
        // Idle resource: starts at arrival.
        let (s1, d1) = r.serve_timed(SimTime::from_nanos(10), Duration::from_nanos(100));
        assert_eq!(s1, SimTime::from_nanos(10));
        assert_eq!(d1, SimTime::from_nanos(110));
        // Queued job: starts when the first frees.
        let (s2, d2) = r.serve_timed(SimTime::from_nanos(20), Duration::from_nanos(50));
        assert_eq!(s2, SimTime::from_nanos(110));
        assert_eq!(d2, SimTime::from_nanos(160));
        // serve() is exactly the completion half.
        let done = r.serve(SimTime::from_nanos(20), Duration::from_nanos(50));
        assert_eq!(done, SimTime::from_nanos(210));
    }

    #[test]
    fn is_busy_at() {
        let mut r = Resource::new("r", 1);
        assert!(!r.is_busy_at(SimTime::ZERO));
        r.serve(SimTime::ZERO, Duration::from_nanos(100));
        assert!(r.is_busy_at(SimTime::from_nanos(50)));
        assert!(!r.is_busy_at(SimTime::from_nanos(100)));
    }
}
