//! The discrete-event engine.
//!
//! [`Engine`] owns a user-supplied world `W` plus an event queue. Events are
//! boxed closures invoked as `f(&mut W, &mut Scheduler)`; handlers mutate the
//! world and schedule follow-up events. Events at the same instant fire in
//! `(lane, scheduling-seq)` order: a lane is a session/actor identifier (0
//! when unused), so a multi-session run interleaves deterministically by
//! `(time, session, seq)` — the tiebreak the client-scaling experiments and
//! their determinism gates rely on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{Duration, SimTime};

/// An event handler: mutates the world and may schedule further events.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

struct QueuedEvent<W> {
    at: SimTime,
    lane: u64,
    seq: u64,
    run: EventFn<W>,
}

impl<W> PartialEq for QueuedEvent<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.lane == other.lane && self.seq == other.seq
    }
}
impl<W> Eq for QueuedEvent<W> {}
impl<W> PartialOrd for QueuedEvent<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for QueuedEvent<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest
        // (time, lane, seq) pops first.
        (other.at, other.lane, other.seq).cmp(&(self.at, self.lane, self.seq))
    }
}

/// The part of the engine visible to event handlers: the clock and the
/// ability to schedule more events.
pub struct Scheduler<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<QueuedEvent<W>>,
    events_run: u64,
}

impl<W> Scheduler<W> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            events_run: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `f` to run at absolute instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        self.schedule_at_lane(at, 0, f);
    }

    /// Schedules `f` at absolute instant `at` on `lane`. Among events at
    /// the same instant, lower lanes fire first; within a lane, scheduling
    /// order wins.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at_lane(
        &mut self,
        at: SimTime,
        lane: u64,
        f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(QueuedEvent {
            at,
            lane,
            seq,
            run: Box::new(f),
        });
    }

    /// Schedules `f` to run `delay` after the current instant.
    pub fn schedule_in(
        &mut self,
        delay: Duration,
        f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        let at = self.now + delay;
        self.schedule_at(at, f);
    }

    /// Schedules `f` to run `delay` after the current instant on `lane`.
    pub fn schedule_in_lane(
        &mut self,
        delay: Duration,
        lane: u64,
        f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        let at = self.now + delay;
        self.schedule_at_lane(at, lane, f);
    }

    /// Number of events executed so far.
    pub fn events_run(&self) -> u64 {
        self.events_run
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A deterministic discrete-event simulation over a world `W`.
///
/// # Examples
///
/// ```
/// use sim::engine::Engine;
/// use sim::time::Duration;
///
/// let mut engine: Engine<Vec<u32>> = Engine::new(Vec::new());
/// engine.schedule(Duration::from_nanos(2), |w, _| w.push(2));
/// engine.schedule(Duration::from_nanos(1), |w, _| w.push(1));
/// engine.run();
/// assert_eq!(*engine.world(), vec![1, 2]);
/// ```
pub struct Engine<W> {
    world: W,
    sched: Scheduler<W>,
}

impl<W> Engine<W> {
    /// Creates an engine at time zero over `world`.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            sched: Scheduler::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. for pre-run setup).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Consumes the engine and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Schedules `f` to run `delay` after the current instant.
    pub fn schedule(&mut self, delay: Duration, f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        self.sched.schedule_in(delay, f);
    }

    /// Schedules `f` at an absolute instant.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        self.sched.schedule_at(at, f);
    }

    /// Runs until the event queue is empty. Returns the final time.
    pub fn run(&mut self) -> SimTime {
        self.run_until(SimTime::from_nanos(u64::MAX))
    }

    /// Runs until the queue is empty or the next event would fire after
    /// `deadline`. Events exactly at `deadline` still run. The clock is left
    /// at the last executed event (or `deadline` if it was reached).
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(ev) = self.sched.queue.peek() {
            if ev.at > deadline {
                self.sched.now = deadline;
                return self.sched.now;
            }
            let ev = self.sched.queue.pop().expect("peeked event must exist");
            debug_assert!(ev.at >= self.sched.now, "event queue went backwards");
            self.sched.now = ev.at;
            self.sched.events_run += 1;
            (ev.run)(&mut self.world, &mut self.sched);
        }
        self.sched.now
    }

    /// Number of events executed so far.
    pub fn events_run(&self) -> u64 {
        self.sched.events_run
    }
}

impl<W: std::fmt::Debug> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.sched.now)
            .field("pending", &self.sched.queue.len())
            .field("events_run", &self.sched.events_run)
            .field("world", &self.world)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut e: Engine<Vec<u64>> = Engine::new(Vec::new());
        for &d in &[5u64, 1, 3, 2, 4] {
            e.schedule(Duration::from_nanos(d), move |w, _| w.push(d));
        }
        e.run();
        assert_eq!(*e.world(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut e: Engine<Vec<u32>> = Engine::new(Vec::new());
        for i in 0..10u32 {
            e.schedule(Duration::from_nanos(7), move |w, _| w.push(i));
        }
        e.run();
        assert_eq!(*e.world(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn same_instant_ties_break_by_lane_then_seq() {
        let mut e: Engine<Vec<(u64, u32)>> = Engine::new(Vec::new());
        // Schedule out of lane order at one instant: lane order must win.
        e.schedule(Duration::from_nanos(1), |_, s| {
            for (lane, tag) in [(3u64, 0u32), (1, 1), (2, 2), (1, 3), (0, 4)] {
                s.schedule_in_lane(Duration::from_nanos(5), lane, move |w, _| {
                    w.push((lane, tag));
                });
            }
        });
        e.run();
        assert_eq!(
            *e.world(),
            vec![(0, 4), (1, 1), (1, 3), (2, 2), (3, 0)],
            "lanes ascending; scheduling order within a lane"
        );
    }

    #[test]
    fn time_dominates_lane() {
        let mut e: Engine<Vec<u64>> = Engine::new(Vec::new());
        e.schedule(Duration::from_nanos(1), |_, s| {
            s.schedule_in_lane(Duration::from_nanos(9), 0, |w, _| w.push(0));
            s.schedule_in_lane(Duration::from_nanos(1), 7, |w, _| w.push(7));
        });
        e.run();
        assert_eq!(*e.world(), vec![7, 0], "an earlier event on a higher lane still fires first");
    }

    #[test]
    fn handlers_can_chain_events() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule(Duration::from_nanos(1), |w, s| {
            *w += 1;
            s.schedule_in(Duration::from_nanos(1), |w, s| {
                *w += 10;
                s.schedule_in(Duration::from_nanos(1), |w, _| *w += 100);
            });
        });
        let end = e.run();
        assert_eq!(*e.world(), 111);
        assert_eq!(end, SimTime::from_nanos(3));
        assert_eq!(e.events_run(), 3);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule(Duration::from_nanos(5), |w, _| *w += 1);
        e.schedule(Duration::from_nanos(15), |w, _| *w += 1);
        let t = e.run_until(SimTime::from_nanos(10));
        assert_eq!(*e.world(), 1);
        assert_eq!(t, SimTime::from_nanos(10));
        // The remaining event still runs afterwards.
        e.run();
        assert_eq!(*e.world(), 2);
    }

    #[test]
    fn event_exactly_at_deadline_runs() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule(Duration::from_nanos(10), |w, _| *w += 1);
        e.run_until(SimTime::from_nanos(10));
        assert_eq!(*e.world(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e: Engine<u32> = Engine::new(0);
        e.schedule(Duration::from_nanos(10), |_, s| {
            s.schedule_at(SimTime::from_nanos(5), |_, _| {});
        });
        e.run();
    }

    #[test]
    fn empty_run_leaves_clock_at_zero() {
        let mut e: Engine<()> = Engine::new(());
        assert_eq!(e.run(), SimTime::ZERO);
        assert_eq!(e.events_run(), 0);
    }
}
