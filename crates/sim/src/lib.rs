#![warn(missing_docs)]
//! Deterministic discrete-event simulation substrate for the NCache
//! reproduction.
//!
//! The paper ("Network-Centric Buffer Cache Organization", ICDCS 2005)
//! evaluates NCache on a physical testbed: Pentium III 1 GHz nodes, Gigabit
//! Ethernet, and a RAID-0 IDE storage array. This crate provides the
//! simulated equivalent of that hardware: a virtual clock, an event queue,
//! FIFO-queued resources (CPUs, links, disks), a calibrated cost model, and
//! deterministic pseudo-randomness, so that the benchmark harness can
//! reproduce the *shape* of every figure in the paper's evaluation section.
//!
//! Design notes:
//!
//! * The engine is fully deterministic: events at equal timestamps are
//!   ordered by insertion sequence number, and all randomness flows from
//!   seeded [`rng::SplitMix64`] streams.
//! * Resources use exact virtual-time FIFO service ([`resource::Resource`]):
//!   a job arriving at `t` with demand `d` completes at
//!   `max(t, next_free) + d`. This is an exact simulation of a
//!   work-conserving FIFO server and is what shapes the throughput and
//!   utilization curves of Figures 4-7.
//!
//! # Examples
//!
//! ```
//! use sim::engine::Engine;
//! use sim::time::{Duration, SimTime};
//!
//! let mut engine: Engine<u64> = Engine::new(0);
//! engine.schedule(Duration::from_micros(5), |world, sched| {
//!     *world += 1;
//!     sched.schedule_in(Duration::from_micros(5), |world, _| *world += 10);
//! });
//! engine.run();
//! assert_eq!(*engine.world(), 11);
//! assert_eq!(engine.now(), SimTime::from_micros(10));
//! ```

pub mod costs;
pub mod engine;
pub mod fault;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod time;

pub use costs::CostModel;
pub use engine::{Engine, Scheduler};
pub use fault::{FaultKind, FaultLink, FaultPlan, FaultSpec};
pub use resource::Resource;
pub use rng::SplitMix64;
pub use sync::Shared;
pub use time::{Duration, SimTime};
