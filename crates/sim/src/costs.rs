//! Calibrated cost model for the paper's testbed.
//!
//! The evaluation hardware (paper §5.2): Pentium III 1 GHz nodes, PC133-era
//! memory, Intel Pro/1000 Gigabit NICs with checksum offload enabled, MTU
//! 1500, a NetGear Gigabit switch, and a storage server with 4 IDE disks
//! (IBM DTLA-307075) in RAID-0.
//!
//! All constants here are *per-operation unit costs*; the testbed derives a
//! request's CPU demand from the data plane's **counted** operations
//! (physical copies, packets, checksummed bytes, cache operations), so the
//! model stays honest: NCache only gets faster because it demonstrably
//! performs fewer of the expensive operations.
//!
//! Calibration targets (shape, not absolute):
//! * all-hit NFS at 32 KB, CPU-bound: NCache ≈ +92 % over original,
//!   zero-copy baseline ≈ +143 % (Fig 5b);
//! * all-miss NFS ≥16 KB: +29-36 %, storage-server CPU saturated (Fig 4);
//! * kHTTPd all-hit: +8 % @16 KB rising to ~+47 % @128 KB (Fig 6b).

use crate::time::Duration;

/// Unit costs for every operation the data plane counts.
///
/// # Examples
///
/// ```
/// use sim::costs::CostModel;
/// let m = CostModel::pentium3_gige();
/// // Copying a 4 KiB block costs a few microseconds on this hardware.
/// let d = m.copy_cost(4096);
/// assert!(d > sim::Duration::ZERO);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// CPU cost per byte physically copied (memcpy through the cache
    /// hierarchy). PIII-class hardware sustains roughly 300 MB/s for
    /// kernel-path copies → ~3.3 ns/B.
    pub copy_ns_per_byte: f64,
    /// CPU cost per byte checksummed in software. Charged for whatever
    /// checksum passes the data plane actually performed: the NFS/UDP
    /// paths rely on the Intel NICs' checksum offload (paper §5.2) and
    /// never compute one; the original kHTTPd's TCP sendfile path does,
    /// while NCache *inherits* stored checksums (§1) and the ideal
    /// baseline is modelled with offload.
    pub csum_ns_per_byte: f64,
    /// Whether the UDP/NFS paths may assume NIC checksum offload (paper
    /// default: yes; ablations can disable it).
    pub csum_offload: bool,
    /// Fixed CPU cost per UDP packet sent or received (driver, IRQ, IP+UDP
    /// processing).
    pub udp_pkt_ns: u64,
    /// Fixed CPU cost per TCP packet sent or received. Higher than UDP
    /// (paper §5.5: "the per-packet overhead of HTTP is higher than that of
    /// NFS because HTTP runs on TCP and NFS runs on UDP").
    pub tcp_pkt_ns: u64,
    /// Per-request CPU cost of NFS server processing (RPC decode, fh
    /// lookup, reply construction) excluding copies and packet costs.
    pub nfs_req_ns: u64,
    /// Per-request CPU cost of kHTTPd processing: HTTP parse, response
    /// header construction, and — dominating — the per-connection TCP
    /// work (handshake, teardown, socket setup) that HTTP/1.0's
    /// connection-per-request model pays. This is the "aggregate per
    /// request overhead" whose amortization makes Figure 6(b)'s gains grow
    /// with request size.
    pub http_req_ns: u64,
    /// Per-request CPU cost on the storage server for an iSCSI command
    /// (PDU parse, SCSI emulation, completion).
    pub iscsi_req_ns: u64,
    /// Extra per-byte CPU cost on the storage server's data path (target
    /// buffer management beyond the raw copies it performs).
    pub iscsi_ns_per_byte: f64,
    /// NCache management: one hash lookup / insert / remap of a cache
    /// entry. Charged per cache operation counted by the module.
    pub ncache_op_ns: u64,
    /// NCache management: substituting one outgoing packet's payload with
    /// the cached network buffer (pointer surgery at the driver boundary).
    pub ncache_subst_pkt_ns: u64,
    /// Per-block CPU cost of buffer-cache bookkeeping (lookup/insert of a
    /// page-cache entry). Applies to every configuration.
    pub bufcache_op_ns: u64,
    /// Payload bandwidth of one Gigabit link, bytes/second, after
    /// Ethernet/IP overheads (~117 MB/s of payload on GbE at MTU 1500).
    pub link_bytes_per_sec: f64,
    /// MSS: TCP/UDP payload bytes per full-size Ethernet frame at MTU 1500.
    pub mss: usize,
}

impl CostModel {
    /// The paper's testbed: PIII 1 GHz, GbE with checksum offload, MTU 1500.
    pub fn pentium3_gige() -> Self {
        CostModel {
            copy_ns_per_byte: 3.3,
            csum_ns_per_byte: 2.0,
            csum_offload: true,
            udp_pkt_ns: 5_000,
            tcp_pkt_ns: 6_500,
            nfs_req_ns: 30_000,
            http_req_ns: 500_000,
            iscsi_req_ns: 15_000,
            iscsi_ns_per_byte: 4.0,
            ncache_op_ns: 2_000,
            ncache_subst_pkt_ns: 1_500,
            bufcache_op_ns: 800,
            link_bytes_per_sec: 117.0e6,
            mss: 1_448,
        }
    }

    /// CPU time for physically copying `bytes` bytes once.
    pub fn copy_cost(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 * self.copy_ns_per_byte * 1e-9)
    }

    /// CPU time for software-checksumming `bytes` bytes. The data plane
    /// only reports bytes it really checksummed, so this is charged
    /// unconditionally.
    pub fn csum_cost(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 * self.csum_ns_per_byte * 1e-9)
    }

    /// CPU time for processing `packets` UDP packets.
    pub fn udp_pkt_cost(&self, packets: u64) -> Duration {
        Duration::from_nanos(self.udp_pkt_ns * packets)
    }

    /// CPU time for processing `packets` TCP packets.
    pub fn tcp_pkt_cost(&self, packets: u64) -> Duration {
        Duration::from_nanos(self.tcp_pkt_ns * packets)
    }

    /// CPU time for `ops` NCache cache operations (lookup/insert/remap).
    pub fn ncache_ops_cost(&self, ops: u64) -> Duration {
        Duration::from_nanos(self.ncache_op_ns * ops)
    }

    /// CPU time for substituting `packets` outgoing packets from the cache.
    pub fn ncache_subst_cost(&self, packets: u64) -> Duration {
        Duration::from_nanos(self.ncache_subst_pkt_ns * packets)
    }

    /// CPU time for `ops` buffer-cache operations.
    pub fn bufcache_ops_cost(&self, ops: u64) -> Duration {
        Duration::from_nanos(self.bufcache_op_ns * ops)
    }

    /// Extra storage-server CPU time for moving `bytes` bytes through the
    /// iSCSI target data path.
    pub fn iscsi_byte_cost(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 * self.iscsi_ns_per_byte * 1e-9)
    }

    /// Wire transmission time for `payload` bytes of application payload on
    /// one link, including full-frame segmentation overheads.
    pub fn link_tx_time(&self, payload: u64) -> Duration {
        // Account per-frame overhead (headers + preamble + IFG ≈ 90 B) by
        // working in frames of `mss` payload each.
        let frames = payload.div_ceil(self.mss as u64).max(1);
        let wire_bytes = payload + frames * 90;
        Duration::from_secs_f64(wire_bytes as f64 / (self.link_bytes_per_sec * 1.10))
    }

    /// Number of full-or-partial MSS-sized segments needed for `payload`
    /// bytes (at least one, for header-only packets).
    pub fn segments(&self, payload: u64) -> u64 {
        payload.div_ceil(self.mss as u64).max(1)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::pentium3_gige()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_cost_scales_linearly() {
        let m = CostModel::pentium3_gige();
        let one = m.copy_cost(1_000);
        let ten = m.copy_cost(10_000);
        assert_eq!(ten.as_nanos(), one.as_nanos() * 10);
    }

    #[test]
    fn computed_checksums_always_cost() {
        let m = CostModel::pentium3_gige();
        assert!(m.csum_offload, "UDP paths assume offload by default");
        assert!(m.csum_cost(100_000) > Duration::ZERO);
        assert_eq!(m.csum_cost(0), Duration::ZERO);
    }

    #[test]
    fn tcp_packets_cost_more_than_udp() {
        let m = CostModel::pentium3_gige();
        assert!(m.tcp_pkt_cost(10) > m.udp_pkt_cost(10));
    }

    #[test]
    fn segments_round_up_and_floor_at_one() {
        let m = CostModel::pentium3_gige();
        assert_eq!(m.segments(0), 1);
        assert_eq!(m.segments(1), 1);
        assert_eq!(m.segments(1_448), 1);
        assert_eq!(m.segments(1_449), 2);
        assert_eq!(m.segments(32_768), 23);
    }

    #[test]
    fn link_tx_time_is_near_nominal_rate() {
        let m = CostModel::pentium3_gige();
        // 117 MB of payload should take roughly one second (within 10%).
        let t = m.link_tx_time(117_000_000);
        let secs = t.as_secs_f64();
        assert!((0.9..1.1).contains(&secs), "got {secs}");
    }

    #[test]
    fn all_hit_calibration_shape_holds() {
        // Reconstruct the Fig 5(b) arithmetic at 32 KB from unit costs and
        // Table-2 copy counts: original does 2 payload copies per read hit;
        // baseline does none; NCache does none but pays management.
        let m = CostModel::pentium3_gige();
        let s: u64 = 32 * 1024;
        let pkts = m.segments(s);
        let base = m.udp_pkt_cost(pkts) + Duration::from_nanos(m.nfs_req_ns);
        let orig = base + m.copy_cost(2 * s);
        let blocks = s / 4096;
        let nc = base + m.ncache_ops_cost(blocks) + m.ncache_subst_cost(pkts);

        let thr = |c: Duration| s as f64 / c.as_secs_f64();
        let gain_nc = thr(nc) / thr(orig) - 1.0;
        let gain_base = thr(base) / thr(orig) - 1.0;
        // Paper: +92 % (NCache) and +143 % (baseline); require the right
        // band rather than exact equality.
        assert!(
            (0.75..1.15).contains(&gain_nc),
            "NCache all-hit gain at 32K = {gain_nc:.2}"
        );
        assert!(
            (1.2..1.8).contains(&gain_base),
            "baseline all-hit gain at 32K = {gain_base:.2}"
        );
        // And the CPU-bound original sits in the right absolute ballpark
        // (paper: ~89 MB/s).
        let orig_mb = thr(orig) / 1e6;
        assert!((70.0..110.0).contains(&orig_mb), "original = {orig_mb} MB/s");
    }

    #[test]
    fn default_is_the_testbed_model() {
        assert_eq!(CostModel::default(), CostModel::pentium3_gige());
    }
}
