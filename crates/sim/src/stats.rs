//! Measurement helpers: counters, throughput meters, histograms, and the
//! series tables the benchmark harness prints for each paper figure.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::{Duration, SimTime};

/// Accumulates delivered payload bytes and completed operations over
/// simulated time, and reports throughput the way the paper does
/// (MB/s for micro-benchmarks, ops/s for SPECsfs).
///
/// # Examples
///
/// ```
/// use sim::stats::Throughput;
/// use sim::time::SimTime;
///
/// let mut t = Throughput::new();
/// t.record(1_000_000);
/// t.record(1_000_000);
/// assert_eq!(t.ops(), 2);
/// let mbs = t.megabytes_per_sec(SimTime::from_secs(1));
/// assert!((mbs - 2.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Throughput {
    bytes: u64,
    ops: u64,
    start: SimTime,
}

impl Throughput {
    /// Creates a meter starting at time zero.
    pub fn new() -> Self {
        Throughput::default()
    }

    /// Creates a meter whose window starts at `start` (for excluding
    /// warm-up).
    pub fn starting_at(start: SimTime) -> Self {
        Throughput {
            bytes: 0,
            ops: 0,
            start,
        }
    }

    /// Records one completed operation that delivered `payload` bytes.
    pub fn record(&mut self, payload: u64) {
        self.bytes += payload;
        self.ops += 1;
    }

    /// Total payload bytes delivered.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total operations completed.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Throughput in decimal megabytes per second over `[start, now]`.
    pub fn megabytes_per_sec(&self, now: SimTime) -> f64 {
        let secs = now.saturating_since(self.start).as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e6 / secs
        }
    }

    /// Throughput in operations per second over `[start, now]`.
    pub fn ops_per_sec(&self, now: SimTime) -> f64 {
        let secs = now.saturating_since(self.start).as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }
}

/// A latency histogram with power-of-two microsecond buckets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// bucket i counts samples in [2^i, 2^(i+1)) microseconds; bucket 0
    /// additionally includes sub-microsecond samples.
    buckets: Vec<u64>,
    count: u64,
    total: Duration,
    max: Duration,
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_nanos() / 1_000;
        let idx = if us <= 1 {
            0
        } else {
            (63 - us.leading_zeros()) as usize
        };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.total += d;
        if d > self.max {
            self.max = d;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or zero with no samples.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> Duration {
        self.max
    }

    /// Approximate quantile (bucket upper bound), `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Duration::from_micros(1 << (i + 1));
            }
        }
        self.max
    }
}

/// One row of a figure/table: an x-value plus named y-values, in insertion
/// order per series name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SeriesTable {
    title: String,
    x_label: String,
    columns: Vec<String>,
    rows: Vec<(f64, BTreeMap<String, f64>)>,
}

impl SeriesTable {
    /// Creates an empty table for a figure.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>) -> Self {
        SeriesTable {
            title: title.into(),
            x_label: x_label.into(),
            columns: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// The figure title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Adds (or extends) the row at `x` with `series = y`.
    pub fn put(&mut self, x: f64, series: &str, y: f64) {
        if !self.columns.iter().any(|c| c == series) {
            self.columns.push(series.to_string());
        }
        if let Some((_, m)) = self
            .rows
            .iter_mut()
            .find(|(rx, _)| (*rx - x).abs() < f64::EPSILON)
        {
            m.insert(series.to_string(), y);
        } else {
            let mut m = BTreeMap::new();
            m.insert(series.to_string(), y);
            self.rows.push((x, m));
        }
    }

    /// Value at `(x, series)`, if present.
    pub fn get(&self, x: f64, series: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|(rx, _)| (*rx - x).abs() < f64::EPSILON)
            .and_then(|(_, m)| m.get(series).copied())
    }

    /// All x-values in insertion order.
    pub fn xs(&self) -> Vec<f64> {
        self.rows.iter().map(|(x, _)| *x).collect()
    }

    /// All series names in insertion order.
    pub fn series(&self) -> &[String] {
        &self.columns
    }

    /// The full series as (x, y) points, skipping missing cells.
    pub fn points(&self, series: &str) -> Vec<(f64, f64)> {
        self.rows
            .iter()
            .filter_map(|(x, m)| m.get(series).map(|y| (*x, *y)))
            .collect()
    }
}

impl fmt::Display for SeriesTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.title)?;
        write!(f, "{:>14}", self.x_label)?;
        for c in &self.columns {
            write!(f, " {c:>16}")?;
        }
        writeln!(f)?;
        for (x, m) in &self.rows {
            write!(f, "{x:>14.1}")?;
            for c in &self.columns {
                match m.get(c) {
                    Some(y) => write!(f, " {y:>16.2}")?,
                    None => write!(f, " {:>16}", "-")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_reports_mb_and_ops() {
        let mut t = Throughput::new();
        for _ in 0..10 {
            t.record(500_000);
        }
        let at = SimTime::from_secs(2);
        assert_eq!(t.bytes(), 5_000_000);
        assert!((t.megabytes_per_sec(at) - 2.5).abs() < 1e-9);
        assert!((t.ops_per_sec(at) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_warmup_window() {
        let mut t = Throughput::starting_at(SimTime::from_secs(1));
        t.record(1_000_000);
        assert!((t.megabytes_per_sec(SimTime::from_secs(2)) - 1.0).abs() < 1e-9);
        // Sampling before the window start yields 0 instead of dividing by
        // a negative span.
        assert_eq!(t.megabytes_per_sec(SimTime::from_millis(500)), 0.0);
    }

    #[test]
    fn throughput_zero_elapsed_is_zero() {
        let mut t = Throughput::new();
        t.record(100);
        assert_eq!(t.megabytes_per_sec(SimTime::ZERO), 0.0);
        assert_eq!(t.ops_per_sec(SimTime::ZERO), 0.0);
    }

    #[test]
    fn histogram_mean_max_quantile() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 2, 4, 8, 1_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Duration::from_micros(203));
        assert_eq!(h.max(), Duration::from_micros(1_000));
        assert!(h.quantile(0.5) <= Duration::from_micros(8));
        assert!(h.quantile(1.0) >= Duration::from_micros(1_000));
    }

    #[test]
    fn histogram_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
    }

    #[test]
    fn series_table_round_trip() {
        let mut t = SeriesTable::new("Fig X", "req KB");
        t.put(4.0, "original", 10.0);
        t.put(4.0, "ncache", 15.0);
        t.put(8.0, "original", 20.0);
        assert_eq!(t.get(4.0, "ncache"), Some(15.0));
        assert_eq!(t.get(8.0, "ncache"), None);
        assert_eq!(t.xs(), vec![4.0, 8.0]);
        assert_eq!(t.series(), &["original".to_string(), "ncache".to_string()]);
        assert_eq!(t.points("original"), vec![(4.0, 10.0), (8.0, 20.0)]);
        let s = t.to_string();
        assert!(s.contains("Fig X"));
        assert!(s.contains("original"));
        assert!(s.contains('-'), "missing cells print a dash");
    }
}
