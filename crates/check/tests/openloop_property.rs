//! Latency-attribution invariants under arbitrary open-loop schedules.
//!
//! The attribution contract is exact, not statistical: for *every* seeded
//! Poisson/burst arrival schedule, every request's per-stage breakdown
//! must telescope to its end-to-end latency in integer nanoseconds, the
//! quantile ladder read off the latency histogram must be monotone in p,
//! and a histogram re-assembled from the per-request events by shard
//! `absorb` must snapshot identically to the engine's own. A second
//! property pins the zero-load boundary: arrivals spaced far beyond the
//! service time can never observe a nonzero queue component.

use check::gen::*;
use check::{prop_assert, prop_assert_eq, property};

use servers::ServerMode;
use sim::SimTime;
use testbed::nfs_rig::{NfsRig, NfsRigParams};
use testbed::openloop::{run_open_loop, run_open_loop_at, zipf_reads, OpenLoopOptions};
use workload::arrivals::BurstConfig;

const FILE: u64 = 1 << 20;
const SPAN: u32 = 16 << 10;

/// A warmed NCache rig whose hot file is fully resident, with the
/// warm-up's storage backlog drained so it cannot ride the first
/// measured request.
fn warm_rig() -> (NfsRig, u64) {
    let mut rig = NfsRig::new(ServerMode::NCache, NfsRigParams::default());
    let fh = rig.create_file("hot", FILE);
    let mut off = 0u64;
    while off < FILE {
        rig.read(fh, off as u32, SPAN);
        off += u64::from(SPAN);
    }
    let _ = rig.server_mut().fs_mut().store_mut().take_io_log();
    (rig, fh)
}

fn traced(mut rig: NfsRig) -> (NfsRig, obs::Recorder) {
    let rec = obs::Recorder::new();
    rec.enable(obs::TraceConfig::default());
    rig.set_recorder(rec.clone());
    (rig, rec)
}

property! {
    #![cases(12)]

    /// Arbitrary seeded open-loop schedules — any arrival rate from idle
    /// to far past saturation, with or without burst modulation, any
    /// popularity skew — keep the attribution exact.
    fn prop_stage_sums_and_quantiles_hold_for_any_schedule(
        seed in ints(0u64..1_000_000),
        mean_ns in ints(20_000u64..200_000),
        n in ints(8u64..48),
        alpha_tenths in ints(6u64..15),
        bursty in any_bool(),
        period_us in ints(50u64..500),
        factor in ints(2u64..6),
    ) {
        let (rig, fh) = warm_rig();
        let (rig, rec) = traced(rig);
        let ops = zipf_reads(
            seed,
            fh,
            n as usize,
            FILE,
            SPAN,
            alpha_tenths as f64 / 10.0,
        );
        let opts = OpenLoopOptions {
            mean_interarrival_ns: mean_ns,
            burst: bursty.then_some(BurstConfig {
                period_ns: period_us * 1_000,
                factor: factor as f64,
            }),
            seed: seed.wrapping_add(1),
            ..OpenLoopOptions::default()
        };
        let (_rig, r) = run_open_loop(rig, ops, &opts);
        prop_assert_eq!(r.ops, n, "every scheduled request completes");

        // Exactness: each request's stages telescope to its latency, and
        // a histogram rebuilt from the events via absorb() snapshots
        // byte-identically to the engine's own.
        let mut shard_a = obs::Histogram::new();
        let mut shard_b = obs::Histogram::new();
        let mut requests = 0u64;
        for (i, ev) in rec.events().iter().enumerate() {
            if let obs::EventKind::Request { start_ns, end_ns, stages, .. } = &ev.kind {
                prop_assert!(end_ns >= start_ns, "request must end after it starts");
                let sum: u64 = stages.iter().map(|s| s.queue_ns + s.service_ns).sum();
                prop_assert_eq!(
                    sum,
                    end_ns - start_ns,
                    "stage sum must equal end-to-end latency exactly"
                );
                if i % 2 == 0 {
                    shard_a.record(sum);
                } else {
                    shard_b.record(sum);
                }
                requests += 1;
            }
        }
        prop_assert_eq!(requests, n, "one Request event per arrival");
        shard_a.absorb(&shard_b);
        prop_assert_eq!(
            shard_a.snapshot(),
            r.latency,
            "sharded absorb must reproduce the engine's histogram"
        );

        // The quantile ladder is monotone in p and pinned at the ends.
        prop_assert_eq!(r.latency.quantile(0.0), r.latency.min);
        prop_assert_eq!(r.latency.quantile(1.0), r.latency.max);
        let mut prev = 0u64;
        for q in 0..=100 {
            let v = r.latency.quantile(q as f64 / 100.0);
            prop_assert!(v >= prev, "quantile ladder must be monotone");
            prop_assert!(
                (r.latency.min..=r.latency.max).contains(&v),
                "quantiles stay inside [min, max]"
            );
            prev = v;
        }
    }

    /// Overload robustness: under arbitrary seeded schedules against an
    /// armed admission gate, the retry budget strictly bounds total
    /// transmissions per request (≤ 1 + budget), every arrival completes
    /// exactly once (on time, late, or shed), and the client's
    /// transmission count reconciles against the gate's own ledger.
    fn prop_retry_budget_bounds_transmissions(
        seed in ints(0u64..1_000_000),
        mean_ns in ints(10_000u64..80_000),
        n in ints(24u64..96),
        budget in ints(0u64..4),
        max_inflight in ints(2u64..8),
        deadline_on in any_bool(),
        deadline_us in ints(500u64..5_000),
    ) {
        let (mut rig, fh) = warm_rig();
        rig.enable_control(servers::ControlConfig {
            max_inflight,
            queue_hi: max_inflight,
            queue_lo: max_inflight / 2,
            token_cost_ns: 0,
            token_burst: 0,
            ..servers::ControlConfig::protective()
        });
        let policy = servers::RetryPolicy {
            budget: budget as u32,
            ..servers::RetryPolicy::standard(seed.wrapping_add(2))
        };
        let ops = zipf_reads(seed, fh, n as usize, FILE, SPAN, 1.0);
        let opts = OpenLoopOptions {
            mean_interarrival_ns: mean_ns,
            seed: seed.wrapping_add(1),
            deadline_ns: if deadline_on { deadline_us * 1_000 } else { 0 },
            retry: Some(policy),
            ..OpenLoopOptions::default()
        };
        let (rig, r) = run_open_loop(rig, ops, &opts);
        prop_assert!(
            r.max_attempts <= 1 + budget,
            "transmissions per request bounded by 1 + budget"
        );
        prop_assert!(r.max_attempts >= 1, "at least the initial send");
        prop_assert_eq!(
            r.ops + r.deadline_exceeded + r.shed,
            n,
            "every arrival completes exactly once"
        );
        let stats = rig.control_stats().expect("control installed");
        prop_assert_eq!(
            stats.offered,
            n + r.retries,
            "gate sees one initial send per arrival plus every retransmission"
        );
        prop_assert_eq!(stats.offered, stats.admitted + stats.rejected);
        if budget == 0 {
            prop_assert_eq!(r.retries, 0, "no budget, no retransmissions");
        }
    }

    /// Control plane off ⇒ unobservable: a gate configured to admit
    /// everything, plus an armed retry policy and a deadline too generous
    /// to trip, reproduces the control-free run byte for byte — the whole
    /// `OpenLoopResult`, not just the headline numbers.
    fn prop_zero_rejection_config_is_unobservable(
        seed in ints(0u64..1_000_000),
        mean_ns in ints(20_000u64..200_000),
        n in ints(8u64..48),
    ) {
        let run = |controlled: bool| {
            let (mut rig, fh) = warm_rig();
            let mut opts = OpenLoopOptions {
                mean_interarrival_ns: mean_ns,
                seed: seed.wrapping_add(1),
                ..OpenLoopOptions::default()
            };
            if controlled {
                rig.enable_control(servers::ControlConfig::unlimited());
                opts.retry = Some(servers::RetryPolicy::standard(seed));
                opts.deadline_ns = u64::MAX;
            }
            let ops = zipf_reads(seed, fh, n as usize, FILE, SPAN, 1.0);
            run_open_loop(rig, ops, &opts)
        };
        let (_, off) = run(false);
        let (rig, on) = run(true);
        prop_assert_eq!(off, on, "zero-rejection control must be invisible");
        let stats = rig.control_stats().expect("control installed");
        prop_assert_eq!(stats.rejected, 0);
        prop_assert_eq!(stats.admitted, n);
    }

    /// Zero-load boundary: arrivals spaced far beyond any cache-hit
    /// service time can never overlap, so the queue component of every
    /// stage of every request is exactly zero.
    fn prop_zero_load_has_zero_queue_time(
        seed in ints(0u64..1_000_000),
        gap_ms in ints(5u64..20),
        n in ints(4u64..24),
    ) {
        let (rig, fh) = warm_rig();
        let (rig, rec) = traced(rig);
        let ops = zipf_reads(seed, fh, n as usize, FILE, SPAN, 1.0);
        let schedule: Vec<SimTime> = (0..n)
            .map(|k| SimTime::from_nanos((k + 1) * gap_ms * 1_000_000))
            .collect();
        let (_rig, r) = run_open_loop_at(rig, ops, &schedule, &OpenLoopOptions::default());
        prop_assert_eq!(r.ops, n);
        prop_assert_eq!(r.peak_inflight, 1, "requests never overlap");
        for st in &r.stages {
            prop_assert_eq!(st.queue_ns, 0, "zero load ⇒ zero queueing");
        }
        for ev in rec.events().iter() {
            if let obs::EventKind::Request { stages, .. } = &ev.kind {
                prop_assert!(
                    stages.iter().all(|s| s.queue_ns == 0),
                    "per-request stages queue-free under zero load"
                );
            }
        }
    }
}
