//! Schedule exploration for the epoch-merged LRU clock.
//!
//! The lane-parallel engine gives every cache access a stamp that is a
//! pure function of `(epoch, lane tie rank)` — not of the host
//! schedule. The invariant that makes eviction reproducible is: for any
//! interleaving of the lanes that respects per-lane program order, the
//! epoch-merged LRU must rank chunks exactly as the *sequential clock*
//! does when the same accesses run one by one in merged `(epoch, tie)`
//! order with plain monotone stamps — so under later capacity pressure
//! both evict the same victim set.
//!
//! The property perturbs the interleaving with a seeded splitmix64
//! schedule (the same generator family the executor uses to derive
//! per-cell seeds), replays the accesses through epoch windows, then
//! applies identical eviction pressure to both caches and compares the
//! surviving residents key for key.

use check::gen::*;
use check::{prop_assert, prop_assert_eq, property};

use ncache::epoch;
use ncache::shards::NetCacheShards;
use netbuf::key::Lbn;
use netbuf::{BufPool, Segment};
use sim::SplitMix64;

/// Distinct chunk keys in play; the pool holds exactly this many chunks,
/// so every pressure insert evicts exactly one victim.
const UNIVERSE: u64 = 12;
const CHUNK: usize = 4096;

fn shard_cache() -> NetCacheShards {
    NetCacheShards::new(BufPool::new(UNIVERSE * CHUNK as u64), 0, 2)
}

/// Fills the cache with the whole key universe, clean, in key order.
fn warm(cache: &NetCacheShards) {
    for k in 0..UNIVERSE {
        cache
            .insert_lbn(
                Lbn(k),
                vec![Segment::from_vec(vec![k as u8; CHUNK])],
                CHUNK,
                false,
            )
            .expect("warm set fits");
    }
}

/// Applies `evictions` rounds of capacity pressure; each insert reclaims
/// the least-recently-used clean chunk.
fn pressure(cache: &NetCacheShards, evictions: u64) {
    for i in 0..evictions {
        cache
            .insert_lbn(
                Lbn(1_000 + i),
                vec![Segment::from_vec(vec![0xEE; CHUNK])],
                CHUNK,
                false,
            )
            .expect("pressure insert reclaims a victim");
    }
}

/// The universe keys that survived eviction, in key order.
fn residents(cache: &NetCacheShards) -> Vec<u64> {
    (0..UNIVERSE)
        .filter(|&k| cache.contains(Lbn(k).into()))
        .collect()
}

property! {
    #![cases(24)]

    fn prop_epoch_merged_lru_evicts_the_sequential_victim_set(
        lanes_ops in vec_of(vec_of(ints(0u64..UNIVERSE), 0..16), 2..5),
        tie_seed in ints(0u64..1_000_000),
        schedule_seed in ints(0u64..1_000_000),
        evictions in ints(1u64..UNIVERSE),
    ) {
        let lanes = lanes_ops.len();
        let ties = epoch::tie_ranks(tie_seed, lanes);

        // Reference: the sequential clock. The same accesses run one by
        // one in merged (epoch, tie) order; every stamp comes from the
        // plain monotone counter.
        let reference = shard_cache();
        warm(&reference);
        let mut merged: Vec<(usize, u64, usize)> = Vec::new();
        for (lane, ops) in lanes_ops.iter().enumerate() {
            for epoch in 0..ops.len() {
                merged.push((epoch, ties[lane], lane));
            }
        }
        merged.sort_unstable();
        for &(epoch, _, lane) in &merged {
            let key = lanes_ops[lane][epoch];
            prop_assert!(reference.lookup(Lbn(key).into()).is_some());
        }
        pressure(&reference, evictions);

        // Perturbed: a splitmix64-derived interleaving constrained only
        // by per-lane program order, every access inside its epoch
        // window — the stamps it draws depend on (epoch, tie) alone.
        let windowed = shard_cache();
        warm(&windowed);
        let mut rng = SplitMix64::new(schedule_seed);
        let mut cursor = vec![0usize; lanes];
        let mut live: Vec<usize> = (0..lanes)
            .filter(|&lane| !lanes_ops[lane].is_empty())
            .collect();
        let mut max_epoch = 0u64;
        while !live.is_empty() {
            let pick = (rng.next_u64() % live.len() as u64) as usize;
            let lane = live[pick];
            let epoch = cursor[lane];
            let key = lanes_ops[lane][epoch];
            let window = epoch::enter_window(epoch::stamp_base(epoch as u64, ties[lane]));
            prop_assert!(windowed.lookup(Lbn(key).into()).is_some());
            drop(window);
            max_epoch = max_epoch.max(epoch as u64 + 1);
            cursor[lane] += 1;
            if cursor[lane] == lanes_ops[lane].len() {
                live.swap_remove(pick);
            }
        }
        // What the engine does after a parallel run: push the plain
        // clock past every stamp a window could have issued, so the
        // pressure phase ranks above all replayed accesses.
        windowed.advance_clock_past(epoch::stamp_base(max_epoch, 0));
        pressure(&windowed, evictions);

        prop_assert_eq!(
            residents(&reference),
            residents(&windowed),
            "victim sets diverged under a perturbed schedule"
        );
    }
}
