//! Self-tests of the shrinker: deliberately failing properties must
//! shrink to *documented minimal counterexamples*, and a failure's
//! reported seed must reproduce the identical shrunk case. These are what
//! make the tooling itself trustworthy (if shrinking regressed, failures
//! elsewhere in the workspace would become noise).

use check::gen::*;
use check::runner::{check_property, Config, Failed};

fn cfg() -> Config {
    Config {
        cases: 256,
        ..Config::default()
    }
}

/// `x < 500` over `0..1000` has exactly one boundary: the minimal
/// counterexample is 500, and binary minimization must find it exactly.
#[test]
fn scalar_shrinks_to_exact_boundary() {
    let report = check_property("scalar_boundary", cfg(), &ints(0u64..1000), |x| {
        if x < 500 {
            Ok(())
        } else {
            Err(Failed::new("x >= 500"))
        }
    })
    .expect_err("property must fail");
    assert_eq!(report.shrunk_value, "500", "full report: {}", report.render());
}

/// A length-triggered failure shrinks to the shortest failing vector with
/// all elements zeroed: `[0, 0, 0]` for a `len >= 3` trigger.
#[test]
fn vector_shrinks_to_shortest_all_zero() {
    let report = check_property(
        "vec_len_boundary",
        cfg(),
        &vec_of(any_u8(), 0..100),
        |v: Vec<u8>| {
            if v.len() < 3 {
                Ok(())
            } else {
                Err(Failed::new("len >= 3"))
            }
        },
    )
    .expect_err("property must fail");
    assert_eq!(
        report.shrunk_value, "[0, 0, 0]",
        "full report: {}",
        report.render()
    );
}

/// An op-sequence failure triggered by one bad op shrinks to just that op
/// at its minimal magnitude: `[10]`.
#[test]
fn op_sequence_shrinks_to_single_trigger() {
    let report = check_property(
        "op_seq_trigger",
        cfg(),
        &vec_of(ints(0u32..50), 0..40),
        |ops: Vec<u32>| {
            if ops.iter().any(|&op| op >= 10) {
                Err(Failed::new("contains an op >= 10"))
            } else {
                Ok(())
            }
        },
    )
    .expect_err("property must fail");
    assert_eq!(report.shrunk_value, "[10]", "full report: {}", report.render());
}

/// A two-variable failure (`a + b >= 100`) minimizes each coordinate in
/// turn, landing exactly on the boundary `a + b == 100`.
#[test]
fn tuple_shrinks_to_boundary_sum() {
    let report = check_property(
        "tuple_boundary",
        cfg(),
        &(ints(0u32..200), ints(0u32..200)),
        |(a, b)| {
            if a + b < 100 {
                Ok(())
            } else {
                Err(Failed::new("a + b >= 100"))
            }
        },
    )
    .expect_err("property must fail");
    let inner = report
        .shrunk_value
        .trim_start_matches('(')
        .trim_end_matches(')');
    let parts: Vec<u32> = inner.split(", ").map(|p| p.parse().unwrap()).collect();
    assert_eq!(
        parts[0] + parts[1],
        100,
        "shrunk to {} — not on the boundary; full report: {}",
        report.shrunk_value,
        report.render()
    );
}

/// Failures raised by *panics* in the property body (indexing, `expect`)
/// shrink exactly like `prop_assert!` failures.
#[test]
fn panicking_property_shrinks_too() {
    let report = check_property("panic_boundary", cfg(), &ints(0u64..1000), |x| {
        assert!(x < 500, "boom at {x}");
        Ok(())
    })
    .expect_err("property must fail");
    assert_eq!(report.shrunk_value, "500", "full report: {}", report.render());
    assert!(
        report.message.contains("boom at 500"),
        "panic message surfaces: {}",
        report.message
    );
}

/// The reported seed reproduces the identical shrunk counterexample when
/// run in single-case reproduction mode (what `CHECK_SEED=` does).
#[test]
fn reported_seed_reproduces_shrunk_counterexample() {
    let prop = |v: Vec<u8>| {
        if v.iter().map(|&b| u32::from(b)).sum::<u32>() < 300 {
            Ok(())
        } else {
            Err(Failed::new("sum >= 300"))
        }
    };
    let gen = vec_of(any_u8(), 0..50);
    let first = check_property("seed_repro", cfg(), &gen, prop).expect_err("must fail");
    let again = check_property(
        "seed_repro",
        Config {
            seed: Some(first.seed),
            ..cfg()
        },
        &gen,
        prop,
    )
    .expect_err("same seed must fail again");
    assert_eq!(again.case, 0, "reproduction runs exactly one case");
    assert_eq!(
        first.shrunk_value, again.shrunk_value,
        "seed reproduction diverged"
    );
    assert_eq!(first.message, again.message);
}

/// Passing properties pass, and the configured case count is honoured.
#[test]
fn passing_property_runs_all_cases() {
    let cases = check_property("tautology", Config::with_cases(17), &any_u64(), |_| Ok(()))
        .expect("tautology passes");
    assert_eq!(cases, 17);
}

/// `one_of` + `map` + `filter` pipelines shrink through composition: the
/// minimal failing op of a mixed stream is found.
#[test]
fn composed_generators_shrink() {
    #[derive(Clone, Debug)]
    enum Op {
        Put(u8),
        #[allow(dead_code)] // carried only for its Debug rendering
        Get(u8),
        Flush,
    }
    let op = check::one_of![
        ints(0u8..32).map(Op::Put),
        ints(0u8..32).map(Op::Get),
        just(Op::Flush),
    ];
    let report = check_property(
        "composed_ops",
        cfg(),
        &vec_of(op, 0..30),
        |ops: Vec<Op>| {
            for op in ops {
                if let Op::Put(k) = op {
                    if k >= 20 {
                        return Err(Failed::new("put of key >= 20"));
                    }
                }
            }
            Ok(())
        },
    )
    .expect_err("property must fail");
    assert_eq!(
        report.shrunk_value, "[Put(20)]",
        "full report: {}",
        report.render()
    );
}

/// The failure report renders the reproduction instructions.
#[test]
fn report_renders_repro_line() {
    let report = check_property("render_check", cfg(), &any_bool(), |b| {
        if b {
            Err(Failed::new("true is banned"))
        } else {
            Ok(())
        }
    })
    .expect_err("must fail");
    let rendered = report.render();
    assert!(rendered.contains("CHECK_SEED=0x"), "{rendered}");
    assert!(rendered.contains("minimal counterexample: true"), "{rendered}");
}
