//! Ghost-LRU and split-controller invariants, checked against
//! brute-force models.
//!
//! The ghost tail's contract is purely structural: membership is
//! exactly the last-K distinct evicted keys in eviction-stamp order,
//! probing never removes, and every counter (probes, hits, records,
//! displacements) matches a naive replay of the same op stream. The
//! controller's contract is arithmetic: `fs · QUOTA_BLOCK + ncache ==
//! total` after every tick, quota floors are never pierced, the window
//! is the exact per-epoch delta of the cumulative sample, and two
//! opposing resizes never land within the cooldown.

use check::gen::*;
use check::{prop_assert, prop_assert_eq, property};
use ncache::adaptive::{GhostLru, GhostStats, QUOTA_BLOCK};
use ncache::{ResizeDir, SplitConfig, SplitController, SplitSample};
use sim::rng::SplitMix64;

fn opposite(dir: ResizeDir) -> ResizeDir {
    match dir {
        ResizeDir::ToFs => ResizeDir::ToNcache,
        ResizeDir::ToNcache => ResizeDir::ToFs,
    }
}

property! {
    #![cases(48)]

    /// Any interleaving of records (unique, gappy stamps; a small key
    /// space forcing re-records) and probes: the tail is exactly the
    /// last-K distinct evicted keys, ordered oldest → newest, and every
    /// probe outcome and counter matches the brute-force model.
    fn prop_ghost_is_exactly_the_last_k_evicted_keys(
        cap in ints(1u64..12),
        ops in vec_of(ints(0u64..(1u64 << 32)), 16..160),
    ) {
        let cap = cap as usize;
        let mut g = GhostLru::new(cap);
        prop_assert_eq!(g.capacity(), cap);
        // Model: (stamp, key) pairs, ascending by stamp.
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut stamp = 0u64;
        let mut expect = GhostStats::default();
        for word in ops {
            let key = word % 24;
            if word & (1 << 30) != 0 {
                let model_hit = model.iter().any(|&(_, k)| k == key);
                expect.probes += 1;
                if model_hit {
                    expect.hits += 1;
                }
                prop_assert_eq!(g.probe(key), model_hit, "probe outcome vs model");
            } else {
                stamp += 1 + (word & 7);
                g.record(key, stamp);
                expect.records += 1;
                model.retain(|&(_, k)| k != key);
                model.push((stamp, key));
                if model.len() > cap {
                    model.remove(0);
                    expect.displaced += 1;
                }
            }
        }
        let keys: Vec<u64> = model.iter().map(|&(_, k)| k).collect();
        prop_assert_eq!(g.keys_by_recency(), keys, "membership in stamp order");
        prop_assert_eq!(g.len(), model.len(), "cardinality");
        prop_assert_eq!(g.is_empty(), model.is_empty());
        prop_assert_eq!(g.stats(), expect, "probe/hit/record/displace counts");
    }

    /// `GhostStats::absorb` is a plain sum: folding any permutation of
    /// shard stats — forward, reverse, or split in two and merged —
    /// yields identical totals. This is what lets sharded ghost tails
    /// report one merged counter block.
    fn prop_ghost_stats_absorb_is_order_invariant(
        words in vec_of(any_u64(), 2..12),
    ) {
        let parts: Vec<GhostStats> = words
            .iter()
            .map(|w| GhostStats {
                probes: w & 0xffff,
                hits: (w >> 16) & 0xffff,
                records: (w >> 32) & 0xffff,
                displaced: (w >> 48) & 0xffff,
            })
            .collect();
        let fold = |order: &[&GhostStats]| {
            let mut total = GhostStats::default();
            for p in order {
                total.absorb(p);
            }
            total
        };
        let forward: Vec<&GhostStats> = parts.iter().collect();
        let reverse: Vec<&GhostStats> = parts.iter().rev().collect();
        let (a, b) = parts.split_at(parts.len() / 2);
        let mut left = fold(&a.iter().collect::<Vec<_>>());
        let right = fold(&b.iter().collect::<Vec<_>>());
        left.absorb(&right);
        prop_assert_eq!(fold(&forward), fold(&reverse), "reverse fold");
        prop_assert_eq!(fold(&forward), left, "split-and-merge fold");
    }

    /// Seeded tick schedules with arbitrary monotone cumulative
    /// samples: quota is conserved to the byte after every tick, the
    /// floors hold, the window is the exact delta the tick consumed,
    /// and an opposing resize never fires within the cooldown of the
    /// previous one.
    fn prop_controller_conserves_quota_and_respects_cooldown(
        seed in any_u64(),
        fs0 in ints(16u64..512),
        nc0 in ints(16u64..512),
        step in ints(1u64..64),
        hysteresis in ints(0u64..8),
        cooldown in ints(0u64..4),
        ticks in ints(8u64..80),
    ) {
        let cfg = SplitConfig {
            dynamic: true,
            epoch_ops: 8,
            step_blocks: step,
            hysteresis,
            cooldown_epochs: cooldown,
            min_fs_blocks: 8,
            min_ncache_bytes: 8 * QUOTA_BLOCK,
            ghost_blocks: 64,
        };
        let mut c = SplitController::new(cfg, fs0, nc0 * QUOTA_BLOCK);
        let total = (fs0 + nc0) * QUOTA_BLOCK;
        let mut rng = SplitMix64::new(seed);
        let mut cum = SplitSample::default();
        let mut last: Option<(u64, ResizeDir)> = None;
        for t in 1..=ticks {
            let delta = [
                rng.next_u64() % 50,
                rng.next_u64() % 50,
                rng.next_u64() % 20,
                rng.next_u64() % 50,
                rng.next_u64() % 50,
                rng.next_u64() % 20,
            ];
            cum.fs_hits += delta[0];
            cum.fs_misses += delta[1];
            cum.fs_ghost_hits += delta[2];
            cum.nc_hits += delta[3];
            cum.nc_misses += delta[4];
            cum.nc_ghost_hits += delta[5];
            let resize = c.tick(cum);
            let w = c.window();
            prop_assert_eq!(
                [
                    w.fs_hits,
                    w.fs_misses,
                    w.fs_ghost_hits,
                    w.nc_hits,
                    w.nc_misses,
                    w.nc_ghost_hits,
                ],
                delta,
                "the window is exactly this epoch's delta"
            );
            if let Some(r) = resize {
                prop_assert!(r.blocks > 0, "an applied move is non-empty");
                prop_assert_eq!(r.fs_blocks, c.fs_blocks(), "move reflects quota");
                prop_assert_eq!(r.ncache_bytes, c.ncache_bytes());
                if let Some((at, dir)) = last {
                    if r.dir == opposite(dir) {
                        prop_assert!(
                            t - at > cooldown,
                            "opposing resizes {at}->{t} inside cooldown {cooldown}"
                        );
                    }
                }
                last = Some((t, r.dir));
            }
            prop_assert_eq!(
                c.fs_blocks() * QUOTA_BLOCK + c.ncache_bytes(),
                total,
                "quota conservation"
            );
            prop_assert!(c.fs_blocks() >= cfg.min_fs_blocks, "FS floor");
            prop_assert!(c.ncache_bytes() >= cfg.min_ncache_bytes, "NCache floor");
        }
        prop_assert_eq!(c.ticks(), ticks, "every tick counted");
    }

    /// A frozen controller fed the same schedules never moves, never
    /// reports a resize, and keeps its quotas bit-identical — the
    /// property behind the oracle test's unobservability legs.
    fn prop_frozen_controller_never_moves(
        seed in any_u64(),
        ticks in ints(1u64..40),
    ) {
        let mut c = SplitController::new(SplitConfig::static_split(), 128, 128 * QUOTA_BLOCK);
        let mut rng = SplitMix64::new(seed);
        let mut cum = SplitSample::default();
        for _ in 0..ticks {
            cum.fs_ghost_hits += rng.next_u64() % 100;
            cum.nc_ghost_hits += rng.next_u64() % 100;
            cum.fs_misses += rng.next_u64() % 100;
            prop_assert!(c.tick(cum).is_none(), "frozen tick returns no move");
            prop_assert_eq!(c.fs_blocks(), 128);
            prop_assert_eq!(c.ncache_bytes(), 128 * QUOTA_BLOCK);
            prop_assert_eq!(c.resizes(), 0);
        }
    }
}
