//! Property execution: case generation, failure detection, greedy
//! shrinking, and seed-based reproduction.
//!
//! Failures are detected two ways: a property returning `Err` (the
//! `prop_assert!` family) or panicking (indexing, `expect`, a plain
//! `assert!` in library code under test). Both shrink identically. While
//! the runner probes cases, panic output is suppressed via a thread-local
//! flag so shrinking doesn't spray hundreds of backtraces; the final
//! verdict panics normally.
//!
//! Reproduction: a failure report prints a case seed. Running the same
//! test with `CHECK_SEED=<that seed>` regenerates the failing case and —
//! because generation and shrinking are fully deterministic — re-derives
//! the identical shrunk counterexample. `CHECK_CASES=<n>` overrides the
//! per-property case count.

use std::cell::Cell;
use std::fmt::Debug;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use sim::rng::SplitMix64;

use crate::gen::Gen;
use crate::source::Source;

/// A property failure: carries the message `prop_assert!` produced.
#[derive(Debug, Clone)]
pub struct Failed {
    /// Human-readable description of the violated assertion.
    pub message: String,
}

impl Failed {
    /// Creates a failure with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Failed {
            message: message.into(),
        }
    }
}

/// What a property body returns: `Ok(())` or the first violated assertion.
pub type PropResult = Result<(), Failed>;

/// Runner configuration. `cases`/`seed` are overridden by the
/// `CHECK_CASES`/`CHECK_SEED` environment variables.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cases to run before declaring the property passed.
    pub cases: u32,
    /// Budget of shrink *probes* (replays) after the first failure.
    pub max_shrink_steps: u32,
    /// Run exactly one case from this case seed (reproduction mode).
    pub seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 128,
            max_shrink_steps: 4096,
            seed: None,
        }
    }
}

impl Config {
    /// Default config with `cases` overridden; 0 keeps the default (used
    /// by the `property!` macro's optional `#![cases(n)]` attribute).
    pub fn with_cases(cases: u32) -> Self {
        let mut cfg = Config::default();
        if cases > 0 {
            cfg.cases = cases;
        }
        cfg
    }
}

/// Everything needed to understand and reproduce a property failure.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// The property's name.
    pub property: String,
    /// Case seed that reproduces the failure (`CHECK_SEED=` this).
    pub seed: u64,
    /// 0-based index of the failing case.
    pub case: u32,
    /// `Debug` rendering of the originally generated failing value.
    pub original_value: String,
    /// `Debug` rendering of the shrunk minimal counterexample.
    pub shrunk_value: String,
    /// Failure message of the shrunk case.
    pub message: String,
    /// Number of accepted shrink steps.
    pub shrink_steps: u32,
}

impl FailureReport {
    /// Formats the report as the panic message `cargo test` displays.
    pub fn render(&self) -> String {
        format!(
            "property `{}` failed (case {}, seed {:#018x})\n\
             minimal counterexample: {}\n\
             original counterexample: {}\n\
             failure: {}\n\
             ({} shrink steps; reproduce with: CHECK_SEED={:#x} cargo test {})",
            self.property,
            self.case,
            self.seed,
            self.shrunk_value,
            self.original_value,
            self.message,
            self.shrink_steps,
            self.seed,
            self.property,
        )
    }
}

// ---------------------------------------------------------------------------
// Case rejection (filter) and quiet panic handling.

struct CaseRejected;

/// Aborts the current case without failing it (a `filter` that could not
/// be satisfied). The runner retries with a fresh seed.
pub fn reject_case() -> ! {
    panic::panic_any(CaseRejected)
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(|q| q.get()) {
                prev(info);
            }
        }));
    });
}

struct QuietGuard;

impl QuietGuard {
    fn engage() -> Self {
        install_quiet_hook();
        QUIET_PANICS.with(|q| q.set(true));
        QuietGuard
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        QUIET_PANICS.with(|q| q.set(false));
    }
}

// ---------------------------------------------------------------------------
// Case execution.

enum Outcome {
    Pass,
    Reject,
    Fail { value: String, message: String },
}

fn run_case<G, P>(gen: &G, prop: &P, src: &mut Source) -> Outcome
where
    G: Gen,
    G::Value: Debug,
    P: Fn(G::Value) -> PropResult,
{
    // The value's rendering lives outside the unwind boundary so a
    // panicking property still reports what input it was given.
    let rendered = std::cell::RefCell::new(None::<String>);
    let _quiet = QuietGuard::engage();
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        let value = gen.generate(src);
        *rendered.borrow_mut() = Some(format!("{value:?}"));
        prop(value)
    }));
    drop(_quiet);
    let rendered = rendered
        .into_inner()
        .unwrap_or_else(|| "<generation panicked>".to_string());
    match result {
        Ok(Ok(())) => Outcome::Pass,
        Ok(Err(f)) => Outcome::Fail {
            value: rendered,
            message: f.message,
        },
        Err(payload) => {
            if payload.is::<CaseRejected>() {
                return Outcome::Reject;
            }
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                format!("panic: {s}")
            } else if let Some(s) = payload.downcast_ref::<String>() {
                format!("panic: {s}")
            } else {
                "panic (non-string payload)".to_string()
            };
            Outcome::Fail {
                value: rendered,
                message,
            }
        }
    }
}

/// Replays a choice list; on failure returns the canonical consumed
/// choices, value rendering, and message.
fn replay_case<G, P>(gen: &G, prop: &P, choices: Vec<u64>) -> Option<(Vec<u64>, String, String)>
where
    G: Gen,
    G::Value: Debug,
    P: Fn(G::Value) -> PropResult,
{
    let mut src = Source::from_choices(choices);
    match run_case(gen, prop, &mut src) {
        Outcome::Fail { value, message } => Some((src.into_choices(), value, message)),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Greedy shrinking on the choice list.

struct Shrinker<'a, G, P> {
    gen: &'a G,
    prop: &'a P,
    budget: u32,
    probes: u32,
    steps: u32,
}

impl<G, P> Shrinker<'_, G, P>
where
    G: Gen,
    G::Value: Debug,
    P: Fn(G::Value) -> PropResult,
{
    /// Replays `candidate`; if it still fails, commits it (in canonical
    /// form) to `current` and returns true.
    fn try_accept(
        &mut self,
        candidate: Vec<u64>,
        current: &mut (Vec<u64>, String, String),
    ) -> bool {
        if self.probes >= self.budget {
            return false;
        }
        self.probes += 1;
        if let Some(hit) = replay_case(self.gen, self.prop, candidate) {
            // A replay that canonicalizes back to the current list is not
            // progress; committing it would loop forever.
            if hit.0 == current.0 {
                return false;
            }
            *current = hit;
            self.steps += 1;
            true
        } else {
            false
        }
    }

    /// Deletes choice blocks (shrinks vector lengths / drops ops), largest
    /// blocks first. Returns true if anything was accepted.
    fn pass_delete(&mut self, current: &mut (Vec<u64>, String, String)) -> bool {
        let mut improved = false;
        for size in [16usize, 8, 4, 2, 1] {
            let mut start = current.0.len().saturating_sub(size);
            loop {
                if current.0.len() >= size {
                    let mut cand = current.0.clone();
                    cand.drain(start..(start + size).min(cand.len()));
                    if self.try_accept(cand, current) {
                        improved = true;
                        // The list changed length; restart this block size.
                        start = current.0.len().saturating_sub(size);
                        continue;
                    }
                }
                if start == 0 || self.probes >= self.budget {
                    break;
                }
                start = start.saturating_sub(size);
            }
            if self.probes >= self.budget {
                break;
            }
        }
        improved
    }

    /// Minimizes each choice individually: try 0, then binary-descend to
    /// the smallest value that still fails. Returns true if anything was
    /// accepted.
    fn pass_minimize(&mut self, current: &mut (Vec<u64>, String, String)) -> bool {
        let mut improved = false;
        let mut i = 0;
        while i < current.0.len() && self.probes < self.budget {
            let orig = current.0[i];
            if orig == 0 {
                i += 1;
                continue;
            }
            let mut cand = current.0.clone();
            cand[i] = 0;
            if self.try_accept(cand, current) {
                improved = true;
                i += 1;
                continue;
            }
            // 0 passes, orig fails: binary search the boundary.
            let (mut lo, mut hi) = (0u64, orig);
            while hi - lo > 1 && self.probes < self.budget {
                let mid = lo + (hi - lo) / 2;
                // Replays can reshape the list; stop if the slot moved.
                if current.0.get(i) != Some(&hi) {
                    break;
                }
                let mut cand = current.0.clone();
                cand[i] = mid;
                if self.try_accept(cand, current) {
                    improved = true;
                    if current.0.get(i) == Some(&mid) {
                        hi = mid;
                    } else {
                        break;
                    }
                } else {
                    lo = mid;
                }
            }
            i += 1;
        }
        improved
    }

    fn shrink(&mut self, mut current: (Vec<u64>, String, String)) -> (Vec<u64>, String, String) {
        loop {
            let mut improved = self.pass_delete(&mut current);
            improved |= self.pass_minimize(&mut current);
            if !improved || self.probes >= self.budget {
                return current;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Entry points.

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be a u64 (decimal or 0x-hex), got `{raw}`"),
    }
}

fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs a property and returns `Ok(cases_run)` or the failure report with
/// the shrunk counterexample. The non-panicking core of [`run_property`];
/// used directly by the harness's self-tests.
pub fn check_property<G, P>(
    name: &str,
    cfg: Config,
    gen: &G,
    prop: P,
) -> Result<u32, Box<FailureReport>>
where
    G: Gen,
    G::Value: Debug,
    P: Fn(G::Value) -> PropResult,
{
    let seed_override = cfg.seed.or_else(|| env_u64("CHECK_SEED"));
    let cases = if seed_override.is_some() {
        1
    } else {
        env_u64("CHECK_CASES").map_or(cfg.cases, |n| n.max(1) as u32)
    };
    let mut seeder = SplitMix64::new(0x5eed_cafe_f00d_0001 ^ fnv64(name));
    let max_rejects = cases.saturating_mul(20).max(1000);
    let mut rejects = 0u32;
    let mut case = 0u32;
    while case < cases {
        let case_seed = match seed_override {
            Some(s) => s,
            None => seeder.next_u64(),
        };
        let mut src = Source::from_seed(case_seed);
        match run_case(gen, &prop, &mut src) {
            Outcome::Pass => case += 1,
            Outcome::Reject => {
                rejects += 1;
                if seed_override.is_some() {
                    panic!("property `{name}`: the CHECK_SEED case was rejected by a filter");
                }
                if rejects > max_rejects {
                    panic!(
                        "property `{name}`: {rejects} cases rejected by filters \
                         (only {case} accepted) — loosen the filter"
                    );
                }
            }
            Outcome::Fail { value, message } => {
                let choices = src.into_choices();
                let mut shrinker = Shrinker {
                    gen,
                    prop: &prop,
                    budget: cfg.max_shrink_steps,
                    probes: 0,
                    steps: 0,
                };
                let (_, shrunk_value, shrunk_message) =
                    shrinker.shrink((choices, value.clone(), message));
                return Err(Box::new(FailureReport {
                    property: name.to_string(),
                    seed: case_seed,
                    case,
                    original_value: value,
                    shrunk_value,
                    message: shrunk_message,
                    shrink_steps: shrinker.steps,
                }));
            }
        }
    }
    Ok(cases)
}

/// Runs a property, panicking with a reproducible report on failure. This
/// is what the [`property!`](crate::property) macro expands to.
pub fn run_property<G, P>(name: &str, cfg: Config, gen: &G, prop: P)
where
    G: Gen,
    G::Value: Debug,
    P: Fn(G::Value) -> PropResult,
{
    if let Err(report) = check_property(name, cfg, gen, prop) {
        panic!("{}", report.render());
    }
}
