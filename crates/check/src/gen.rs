//! Generator combinators.
//!
//! A [`Gen`] turns a [`Source`] choice stream into a value. Combinators
//! compose by drawing in a fixed order, so a recorded choice list replays
//! to the same value and an edited one replays to a *smaller* value (see
//! `source.rs`). The surface mirrors proptest's strategies closely enough
//! that migrating a `proptest!` block is a local rewrite:
//!
//! | proptest | check |
//! |---|---|
//! | `any::<u8>()` | `any_u8()` |
//! | `0u8..32` | `ints(0u8..32)` |
//! | `any::<[u8; 6]>()` | `byte_array::<6>()` |
//! | `proptest::collection::vec(g, 0..20)` | `vec_of(g, 0..20)` |
//! | `"[a-z0-9]{1,20}"` | `string_of(ALNUM_LOWER, 1..21)` |
//! | `prop_oneof![a, b]` | `one_of![a, b]` |
//! | `Just(v)` | `just(v)` |
//! | `.prop_map(f)` | `.map(f)` |
//! | `.prop_filter(m, f)` | `.filter(f)` |

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::source::Source;

/// Something that can generate values from a choice stream.
pub trait Gen {
    /// The generated type.
    type Value;
    /// Produces one value, consuming draws from `src`.
    fn generate(&self, src: &mut Source) -> Self::Value;
}

/// A generator built from a closure over the source.
pub struct FnGen<T, F: Fn(&mut Source) -> T> {
    f: F,
    _marker: PhantomData<fn() -> T>,
}

impl<T, F: Fn(&mut Source) -> T> Gen for FnGen<T, F> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        (self.f)(src)
    }
}

/// Wraps a closure as a generator.
pub fn from_fn<T, F: Fn(&mut Source) -> T>(f: F) -> FnGen<T, F> {
    FnGen {
        f,
        _marker: PhantomData,
    }
}

/// Ranges that can be sampled uniformly; implemented for `Range` and
/// `RangeInclusive` over the primitive integer types.
pub trait UniformRange {
    /// The integer type produced.
    type Value;
    /// Draws one value in the range.
    fn sample(&self, src: &mut Source) -> Self::Value;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Value = $t;
            fn sample(&self, src: &mut Source) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + src.draw(span) as $t
            }
        }
        impl UniformRange for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, src: &mut Source) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range");
                if lo == 0 && hi == u64::MAX {
                    return src.draw_u64() as $t;
                }
                (lo + src.draw(hi - lo + 1)) as $t
            }
        }
    )*};
}
impl_uniform_unsigned!(u8, u16, u32, usize);

impl UniformRange for Range<u64> {
    type Value = u64;
    fn sample(&self, src: &mut Source) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + src.draw(self.end - self.start)
    }
}
impl UniformRange for RangeInclusive<u64> {
    type Value = u64;
    fn sample(&self, src: &mut Source) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return src.draw_u64();
        }
        lo + src.draw(hi - lo + 1)
    }
}

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Value = $t;
            fn sample(&self, src: &mut Source) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(src.draw(span) as $t)
            }
        }
    )*};
}
impl_uniform_signed!(i32 => u32, i64 => u64);

/// Uniform integer in a range: `ints(0u8..32)`, `ints(1u64..=20)`.
/// Shrinks toward the low end.
pub fn ints<R: UniformRange>(range: R) -> impl Gen<Value = R::Value> {
    from_fn(move |src| range.sample(src))
}

/// Any `u8`, uniformly. Shrinks toward 0.
pub fn any_u8() -> impl Gen<Value = u8> {
    ints(0u8..=u8::MAX)
}

/// Any `u16`, uniformly. Shrinks toward 0.
pub fn any_u16() -> impl Gen<Value = u16> {
    ints(0u16..=u16::MAX)
}

/// Any `u32`, uniformly. Shrinks toward 0.
pub fn any_u32() -> impl Gen<Value = u32> {
    ints(0u32..=u32::MAX)
}

/// Any `u64`, uniformly. Shrinks toward 0.
pub fn any_u64() -> impl Gen<Value = u64> {
    ints(0u64..=u64::MAX)
}

/// Either boolean. Shrinks toward `false`.
pub fn any_bool() -> impl Gen<Value = bool> {
    from_fn(|src| src.draw(2) == 1)
}

/// A fixed-length byte array, each byte uniform. Shrinks toward zeroes.
pub fn byte_array<const N: usize>() -> impl Gen<Value = [u8; N]> {
    from_fn(|src| {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = src.draw(256) as u8;
        }
        out
    })
}

/// A `Vec` of values from `elem`, with length drawn from `len`. Shrinks
/// toward shorter vectors of smaller elements.
pub fn vec_of<G: Gen>(elem: G, len: Range<usize>) -> impl Gen<Value = Vec<G::Value>> {
    from_fn(move |src| {
        let n = len.sample(src);
        (0..n).map(|_| elem.generate(src)).collect()
    })
}

/// A byte vector with length drawn from `len`.
pub fn bytes(len: Range<usize>) -> impl Gen<Value = Vec<u8>> {
    vec_of(any_u8(), len)
}

/// Lowercase letters and digits — the `[a-z0-9]` character class.
pub const ALNUM_LOWER: &str = "abcdefghijklmnopqrstuvwxyz0123456789";
/// Letters, digits, and the filename punctuation `._-` — `[a-zA-Z0-9._-]`.
pub const FILENAME: &str =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
/// [`FILENAME`] plus `/` — URL-path characters, `[a-zA-Z0-9/_.-]`.
pub const URL_PATH: &str =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-/";

/// A string of characters drawn from `charset` (the replacement for
/// proptest's regex strategies: `"[a-z0-9]{1,20}"` becomes
/// `string_of(ALNUM_LOWER, 1..21)`). Shrinks toward shorter strings of the
/// charset's first character.
pub fn string_of(charset: &'static str, len: Range<usize>) -> impl Gen<Value = String> {
    let chars: Vec<char> = charset.chars().collect();
    assert!(!chars.is_empty(), "empty charset");
    from_fn(move |src| {
        let n = len.sample(src);
        (0..n)
            .map(|_| chars[src.draw(chars.len() as u64) as usize])
            .collect()
    })
}

/// Always the same value (proptest's `Just`).
pub fn just<T: Clone>(value: T) -> impl Gen<Value = T> {
    from_fn(move |_| value.clone())
}

/// A boxed generator, for heterogeneous collections ([`one_of`]).
pub type BoxGen<T> = Box<dyn Gen<Value = T>>;

/// Boxes a generator.
pub fn boxed<G: Gen + 'static>(g: G) -> BoxGen<G::Value> {
    Box::new(g)
}

impl<T> Gen for BoxGen<T> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        (**self).generate(src)
    }
}

/// Picks one of several same-typed generators uniformly (proptest's
/// `prop_oneof!`). Prefer the [`one_of!`](crate::one_of) macro, which boxes
/// the arms for you. Shrinks toward the first arm.
pub fn one_of<T>(arms: Vec<BoxGen<T>>) -> impl Gen<Value = T> {
    assert!(!arms.is_empty(), "one_of needs at least one arm");
    from_fn(move |src| arms[src.draw(arms.len() as u64) as usize].generate(src))
}

/// Picks one of several same-typed generator expressions uniformly:
/// `one_of![ints(0u8..32).map(Op::Read), just(Op::Flush)]`.
#[macro_export]
macro_rules! one_of {
    ($($arm:expr),+ $(,)?) => {
        $crate::gen::one_of(vec![$($crate::gen::boxed($arm)),+])
    };
}

/// The result of mapping a generator through a function.
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, T, F: Fn(G::Value) -> T> Gen for Map<G, F> {
    type Value = T;
    fn generate(&self, src: &mut Source) -> T {
        (self.f)(self.inner.generate(src))
    }
}

/// A generator whose output is restricted by a predicate; draws again on
/// rejection (see [`GenExt::filter`]).
pub struct Filter<G, P> {
    inner: G,
    pred: P,
}

/// How many fresh draws a [`Filter`] attempts before rejecting the case.
const FILTER_RETRIES: usize = 64;

impl<G: Gen, P: Fn(&G::Value) -> bool> Gen for Filter<G, P> {
    type Value = G::Value;
    fn generate(&self, src: &mut Source) -> G::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(src);
            if (self.pred)(&v) {
                return v;
            }
        }
        crate::runner::reject_case()
    }
}

/// Combinator methods on every generator.
pub trait GenExt: Gen + Sized {
    /// Transforms generated values (proptest's `prop_map`).
    fn map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// Discards values failing `pred`, retrying with fresh draws; a case
    /// that cannot satisfy the predicate is skipped, not failed
    /// (proptest's `prop_filter`).
    fn filter<P: Fn(&Self::Value) -> bool>(self, pred: P) -> Filter<Self, P> {
        Filter { inner: self, pred }
    }
}

impl<G: Gen + Sized> GenExt for G {}

macro_rules! impl_gen_tuple {
    ($($g:ident . $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);
            fn generate(&self, src: &mut Source) -> Self::Value {
                ($(self.$idx.generate(src),)+)
            }
        }
    };
}
impl_gen_tuple!(A.0);
impl_gen_tuple!(A.0, B.1);
impl_gen_tuple!(A.0, B.1, C.2);
impl_gen_tuple!(A.0, B.1, C.2, D.3);
impl_gen_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_gen_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_gen_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_gen_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_with<G: Gen>(g: &G, seed: u64) -> G::Value {
        g.generate(&mut Source::from_seed(seed))
    }

    #[test]
    fn ints_respect_bounds() {
        let g = ints(5u8..10);
        for seed in 0..200 {
            let v = gen_with(&g, seed);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn inclusive_full_range_hits_extremes_without_panic() {
        let g = ints(0u64..=u64::MAX);
        for seed in 0..50 {
            gen_with(&g, seed);
        }
    }

    #[test]
    fn minimal_choices_give_minimal_values() {
        let mut src = Source::from_choices(vec![]);
        assert_eq!(ints(7u32..100).generate(&mut src), 7);
        assert!(!any_bool().generate(&mut src));
        assert_eq!(vec_of(any_u8(), 0..10).generate(&mut src), Vec::<u8>::new());
        assert_eq!(string_of(ALNUM_LOWER, 1..5).generate(&mut src), "a");
    }

    #[test]
    fn vec_lengths_in_range() {
        let g = vec_of(any_u8(), 2..6);
        for seed in 0..100 {
            let v = gen_with(&g, seed);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn string_uses_charset() {
        let g = string_of(ALNUM_LOWER, 1..21);
        for seed in 0..100 {
            let s = gen_with(&g, seed);
            assert!(!s.is_empty() && s.len() <= 20);
            assert!(s.chars().all(|c| ALNUM_LOWER.contains(c)));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let g = (ints(0u8..4), any_bool()).map(|(a, b)| (u16::from(a) + 1, !b));
        let (a, _) = gen_with(&g, 9);
        assert!((1..=4).contains(&a));
    }

    #[test]
    fn one_of_covers_all_arms() {
        let g = one_of![just(1u8), just(2u8), just(3u8)];
        let mut seen = std::collections::HashSet::new();
        for seed in 0..100 {
            seen.insert(gen_with(&g, seed));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn replay_reproduces_composed_values() {
        let g = vec_of((ints(0u64..16), any_bool(), ints(0u8..3)), 0..200);
        let mut rec = Source::from_seed(77);
        let a = g.generate(&mut rec);
        let mut rep = Source::from_choices(rec.into_choices());
        let b = g.generate(&mut rep);
        assert_eq!(a, b);
    }
}
