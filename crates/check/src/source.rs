//! The choice stream generators draw from.
//!
//! Every random decision a generator makes flows through a [`Source`] as a
//! bounded integer draw. In *record* mode the draws come from a seeded
//! [`SplitMix64`] and are logged; in *replay* mode they come from a stored
//! choice list (clamped to the requested bound, zero once exhausted).
//! Shrinking never touches generated values directly — it edits the choice
//! list and replays, so every shrink candidate is by construction a value
//! the generator could have produced. Because draws shrink toward zero and
//! all combinators map zero to their minimal output, editing choices toward
//! zero/shorter shrinks the value.

use sim::rng::SplitMix64;

/// A recorded or replayed stream of bounded integer choices.
#[derive(Debug)]
pub struct Source {
    rng: Option<SplitMix64>,
    replay: Vec<u64>,
    pos: usize,
    record: Vec<u64>,
}

impl Source {
    /// A recording source: draws come from a fresh SplitMix64 stream.
    pub fn from_seed(seed: u64) -> Self {
        Source {
            rng: Some(SplitMix64::new(seed)),
            replay: Vec::new(),
            pos: 0,
            record: Vec::new(),
        }
    }

    /// A replaying source: draws come from `choices`, clamped to each
    /// requested bound; once the list is exhausted every draw is 0.
    pub fn from_choices(choices: Vec<u64>) -> Self {
        Source {
            rng: None,
            replay: choices,
            pos: 0,
            record: Vec::new(),
        }
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn draw(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "draw bound must be positive");
        let v = match &mut self.rng {
            Some(rng) => rng.next_below(bound),
            None => {
                let raw = self.replay.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                raw.min(bound - 1)
            }
        };
        self.record.push(v);
        v
    }

    /// Full-range 64-bit draw (a `draw` with an inexpressible bound).
    pub fn draw_u64(&mut self) -> u64 {
        let v = match &mut self.rng {
            Some(rng) => rng.next_u64(),
            None => {
                let raw = self.replay.get(self.pos).copied().unwrap_or(0);
                self.pos += 1;
                raw
            }
        };
        self.record.push(v);
        v
    }

    /// The choices actually consumed, in order — the canonical encoding of
    /// whatever value was generated from this source.
    pub fn into_choices(self) -> Vec<u64> {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_then_replay_is_identical() {
        let mut rec = Source::from_seed(42);
        let a: Vec<u64> = (0..20).map(|i| rec.draw(i + 5)).collect();
        let choices = rec.into_choices();
        let mut rep = Source::from_choices(choices);
        let b: Vec<u64> = (0..20).map(|i| rep.draw(i + 5)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn replay_clamps_to_bound() {
        let mut s = Source::from_choices(vec![1000]);
        assert_eq!(s.draw(10), 9);
    }

    #[test]
    fn exhausted_replay_draws_zero() {
        let mut s = Source::from_choices(vec![]);
        assert_eq!(s.draw(10), 0);
        assert_eq!(s.draw_u64(), 0);
        // Exhausted draws are still recorded: the record is canonical.
        assert_eq!(s.into_choices(), vec![0, 0]);
    }

    #[test]
    fn record_during_replay_reflects_clamping() {
        let mut s = Source::from_choices(vec![1000, 3]);
        s.draw(10);
        s.draw(10);
        assert_eq!(s.into_choices(), vec![9, 3]);
    }
}
