//! The `property!` / `prop_assert!` macro surface.
//!
//! Designed so a `proptest!` block migrates by local rewriting only:
//!
//! ```text
//! proptest! {                         property! {
//!     #![proptest_config(                 #![cases(12)]
//!         ProptestConfig::with_cases(12))]
//!     #[test]
//!     fn prop_x(a in 0u8..32,             fn prop_x(a in ints(0u8..32),
//!               b in any::<u16>()) {                b in any_u16()) {
//!         prop_assert!(a < 32);               prop_assert!(a < 32);
//!     }                                   }
//! }                                   }
//! ```
//!
//! (the `#[test]` attribute is added by the macro; strategy expressions
//! become the combinators in [`crate::gen`]).

/// Declares property tests. Each `fn` becomes a `#[test]` that runs the
/// body over generated inputs, shrinking and reporting a reproduction
/// seed on failure. An optional leading `#![cases(n)]` sets the case
/// count for every property in the block.
#[macro_export]
macro_rules! property {
    ( #![cases($cases:expr)] $($rest:tt)* ) => {
        $crate::__property_impl! { cases = $cases; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__property_impl! { cases = 0; $($rest)* }
    };
}

/// Implementation detail of [`property!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __property_impl {
    ( cases = $cases:expr;
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $gen:expr),+ $(,)? ) $body:block
      )+
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __gen = ( $($gen,)+ );
                $crate::runner::run_property(
                    stringify!($name),
                    $crate::runner::Config::with_cases($cases),
                    &__gen,
                    |($($arg,)+)| -> $crate::runner::PropResult {
                        $body
                        Ok(())
                    },
                );
            }
        )+
    };
}

/// Asserts a condition inside a property body, failing the case (and
/// triggering shrinking) instead of panicking. With extra arguments,
/// formats them as the failure message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::runner::Failed::new(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::runner::Failed::new(format!($($fmt)+)));
        }
    };
}

/// Asserts two expressions are equal (by `PartialEq`), reporting both
/// sides with `Debug` on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::runner::Failed::new(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::runner::Failed::new(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts two expressions are unequal, reporting the common value with
/// `Debug` on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::runner::Failed::new(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::runner::Failed::new(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), l
            )));
        }
    }};
}
