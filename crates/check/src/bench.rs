//! A lightweight wall-clock bench harness (the in-tree criterion
//! replacement).
//!
//! Shape mirrors criterion's enough that a bench file migrates
//! mechanically: a [`Harness`] per bench binary, [`Group`]s with
//! `bench` / `bench_batched` functions, per-group sample counts and byte
//! throughput. Each measurement auto-calibrates an inner iteration count
//! so sub-microsecond operations are timed over batches, then reports
//! median and p95 over the samples.
//!
//! [`Harness::finish`] writes `BENCH_<name>.json` (at the workspace root
//! by default; `BENCH_JSON_DIR` overrides, created if missing — note a
//! relative path resolves against the bench binary's working directory,
//! which under `cargo bench` is the bench *package* dir) so successive
//! runs of
//! `cargo bench` leave a machine-readable timing trajectory. The
//! `BENCH_SAMPLES` environment variable overrides every group's sample
//! count, e.g. `BENCH_SAMPLES=5` for a smoke run.

use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Target duration for one timed sample; the calibrated inner iteration
/// count aims each sample at roughly this long.
const TARGET_SAMPLE_NS: u64 = 20_000;
const MAX_INNER_ITERS: u64 = 1 << 20;

/// One bench's aggregated measurements, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` name.
    pub name: String,
    /// Timed samples taken.
    pub samples: u32,
    /// Iterations batched inside each sample.
    pub inner_iters: u64,
    /// Median nanoseconds per iteration.
    pub median_ns: u64,
    /// 95th-percentile nanoseconds per iteration.
    pub p95_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: u64,
    /// Bytes processed per iteration, when declared (for MB/s derivation).
    pub throughput_bytes: Option<u64>,
}

impl BenchResult {
    fn from_samples(
        name: String,
        inner_iters: u64,
        mut per_iter_ns: Vec<u64>,
        throughput_bytes: Option<u64>,
    ) -> Self {
        per_iter_ns.sort_unstable();
        let n = per_iter_ns.len();
        assert!(n > 0, "no samples");
        let median_ns = if n.is_multiple_of(2) {
            (per_iter_ns[n / 2 - 1] + per_iter_ns[n / 2]) / 2
        } else {
            per_iter_ns[n / 2]
        };
        let p95_ns = per_iter_ns[(n * 95).div_ceil(100).clamp(1, n) - 1];
        let mean_ns = per_iter_ns.iter().sum::<u64>() / n as u64;
        BenchResult {
            name,
            samples: n as u32,
            inner_iters,
            median_ns,
            p95_ns,
            min_ns: per_iter_ns[0],
            max_ns: per_iter_ns[n - 1],
            mean_ns,
            throughput_bytes,
        }
    }

    /// Derived MB/s at the median, when a byte throughput was declared.
    pub fn mbps(&self) -> Option<f64> {
        let bytes = self.throughput_bytes?;
        if self.median_ns == 0 {
            return None;
        }
        Some(bytes as f64 / (self.median_ns as f64 / 1e9) / 1e6)
    }
}

fn human_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A bench binary's collection of measurements; writes one
/// `BENCH_<name>.json` on [`finish`](Harness::finish).
pub struct Harness {
    name: String,
    results: Vec<BenchResult>,
    metrics: Vec<(String, f64)>,
    threads: Option<usize>,
}

impl Harness {
    /// Creates a harness named after the bench binary (`dataplane`,
    /// `figures`, ...).
    pub fn new(name: impl Into<String>) -> Self {
        Harness {
            name: name.into(),
            results: Vec::new(),
            metrics: Vec::new(),
            threads: None,
        }
    }

    /// Records the worker-thread count the benches ran with; lands as a
    /// top-level `"threads"` field in `BENCH_<name>.json` so timing
    /// trajectories are comparable run-to-run.
    pub fn threads(&mut self, threads: usize) {
        self.threads = Some(threads);
    }

    /// Attaches a named metric to the run; all metrics land in a
    /// `"metrics"` object in `BENCH_<name>.json`. Use this to embed a
    /// snapshot of workload counters (cache hits, copies, ...) next to
    /// the timings they explain.
    pub fn metric(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push((name.into(), value));
    }

    /// Opens a named group; benches register as `group/function`.
    pub fn group(&mut self, name: impl Into<String>) -> Group<'_> {
        Group {
            harness: self,
            name: name.into(),
            samples: 30,
            warmup: 3,
            throughput_bytes: None,
        }
    }

    /// Prints the summary table and writes `BENCH_<name>.json`. Returns
    /// the results for programmatic use.
    pub fn finish(self) -> Vec<BenchResult> {
        let dir = json_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: could not create {}: {e}", dir.display());
        }
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let json = render_json(&self.name, self.threads, &self.results, &self.metrics);
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
        self.results
    }
}

/// Where the JSON lands: `BENCH_JSON_DIR`, else the workspace root (two
/// levels above the bench crate's manifest), else the working directory.
fn json_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BENCH_JSON_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let root = PathBuf::from(manifest).join("../..");
        if root.join("Cargo.toml").exists() {
            return root;
        }
    }
    PathBuf::from(".")
}

fn render_json(
    harness: &str,
    threads: Option<usize>,
    results: &[BenchResult],
    metrics: &[(String, f64)],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"harness\": \"{harness}\",\n"));
    out.push_str("  \"schema\": \"check-bench-v1\",\n");
    if let Some(threads) = threads {
        out.push_str(&format!("  \"threads\": {threads},\n"));
    }
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"samples\": {}, \"inner_iters\": {}, \
             \"median_ns\": {}, \"p95_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
             \"mean_ns\": {}",
            r.name, r.samples, r.inner_iters, r.median_ns, r.p95_ns, r.min_ns, r.max_ns,
            r.mean_ns
        ));
        if let Some(b) = r.throughput_bytes {
            out.push_str(&format!(", \"throughput_bytes\": {b}"));
            if let Some(mbps) = r.mbps() {
                out.push_str(&format!(", \"mbps\": {mbps:.2}"));
            }
        }
        out.push('}');
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]");
    if !metrics.is_empty() {
        out.push_str(",\n  \"metrics\": {\n");
        for (i, (name, value)) in metrics.iter().enumerate() {
            let rendered = if value.fract() == 0.0 && value.abs() < 1e15 {
                format!("{}", *value as i64)
            } else {
                format!("{value}")
            };
            out.push_str(&format!("    \"{name}\": {rendered}"));
            out.push_str(if i + 1 < metrics.len() { ",\n" } else { "\n" });
        }
        out.push_str("  }");
    }
    out.push_str("\n}\n");
    out
}

/// A named group of benches sharing sample-count and throughput settings.
pub struct Group<'a> {
    harness: &'a mut Harness,
    name: String,
    samples: u32,
    warmup: u32,
    throughput_bytes: Option<u64>,
}

impl Group<'_> {
    /// Sets the number of timed samples per bench (criterion's
    /// `sample_size`). `BENCH_SAMPLES` overrides globally.
    pub fn sample_size(&mut self, samples: u32) -> &mut Self {
        self.samples = samples.max(2);
        self
    }

    /// Declares bytes processed per iteration for subsequent benches in
    /// this group (criterion's `Throughput::Bytes`).
    pub fn throughput_bytes(&mut self, bytes: u64) -> &mut Self {
        self.throughput_bytes = Some(bytes);
        self
    }

    fn effective_samples(&self) -> u32 {
        std::env::var("BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .map_or(self.samples, |n: u32| n.max(2))
    }

    /// Times `routine` (criterion's `bench_function` + `iter`): the whole
    /// call is the measured iteration.
    pub fn bench<T>(&mut self, name: &str, mut routine: impl FnMut() -> T) {
        // Calibrate the batch size on untimed runs (doubles as warmup).
        let mut inner = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as u64;
            if ns >= TARGET_SAMPLE_NS || inner >= MAX_INNER_ITERS {
                break;
            }
            inner *= 2;
        }
        for _ in 0..self.warmup {
            for _ in 0..inner {
                black_box(routine());
            }
        }
        let samples = self.effective_samples();
        let mut per_iter = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(routine());
            }
            per_iter.push((start.elapsed().as_nanos() as u64 / inner).max(1));
        }
        self.record(name, inner, per_iter);
    }

    /// Times `routine` over inputs built by `setup`, excluding setup time
    /// (criterion's `iter_batched`).
    pub fn bench_batched<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        // Calibrate on one untimed run.
        let probe = setup();
        let start = Instant::now();
        black_box(routine(probe));
        let probe_ns = (start.elapsed().as_nanos() as u64).max(1);
        let inner = (TARGET_SAMPLE_NS / probe_ns).clamp(1, 256);
        for _ in 0..self.warmup {
            black_box(routine(setup()));
        }
        let samples = self.effective_samples();
        let mut per_iter = Vec::with_capacity(samples as usize);
        for _ in 0..samples {
            let inputs: Vec<S> = (0..inner).map(|_| setup()).collect();
            let start = Instant::now();
            for s in inputs {
                black_box(routine(s));
            }
            per_iter.push((start.elapsed().as_nanos() as u64 / inner).max(1));
        }
        self.record(name, inner, per_iter);
    }

    fn record(&mut self, name: &str, inner: u64, per_iter: Vec<u64>) {
        let full = format!("{}/{}", self.name, name);
        let r = BenchResult::from_samples(full, inner, per_iter, self.throughput_bytes);
        let tput = r
            .mbps()
            .map(|m| format!("  {m:.1} MB/s"))
            .unwrap_or_default();
        println!(
            "bench {:<40} median {:>10}  p95 {:>10}{}",
            r.name,
            human_ns(r.median_ns),
            human_ns(r.p95_ns),
            tput
        );
        self.harness.results.push(r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_over_known_samples() {
        let r = BenchResult::from_samples("g/f".into(), 1, (1..=100).collect(), Some(1_000));
        assert_eq!(r.median_ns, 50); // (50 + 51) / 2
        assert_eq!(r.p95_ns, 95);
        assert_eq!(r.min_ns, 1);
        assert_eq!(r.max_ns, 100);
        assert_eq!(r.mean_ns, 50);
        let mbps = r.mbps().expect("throughput set");
        assert!((mbps - 20_000.0).abs() < 1e-6, "1000 B / 50 ns = 20000 MB/s, got {mbps}");
    }

    #[test]
    fn bench_measures_and_records() {
        let mut h = Harness::new("selftest");
        let mut g = h.group("unit");
        g.sample_size(3);
        g.bench("spin", || {
            let mut x = 0u64;
            for i in 0..100 {
                x = x.wrapping_add(black_box(i));
            }
            x
        });
        g.bench_batched("batched", || vec![1u8; 64], |v| v.iter().sum::<u8>());
        assert_eq!(h.results.len(), 2);
        assert!(h.results.iter().all(|r| r.median_ns >= 1));
        assert_eq!(h.results[0].name, "unit/spin");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = BenchResult::from_samples("a/b".into(), 2, vec![10, 20, 30], None);
        let json = render_json("t", None, &[r], &[]);
        assert!(json.contains("\"name\": \"a/b\""));
        assert!(json.contains("\"median_ns\": 20"));
        assert!(!json.contains("\"metrics\""));
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn json_embeds_metrics() {
        let r = BenchResult::from_samples("a/b".into(), 2, vec![10, 20, 30], None);
        let metrics = vec![
            ("cache.hits".to_string(), 42.0),
            ("throughput_mbs".to_string(), 12.5),
        ];
        let json = render_json("t", Some(4), &[r], &metrics);
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"metrics\": {"));
        assert!(json.contains("\"cache.hits\": 42"));
        assert!(json.contains("\"throughput_mbs\": 12.5"));
        assert!(json.ends_with("}\n"));
    }
}
