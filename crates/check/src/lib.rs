//! `check` — the repo's self-contained correctness tooling: a
//! property-testing framework and a bench harness with **zero external
//! dependencies**, so `cargo build && cargo test` work with an empty cargo
//! registry (the offline environments this reproduction targets cannot
//! fetch proptest or criterion).
//!
//! # Property testing
//!
//! Declare properties with [`property!`]; inputs come from the generator
//! combinators in [`gen`]:
//!
//! ```
//! use check::gen::*;
//! use check::{property, prop_assert, prop_assert_eq};
//!
//! property! {
//!     #![cases(64)]
//!     fn addition_commutes(a in any_u32(), b in any_u32()) {
//!         prop_assert_eq!(u64::from(a) + u64::from(b),
//!                         u64::from(b) + u64::from(a));
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! Generation is deterministic: every case derives from a seed fed to the
//! simulator's own `sim::rng::SplitMix64`, and generators draw *choices*
//! (bounded integers) from a recorded stream. On failure the runner
//! greedily shrinks the choice stream — deleting blocks (dropping ops,
//! shortening vectors) and binary-minimizing each choice — and panics with
//! the minimal counterexample plus a `CHECK_SEED=0x…` line. Re-running the
//! test with that variable regenerates the same case and, because shrinking
//! is deterministic too, the same minimal counterexample. `CHECK_CASES=n`
//! overrides case counts (e.g. for a long soak).
//!
//! # Benchmarking
//!
//! [`bench::Harness`] times functions with warmup and calibrated batching,
//! reports median/p95, and writes `BENCH_<name>.json` at the workspace
//! root for trajectory tracking across runs. See the `ncache-bench` crate
//! for the per-table/per-figure benches built on it.

pub mod bench;
pub mod gen;
#[macro_use]
mod macros;
pub mod runner;
pub mod source;

pub use runner::{check_property, run_property, Config, Failed, FailureReport, PropResult};
pub use source::Source;
