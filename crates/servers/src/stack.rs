//! Framing helpers: the network stack each node runs.
//!
//! Senders push UDP/TCP + IPv4 + Ethernet headers onto a [`NetBuf`];
//! receivers take delivery ([`deliver`]) and pull the headers back off.
//! Delivery models NIC DMA: the frame lands in the receiver's memory
//! without CPU copies, and — crucially for NCache — the payload segments
//! keep their shared storage, so data cached straight off the wire is the
//! same memory that later goes back out.

use netbuf::{CopyLedger, NetBuf, Segment};
use proto::ethernet::{EthernetHeader, MacAddr};
use proto::ipv4::{Ipv4Addr, Ipv4Header, PROTO_TCP, PROTO_UDP};
use proto::tcp::{TcpHeader, HEADER_LEN as TCP_LEN};
use proto::udp::{UdpHeader, HEADER_LEN as UDP_LEN};
use proto::{ethernet, ipv4, DecodeError};

/// Addressing of a received UDP datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpInfo {
    /// Sender address.
    pub src: Ipv4Addr,
    /// Receiver address.
    pub dst: Ipv4Addr,
    /// Sender port.
    pub src_port: u16,
    /// Receiver port.
    pub dst_port: u16,
}

/// Addressing of a received TCP segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpInfo {
    /// Sender address.
    pub src: Ipv4Addr,
    /// Receiver address.
    pub dst: Ipv4Addr,
    /// Sender port.
    pub src_port: u16,
    /// Receiver port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
}

/// Wraps a UDP datagram: pushes UDP, IPv4 and Ethernet headers.
pub fn udp_encap(
    buf: &mut NetBuf,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    ident: u16,
) {
    let payload_len = buf.payload_len();
    buf.push_header(&UdpHeader::new(src_port, dst_port, payload_len).encode());
    buf.push_header(&Ipv4Header::new(src, dst, PROTO_UDP, payload_len + UDP_LEN, ident).encode());
    buf.push_header(
        &EthernetHeader::ipv4(mac_of(src), mac_of(dst)).encode(),
    );
}

/// Unwraps a delivered UDP datagram: pulls Ethernet, IPv4 and UDP headers
/// off the payload.
///
/// # Errors
///
/// Any header that fails to parse or verify.
pub fn udp_decap(buf: &mut NetBuf) -> Result<UdpInfo, DecodeError> {
    let eth = EthernetHeader::decode(&buf.pull(ethernet::HEADER_LEN))?;
    if eth.ethertype != ethernet::ETHERTYPE_IPV4 {
        return Err(DecodeError::BadField("ethertype"));
    }
    let ip = Ipv4Header::decode(&buf.pull(ipv4::HEADER_LEN))?;
    if ip.protocol != PROTO_UDP {
        return Err(DecodeError::BadField("ip protocol"));
    }
    let udp = UdpHeader::decode(&buf.pull(UDP_LEN))?;
    Ok(UdpInfo {
        src: ip.src,
        dst: ip.dst,
        src_port: udp.src_port,
        dst_port: udp.dst_port,
    })
}

/// Wraps a TCP segment: pushes TCP, IPv4 and Ethernet headers.
pub fn tcp_encap(
    buf: &mut NetBuf,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ident: u16,
) {
    let payload_len = buf.payload_len();
    buf.push_header(&TcpHeader::data(src_port, dst_port, seq).encode());
    buf.push_header(&Ipv4Header::new(src, dst, PROTO_TCP, payload_len + TCP_LEN, ident).encode());
    buf.push_header(
        &EthernetHeader::ipv4(mac_of(src), mac_of(dst)).encode(),
    );
}

/// Unwraps a delivered TCP segment.
///
/// # Errors
///
/// Any header that fails to parse or verify.
pub fn tcp_decap(buf: &mut NetBuf) -> Result<TcpInfo, DecodeError> {
    let eth = EthernetHeader::decode(&buf.pull(ethernet::HEADER_LEN))?;
    if eth.ethertype != ethernet::ETHERTYPE_IPV4 {
        return Err(DecodeError::BadField("ethertype"));
    }
    let ip = Ipv4Header::decode(&buf.pull(ipv4::HEADER_LEN))?;
    if ip.protocol != PROTO_TCP {
        return Err(DecodeError::BadField("ip protocol"));
    }
    let tcp = TcpHeader::decode(&buf.pull(TCP_LEN))?;
    Ok(TcpInfo {
        src: ip.src,
        dst: ip.dst,
        src_port: tcp.src_port,
        dst_port: tcp.dst_port,
        seq: tcp.seq,
    })
}

/// Delivers a transmitted buffer into a receiving node's memory: the
/// sender's built headers become the leading payload bytes of a fresh
/// buffer charged to the *receiver's* ledger. Payload segments keep their
/// shared storage; nothing is physically copied (NIC DMA).
pub fn deliver(sent: &NetBuf, receiver: &CopyLedger) -> NetBuf {
    let mut rx = NetBuf::new(receiver);
    if sent.header_len() > 0 {
        rx.append_segment(Segment::from_vec(sent.header().to_vec()));
    }
    for seg in sent.segments() {
        rx.append_segment(seg.clone());
    }
    rx
}

/// Delivers a transmitted buffer through a faulty link.
///
/// Draws one fault decision from `plan` for `link` and applies it to the
/// delivery:
///
/// * `Drop` — nothing arrives (`None`).
/// * `Corrupt` — a bit flips in the *header-copy* region of the delivered
///   frame (delivery copies headers into receiver memory; shared payload
///   storage is never mutated). Headerless frames corrupt a private copy
///   of their first segment instead. Either way the damage is confined to
///   this delivery and is protocol-detectable.
/// * `Truncate` — only a prefix of the frame arrives; shared segments are
///   clipped with [`Segment::slice`], again leaving storage intact.
/// * `Duplicate` / `Reorder` / `Delay` — the frame arrives intact; the
///   kind is returned so the *caller* (who owns both ends of the
///   synchronous exchange) can replay, resequence, or time out.
///
/// Returns the delivered frame (if any) and the fault applied (if any).
/// A faultless draw is exactly [`deliver`].
pub fn deliver_faulty(
    sent: &NetBuf,
    receiver: &CopyLedger,
    plan: &mut sim::FaultPlan,
    link: sim::FaultLink,
) -> (Option<NetBuf>, Option<sim::FaultKind>) {
    use sim::FaultKind;
    let kind = plan.draw(link);
    match kind {
        Some(FaultKind::Drop) => (None, kind),
        Some(FaultKind::Corrupt { pos, bit }) => {
            let mut rx = NetBuf::new(receiver);
            let mask = 1u8 << (bit & 7);
            if sent.header_len() > 0 {
                let mut hdr = sent.header().to_vec();
                let i = (pos % hdr.len() as u64) as usize;
                hdr[i] ^= mask;
                rx.append_segment(Segment::from_vec(hdr));
                for seg in sent.segments() {
                    rx.append_segment(seg.clone());
                }
            } else {
                let mut first = true;
                for seg in sent.segments() {
                    if first && !seg.is_empty() {
                        let mut bytes = seg.as_slice().to_vec();
                        let i = (pos % bytes.len() as u64) as usize;
                        bytes[i] ^= mask;
                        rx.append_segment(Segment::from_vec(bytes));
                    } else {
                        rx.append_segment(seg.clone());
                    }
                    first = false;
                }
            }
            (Some(rx), kind)
        }
        Some(FaultKind::Truncate { keep_ppm }) => {
            let total = sent.total_len() as u64;
            let mut keep = (total * u64::from(keep_ppm) / sim::fault::PPM) as usize;
            let mut rx = NetBuf::new(receiver);
            if sent.header_len() > 0 {
                let take = keep.min(sent.header_len());
                if take > 0 {
                    rx.append_segment(Segment::from_vec(sent.header()[..take].to_vec()));
                }
                keep -= take;
            }
            for seg in sent.segments() {
                if keep == 0 {
                    break;
                }
                let take = keep.min(seg.len());
                rx.append_segment(if take == seg.len() {
                    seg.clone()
                } else {
                    seg.slice(0, take)
                });
                keep -= take;
            }
            (Some(rx), kind)
        }
        // Delivered intact; the semantics (replay, resequencing, timeout)
        // live with the caller, who owns both ends of the exchange.
        Some(FaultKind::Duplicate) | Some(FaultKind::Reorder) | Some(FaultKind::Delay) => {
            (Some(deliver(sent, receiver)), kind)
        }
        None => (Some(deliver(sent, receiver)), None),
    }
}

/// The testbed's MAC convention: derived from the last IPv4 octet.
pub fn mac_of(ip: Ipv4Addr) -> MacAddr {
    MacAddr::from_node_id(ip.0[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::from_node_id(1), Ipv4Addr::from_node_id(2))
    }

    #[test]
    fn udp_round_trip_preserves_payload() {
        let (src, dst) = addrs();
        let tx_ledger = CopyLedger::new();
        let rx_ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&tx_ledger);
        pkt.append_segment(Segment::from_vec(vec![9u8; 500]));
        udp_encap(&mut pkt, src, dst, 3000, 2049, 7);

        let mut rx = deliver(&pkt, &rx_ledger);
        let info = udp_decap(&mut rx).expect("valid frame");
        assert_eq!(info.src, src);
        assert_eq!(info.dst, dst);
        assert_eq!(info.src_port, 3000);
        assert_eq!(info.dst_port, 2049);
        assert_eq!(rx.payload_len(), 500);
        assert_eq!(rx.copy_payload_to_vec(), vec![9u8; 500]);
    }

    #[test]
    fn delivery_is_zero_copy_and_rehomed() {
        let (src, dst) = addrs();
        let tx_ledger = CopyLedger::new();
        let rx_ledger = CopyLedger::new();
        let payload = Segment::from_vec(vec![7u8; 100]);
        let mut pkt = NetBuf::new(&tx_ledger);
        pkt.append_segment(payload.clone());
        udp_encap(&mut pkt, src, dst, 1, 2, 0);

        let before_rx = rx_ledger.snapshot();
        let rx = deliver(&pkt, &rx_ledger);
        assert_eq!(
            rx_ledger.snapshot().delta_since(&before_rx).payload_copies,
            0,
            "delivery is DMA"
        );
        // The payload segment is the same storage end to end.
        assert!(rx
            .segments()
            .any(|s| s.same_storage(&payload)));
        assert!(rx.ledger().same_ledger(&rx_ledger));
    }

    #[test]
    fn tcp_round_trip() {
        let (src, dst) = addrs();
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(Segment::from_vec(b"GET / HTTP/1.0\r\n\r\n".to_vec()));
        tcp_encap(&mut pkt, src, dst, 5000, 80, 1234, 1);
        let mut rx = deliver(&pkt, &ledger);
        let info = tcp_decap(&mut rx).expect("valid frame");
        assert_eq!(info.seq, 1234);
        assert_eq!(info.dst_port, 80);
        assert_eq!(rx.copy_payload_to_vec(), b"GET / HTTP/1.0\r\n\r\n");
    }

    #[test]
    fn decap_rejects_wrong_protocol() {
        let (src, dst) = addrs();
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(Segment::from_vec(vec![0u8; 10]));
        udp_encap(&mut pkt, src, dst, 1, 2, 0);
        let mut rx = deliver(&pkt, &ledger);
        assert!(tcp_decap(&mut rx).is_err(), "UDP frame is not TCP");
    }

    #[test]
    fn faulty_delivery_at_rate_zero_is_plain_delivery() {
        let ledger = CopyLedger::new();
        let mut plan = sim::FaultPlan::new(&sim::FaultSpec::default(), 42);
        let payload = Segment::from_vec(vec![5u8; 64]);
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(payload.clone());
        pkt.push_header(&[1, 2, 3, 4]);
        for _ in 0..50 {
            let (rx, kind) = deliver_faulty(&pkt, &ledger, &mut plan, sim::FaultLink::ClientServer);
            let rx = rx.expect("nothing drops at rate zero");
            assert_eq!(kind, None);
            assert!(rx.segments().any(|s| s.same_storage(&payload)));
            assert_eq!(rx.total_len(), pkt.total_len());
        }
    }

    #[test]
    fn corruption_never_touches_shared_payload_storage() {
        let ledger = CopyLedger::new();
        let spec = sim::FaultSpec {
            corrupt: 1.0,
            ..sim::FaultSpec::default()
        };
        let mut plan = sim::FaultPlan::new(&spec, 7);
        let payload = Segment::from_vec(vec![5u8; 256]);
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(payload.clone());
        pkt.push_header(&[0u8; 16]);
        let mut corrupted = 0;
        for _ in 0..32 {
            let (rx, kind) = deliver_faulty(&pkt, &ledger, &mut plan, sim::FaultLink::ClientServer);
            let rx = rx.expect("corruption still delivers");
            if matches!(kind, Some(sim::FaultKind::Corrupt { .. })) {
                corrupted += 1;
                // The flip landed in the header-copy region, not the body.
                let bytes = rx.copy_payload_to_vec();
                assert_ne!(&bytes[..16], &[0u8; 16], "header bit flipped");
                assert_eq!(&bytes[16..], &[5u8; 256][..], "payload intact");
            }
            // The shared storage is pristine either way.
            assert_eq!(payload.as_slice(), &[5u8; 256][..]);
        }
        assert!(corrupted > 0, "rate-1.0 corruption fired");
    }

    #[test]
    fn truncation_clips_without_mutating_storage() {
        let ledger = CopyLedger::new();
        let spec = sim::FaultSpec {
            truncate: 1.0,
            ..sim::FaultSpec::default()
        };
        let mut plan = sim::FaultPlan::new(&spec, 9);
        let payload = Segment::from_vec(vec![8u8; 100]);
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(payload.clone());
        pkt.push_header(&[1u8; 10]);
        let mut truncated = 0;
        for _ in 0..32 {
            let (rx, kind) = deliver_faulty(&pkt, &ledger, &mut plan, sim::FaultLink::InitiatorTarget);
            let rx = rx.expect("truncation still delivers");
            if matches!(kind, Some(sim::FaultKind::Truncate { .. })) {
                truncated += 1;
                assert!(rx.total_len() < pkt.total_len());
            }
            assert_eq!(payload.len(), 100, "shared storage untouched");
        }
        assert!(truncated > 0, "rate-1.0 truncation fired");
    }

    #[test]
    fn drops_deliver_nothing_and_same_seed_replays_identically() {
        let ledger = CopyLedger::new();
        let spec = sim::FaultSpec::loss_only(0.5);
        let mut a = sim::FaultPlan::new(&spec, 1234);
        let mut b = sim::FaultPlan::new(&spec, 1234);
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(Segment::from_vec(vec![3u8; 32]));
        pkt.push_header(&[9u8; 8]);
        let mut dropped = 0;
        for _ in 0..64 {
            let (rx_a, kind_a) = deliver_faulty(&pkt, &ledger, &mut a, sim::FaultLink::ClientServer);
            let (rx_b, kind_b) = deliver_faulty(&pkt, &ledger, &mut b, sim::FaultLink::ClientServer);
            assert_eq!(kind_a, kind_b, "same seed, same schedule");
            assert_eq!(rx_a.is_none(), rx_b.is_none());
            if kind_a == Some(sim::FaultKind::Drop) {
                assert!(rx_a.is_none());
                dropped += 1;
            }
        }
        assert!(dropped > 0, "50% loss fired");
    }

    #[test]
    fn headers_charged_as_header_bytes_not_copies() {
        let (src, dst) = addrs();
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(Segment::from_vec(vec![0u8; 100]));
        let before = ledger.snapshot();
        udp_encap(&mut pkt, src, dst, 1, 2, 0);
        let d = ledger.snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 0);
        assert_eq!(d.header_bytes, 14 + 20 + 8);
    }
}
