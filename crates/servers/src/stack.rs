//! Framing helpers: the network stack each node runs.
//!
//! Senders push UDP/TCP + IPv4 + Ethernet headers onto a [`NetBuf`];
//! receivers take delivery ([`deliver`]) and pull the headers back off.
//! Delivery models NIC DMA: the frame lands in the receiver's memory
//! without CPU copies, and — crucially for NCache — the payload segments
//! keep their shared storage, so data cached straight off the wire is the
//! same memory that later goes back out.

use netbuf::{CopyLedger, NetBuf, Segment};
use proto::ethernet::{EthernetHeader, MacAddr};
use proto::ipv4::{Ipv4Addr, Ipv4Header, PROTO_TCP, PROTO_UDP};
use proto::tcp::{TcpHeader, HEADER_LEN as TCP_LEN};
use proto::udp::{UdpHeader, HEADER_LEN as UDP_LEN};
use proto::{ethernet, ipv4, DecodeError};

/// Addressing of a received UDP datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UdpInfo {
    /// Sender address.
    pub src: Ipv4Addr,
    /// Receiver address.
    pub dst: Ipv4Addr,
    /// Sender port.
    pub src_port: u16,
    /// Receiver port.
    pub dst_port: u16,
}

/// Addressing of a received TCP segment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TcpInfo {
    /// Sender address.
    pub src: Ipv4Addr,
    /// Receiver address.
    pub dst: Ipv4Addr,
    /// Sender port.
    pub src_port: u16,
    /// Receiver port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
}

/// Wraps a UDP datagram: pushes UDP, IPv4 and Ethernet headers.
pub fn udp_encap(
    buf: &mut NetBuf,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    ident: u16,
) {
    let payload_len = buf.payload_len();
    buf.push_header(&UdpHeader::new(src_port, dst_port, payload_len).encode());
    buf.push_header(&Ipv4Header::new(src, dst, PROTO_UDP, payload_len + UDP_LEN, ident).encode());
    buf.push_header(
        &EthernetHeader::ipv4(mac_of(src), mac_of(dst)).encode(),
    );
}

/// Unwraps a delivered UDP datagram: pulls Ethernet, IPv4 and UDP headers
/// off the payload.
///
/// # Errors
///
/// Any header that fails to parse or verify.
pub fn udp_decap(buf: &mut NetBuf) -> Result<UdpInfo, DecodeError> {
    let eth = EthernetHeader::decode(&buf.pull(ethernet::HEADER_LEN))?;
    if eth.ethertype != ethernet::ETHERTYPE_IPV4 {
        return Err(DecodeError::BadField("ethertype"));
    }
    let ip = Ipv4Header::decode(&buf.pull(ipv4::HEADER_LEN))?;
    if ip.protocol != PROTO_UDP {
        return Err(DecodeError::BadField("ip protocol"));
    }
    let udp = UdpHeader::decode(&buf.pull(UDP_LEN))?;
    Ok(UdpInfo {
        src: ip.src,
        dst: ip.dst,
        src_port: udp.src_port,
        dst_port: udp.dst_port,
    })
}

/// Wraps a TCP segment: pushes TCP, IPv4 and Ethernet headers.
pub fn tcp_encap(
    buf: &mut NetBuf,
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    seq: u32,
    ident: u16,
) {
    let payload_len = buf.payload_len();
    buf.push_header(&TcpHeader::data(src_port, dst_port, seq).encode());
    buf.push_header(&Ipv4Header::new(src, dst, PROTO_TCP, payload_len + TCP_LEN, ident).encode());
    buf.push_header(
        &EthernetHeader::ipv4(mac_of(src), mac_of(dst)).encode(),
    );
}

/// Unwraps a delivered TCP segment.
///
/// # Errors
///
/// Any header that fails to parse or verify.
pub fn tcp_decap(buf: &mut NetBuf) -> Result<TcpInfo, DecodeError> {
    let eth = EthernetHeader::decode(&buf.pull(ethernet::HEADER_LEN))?;
    if eth.ethertype != ethernet::ETHERTYPE_IPV4 {
        return Err(DecodeError::BadField("ethertype"));
    }
    let ip = Ipv4Header::decode(&buf.pull(ipv4::HEADER_LEN))?;
    if ip.protocol != PROTO_TCP {
        return Err(DecodeError::BadField("ip protocol"));
    }
    let tcp = TcpHeader::decode(&buf.pull(TCP_LEN))?;
    Ok(TcpInfo {
        src: ip.src,
        dst: ip.dst,
        src_port: tcp.src_port,
        dst_port: tcp.dst_port,
        seq: tcp.seq,
    })
}

/// Delivers a transmitted buffer into a receiving node's memory: the
/// sender's built headers become the leading payload bytes of a fresh
/// buffer charged to the *receiver's* ledger. Payload segments keep their
/// shared storage; nothing is physically copied (NIC DMA).
pub fn deliver(sent: &NetBuf, receiver: &CopyLedger) -> NetBuf {
    let mut rx = NetBuf::new(receiver);
    if sent.header_len() > 0 {
        rx.append_segment(Segment::from_vec(sent.header().to_vec()));
    }
    for seg in sent.segments() {
        rx.append_segment(seg.clone());
    }
    rx
}

/// The testbed's MAC convention: derived from the last IPv4 octet.
pub fn mac_of(ip: Ipv4Addr) -> MacAddr {
    MacAddr::from_node_id(ip.0[3])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::from_node_id(1), Ipv4Addr::from_node_id(2))
    }

    #[test]
    fn udp_round_trip_preserves_payload() {
        let (src, dst) = addrs();
        let tx_ledger = CopyLedger::new();
        let rx_ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&tx_ledger);
        pkt.append_segment(Segment::from_vec(vec![9u8; 500]));
        udp_encap(&mut pkt, src, dst, 3000, 2049, 7);

        let mut rx = deliver(&pkt, &rx_ledger);
        let info = udp_decap(&mut rx).expect("valid frame");
        assert_eq!(info.src, src);
        assert_eq!(info.dst, dst);
        assert_eq!(info.src_port, 3000);
        assert_eq!(info.dst_port, 2049);
        assert_eq!(rx.payload_len(), 500);
        assert_eq!(rx.copy_payload_to_vec(), vec![9u8; 500]);
    }

    #[test]
    fn delivery_is_zero_copy_and_rehomed() {
        let (src, dst) = addrs();
        let tx_ledger = CopyLedger::new();
        let rx_ledger = CopyLedger::new();
        let payload = Segment::from_vec(vec![7u8; 100]);
        let mut pkt = NetBuf::new(&tx_ledger);
        pkt.append_segment(payload.clone());
        udp_encap(&mut pkt, src, dst, 1, 2, 0);

        let before_rx = rx_ledger.snapshot();
        let rx = deliver(&pkt, &rx_ledger);
        assert_eq!(
            rx_ledger.snapshot().delta_since(&before_rx).payload_copies,
            0,
            "delivery is DMA"
        );
        // The payload segment is the same storage end to end.
        assert!(rx
            .segments()
            .any(|s| s.same_storage(&payload)));
        assert!(rx.ledger().same_ledger(&rx_ledger));
    }

    #[test]
    fn tcp_round_trip() {
        let (src, dst) = addrs();
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(Segment::from_vec(b"GET / HTTP/1.0\r\n\r\n".to_vec()));
        tcp_encap(&mut pkt, src, dst, 5000, 80, 1234, 1);
        let mut rx = deliver(&pkt, &ledger);
        let info = tcp_decap(&mut rx).expect("valid frame");
        assert_eq!(info.seq, 1234);
        assert_eq!(info.dst_port, 80);
        assert_eq!(rx.copy_payload_to_vec(), b"GET / HTTP/1.0\r\n\r\n");
    }

    #[test]
    fn decap_rejects_wrong_protocol() {
        let (src, dst) = addrs();
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(Segment::from_vec(vec![0u8; 10]));
        udp_encap(&mut pkt, src, dst, 1, 2, 0);
        let mut rx = deliver(&pkt, &ledger);
        assert!(tcp_decap(&mut rx).is_err(), "UDP frame is not TCP");
    }

    #[test]
    fn headers_charged_as_header_bytes_not_copies() {
        let (src, dst) = addrs();
        let ledger = CopyLedger::new();
        let mut pkt = NetBuf::new(&ledger);
        pkt.append_segment(Segment::from_vec(vec![0u8; 100]));
        let before = ledger.snapshot();
        udp_encap(&mut pkt, src, dst, 1, 2, 0);
        let d = ledger.snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 0);
        assert_eq!(d.header_bytes, 14 + 20 + 8);
    }
}
