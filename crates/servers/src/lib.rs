#![warn(missing_docs)]
//! The pass-through servers: iSCSI target and initiator, the three NFS
//! server configurations, and the three kHTTPd configurations.
//!
//! The paper evaluates each server in three builds (§5.1):
//!
//! * **original** — the stock copying data path;
//! * **NCache** — the network-centric cache module inserted at the driver
//!   boundary, logical copying everywhere above it;
//! * **baseline** — the "ideal" zero-copy bound: regular-data copies simply
//!   removed, so replies carry junk payload ("the packets that are actually
//!   sent back to clients contain only random bits"), which is harmless
//!   because the measurement clients never interpret payloads.
//!
//! This crate implements all six servers over the `simfs` file system and
//! the `proto` codecs, with every byte movement charged to per-node
//! [`netbuf::CopyLedger`]s. The servers are *functionally correct*: under
//! the original and NCache configurations a client read returns exactly
//! the stored bytes (integration tests verify this end to end, including
//! through substitution and remapping); under baseline it deliberately
//! does not, matching the paper.
//!
//! Module map:
//!
//! * [`target`] — the iSCSI storage server (disk image + PDU handling).
//! * [`initiator`] — the iSCSI initiator, a [`simfs::BlockStore`] whose
//!   NCache build hosts hook points 1 and 3 of the module.
//! * [`nfs`] — the in-kernel NFS server (three builds) and a test client.
//! * [`khttpd`] — the in-kernel static web server (three builds).
//! * [`stack`] — Ethernet/IP/UDP/TCP framing helpers shared by everyone.
//! * [`hooks`] — the Table 1 modification-footprint inventory.
//! * [`control`] — the overload control plane: deterministic admission
//!   gates, dirty-cache backpressure, and the client retry policy.

pub mod control;
pub mod hooks;
pub mod initiator;
pub mod khttpd;
pub mod mode;
pub mod nfs;
pub mod stack;
pub mod target;
pub mod util;

pub use control::{ControlConfig, ControlStats, RetryPolicy};
pub use initiator::IscsiInitiator;
pub use khttpd::{HttpClient, KhttpdServer};
pub use mode::ServerMode;
pub use nfs::{NfsClient, NfsServer};
pub use target::IscsiTarget;
