//! The in-kernel NFS server, in the paper's three builds, plus a test
//! client.
//!
//! The server is transport-agnostic: it consumes a delivered RPC message
//! (UDP payload, headers already pulled by [`crate::stack`]) and produces
//! the reply message. Per §3.3, only two packet kinds touch the
//! network-centric cache: incoming **WRITE request payloads** (cached under
//! FHO keys) and outgoing **READ reply payloads** (substituted at the
//! driver hook). Everything else — GETATTR, LOOKUP, READDIR, and all reply
//! headers — travels the ordinary copying path in every build.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use ncache::NcacheModule;
use netbuf::key::{Fho, FileHandle, KeyStamp};
use netbuf::{CopyLedger, NetBuf};
use proto::nfs::{
    self, CreateArgs, Fattr, FileType as NfsFileType, GetattrArgs, LookupArgs, LookupReply,
    ReadArgs, ReadReplyHeader, ReaddirArgs, ReaddirReply, RemoveReply, WriteArgsHeader,
    WriteReply, NFSERR_IO, NFSERR_JUKEBOX, NFSERR_NOENT, NFS_OK,
};
use proto::rpc::{RpcCall, RpcReply, CALL_LEN};
use simfs::inode::FileType;
use simfs::{Filesystem, FsError, Ino};

use crate::control::{ControlConfig, ControlPlane, ControlStats, Decision, OpClass, Pressure};
use crate::initiator::IscsiInitiator;
use crate::mode::ServerMode;
use crate::util::split_segments;

const BLOCK: usize = simfs::BLOCK_SIZE;

/// NFS server counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NfsServerStats {
    /// Total RPC requests served.
    pub requests: u64,
    /// READ requests.
    pub reads: u64,
    /// WRITE requests.
    pub writes: u64,
    /// Metadata requests (GETATTR, LOOKUP, ...).
    pub metadata_ops: u64,
    /// Payload bytes returned by READs.
    pub bytes_read: u64,
    /// Payload bytes accepted by WRITEs.
    pub bytes_written: u64,
    /// Requests that failed (error status replies).
    pub errors: u64,
    /// Retransmissions answered from the duplicate-request cache instead
    /// of being re-executed.
    pub drc_hits: u64,
    /// Replies inserted into the duplicate-request cache.
    pub drc_inserts: u64,
    /// Entries evicted from a full duplicate-request cache (overflow:
    /// a retransmission arriving after its entry was evicted would be
    /// re-executed, so this staying at zero is the safety signal).
    pub drc_evictions: u64,
}

impl obs::StatsSnapshot for NfsServerStats {
    fn source(&self) -> &'static str {
        "nfs-server"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("requests", self.requests),
            ("reads", self.reads),
            ("writes", self.writes),
            ("metadata_ops", self.metadata_ops),
            ("bytes_read", self.bytes_read),
            ("bytes_written", self.bytes_written),
            ("errors", self.errors),
            ("drc_hits", self.drc_hits),
            ("drc_inserts", self.drc_inserts),
            ("drc_evictions", self.drc_evictions),
        ]
    }
}

/// One server counter, shared-path friendly: the concurrent read fast
/// path bumps counters through `&self`, so each cell is an atomic with
/// relaxed ordering (pure commutative sums; snapshots are taken at
/// quiescent points).
#[derive(Debug, Default)]
struct StatsCell(AtomicU64);

impl StatsCell {
    fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The server's live counters (see [`NfsServerStats`] for the snapshot).
#[derive(Debug, Default)]
struct StatsCells {
    requests: StatsCell,
    reads: StatsCell,
    writes: StatsCell,
    metadata_ops: StatsCell,
    bytes_read: StatsCell,
    bytes_written: StatsCell,
    errors: StatsCell,
    drc_hits: StatsCell,
    drc_inserts: StatsCell,
    drc_evictions: StatsCell,
}

impl StatsCells {
    fn snapshot(&self) -> NfsServerStats {
        NfsServerStats {
            requests: self.requests.get(),
            reads: self.reads.get(),
            writes: self.writes.get(),
            metadata_ops: self.metadata_ops.get(),
            bytes_read: self.bytes_read.get(),
            bytes_written: self.bytes_written.get(),
            errors: self.errors.get(),
            drc_hits: self.drc_hits.get(),
            drc_inserts: self.drc_inserts.get(),
            drc_evictions: self.drc_evictions.get(),
        }
    }
}

/// The NFS server.
///
/// Construct with a mounted [`Filesystem`] over an [`IscsiInitiator`]
/// (see the `testbed` crate for full wiring, or the integration tests for
/// minimal examples).
#[derive(Debug)]
pub struct NfsServer {
    mode: ServerMode,
    fs: Filesystem<IscsiInitiator>,
    module: Option<sim::Shared<NcacheModule>>,
    /// A clone of the module's internally locked shard handle, cached at
    /// construction so the read fast path can revalidate placeholder
    /// stamps without taking the module's own mutex.
    cache_handle: Option<ncache::NetCacheShards>,
    ledger: CopyLedger,
    stats: StatsCells,
    dirty_blocks_since_sync: u64,
    recorder: obs::Recorder,
    /// Fault recovery armed: the duplicate-request cache answers
    /// retransmitted non-idempotent calls, and placeholder revalidation
    /// verifies chunk integrity (invalidating corrupt entries).
    fault_recovery: bool,
    /// Skip the NCache transmit hook in [`NfsServer::handle_message`]: the
    /// caller promises to run substitution on the returned reply itself.
    /// The lane-parallel engine uses this to move the substitution work
    /// (per-shard cache lookups, segment splicing, checksum inheritance)
    /// outside the serialized server section.
    defer_transmit: bool,
    /// Duplicate-request cache: recent (xid, complete reply bytes) for
    /// WRITE/CREATE/REMOVE, newest at the back.
    drc: VecDeque<(u32, Vec<u8>)>,
    /// Duplicate-request cache depth. Defaults to [`DRC_CAPACITY`];
    /// [`NfsServer::enable_control`] re-sizes it from the admission bound
    /// so an admitted burst can never push an unacknowledged reply out.
    drc_capacity: usize,
    /// The overload control plane, when installed (off by default — a
    /// server without one behaves exactly as before).
    control: Option<ControlPlane>,
}

/// Default duplicate-request cache depth — enough to cover any plausible
/// burst of retransmissions from the closed-loop clients. The safety
/// invariant: an entry must outlive its client's retransmission window,
/// i.e. the cache must hold at least (concurrent clients × in-flight
/// non-idempotent calls per client) entries. The closed-loop engines run
/// ≤ 256 sessions with exactly one in-flight call each, and only
/// WRITE/CREATE/REMOVE enter the cache, so 128 covers every committed
/// workload's non-idempotent burst; with the control plane installed the
/// in-flight bound makes the sizing explicit (2 × `max_inflight`).
const DRC_CAPACITY: usize = 128;

/// Non-idempotent procedures must not be re-executed on retransmission.
fn non_idempotent(proc: u32) -> bool {
    matches!(proc, nfs::proc::WRITE | nfs::proc::CREATE | nfs::proc::REMOVE)
}

/// Admission class per procedure: the control plane sheds write-side
/// work (cache-filling) before read-side work (cache-draining).
fn op_class(proc: u32) -> OpClass {
    if non_idempotent(proc) {
        OpClass::Write
    } else {
        OpClass::Read
    }
}

/// Dirty blocks accumulated before the server flushes, modelling the
/// kernel's periodic write-back (bdflush). Keeping this low is also what
/// makes §3.4's remap-before-LBN-flush ordering hold: dirty placeholder
/// buffers leave the (small) file-system cache quickly, remapping their
/// FHO chunks so the network-centric cache never fills with unremapped
/// dirty entries.
const DIRTY_FLUSH_THRESHOLD: u64 = 256;

impl NfsServer {
    /// Creates a server in `mode` over `fs`. The module must be the same
    /// one the file system's initiator uses.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is [`ServerMode::NCache`] but no module is given.
    pub fn new(
        mode: ServerMode,
        fs: Filesystem<IscsiInitiator>,
        module: Option<sim::Shared<NcacheModule>>,
        ledger: &CopyLedger,
    ) -> Self {
        assert!(
            mode != ServerMode::NCache || module.is_some(),
            "NCache mode requires the NCache module"
        );
        let cache_handle = module.as_ref().map(|m| m.borrow().cache_handle());
        NfsServer {
            mode,
            fs,
            module,
            cache_handle,
            ledger: ledger.clone(),
            stats: StatsCells::default(),
            dirty_blocks_since_sync: 0,
            recorder: obs::Recorder::new(),
            fault_recovery: false,
            defer_transmit: false,
            drc: VecDeque::new(),
            drc_capacity: DRC_CAPACITY,
            control: None,
        }
    }

    /// Installs the overload control plane. The duplicate-request cache
    /// is re-sized from the admission bound (2 × `max_inflight`, floor
    /// [`DRC_CAPACITY`]): with at most `max_inflight` admitted calls in
    /// flight, a full burst of retransmissions cannot evict an entry
    /// younger than the retransmit window.
    pub fn enable_control(&mut self, cfg: ControlConfig) {
        if cfg.max_inflight > 0 {
            self.drc_capacity = DRC_CAPACITY.max(2 * cfg.max_inflight as usize);
        }
        self.control = Some(ControlPlane::new(cfg));
    }

    /// Reports the timing layer's load to the control plane: the next
    /// request's sim arrival instant and the current in-flight depth.
    /// No-op without an installed plane.
    pub fn set_load(&mut self, now_ns: u64, inflight: u64) {
        if let Some(cp) = &mut self.control {
            cp.set_load(now_ns, inflight);
        }
    }

    /// The control plane's counters, when one is installed.
    pub fn control_stats(&self) -> Option<ControlStats> {
        self.control.as_ref().map(|cp| cp.stats())
    }

    /// Total control-plane rejections so far (0 without a plane) — the
    /// timing rigs diff this across a request to detect a rejection.
    pub fn control_rejections(&self) -> u64 {
        self.control.as_ref().map_or(0, |cp| cp.stats().rejected)
    }

    /// Overrides the duplicate-request cache depth (tests only; the
    /// control plane sizes it via [`NfsServer::enable_control`]).
    pub fn set_drc_capacity(&mut self, capacity: usize) {
        self.drc_capacity = capacity.max(1);
    }

    /// Samples the backpressure signal from the layers below: the
    /// buffer cache's dirty ratio and the NCache's pinned occupancy.
    fn pressure(&self) -> Pressure {
        let ncache_permille = self.module.as_ref().map_or(0, |m| {
            let m = m.borrow();
            let cap = m.config().capacity_bytes.max(1);
            ((m.pinned_bytes().saturating_mul(1000)) / cap).min(1000) as u32
        });
        Pressure {
            dirty_permille: self.fs.cache_dirty_permille(),
            ncache_permille,
        }
    }

    /// Arms fault recovery: retransmitted WRITE/CREATE/REMOVE calls are
    /// answered from the duplicate-request cache (never re-executed), and
    /// placeholder revalidation verifies stored chunk checksums,
    /// invalidating corrupt entries so reads degrade to the copying path
    /// instead of shipping a poisoned chunk.
    pub fn set_fault_recovery(&mut self, on: bool) {
        self.fault_recovery = on;
    }

    /// Defers the NCache transmit hook: [`NfsServer::handle_message`]
    /// returns the reply *before* substitution, and the caller must pass
    /// it through [`ncache::substitute_payload`] (plus checksum
    /// inheritance) itself. Replies answered early — malformed requests
    /// and duplicate-request-cache hits — never reach the transmit hook
    /// in either setting, so deferral does not change their shape.
    pub fn set_defer_transmit(&mut self, on: bool) {
        self.defer_transmit = on;
    }

    /// Wires a trace recorder through the server-side stack: per-request
    /// spans here, plus the file system, its initiator, and the NCache
    /// module when present.
    pub fn set_recorder(&mut self, rec: obs::Recorder) {
        self.fs.set_recorder(rec.clone());
        self.fs.store_mut().set_recorder(rec.clone());
        if let Some(module) = &self.module {
            module.borrow_mut().set_recorder(rec.clone());
        }
        self.recorder = rec;
    }

    /// The build this server runs.
    pub fn mode(&self) -> ServerMode {
        self.mode
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NfsServerStats {
        self.stats.snapshot()
    }

    /// The file system (for test setup: creating files, syncing).
    pub fn fs_mut(&mut self) -> &mut Filesystem<IscsiInitiator> {
        &mut self.fs
    }

    /// The NCache module, when running that build.
    pub fn module(&self) -> Option<sim::Shared<NcacheModule>> {
        self.module.clone()
    }

    /// The file handle of the export root.
    pub fn root_fh(&self) -> u64 {
        ino_to_fh(Filesystem::<IscsiInitiator>::ROOT)
    }

    /// Serves one RPC message (a delivered UDP payload) and returns the
    /// reply message, already passed through the driver-level NCache hook
    /// (substitution) when that build is running.
    pub fn handle_message(&mut self, mut req: NetBuf) -> NetBuf {
        self.stats.requests.add(1);
        let req_bytes = req.payload_len() as u64;
        let call = take(&mut req, CALL_LEN).and_then(|h| RpcCall::decode(&h).ok());
        let Some(call) = call else {
            // Malformed RPC: a production server drops these; replying
            // with an error keeps closed-loop clients alive and never
            // panics the server on hostile input.
            //
            // The parser examined these bytes before rejecting them, so
            // charge the header movement exactly like a successful parse
            // does (datagrams >= CALL_LEN were already pulled by `take`).
            if req.payload_len() > 0 && req.payload_len() < CALL_LEN {
                let n = req.payload_len();
                let _ = req.pull(n);
            }
            let span = self
                .recorder
                .begin_span("malformed", self.mode.label(), req_bytes);
            self.stats.errors.add(1);
            let mut r = NetBuf::new(&self.ledger);
            r.push_header(&NFSERR_IO.to_be_bytes());
            r.push_header(&RpcReply::new(0).encode());
            self.recorder.end_span(span);
            return r;
        };
        let span = self
            .recorder
            .begin_span(proc_name(call.proc), self.mode.label(), req_bytes);
        // Duplicate-request cache: a retransmission of a non-idempotent
        // call (the client timed out on a lost reply) is answered with the
        // original reply bytes, never re-executed.
        if self.fault_recovery && non_idempotent(call.proc) {
            if let Some((_, bytes)) = self.drc.iter().find(|(xid, _)| *xid == call.xid) {
                self.stats.drc_hits.add(1);
                let mut r = NetBuf::new(&self.ledger);
                r.push_header(&bytes.clone());
                self.recorder.add_counter("fault.drc_hits", 1);
                self.recorder.end_span(span);
                return r;
            }
        }
        // Admission control: past the duplicate-request cache (a cached
        // reply costs nothing to resend) but before any execution. A
        // rejected call has no side effects and is never cached, so a
        // later retransmission of the same xid re-decides admission.
        // (The plane is taken out and restored around the decision so
        // `pressure` can borrow `self` freely.)
        if let Some(mut cp) = self.control.take() {
            let pressure = self.pressure();
            let decision = cp.decide(op_class(call.proc), &pressure);
            self.control = Some(cp);
            if let Decision::RetryLater { after_ns } = decision {
                self.recorder.add_counter("control.rejected", 1);
                let mut r = self.retry_later_reply(call.proc, after_ns);
                r.push_header(&RpcReply::new(call.xid).encode());
                self.recorder.end_span(span);
                return r;
            }
        }
        let mut reply = match call.proc {
            nfs::proc::GETATTR => self.do_getattr(&mut req),
            nfs::proc::LOOKUP => self.do_lookup(&mut req),
            nfs::proc::READ => self.do_read(&mut req),
            nfs::proc::WRITE => self.do_write(&mut req),
            nfs::proc::CREATE => self.do_create(&mut req),
            nfs::proc::REMOVE => self.do_remove(&mut req),
            nfs::proc::READDIR => self.do_readdir(&mut req),
            _ => {
                self.stats.errors.add(1);
                let mut r = NetBuf::new(&self.ledger);
                r.push_header(&NFSERR_IO.to_be_bytes());
                r
            }
        };
        reply.push_header(&RpcReply::new(call.xid).encode());
        if self.fault_recovery && non_idempotent(call.proc) {
            // WRITE/CREATE/REMOVE replies are header-only, so the header
            // region is the complete reply.
            debug_assert_eq!(reply.payload_len(), 0);
            if self.drc.len() >= self.drc_capacity {
                self.drc.pop_front();
                self.stats.drc_evictions.add(1);
                self.recorder.add_counter("nfs.drc_evictions", 1);
            }
            self.drc.push_back((call.xid, reply.header().to_vec()));
            self.stats.drc_inserts.add(1);
        }
        // Driver-boundary hook: substitution happens after the whole stack
        // has built the packet.
        if !self.defer_transmit {
            if let Some(module) = &self.module {
                module.borrow_mut().on_transmit(&mut reply);
            }
        }
        self.drain_writebacks();
        self.recorder.end_span(span);
        reply
    }

    fn do_create(&mut self, req: &mut NetBuf) -> NetBuf {
        self.stats.metadata_ops.add(1);
        let body = req.pull(req.payload_len());
        let Some(args) = CreateArgs::decode(&body).ok() else {
            return self.garbage_reply();
        };
        let mut r = NetBuf::new(&self.ledger);
        match self
            .fs
            .create(fh_to_ino(args.dir_fh), &args.name)
            .and_then(|ino| self.fs.getattr(ino).map(|inode| (ino, inode)))
        {
            Ok((ino, inode)) => {
                let fh = ino_to_fh(ino);
                r.push_header(
                    &LookupReply {
                        status: NFS_OK,
                        fh,
                        attrs: fattr_of(fh, &inode),
                    }
                    .encode(),
                );
            }
            Err(e) => {
                self.stats.errors.add(1);
                r.push_header(
                    &LookupReply {
                        status: status_of(e),
                        ..LookupReply::default()
                    }
                    .encode(),
                );
            }
        }
        r
    }

    fn do_remove(&mut self, req: &mut NetBuf) -> NetBuf {
        self.stats.metadata_ops.add(1);
        let body = req.pull(req.payload_len());
        let Some(args) = LookupArgs::decode(&body).ok() else {
            return self.garbage_reply();
        };
        let mut r = NetBuf::new(&self.ledger);
        // Under NCache, drop the file's cache chunks first: a dirty FHO
        // chunk belonging to a removed file would otherwise stay pinned
        // forever (it is unevictable until remapped, and no flush will
        // ever remap it once the file is gone).
        if self.module.is_some() {
            if let Ok(ino) = self.fs.lookup(fh_to_ino(args.dir_fh), &args.name) {
                self.invalidate_file_chunks(ino);
            }
        }
        let status = match self.fs.remove(fh_to_ino(args.dir_fh), &args.name) {
            Ok(()) => NFS_OK,
            Err(e) => {
                self.stats.errors.add(1);
                status_of(e)
            }
        };
        r.push_header(&RemoveReply { status }.encode());
        r
    }

    /// Invalidates every network-centric cache chunk reachable from the
    /// file's cached placeholder stamps.
    fn invalidate_file_chunks(&mut self, ino: Ino) {
        let Some(module) = self.module.clone() else {
            return;
        };
        let Ok(inode) = self.fs.getattr(ino) else {
            return;
        };
        let size = inode.size as usize;
        if size == 0 {
            return;
        }
        if let Ok(blocks) = self.fs.read_logical(ino, 0, size) {
            let mut m = module.borrow_mut();
            for b in &blocks {
                if let Some(stamp) = KeyStamp::decode(b.seg.as_slice()) {
                    if let Some(fho) = stamp.fho {
                        m.cache_mut().invalidate(fho.into());
                    }
                    if let Some(lbn) = stamp.lbn {
                        m.cache_mut().invalidate(lbn.into());
                    }
                }
            }
        }
    }

    fn do_readdir(&mut self, req: &mut NetBuf) -> NetBuf {
        self.stats.metadata_ops.add(1);
        let Some(args) = take(req, ReaddirArgs::LEN).and_then(|b| ReaddirArgs::decode(&b).ok())
        else {
            return self.garbage_reply();
        };
        let mut r = NetBuf::new(&self.ledger);
        match self.fs.readdir(fh_to_ino(args.fh)) {
            Ok(all) => {
                // Page the listing: skip `cookie` entries, fill up to
                // roughly `count` reply bytes.
                let mut entries = Vec::new();
                let mut bytes = 0usize;
                let mut taken = 0usize;
                for e in all.iter().skip(args.cookie as usize) {
                    let entry_bytes = 12 + e.name.len().next_multiple_of(4);
                    if bytes + entry_bytes > args.count as usize && !entries.is_empty() {
                        break;
                    }
                    bytes += entry_bytes;
                    taken += 1;
                    entries.push(proto::nfs::DirEntry {
                        fileid: e.ino.0,
                        name: e.name.clone(),
                    });
                }
                let eof = args.cookie as usize + taken >= all.len();
                r.push_header(
                    &ReaddirReply {
                        status: NFS_OK,
                        entries,
                        eof,
                    }
                    .encode(),
                );
            }
            Err(e) => {
                self.stats.errors.add(1);
                r.push_header(
                    &ReaddirReply {
                        status: status_of(e),
                        ..ReaddirReply::default()
                    }
                    .encode(),
                );
            }
        }
        r
    }

    /// Unaligned NCache write: read-modify-write against materialized
    /// block contents, then park the merged blocks in the FHO cache.
    fn unaligned_ncache_write(
        &mut self,
        ino: Ino,
        fh: u64,
        offset: u64,
        count: usize,
        req: &mut NetBuf,
    ) -> Result<(), FsError> {
        let module = self.module.clone().expect("NCache build");
        let aligned_start = offset - offset % BLOCK as u64;
        let aligned_end = (offset + count as u64).div_ceil(BLOCK as u64) * BLOCK as u64;
        let size = self.fs.getattr(ino)?.size;
        let covered = (aligned_end.min(size.max(offset + count as u64)) - aligned_start) as usize;
        let mut merged = if aligned_start < size {
            self.materialize_range(ino, aligned_start, covered.min((size - aligned_start) as usize))?
        } else {
            Vec::new()
        };
        merged.resize((aligned_end - aligned_start) as usize, 0);
        let data = req.peek(0, count);
        let at = (offset - aligned_start) as usize;
        merged[at..at + count].copy_from_slice(&data);
        // Store each merged block through hook 2, exactly like an aligned
        // write of the whole span.
        let mut stamps = Vec::new();
        for (i, chunk) in merged.chunks(BLOCK).enumerate() {
            let fho = Fho::new(FileHandle(fh), aligned_start + (i * BLOCK) as u64);
            let seg = netbuf::Segment::from_vec(chunk.to_vec());
            match module.borrow_mut().on_nfs_write(fho, vec![seg], chunk.len()) {
                Ok(stamp) => stamps.push(stamp),
                Err(_) => {
                    // Cache full: last resort, write the merged bytes
                    // physically and invalidate any stale chunks.
                    return self.fs.write(ino, aligned_start, &merged);
                }
            }
        }
        self.fs
            .write_logical(ino, aligned_start, merged.len(), &stamps)?;
        // The logical span may extend the file past the true end; restore
        // the correct size if the write did not actually grow it.
        let true_end = (offset + count as u64).max(size);
        if self.fs.getattr(ino)?.size != true_end {
            // write_logical only ever grows to aligned_end; shrink is not
            // supported, so only the grow case needs correction — and
            // aligned_end >= true_end always holds. Record the honest size.
            self.fs.set_size(ino, true_end)?;
        }
        Ok(())
    }

    /// Materializes the *real* bytes of `[offset, offset+len)` under the
    /// NCache build, where the file-system cache holds key-stamped junk:
    /// each covered block's stamp is resolved in the network-centric cache
    /// (FHO first); unstamped blocks are used as-is; unresolvable blocks
    /// are dropped from the FS cache and refetched. The assembly is a
    /// physical copy and is charged as one — unaligned requests genuinely
    /// cost copies, which is why the paper's workloads are block-aligned.
    fn materialize_range(
        &mut self,
        ino: Ino,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, FsError> {
        let module = self.module.clone().expect("NCache build");
        let aligned_start = offset - offset % BLOCK as u64;
        let span = (offset + len as u64 - aligned_start) as usize;
        for _attempt in 0..3 {
            let blocks = self.fs.read_logical(ino, aligned_start, span)?;
            let mut out = Vec::with_capacity(span);
            let mut dangling = false;
            {
                let mut m = module.borrow_mut();
                for b in &blocks {
                    match KeyStamp::decode(b.seg.as_slice()) {
                        Some(stamp) if stamp.is_keyed() => {
                            match m.cache_mut().resolve(&stamp) {
                                Some((_, segs)) => {
                                    let mut got = 0usize;
                                    for seg in segs {
                                        let take =
                                            seg.len().min(b.valid_len - got.min(b.valid_len));
                                        if take == 0 {
                                            break;
                                        }
                                        out.extend_from_slice(&seg.as_slice()[..take]);
                                        got += take;
                                    }
                                }
                                None => {
                                    dangling = true;
                                    break;
                                }
                            }
                        }
                        _ => out.extend_from_slice(&b.seg.as_slice()[..b.valid_len]),
                    }
                }
            }
            if dangling {
                // Drop the dangling placeholders and retry: the refetch
                // re-populates the network-centric cache.
                for b in &blocks {
                    if let Some(l) = b.lbn {
                        self.fs.discard_cached(l);
                    }
                }
                continue;
            }
            self.ledger.charge_payload_copy(len as u64);
            let skip = (offset - aligned_start) as usize;
            let end = (skip + len).min(out.len());
            return Ok(out[skip.min(out.len())..end].to_vec());
        }
        Err(FsError::Corrupt("placeholder thrashing"))
    }

    /// Revalidation (NCache build only): every stamped placeholder in the
    /// reply must still resolve in the network-centric cache. With fault
    /// recovery armed, resolution also verifies the chunk's stored
    /// checksum — a corrupt entry is invalidated and reported missing, so
    /// the caller degrades to the copying path (refetch) instead of
    /// shipping poison.
    fn placeholders_resolvable(&self, blocks: &[simfs::fs::LogicalBlock]) -> bool {
        let Some(module) = &self.module else {
            return true; // the baseline ships junk by design
        };
        let mut m = module.borrow_mut();
        let verify = self.fault_recovery;
        blocks.iter().all(|b| {
            match KeyStamp::decode(b.seg.as_slice()) {
                Some(stamp) if stamp.is_keyed() => {
                    if verify {
                        m.verify_resolvable(&stamp)
                    } else {
                        m.resolvable(&stamp)
                    }
                }
                _ => true, // real data (or junk): nothing to resolve
            }
        })
    }

    /// Error reply for requests whose body fails to parse.
    fn garbage_reply(&mut self) -> NetBuf {
        self.stats.errors.add(1);
        let mut r = NetBuf::new(&self.ledger);
        r.push_header(&NFSERR_IO.to_be_bytes());
        r
    }

    /// Builds the body of an admission-control rejection: the procedure's
    /// own reply shape carrying [`NFSERR_JUKEBOX`] (so every client's
    /// normal decoder recognises it as a retryable status), with the
    /// suggested backoff in the reply's otherwise-unused trailing word.
    /// `after_ns` is advisory — the client's [`crate::control::RetryPolicy`]
    /// owns the actual backoff schedule.
    fn retry_later_reply(&mut self, proc: u32, _after_ns: u64) -> NetBuf {
        let mut r = NetBuf::new(&self.ledger);
        match proc {
            nfs::proc::WRITE => r.push_header(
                &WriteReply {
                    status: NFSERR_JUKEBOX,
                    ..WriteReply::default()
                }
                .encode(),
            ),
            nfs::proc::LOOKUP | nfs::proc::CREATE => r.push_header(
                &LookupReply {
                    status: NFSERR_JUKEBOX,
                    ..LookupReply::default()
                }
                .encode(),
            ),
            nfs::proc::REMOVE => r.push_header(
                &RemoveReply {
                    status: NFSERR_JUKEBOX,
                }
                .encode(),
            ),
            nfs::proc::READDIR => r.push_header(
                &ReaddirReply {
                    status: NFSERR_JUKEBOX,
                    ..ReaddirReply::default()
                }
                .encode(),
            ),
            nfs::proc::READ => r.push_header(
                &ReadReplyHeader {
                    status: NFSERR_JUKEBOX,
                    ..ReadReplyHeader::default()
                }
                .encode(),
            ),
            _ => r.push_header(&NFSERR_JUKEBOX.to_be_bytes()),
        }
        r
    }

    fn drain_writebacks(&mut self) {
        // Dirty chunks displaced from the network-centric cache go back to
        // storage through the initiator.
        if self.module.is_some() {
            // Split borrow: the initiator lives inside the file system.
            self.fs.store_mut().drain_module_writebacks();
        }
    }

    fn do_getattr(&mut self, req: &mut NetBuf) -> NetBuf {
        self.stats.metadata_ops.add(1);
        let Some(args) = take(req, nfs::FH_LEN).and_then(|b| GetattrArgs::decode(&b).ok())
        else {
            return self.garbage_reply();
        };
        let mut r = NetBuf::new(&self.ledger);
        match self.fs.getattr(fh_to_ino(args.fh)) {
            Ok(inode) => {
                let mut body = NFS_OK.to_be_bytes().to_vec();
                fattr_of(args.fh, &inode).encode_into(&mut body);
                r.push_header(&body);
            }
            Err(e) => {
                self.stats.errors.add(1);
                r.push_header(&status_of(e).to_be_bytes());
            }
        }
        r
    }

    fn do_lookup(&mut self, req: &mut NetBuf) -> NetBuf {
        self.stats.metadata_ops.add(1);
        let body = req.pull(req.payload_len());
        let Some(args) = LookupArgs::decode(&body).ok() else {
            return self.garbage_reply();
        };
        let mut r = NetBuf::new(&self.ledger);
        match self
            .fs
            .lookup(fh_to_ino(args.dir_fh), &args.name)
            .and_then(|ino| self.fs.getattr(ino).map(|inode| (ino, inode)))
        {
            Ok((ino, inode)) => {
                let fh = ino_to_fh(ino);
                r.push_header(
                    &LookupReply {
                        status: NFS_OK,
                        fh,
                        attrs: fattr_of(fh, &inode),
                    }
                    .encode(),
                );
            }
            Err(e) => {
                self.stats.errors.add(1);
                r.push_header(
                    &LookupReply {
                        status: status_of(e),
                        ..LookupReply::default()
                    }
                    .encode(),
                );
            }
        }
        r
    }

    fn do_read(&mut self, req: &mut NetBuf) -> NetBuf {
        self.stats.reads.add(1);
        let Some(args) = take(req, nfs::FH_LEN + 12).and_then(|b| ReadArgs::decode(&b).ok())
        else {
            return self.garbage_reply();
        };
        let ino = fh_to_ino(args.fh);
        let offset = u64::from(args.offset);
        let count = args.count as usize;
        let mut reply = NetBuf::new(&self.ledger);

        let outcome: Result<(usize, Fattr), FsError> = match self.mode {
            ServerMode::Original => {
                // Copy 1: buffer cache → daemon buffer; copy 2: daemon
                // buffer → network stack. The daemon buffer is handed off
                // whole (append_vec), so the host does not duplicate it a
                // third time.
                let mut buf = vec![0u8; count];
                self.fs.read(ino, offset, &mut buf).map(|n| {
                    buf.truncate(n);
                    reply.append_vec(buf);
                    let attrs = self.fs.getattr(ino).expect("read target exists");
                    (n, fattr_of(args.fh, &attrs))
                })
            }
            ServerMode::NCache | ServerMode::Baseline => {
                // Logical copy: attach the (placeholder) cache blocks by
                // reference; the daemon never touches the payload.
                let aligned = offset % BLOCK as u64 == 0;
                if aligned {
                    self.fs.read_logical(ino, offset, count).and_then(|blocks| {
                        if !self.placeholders_resolvable(&blocks) {
                            // A chunk was evicted while its placeholder
                            // was still cached: drop the dangling blocks
                            // and serve this request on the copying path.
                            for b in &blocks {
                                if let Some(l) = b.lbn {
                                    self.fs.discard_cached(l);
                                }
                            }
                            let mut buf = vec![0u8; count];
                            return self.fs.read(ino, offset, &mut buf).map(|n| {
                                buf.truncate(n);
                                reply.append_vec(buf);
                                let attrs =
                                    self.fs.getattr(ino).expect("read target exists");
                                (n, fattr_of(args.fh, &attrs))
                            });
                        }
                        let mut n = 0;
                        for b in &blocks {
                            reply.append_segment(b.seg.slice(0, b.valid_len));
                            n += b.valid_len;
                        }
                        let attrs = self.fs.getattr(ino).expect("read target exists");
                        Ok((n, fattr_of(args.fh, &attrs)))
                    })
                } else if self.mode == ServerMode::NCache {
                    // Unaligned reads cannot ride the key-moving path (a
                    // partial-block slice loses its stamp): materialize the
                    // real bytes from the network-centric cache.
                    self.fs.getattr(ino).and_then(|attrs| {
                        let avail = attrs.size.saturating_sub(offset) as usize;
                        let want = count.min(avail);
                        self.materialize_range(ino, offset, want).map(|data| {
                            let n = data.len();
                            reply.append_vec(data);
                            (n, fattr_of(args.fh, &attrs))
                        })
                    })
                } else {
                    // The baseline ships junk; the copying path suffices.
                    let mut buf = vec![0u8; count];
                    self.fs.read(ino, offset, &mut buf).map(|n| {
                        buf.truncate(n);
                        reply.append_vec(buf);
                        let attrs = self.fs.getattr(ino).expect("read target exists");
                        (n, fattr_of(args.fh, &attrs))
                    })
                }
            }
        };

        match outcome {
            Ok((n, attrs)) => {
                self.stats.bytes_read.add(n as u64);
                reply.push_header(
                    &ReadReplyHeader {
                        status: NFS_OK,
                        attrs,
                        count: n as u32,
                    }
                    .encode(),
                );
            }
            Err(e) => {
                self.stats.errors.add(1);
                let mut r = NetBuf::new(&self.ledger);
                r.push_header(
                    &ReadReplyHeader {
                        status: status_of(e),
                        ..ReadReplyHeader::default()
                    }
                    .encode(),
                );
                return r;
            }
        }
        reply
    }

    /// Whether `handle_read_fast` can serve this READ through `&self`
    /// alone: NCache mode with deferred transmit, recovery disarmed, a
    /// block-aligned offset, every block resident in the buffer cache with
    /// no holes, and every placeholder stamp resolvable in the
    /// network-centric cache. The probe charges and counts nothing, so a
    /// `false` answer leaves the rig byte-identical for the slow path.
    pub fn read_fast_ready(&self, fh: u64, offset: u64, count: usize) -> bool {
        // The fast path serves through `&self` and cannot consult the
        // (mutable) admission gate; with a control plane installed every
        // request must take the gated slow path.
        if self.mode != ServerMode::NCache
            || !self.defer_transmit
            || self.fault_recovery
            || self.control.is_some()
        {
            return false;
        }
        if !offset.is_multiple_of(BLOCK as u64) {
            return false;
        }
        let Some(blocks) = self.fs.probe_read(fh_to_ino(fh), offset, count) else {
            return false;
        };
        let Some(cache) = &self.cache_handle else {
            return false;
        };
        blocks.iter().all(|b| match KeyStamp::decode(b.seg.as_slice()) {
            Some(stamp) if stamp.is_keyed() => {
                stamp.fho.is_some_and(|f| cache.contains(f.into()))
                    || stamp.lbn.is_some_and(|l| cache.contains(l.into()))
            }
            _ => true,
        })
    }

    /// The concurrent read fast path: a cache-hit READ served end-to-end
    /// through `&self`, so many lanes can run it in parallel under a shared
    /// core guard. Callers must have checked [`NfsServer::read_fast_ready`]
    /// under the same guard — the guard excludes every mutation, so the
    /// probed residency and resolvability cannot change underneath us.
    ///
    /// Byte- and count-exact mirror of the slow hit path: the duplicate-
    /// request cache is skipped (READ is idempotent — the armed DRC never
    /// answers it), the transmit hook is skipped (`defer_transmit` is a
    /// precondition; the caller substitutes the reply itself), and the
    /// write-back drain is skipped (a pure hit displaces nothing, and the
    /// drain is a silent no-op on an empty queue).
    pub fn handle_read_fast(&self, mut req: NetBuf) -> NetBuf {
        self.stats.requests.add(1);
        let req_bytes = req.payload_len() as u64;
        let call = take(&mut req, CALL_LEN)
            .and_then(|h| RpcCall::decode(&h).ok())
            .expect("fast path requires a well-formed call");
        let span = self
            .recorder
            .begin_span(proc_name(call.proc), self.mode.label(), req_bytes);
        self.stats.reads.add(1);
        let args = take(&mut req, nfs::FH_LEN + 12)
            .and_then(|b| ReadArgs::decode(&b).ok())
            .expect("fast path requires well-formed READ args");
        let ino = fh_to_ino(args.fh);
        let mut reply = NetBuf::new(&self.ledger);
        let blocks = self
            .fs
            .read_logical_shared(ino, u64::from(args.offset), args.count as usize);
        let mut n = 0;
        for b in &blocks {
            reply.append_segment(b.seg.slice(0, b.valid_len));
            n += b.valid_len;
        }
        let attrs = self.fs.getattr_shared(ino);
        self.stats.bytes_read.add(n as u64);
        reply.push_header(
            &ReadReplyHeader {
                status: NFS_OK,
                attrs: fattr_of(args.fh, &attrs),
                count: n as u32,
            }
            .encode(),
        );
        reply.push_header(&RpcReply::new(call.xid).encode());
        self.recorder.end_span(span);
        reply
    }

    fn do_write(&mut self, req: &mut NetBuf) -> NetBuf {
        self.stats.writes.add(1);
        let Some(hdr) =
            take(req, WriteArgsHeader::LEN).and_then(|b| WriteArgsHeader::decode(&b).ok())
        else {
            return self.garbage_reply();
        };
        let ino = fh_to_ino(hdr.fh);
        let offset = u64::from(hdr.offset);
        let count = (hdr.count as usize).min(req.payload_len());

        let outcome: Result<(), FsError> = match self.mode {
            ServerMode::Original => {
                // One copy: network stack → buffer cache. (Extraction via
                // `peek` is free; the file system charges the copy.)
                let data = req.peek(0, count);
                self.fs.write(ino, offset, &data)
            }
            ServerMode::NCache => {
                let aligned = offset % BLOCK as u64 == 0;
                if aligned {
                    // Hook 2: park each block's wire segments in the FHO
                    // cache; plant stamps in the buffer cache. Under
                    // memory pressure the control plane bypasses the
                    // insertion — the write serves through the copying
                    // path (charged normally) without displacing cache
                    // state (DESIGN.md §15).
                    // (The plane is taken out and restored around the
                    // decision so `pressure` can borrow `self` freely.)
                    let bypass = if let Some(mut cp) = self.control.take() {
                        let p = self.pressure();
                        let hit = cp.bypass_insert(&p);
                        self.control = Some(cp);
                        if hit {
                            self.recorder.add_counter("control.insert_bypass", 1);
                        }
                        hit
                    } else {
                        false
                    };
                    let module = self.module.clone().expect("NCache mode has a module");
                    let segs = req.take_payload();
                    let groups = split_segments(&segs, BLOCK);
                    let mut stamps = Vec::with_capacity(groups.len());
                    let mut admitted = !bypass;
                    for (i, group) in groups.iter().enumerate() {
                        if !admitted {
                            break;
                        }
                        let len: usize = group.iter().map(netbuf::Segment::len).sum();
                        let fho = Fho::new(FileHandle(hdr.fh), offset + (i * BLOCK) as u64);
                        match module.borrow_mut().on_nfs_write(fho, group.clone(), len) {
                            Ok(stamp) => stamps.push(stamp),
                            Err(_) => {
                                admitted = false;
                                break;
                            }
                        }
                    }
                    if admitted {
                        self.fs.write_logical(ino, offset, count, &stamps)
                    } else {
                        // Cache full: fall back to the copying path. The
                        // wire segments are still shared by `groups`.
                        let mut data = Vec::with_capacity(count);
                        for group in &groups {
                            for seg in group {
                                data.extend_from_slice(seg.as_slice());
                            }
                        }
                        data.truncate(count);
                        self.fs.write(ino, offset, &data)
                    }
                } else {
                    // Unaligned write: merge into the real block contents
                    // (a physical read-modify-write of the boundary
                    // blocks), then store the merged blocks through the
                    // FHO cache like an aligned write.
                    self.unaligned_ncache_write(ino, hdr.fh, offset, count, req)
                }
            }
            ServerMode::Baseline => {
                // Copies removed outright: junk blocks, metadata updated.
                let blocks = count.div_ceil(BLOCK);
                let stamps = vec![KeyStamp::new(); blocks];
                self.fs.write_logical(ino, offset, count, &stamps)
            }
        };

        self.dirty_blocks_since_sync += (count as u64).div_ceil(4096);
        if self.dirty_blocks_since_sync >= DIRTY_FLUSH_THRESHOLD {
            // Write-behind: flush a batch of the oldest dirty blocks,
            // spreading flush work across requests as bdflush does.
            self.fs.sync_some(64).expect("sync");
            self.dirty_blocks_since_sync = self.fs.dirty_blocks() as u64;
        }
        let mut r = NetBuf::new(&self.ledger);
        match outcome.and_then(|()| self.fs.getattr(ino)) {
            Ok(inode) => {
                self.stats.bytes_written.add(count as u64);
                r.push_header(
                    &WriteReply {
                        status: NFS_OK,
                        attrs: fattr_of(hdr.fh, &inode),
                    }
                    .encode(),
                );
            }
            Err(e) => {
                self.stats.errors.add(1);
                r.push_header(
                    &WriteReply {
                        status: status_of(e),
                        ..WriteReply::default()
                    }
                    .encode(),
                );
            }
        }
        r
    }
}

/// The span label for an NFS procedure number.
fn proc_name(proc: u32) -> &'static str {
    match proc {
        nfs::proc::GETATTR => "getattr",
        nfs::proc::LOOKUP => "lookup",
        nfs::proc::READ => "read",
        nfs::proc::WRITE => "write",
        nfs::proc::CREATE => "create",
        nfs::proc::REMOVE => "remove",
        nfs::proc::READDIR => "readdir",
        _ => "unknown",
    }
}

/// Pulls `n` payload bytes if available.
fn take(req: &mut NetBuf, n: usize) -> Option<Vec<u8>> {
    (req.payload_len() >= n).then(|| req.pull(n))
}

/// Maps a file system error to an NFS status code.
fn status_of(e: FsError) -> u32 {
    match e {
        FsError::NotFound => NFSERR_NOENT,
        // NFSv2 has EEXIST = 17; the subset folds the rest to EIO.
        FsError::Exists => 17,
        _ => NFSERR_IO,
    }
}

/// File handles are inode numbers (a real server embeds generation
/// numbers; the reproduction does not need them).
pub fn ino_to_fh(ino: Ino) -> u64 {
    u64::from(ino.0)
}

/// Inverse of [`ino_to_fh`].
pub fn fh_to_ino(fh: u64) -> Ino {
    Ino(fh as u32)
}

fn fattr_of(fh: u64, inode: &simfs::inode::Inode) -> Fattr {
    Fattr {
        ftype: match inode.ftype {
            FileType::Regular => NfsFileType::Regular,
            FileType::Directory => NfsFileType::Directory,
        },
        size: inode.size as u32,
        fileid: fh as u32,
        mtime: inode.mtime,
    }
}

/// A minimal NFS client: builds request messages and parses replies.
/// Used by the workload generators and the integration tests.
#[derive(Debug)]
pub struct NfsClient {
    ledger: CopyLedger,
    next_xid: u32,
}

impl NfsClient {
    /// A client charging `ledger` (the client machine's CPU).
    pub fn new(ledger: &CopyLedger) -> Self {
        NfsClient {
            ledger: ledger.clone(),
            next_xid: 1,
        }
    }

    /// A client whose xids start at `base + 1`. Concurrent sessions need
    /// disjoint xid spaces: the server's duplicate-request cache is keyed
    /// by xid, so two sessions both counting 1, 2, 3… would alias in it
    /// and a retransmission from one session could be answered with the
    /// other's cached reply.
    pub fn with_xid_base(ledger: &CopyLedger, base: u32) -> Self {
        NfsClient {
            ledger: ledger.clone(),
            next_xid: base + 1,
        }
    }

    /// The xid the next request will carry (diagnostics/tests).
    pub fn peek_xid(&self) -> u32 {
        self.next_xid
    }

    fn xid(&mut self) -> u32 {
        let x = self.next_xid;
        self.next_xid += 1;
        x
    }

    /// Builds a READ request message.
    pub fn read_request(&mut self, fh: u64, offset: u32, count: u32) -> NetBuf {
        let mut b = NetBuf::new(&self.ledger);
        b.push_header(&ReadArgs { fh, offset, count }.encode());
        b.push_header(&RpcCall::nfs(self.xid(), nfs::proc::READ).encode());
        b
    }

    /// Builds a WRITE request message carrying `data`.
    pub fn write_request(&mut self, fh: u64, offset: u32, data: &[u8]) -> NetBuf {
        let mut b = NetBuf::new(&self.ledger);
        b.append_bytes(data); // client-side copy into the socket
        b.push_header(
            &WriteArgsHeader {
                fh,
                offset,
                count: data.len() as u32,
            }
            .encode(),
        );
        b.push_header(&RpcCall::nfs(self.xid(), nfs::proc::WRITE).encode());
        b
    }

    /// Builds a GETATTR request message.
    pub fn getattr_request(&mut self, fh: u64) -> NetBuf {
        let mut b = NetBuf::new(&self.ledger);
        b.push_header(&GetattrArgs { fh }.encode());
        b.push_header(&RpcCall::nfs(self.xid(), nfs::proc::GETATTR).encode());
        b
    }

    /// Builds a LOOKUP request message.
    pub fn lookup_request(&mut self, dir_fh: u64, name: &str) -> NetBuf {
        let mut b = NetBuf::new(&self.ledger);
        b.push_header(
            &LookupArgs {
                dir_fh,
                name: name.to_string(),
            }
            .encode(),
        );
        b.push_header(&RpcCall::nfs(self.xid(), nfs::proc::LOOKUP).encode());
        b
    }

    /// Builds a CREATE request message.
    pub fn create_request(&mut self, dir_fh: u64, name: &str) -> NetBuf {
        let mut b = NetBuf::new(&self.ledger);
        b.push_header(
            &CreateArgs {
                dir_fh,
                name: name.to_string(),
            }
            .encode(),
        );
        b.push_header(&RpcCall::nfs(self.xid(), nfs::proc::CREATE).encode());
        b
    }

    /// Builds a REMOVE request message.
    pub fn remove_request(&mut self, dir_fh: u64, name: &str) -> NetBuf {
        let mut b = NetBuf::new(&self.ledger);
        b.push_header(
            &LookupArgs {
                dir_fh,
                name: name.to_string(),
            }
            .encode(),
        );
        b.push_header(&RpcCall::nfs(self.xid(), nfs::proc::REMOVE).encode());
        b
    }

    /// Builds a READDIR request message.
    pub fn readdir_request(&mut self, fh: u64, cookie: u32, count: u32) -> NetBuf {
        let mut b = NetBuf::new(&self.ledger);
        b.push_header(&ReaddirArgs { fh, cookie, count }.encode());
        b.push_header(&RpcCall::nfs(self.xid(), nfs::proc::READDIR).encode());
        b
    }

    /// Parses a CREATE reply (a `diropres`, like LOOKUP).
    ///
    /// # Panics
    ///
    /// Panics on malformed replies.
    pub fn parse_create_reply(&self, reply: &NetBuf) -> LookupReply {
        self.parse_lookup_reply(reply)
    }

    /// Parses a REMOVE reply.
    ///
    /// # Panics
    ///
    /// Panics on malformed replies.
    pub fn parse_remove_reply(&self, reply: &NetBuf) -> RemoveReply {
        let mut rx = crate::stack::deliver(reply, &self.ledger);
        let _rpc = RpcReply::decode(&rx.pull(proto::rpc::REPLY_LEN)).expect("RPC reply");
        let body = rx.pull(rx.payload_len());
        RemoveReply::decode(&body).expect("remove reply")
    }

    /// Parses a READDIR reply.
    ///
    /// # Panics
    ///
    /// Panics on malformed replies.
    pub fn parse_readdir_reply(&self, reply: &NetBuf) -> ReaddirReply {
        let mut rx = crate::stack::deliver(reply, &self.ledger);
        let _rpc = RpcReply::decode(&rx.pull(proto::rpc::REPLY_LEN)).expect("RPC reply");
        let body = rx.pull(rx.payload_len());
        ReaddirReply::decode(&body).expect("readdir reply")
    }

    /// Parses a READ reply: returns the header and the payload bytes
    /// (materialized — the client-side receive copy).
    ///
    /// # Panics
    ///
    /// Panics on malformed replies (test infrastructure).
    pub fn parse_read_reply(&self, reply: &NetBuf) -> (ReadReplyHeader, Vec<u8>) {
        let mut rx = crate::stack::deliver(reply, &self.ledger);
        let _rpc = RpcReply::decode(&rx.pull(proto::rpc::REPLY_LEN)).expect("RPC reply");
        let status = u32::from_be_bytes(rx.peek(0, 4).try_into().expect("4 bytes"));
        if status != NFS_OK {
            let hdr = ReadReplyHeader::decode(&rx.pull(4)).expect("error header");
            return (hdr, Vec::new());
        }
        let hdr =
            ReadReplyHeader::decode(&rx.pull(ReadReplyHeader::OK_LEN)).expect("reply header");
        let data = rx.copy_payload_to_vec();
        (hdr, data)
    }

    /// Parses a WRITE reply.
    ///
    /// # Panics
    ///
    /// Panics on malformed replies.
    pub fn parse_write_reply(&self, reply: &NetBuf) -> WriteReply {
        let mut rx = crate::stack::deliver(reply, &self.ledger);
        let _rpc = RpcReply::decode(&rx.pull(proto::rpc::REPLY_LEN)).expect("RPC reply");
        let body = rx.pull(rx.payload_len());
        WriteReply::decode(&body).expect("write reply")
    }

    /// Parses a LOOKUP reply.
    ///
    /// # Panics
    ///
    /// Panics on malformed replies.
    pub fn parse_lookup_reply(&self, reply: &NetBuf) -> LookupReply {
        let mut rx = crate::stack::deliver(reply, &self.ledger);
        let _rpc = RpcReply::decode(&rx.pull(proto::rpc::REPLY_LEN)).expect("RPC reply");
        let body = rx.pull(rx.payload_len());
        LookupReply::decode(&body).expect("lookup reply")
    }

    /// Parses a GETATTR reply into (status, attributes).
    ///
    /// # Panics
    ///
    /// Panics on malformed replies.
    pub fn parse_getattr_reply(&self, reply: &NetBuf) -> (u32, Option<Fattr>) {
        let mut rx = crate::stack::deliver(reply, &self.ledger);
        let _rpc = RpcReply::decode(&rx.pull(proto::rpc::REPLY_LEN)).expect("RPC reply");
        let body = rx.pull(rx.payload_len());
        let status = u32::from_be_bytes(body[0..4].try_into().expect("4 bytes"));
        if status == NFS_OK {
            (status, Some(Fattr::decode(&body, 4).expect("attrs")))
        } else {
            (status, None)
        }
    }

    // --- Fault-aware parsers -------------------------------------------
    //
    // On a lossy link a reply can arrive truncated or bit-flipped; these
    // variants validate instead of panicking (the RPC/UDP checksum stand-
    // in) and surface the reply's xid so the retransmission loop can match
    // it against the outstanding call. `None` means: discard and
    // retransmit.

    /// Takes delivery and peels the RPC reply header, validating lengths.
    fn try_open(&self, reply: &NetBuf) -> Option<(u32, NetBuf)> {
        let mut rx = crate::stack::deliver(reply, &self.ledger);
        if rx.payload_len() < proto::rpc::REPLY_LEN {
            return None;
        }
        let rpc = RpcReply::decode(&rx.pull(proto::rpc::REPLY_LEN)).ok()?;
        Some((rpc.xid, rx))
    }

    /// Fault-aware [`NfsClient::parse_read_reply`]: `(xid, header, data)`,
    /// or `None` for a damaged reply. A payload shorter than the header's
    /// count (a truncated frame) is damage.
    pub fn try_parse_read_reply(&self, reply: &NetBuf) -> Option<(u32, ReadReplyHeader, Vec<u8>)> {
        let (xid, mut rx) = self.try_open(reply)?;
        if rx.payload_len() < 4 {
            return None;
        }
        let status = u32::from_be_bytes(rx.peek(0, 4).try_into().ok()?);
        if status != NFS_OK {
            let hdr = ReadReplyHeader::decode(&rx.pull(4)).ok()?;
            return Some((xid, hdr, Vec::new()));
        }
        if rx.payload_len() < ReadReplyHeader::OK_LEN {
            return None;
        }
        let hdr = ReadReplyHeader::decode(&rx.pull(ReadReplyHeader::OK_LEN)).ok()?;
        let data = rx.copy_payload_to_vec();
        if data.len() != hdr.count as usize {
            return None;
        }
        Some((xid, hdr, data))
    }

    /// Fault-aware [`NfsClient::parse_write_reply`].
    pub fn try_parse_write_reply(&self, reply: &NetBuf) -> Option<(u32, WriteReply)> {
        let (xid, mut rx) = self.try_open(reply)?;
        let body = rx.pull(rx.payload_len());
        Some((xid, WriteReply::decode(&body).ok()?))
    }

    /// Fault-aware [`NfsClient::parse_lookup_reply`] (also CREATE).
    pub fn try_parse_lookup_reply(&self, reply: &NetBuf) -> Option<(u32, LookupReply)> {
        let (xid, mut rx) = self.try_open(reply)?;
        let body = rx.pull(rx.payload_len());
        Some((xid, LookupReply::decode(&body).ok()?))
    }

    /// Fault-aware [`NfsClient::parse_remove_reply`].
    pub fn try_parse_remove_reply(&self, reply: &NetBuf) -> Option<(u32, RemoveReply)> {
        let (xid, mut rx) = self.try_open(reply)?;
        let body = rx.pull(rx.payload_len());
        Some((xid, RemoveReply::decode(&body).ok()?))
    }

    /// Fault-aware [`NfsClient::parse_getattr_reply`].
    pub fn try_parse_getattr_reply(&self, reply: &NetBuf) -> Option<(u32, u32, Option<Fattr>)> {
        let (xid, mut rx) = self.try_open(reply)?;
        if rx.payload_len() < 4 {
            return None;
        }
        let body = rx.pull(rx.payload_len());
        let status = u32::from_be_bytes(body[0..4].try_into().ok()?);
        if status == NFS_OK {
            Some((xid, status, Some(Fattr::decode(&body, 4).ok()?)))
        } else {
            Some((xid, status, None))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::IscsiTarget;
    use simfs::FsParams;

    fn server(mode: ServerMode) -> (NfsServer, NfsClient) {
        let app = CopyLedger::new();
        let storage = CopyLedger::new();
        let client = CopyLedger::new();
        let target = sim::Shared::new(IscsiTarget::new(16 << 10, &storage));
        let module = (mode == ServerMode::NCache).then(|| {
            sim::Shared::new(ncache::NcacheModule::new(
                ncache::NcacheConfig::with_capacity(8 << 20),
                &app,
            ))
        });
        let initiator =
            crate::initiator::IscsiInitiator::new(target, &app, mode, module.clone());
        let fs = Filesystem::mkfs(initiator, FsParams::default(), &app).expect("mkfs");
        (
            NfsServer::new(mode, fs, module, &app),
            NfsClient::new(&client),
        )
    }

    fn roundtrip(server: &mut NfsServer, req: NetBuf) -> NetBuf {
        let delivered = crate::stack::deliver(&req, &CopyLedger::new());
        server.handle_message(delivered)
    }

    #[test]
    fn stats_count_per_procedure() {
        let (mut srv, mut client) = server(ServerMode::Original);
        let root = srv.root_fh();
        let create = client.create_request(root, "f");
        let reply = roundtrip(&mut srv, create);
        let fh = client.parse_create_reply(&reply).fh;
        roundtrip(&mut srv, client.write_request(fh, 0, &[1u8; 4096]));
        roundtrip(&mut srv, client.read_request(fh, 0, 4096));
        roundtrip(&mut srv, client.getattr_request(fh));
        roundtrip(&mut srv, client.lookup_request(root, "f"));
        roundtrip(&mut srv, client.readdir_request(root, 0, 4096));
        let s = srv.stats();
        assert_eq!(s.requests, 6);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.metadata_ops, 4);
        assert_eq!(s.bytes_read, 4096);
        assert_eq!(s.bytes_written, 4096);
        assert_eq!(s.errors, 0);
    }

    #[test]
    fn recorder_sees_balanced_spans_per_request() {
        let (mut srv, mut client) = server(ServerMode::NCache);
        let rec = obs::Recorder::new();
        rec.enable(obs::TraceConfig::default());
        srv.set_recorder(rec.clone());
        let root = srv.root_fh();
        let create = client.create_request(root, "f");
        let reply = roundtrip(&mut srv, create);
        let fh = client.parse_create_reply(&reply).fh;
        roundtrip(&mut srv, client.write_request(fh, 0, &[1u8; 4096]));
        roundtrip(&mut srv, client.read_request(fh, 0, 4096));
        assert!(rec.spans_balanced(), "every request span must close");
        assert_eq!(rec.spans_opened(), 3);
        assert_eq!(rec.counter("requests"), 3);
        assert_eq!(rec.counter("requests.ncache.create"), 1);
        assert_eq!(rec.counter("requests.ncache.write"), 1);
        assert_eq!(rec.counter("requests.ncache.read"), 1);
        // The data plane under the server reported into the same recorder:
        // the write inserted into the FHO tier, the read hit somewhere.
        assert!(rec.counter("cache.ncache-fho.insertions") >= 1);
    }

    #[test]
    fn reply_carries_the_calls_xid() {
        let (mut srv, mut client) = server(ServerMode::NCache);
        let root = srv.root_fh();
        let req = client.getattr_request(root);
        // Recover the xid this request carries.
        let xid = proto::rpc::RpcCall::decode(req.header()).expect("call").xid;
        let reply = roundtrip(&mut srv, req);
        let mut rx = crate::stack::deliver(&reply, &CopyLedger::new());
        let rpc = proto::rpc::RpcReply::decode(&rx.pull(proto::rpc::REPLY_LEN)).expect("reply");
        assert_eq!(rpc.xid, xid);
    }

    #[test]
    fn fh_mapping_round_trips() {
        assert_eq!(fh_to_ino(ino_to_fh(Ino(42))), Ino(42));
        assert_eq!(ino_to_fh(Filesystem::<crate::IscsiInitiator>::ROOT), 0);
    }

    #[test]
    fn getattr_reports_directory_type_for_root() {
        let (mut srv, mut client) = server(ServerMode::Original);
        let root = srv.root_fh();
        let reply = roundtrip(&mut srv, client.getattr_request(root));
        let (status, attrs) = client.parse_getattr_reply(&reply);
        assert_eq!(status, NFS_OK);
        assert_eq!(
            attrs.expect("attrs").ftype,
            proto::nfs::FileType::Directory
        );
    }

    #[test]
    fn unaligned_read_falls_back_to_copying_in_ncache_mode() {
        let (mut srv, mut client) = server(ServerMode::NCache);
        let root = srv.root_fh();
        let reply = roundtrip(&mut srv, client.create_request(root, "u"));
        let fh = client.parse_create_reply(&reply).fh;
        roundtrip(&mut srv, client.write_request(fh, 0, &[7u8; 8192]));
        // An unaligned read must still return correct bytes.
        let reply = roundtrip(&mut srv, client.read_request(fh, 100, 1000));
        let (hdr, data) = client.parse_read_reply(&reply);
        assert_eq!(hdr.status, NFS_OK);
        assert_eq!(data, vec![7u8; 1000]);
    }

    #[test]
    fn deferred_transmit_leaves_placeholders_for_the_caller() {
        let (mut srv, mut client) = server(ServerMode::NCache);
        let root = srv.root_fh();
        let reply = roundtrip(&mut srv, client.create_request(root, "d"));
        let fh = client.parse_create_reply(&reply).fh;
        roundtrip(&mut srv, client.write_request(fh, 0, &[9u8; 4096]));
        srv.set_defer_transmit(true);
        let raw = roundtrip(&mut srv, client.read_request(fh, 0, 4096));
        let (hdr, junk) = client.parse_read_reply(&raw);
        assert_eq!(hdr.status, NFS_OK);
        assert_ne!(junk, vec![9u8; 4096], "deferred reply still carries the placeholder");
        // The caller finishes the transmit hook itself.
        let mut raw = roundtrip(&mut srv, client.read_request(fh, 0, 4096));
        let module = srv.module().expect("ncache build");
        let report = {
            let m = module.borrow();
            ncache::substitute_payload(&mut raw, &m.cache_handle())
        };
        assert_eq!(report.missing, 0);
        assert!(report.substituted > 0);
        let (_, data) = client.parse_read_reply(&raw);
        assert_eq!(data, vec![9u8; 4096], "substitution resolves the stamp");
    }

    #[test]
    fn retransmitted_write_is_never_reexecuted_below_the_window() {
        let (mut srv, mut client) = server(ServerMode::NCache);
        srv.set_fault_recovery(true);
        let root = srv.root_fh();
        let reply = roundtrip(&mut srv, client.create_request(root, "w"));
        let fh = client.parse_create_reply(&reply).fh;
        let req = client.write_request(fh, 0, &[5u8; 4096]);
        let first = srv.handle_message(crate::stack::deliver(&req, &CopyLedger::new()));
        // The client timed out and resends the identical call (same xid).
        let second = srv.handle_message(crate::stack::deliver(&req, &CopyLedger::new()));
        assert_eq!(first.header(), second.header(), "cached reply bytes");
        let s = srv.stats();
        assert_eq!(s.writes, 1, "the WRITE executed exactly once");
        assert_eq!(s.bytes_written, 4096);
        assert_eq!(s.drc_hits, 1);
        assert_eq!(s.drc_inserts, 2, "CREATE and WRITE are both cached");
        let reply = roundtrip(&mut srv, client.read_request(fh, 0, 4096));
        assert_eq!(client.parse_read_reply(&reply).1, vec![5u8; 4096]);
    }

    #[test]
    fn drc_eviction_is_counted_and_reopens_the_window() {
        let (mut srv, mut client) = server(ServerMode::Original);
        srv.set_fault_recovery(true);
        srv.set_drc_capacity(2);
        let root = srv.root_fh();
        let reply = roundtrip(&mut srv, client.create_request(root, "e"));
        let fh = client.parse_create_reply(&reply).fh;
        let oldest = client.write_request(fh, 0, &[1u8; 512]);
        srv.handle_message(crate::stack::deliver(&oldest, &CopyLedger::new()));
        roundtrip(&mut srv, client.write_request(fh, 512, &[2u8; 512]));
        roundtrip(&mut srv, client.write_request(fh, 1024, &[3u8; 512]));
        // CREATE + 3 WRITEs against depth 2: the two oldest entries fell out.
        assert_eq!(srv.stats().drc_evictions, 2);
        // A retransmission from past the window is re-executed, not served
        // from cache — the window is the guarantee's boundary.
        srv.handle_message(crate::stack::deliver(&oldest, &CopyLedger::new()));
        let s = srv.stats();
        assert_eq!(s.drc_hits, 0);
        assert_eq!(s.writes, 4, "evicted xid re-executes");
    }

    #[test]
    fn enable_control_sizes_the_drc_from_the_admission_bound() {
        let (mut srv, mut client) = server(ServerMode::Original);
        srv.set_fault_recovery(true);
        // A deliberately tiny depth, then the control plane re-sizes it to
        // 2 x max_inflight (floor DRC_CAPACITY) so a full burst of
        // retransmissions cannot evict an entry inside the window.
        srv.set_drc_capacity(1);
        let cfg = crate::control::ControlConfig {
            max_inflight: 100,
            ..crate::control::ControlConfig::unlimited()
        };
        srv.enable_control(cfg);
        let root = srv.root_fh();
        let reply = roundtrip(&mut srv, client.create_request(root, "c"));
        let fh = client.parse_create_reply(&reply).fh;
        for k in 0..199u64 {
            roundtrip(&mut srv, client.write_request(fh, (k * 512) as u32, &[9u8; 512]));
        }
        // CREATE + 199 WRITEs exactly fill the re-sized depth of 200.
        assert_eq!(srv.stats().drc_evictions, 0);
        roundtrip(&mut srv, client.write_request(fh, 0, &[9u8; 512]));
        assert_eq!(srv.stats().drc_evictions, 1, "201st entry evicts");
    }

    #[test]
    fn disjoint_xid_bases_do_not_alias_in_the_drc() {
        let (mut srv, _) = server(ServerMode::Original);
        srv.set_fault_recovery(true);
        let ledger = CopyLedger::new();
        let mut a = NfsClient::with_xid_base(&ledger, 0);
        let mut b = NfsClient::with_xid_base(&ledger, 1 << 16);
        assert_ne!(a.peek_xid(), b.peek_xid());
        let root = srv.root_fh();
        let reply = roundtrip(&mut srv, a.create_request(root, "x"));
        let fh = a.parse_create_reply(&reply).fh;
        let wa = a.write_request(fh, 0, &[1u8; 512]);
        let wb = b.write_request(fh, 512, &[2u8; 512]);
        srv.handle_message(crate::stack::deliver(&wa, &CopyLedger::new()));
        srv.handle_message(crate::stack::deliver(&wb, &CopyLedger::new()));
        // Both retransmissions hit their own cached reply; neither write
        // re-executes.
        srv.handle_message(crate::stack::deliver(&wa, &CopyLedger::new()));
        srv.handle_message(crate::stack::deliver(&wb, &CopyLedger::new()));
        let s = srv.stats();
        assert_eq!(s.drc_hits, 2);
        assert_eq!(s.writes, 2);
    }

    #[test]
    fn nfs_server_moves_across_threads() {
        // Regression: the server (file system, initiator, NCache module)
        // must stay `Send` so the lane-parallel engine can serve requests
        // from worker threads behind one lock — and `Sync`, because the
        // read fast path serves concurrent READs through a shared
        // `&NfsServer` under the core `RwLock`'s read guard.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NfsServer>();
        let (mut srv, mut client) = server(ServerMode::NCache);
        let root = srv.root_fh();
        let reply = roundtrip(&mut srv, client.create_request(root, "t"));
        let fh = client.parse_create_reply(&reply).fh;
        let handle = std::thread::spawn(move || {
            roundtrip(&mut srv, client.write_request(fh, 0, &[3u8; 4096]));
            let reply = roundtrip(&mut srv, client.read_request(fh, 0, 4096));
            client.parse_read_reply(&reply).1
        });
        assert_eq!(handle.join().expect("worker"), vec![3u8; 4096]);
    }
}
