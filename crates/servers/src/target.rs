//! The iSCSI target: the storage server behind the pass-through server.
//!
//! Holds the volume image (sparse: unwritten blocks synthesize
//! deterministic contents) and speaks the `proto::iscsi` PDU subset. Its
//! behaviour is identical across all three server configurations — the
//! point of the paper is what happens on the *application* server — so
//! every read copies disk buffer → PDU and every write copies PDU → disk
//! buffer, charged to the storage server's own ledger.

use std::collections::HashMap;

use netbuf::{BufPool, CopyLedger, NetBuf};
use proto::iscsi::{
    DataIn, IscsiPdu, ReadyToTransfer, ScsiCommand, ScsiOp, ScsiResponse, BHS_LEN, BLOCK_SIZE,
};
use simfs::store::{synthetic_block, synthetic_block_into};

/// SCSI status signalling a transient device error (retry the command).
pub const STATUS_IO_ERROR: u8 = 1;
/// SCSI status signalling a malformed or incomplete write burst.
pub const STATUS_PROTOCOL_ERROR: u8 = 2;

/// Operation counters for the storage server.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TargetStats {
    /// READ commands served.
    pub read_cmds: u64,
    /// WRITE commands served.
    pub write_cmds: u64,
    /// Blocks sent to initiators.
    pub blocks_read: u64,
    /// Blocks written by initiators.
    pub blocks_written: u64,
    /// Commands failed with a transient (injected) device error.
    pub io_errors: u64,
    /// Write bursts rejected for damaged or missing Data-Out PDUs.
    pub bad_write_bursts: u64,
}

impl obs::StatsSnapshot for TargetStats {
    fn source(&self) -> &'static str {
        "iscsi-target"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("read_cmds", self.read_cmds),
            ("write_cmds", self.write_cmds),
            ("blocks_read", self.blocks_read),
            ("blocks_written", self.blocks_written),
            ("io_errors", self.io_errors),
            ("bad_write_bursts", self.bad_write_bursts),
        ]
    }
}

/// The storage server.
///
/// # Examples
///
/// ```
/// use netbuf::CopyLedger;
/// use servers::IscsiTarget;
/// use proto::iscsi::{ScsiCommand, ScsiOp};
///
/// let ledger = CopyLedger::new();
/// let mut target = IscsiTarget::new(1024, &ledger);
/// let pdus = target.handle_command(ScsiCommand {
///     itt: 1,
///     op: ScsiOp::Read,
///     lbn: 0,
///     blocks: 2,
/// }, Vec::new());
/// // Two Data-In PDUs plus the SCSI response.
/// assert_eq!(pdus.len(), 3);
/// ```
#[derive(Debug)]
pub struct IscsiTarget {
    image: HashMap<u64, Vec<u8>>,
    block_count: u64,
    ledger: CopyLedger,
    stats: TargetStats,
    /// Slab free list for Data-In payload buffers (per-packet recycling;
    /// never ledger-visible).
    pool: BufPool,
    /// Deterministic transient device errors (None = perfect disk).
    faults: Option<blockdev::TransientFaults>,
    /// Under fault injection, damaged write bursts are runtime conditions
    /// (rejected with a status), not initiator bugs (panics).
    lenient: bool,
}

impl IscsiTarget {
    /// A target exporting `block_count` blocks, charging `ledger`.
    pub fn new(block_count: u64, ledger: &CopyLedger) -> Self {
        IscsiTarget {
            image: HashMap::new(),
            block_count,
            ledger: ledger.clone(),
            stats: TargetStats::default(),
            pool: BufPool::slab_only(),
            faults: None,
            lenient: false,
        }
    }

    /// Arms deterministic transient device errors: affected commands
    /// complete with [`STATUS_IO_ERROR`] instead of data, and damaged
    /// write bursts are rejected with [`STATUS_PROTOCOL_ERROR`] rather
    /// than panicking. A zero-rate stream still arms the lenient
    /// validation (link faults can damage PDUs even on a perfect disk)
    /// but draws nothing, so the fault-free paths stay byte-identical.
    pub fn set_transient_faults(&mut self, faults: blockdev::TransientFaults) {
        self.lenient = true;
        if !faults.is_zero() {
            self.faults = Some(faults);
        }
    }

    /// Exported volume size in blocks.
    pub fn block_count(&self) -> u64 {
        self.block_count
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TargetStats {
        self.stats
    }

    /// The storage server's ledger.
    pub fn ledger(&self) -> &CopyLedger {
        &self.ledger
    }

    /// Blocks that have been explicitly written (diagnostic).
    pub fn written_blocks(&self) -> usize {
        self.image.len()
    }

    /// Raw contents of a block (integrity checks in tests).
    pub fn block_contents(&self, lbn: u64) -> Vec<u8> {
        self.image
            .get(&lbn)
            .cloned()
            .unwrap_or_else(|| synthetic_block(lbn))
    }

    /// Grants an R2T for a write command — the target's half of the iSCSI
    /// write handshake: the initiator sends its Data-Out PDUs only after
    /// receiving this solicitation.
    pub fn solicit(&self, cmd: ScsiCommand) -> NetBuf {
        debug_assert_eq!(cmd.op, ScsiOp::Write, "R2T solicits write data");
        let mut pdu = NetBuf::new(&self.ledger);
        pdu.push_header(
            &ReadyToTransfer {
                itt: cmd.itt,
                lbn: cmd.lbn,
                desired_len: cmd.blocks * BLOCK_SIZE as u32,
            }
            .encode(),
        );
        pdu
    }

    /// Serves a SCSI command. For reads, `data_out` must be empty and the
    /// result is one Data-In PDU per block followed by the response. For
    /// writes, `data_out` carries one Data-Out PDU per block (payload
    /// attached, sent after the [`IscsiTarget::solicit`] R2T) and the
    /// result is just the response.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range addresses or mismatched Data-Out payloads —
    /// initiator bugs, not runtime conditions.
    pub fn handle_command(&mut self, cmd: ScsiCommand, data_out: Vec<NetBuf>) -> Vec<NetBuf> {
        assert!(
            cmd.lbn + u64::from(cmd.blocks) <= self.block_count,
            "I/O beyond end of volume"
        );
        if self.faults.as_mut().is_some_and(|f| f.next_io_fails()) {
            // The device transiently failed the whole command; the
            // initiator sees a non-zero status and retries.
            self.stats.io_errors += 1;
            return vec![self.response(cmd.itt, STATUS_IO_ERROR)];
        }
        match cmd.op {
            ScsiOp::Read => {
                assert!(data_out.is_empty(), "read commands carry no Data-Out");
                self.stats.read_cmds += 1;
                let mut out = Vec::with_capacity(cmd.blocks as usize + 1);
                for i in 0..u64::from(cmd.blocks) {
                    let lbn = cmd.lbn + i;
                    let mut pdu = NetBuf::new(&self.ledger);
                    // Disk buffer → outgoing network buffer: the storage
                    // server's copy, charged to its CPU.
                    match self.image.get(&lbn) {
                        Some(block) => pdu.append_pooled(&self.pool, block),
                        None => pdu.append_filled(&self.pool, BLOCK_SIZE, |out| {
                            synthetic_block_into(lbn, out);
                        }),
                    }
                    pdu.push_header(
                        &DataIn {
                            itt: cmd.itt,
                            lbn,
                            data_len: BLOCK_SIZE as u32,
                            is_final: i + 1 == u64::from(cmd.blocks),
                        }
                        .encode(),
                    );
                    self.stats.blocks_read += 1;
                    out.push(pdu);
                }
                out.push(self.response(cmd.itt, 0));
                out
            }
            ScsiOp::Write => {
                self.stats.write_cmds += 1;
                match self.apply_data_out(&cmd, data_out) {
                    Ok(()) => vec![self.response(cmd.itt, 0)],
                    // Under fault injection a damaged burst is a runtime
                    // condition: reject it and let the initiator resend.
                    Err(_why) if self.lenient => {
                        self.stats.bad_write_bursts += 1;
                        vec![self.response(cmd.itt, STATUS_PROTOCOL_ERROR)]
                    }
                    // On a perfect link it is an initiator bug.
                    Err(why) => panic!("{why}"),
                }
            }
        }
    }

    /// Validates and applies a write command's Data-Out burst. Blocks are
    /// applied as they validate; a failed burst is re-sent in full by the
    /// initiator, and block writes are idempotent, so partial application
    /// is safe.
    fn apply_data_out(&mut self, cmd: &ScsiCommand, data_out: Vec<NetBuf>) -> Result<(), String> {
        if data_out.len() != cmd.blocks as usize {
            return Err("write command needs one Data-Out per block".into());
        }
        for mut pdu in data_out {
            if pdu.total_len() < BHS_LEN {
                return Err("Data-Out truncated below a BHS".into());
            }
            let hdr = pdu.pull(BHS_LEN);
            let decoded = match IscsiPdu::decode(&hdr) {
                Ok(p) => p,
                Err(e) => return Err(format!("undecodable Data-Out header: {e:?}")),
            };
            let IscsiPdu::DataOut(d) = decoded else {
                return Err(format!("expected Data-Out, got {decoded:?}"));
            };
            if d.itt != cmd.itt {
                return Err("Data-Out for a different command".into());
            }
            // Header-digest stand-in: every BHS field must agree with the
            // command, or a flipped bit could silently redirect the write.
            if d.lbn < cmd.lbn || d.lbn >= cmd.lbn + u64::from(cmd.blocks) {
                return Err("Data-Out LBN outside the command's range".into());
            }
            if d.data_len != BLOCK_SIZE as u32 {
                return Err("Data-Out data_len is not one block".into());
            }
            if pdu.payload_len() != BLOCK_SIZE {
                return Err("Data-Out payload must be one block".into());
            }
            // Incoming network buffer → disk buffer: the storage
            // server's receive copy.
            let block = pdu.copy_payload_to_vec();
            self.image.insert(d.lbn, block);
            self.stats.blocks_written += 1;
        }
        Ok(())
    }

    fn response(&self, itt: u32, status: u8) -> NetBuf {
        let mut pdu = NetBuf::new(&self.ledger);
        pdu.push_header(&ScsiResponse { itt, status }.encode());
        pdu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbuf::Segment;
    use proto::iscsi::DataOut;

    fn target() -> IscsiTarget {
        IscsiTarget::new(1024, &CopyLedger::new())
    }

    fn write_one(t: &mut IscsiTarget, lbn: u64, fill: u8) {
        let mut pdu = NetBuf::new(t.ledger());
        pdu.append_segment(Segment::from_vec(vec![fill; BLOCK_SIZE]));
        pdu.push_header(
            &DataOut {
                itt: 9,
                lbn,
                data_len: BLOCK_SIZE as u32,
            }
            .encode(),
        );
        // Deliver converts the built headers into leading payload bytes,
        // as the initiator's send path does.
        let pdu = crate::stack::deliver(&pdu, t.ledger());
        let resp = t.handle_command(
            ScsiCommand {
                itt: 9,
                op: ScsiOp::Write,
                lbn,
                blocks: 1,
            },
            vec![pdu],
        );
        assert_eq!(resp.len(), 1);
    }

    #[test]
    fn read_returns_per_block_data_in_pdus_with_lbns() {
        let mut t = target();
        let pdus = t.handle_command(
            ScsiCommand {
                itt: 1,
                op: ScsiOp::Read,
                lbn: 10,
                blocks: 3,
            },
            Vec::new(),
        );
        assert_eq!(pdus.len(), 4);
        for (i, pdu) in pdus[..3].iter().enumerate() {
            let hdr = pdu.peek(0, 0); // headers live in the header area here
            assert!(hdr.is_empty());
            let decoded = IscsiPdu::decode(pdu.header()).expect("valid");
            let IscsiPdu::DataIn(d) = decoded else {
                panic!("expected Data-In")
            };
            assert_eq!(d.lbn, 10 + i as u64, "LBNs ride in the PDUs (§3.2)");
            assert_eq!(d.is_final, i == 2);
            assert_eq!(pdu.payload_len(), BLOCK_SIZE);
        }
        let IscsiPdu::Response(r) = IscsiPdu::decode(pdus[3].header()).expect("valid") else {
            panic!("expected response")
        };
        assert_eq!(r.itt, 1);
        assert_eq!(t.stats().blocks_read, 3);
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut t = target();
        write_one(&mut t, 42, 0xAB);
        assert_eq!(t.written_blocks(), 1);
        let pdus = t.handle_command(
            ScsiCommand {
                itt: 2,
                op: ScsiOp::Read,
                lbn: 42,
                blocks: 1,
            },
            Vec::new(),
        );
        assert_eq!(pdus[0].copy_payload_to_vec(), vec![0xAB; BLOCK_SIZE]);
        assert_eq!(t.stats().write_cmds, 1);
        assert_eq!(t.stats().read_cmds, 1);
    }

    #[test]
    fn unwritten_blocks_read_synthetic() {
        let mut t = target();
        let pdus = t.handle_command(
            ScsiCommand {
                itt: 3,
                op: ScsiOp::Read,
                lbn: 7,
                blocks: 1,
            },
            Vec::new(),
        );
        assert_eq!(pdus[0].copy_payload_to_vec(), synthetic_block(7));
    }

    #[test]
    fn copies_charged_to_storage_ledger() {
        let ledger = CopyLedger::new();
        let mut t = IscsiTarget::new(64, &ledger);
        let before = ledger.snapshot();
        t.handle_command(
            ScsiCommand {
                itt: 1,
                op: ScsiOp::Read,
                lbn: 0,
                blocks: 2,
            },
            Vec::new(),
        );
        let d = ledger.snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 2, "one disk→PDU copy per block");
        assert_eq!(d.payload_bytes_copied, 2 * BLOCK_SIZE as u64);
    }

    #[test]
    fn transient_errors_return_status_and_are_bounded() {
        let mut t = target();
        t.set_transient_faults(blockdev::TransientFaults::new(5, 1_000_000));
        let mut failed = 0;
        let mut ok = 0;
        for i in 0..32u32 {
            let pdus = t.handle_command(
                ScsiCommand {
                    itt: i,
                    op: ScsiOp::Read,
                    lbn: 0,
                    blocks: 1,
                },
                Vec::new(),
            );
            let IscsiPdu::Response(r) =
                IscsiPdu::decode(pdus.last().unwrap().header()).expect("valid")
            else {
                panic!("expected response")
            };
            if r.status == STATUS_IO_ERROR {
                assert_eq!(pdus.len(), 1, "an errored command carries no data");
                failed += 1;
            } else {
                assert_eq!(pdus.len(), 2);
                ok += 1;
            }
        }
        assert!(failed > 0, "rate-1.0 errors fired");
        assert!(ok > 0, "the consecutive-failure bound forces successes");
        assert_eq!(t.stats().io_errors, failed);
    }

    #[test]
    fn damaged_write_burst_rejected_not_panicked_under_faults() {
        let mut t = target();
        // Rate so low it never fires, but arms lenient validation.
        t.set_transient_faults(blockdev::TransientFaults::new(5, 1));
        // A write claiming one block but carrying none.
        let resp = t.handle_command(
            ScsiCommand {
                itt: 3,
                op: ScsiOp::Write,
                lbn: 0,
                blocks: 1,
            },
            Vec::new(),
        );
        let IscsiPdu::Response(r) = IscsiPdu::decode(resp[0].header()).expect("valid") else {
            panic!("expected response")
        };
        assert_eq!(r.status, STATUS_PROTOCOL_ERROR);
        assert_eq!(t.stats().bad_write_bursts, 1);
        // The target still serves.
        write_one(&mut t, 4, 0x11);
        assert_eq!(t.block_contents(4), vec![0x11; BLOCK_SIZE]);
    }

    #[test]
    #[should_panic(expected = "beyond end of volume")]
    fn out_of_range_io_panics() {
        target().handle_command(
            ScsiCommand {
                itt: 1,
                op: ScsiOp::Read,
                lbn: 1023,
                blocks: 2,
            },
            Vec::new(),
        );
    }

    #[test]
    #[should_panic(expected = "one Data-Out per block")]
    fn write_without_data_panics() {
        target().handle_command(
            ScsiCommand {
                itt: 1,
                op: ScsiOp::Write,
                lbn: 0,
                blocks: 1,
            },
            Vec::new(),
        );
    }
}
