//! The iSCSI initiator: the application server's path to its storage.
//!
//! Implements [`simfs::BlockStore`], so the file system is oblivious to
//! which build is running — exactly the transparency the paper claims
//! (Table 1: "buffer cache: None; NFS/Web server daemon: None"). The two
//! functions the paper *does* modify ("two functions invoking socket
//! interface changed", §4.1) are here:
//!
//! * the **receive** path ([`IscsiInitiator::read_block`]): under NCache,
//!   Data-class Data-In payloads are parked in the LBN cache unmodified
//!   and the file system gets a key-stamped placeholder — hook 1;
//! * the **send** path ([`IscsiInitiator::write_block`]): under NCache, a
//!   flushed placeholder block triggers FHO→LBN remapping and the real
//!   payload is attached to the outgoing Data-Out logically — hook 3.


use ncache::NcacheModule;
use netbuf::key::Lbn;
use netbuf::{BufPool, CopyLedger, NetBuf, Segment};
use proto::iscsi::{DataOut, IscsiPdu, ScsiCommand, ScsiOp, BHS_LEN, BLOCK_SIZE};
use simfs::{BlockClass, BlockStore};

use crate::mode::ServerMode;
use crate::stack;
use crate::target::IscsiTarget;

/// One block I/O issued to the storage server, recorded for the timing
/// layer (which coalesces contiguous runs into iSCSI commands and charges
/// wire and storage-CPU time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoRecord {
    /// Block address.
    pub lbn: u64,
    /// True for writes.
    pub is_write: bool,
    /// Metadata or regular data.
    pub class: BlockClass,
}

/// Hard cap on command (re)issues; the consecutive-fault bounds of
/// `sim::fault` and `blockdev::TransientFaults` guarantee success in at
/// most ~16 attempts even at rate 1.0, so hitting this is a logic bug.
const MAX_CMD_ATTEMPTS: u32 = 32;
/// First retry backoff (virtual µs; the data plane is untimed, so backoff
/// is accounted, not slept).
const BASE_BACKOFF_US: u64 = 100;
/// Exponential backoff cap (five doublings).
const MAX_BACKOFF_US: u64 = 3200;

/// Initiator counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InitiatorStats {
    /// Blocks read from the target.
    pub blocks_read: u64,
    /// Blocks written to the target.
    pub blocks_written: u64,
    /// Data-class reads that bypassed copying via the NCache hook.
    pub zero_copy_reads: u64,
    /// Flushes satisfied from the network-centric cache (remap path).
    pub zero_copy_writes: u64,
    /// NCache admissions that failed (cache full) and fell back to the
    /// physical path.
    pub cache_admission_failures: u64,
    /// File-system cache misses served from the network-centric cache
    /// without storage traffic (the second-level-cache effect, §3.4).
    pub second_level_hits: u64,
    /// SCSI commands re-issued after a fault (any cause).
    pub retries: u64,
    /// Retries caused by a lost or late PDU (command timer fired).
    pub timeouts: u64,
    /// Non-zero SCSI status responses (transient device or burst errors).
    pub io_errors: u64,
    /// Data-In PDUs discarded as truncated or corrupt.
    pub damaged_pdus: u64,
    /// Duplicate/reordered deliveries absorbed without recovery action.
    pub absorbed_anomalies: u64,
    /// Virtual microseconds of capped exponential backoff accumulated
    /// across all retries.
    pub backoff_us: u64,
}

impl obs::StatsSnapshot for InitiatorStats {
    fn source(&self) -> &'static str {
        "iscsi-initiator"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("blocks_read", self.blocks_read),
            ("blocks_written", self.blocks_written),
            ("zero_copy_reads", self.zero_copy_reads),
            ("zero_copy_writes", self.zero_copy_writes),
            ("cache_admission_failures", self.cache_admission_failures),
            ("second_level_hits", self.second_level_hits),
            ("retries", self.retries),
            ("timeouts", self.timeouts),
            ("io_errors", self.io_errors),
            ("damaged_pdus", self.damaged_pdus),
            ("absorbed_anomalies", self.absorbed_anomalies),
            ("backoff_us", self.backoff_us),
        ]
    }
}

/// The iSCSI initiator.
#[derive(Debug)]
pub struct IscsiInitiator {
    target: sim::Shared<IscsiTarget>,
    ledger: CopyLedger,
    mode: ServerMode,
    module: Option<sim::Shared<NcacheModule>>,
    next_itt: u32,
    io_log: Vec<IoRecord>,
    stats: InitiatorStats,
    recorder: obs::Recorder,
    /// Slab free list for receive-copy destinations and placeholder
    /// blocks (per-packet recycling; never ledger-visible).
    pool: BufPool,
    /// Shared fault schedule for the initiator⇄target link (None = a
    /// perfect link; every fault hook vanishes).
    fault_plan: Option<sim::Shared<sim::FaultPlan>>,
}

impl IscsiInitiator {
    /// An initiator for `mode`, talking to `target`, charging `ledger`
    /// (the application server's CPU). NCache mode requires `module`.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is [`ServerMode::NCache`] but no module is given.
    pub fn new(
        target: sim::Shared<IscsiTarget>,
        ledger: &CopyLedger,
        mode: ServerMode,
        module: Option<sim::Shared<NcacheModule>>,
    ) -> Self {
        assert!(
            mode != ServerMode::NCache || module.is_some(),
            "NCache mode requires the NCache module"
        );
        IscsiInitiator {
            target,
            ledger: ledger.clone(),
            mode,
            module,
            next_itt: 1,
            io_log: Vec::new(),
            stats: InitiatorStats::default(),
            recorder: obs::Recorder::new(),
            pool: BufPool::slab_only(),
            fault_plan: None,
        }
    }

    /// Attaches a recorder; second-level cache hits become trace events.
    pub fn set_recorder(&mut self, rec: obs::Recorder) {
        self.recorder = rec;
    }

    /// Attaches a fault schedule to the initiator⇄target link. Commands
    /// gain timeouts, PDU validation, and bounded retries with capped
    /// exponential backoff.
    pub fn set_fault_plan(&mut self, plan: sim::Shared<sim::FaultPlan>) {
        self.fault_plan = Some(plan);
    }

    /// The build this initiator runs.
    pub fn mode(&self) -> ServerMode {
        self.mode
    }

    /// Counter snapshot.
    pub fn stats(&self) -> InitiatorStats {
        self.stats
    }

    /// Drains the I/O log (the timing layer calls this once per request).
    pub fn take_io_log(&mut self) -> Vec<IoRecord> {
        std::mem::take(&mut self.io_log)
    }

    /// The NCache module, when running the NCache build.
    pub fn module(&self) -> Option<sim::Shared<NcacheModule>> {
        self.module.clone()
    }

    /// Writes a chunk evicted from the network-centric cache back to the
    /// storage server (dirty LBN chunk displaced by cache pressure).
    pub fn write_chunk_direct(&mut self, lbn: Lbn, segs: Vec<Segment>, len: usize) {
        assert_eq!(len, BLOCK_SIZE, "chunk writebacks are whole blocks");
        self.io_log.push(IoRecord {
            lbn: lbn.0,
            is_write: true,
            class: BlockClass::Data,
        });
        self.stats.blocks_written += 1;
        self.stats.zero_copy_writes += 1;
        let mut pdu = NetBuf::new(&self.ledger);
        for seg in segs {
            pdu.append_segment(seg);
        }
        self.send_write(lbn.0, pdu);
    }

    /// Flushes any writebacks the NCache module has queued (evictions).
    pub fn drain_module_writebacks(&mut self) {
        let Some(module) = self.module.clone() else {
            return;
        };
        let wbs = module.borrow_mut().take_writebacks();
        for wb in wbs {
            self.write_chunk_direct(wb.lbn, wb.segs, wb.len);
        }
    }

    fn alloc_itt(&mut self) -> u32 {
        let itt = self.next_itt;
        self.next_itt += 1;
        itt
    }

    /// Books one retry: bumps the counters and doubles the (capped)
    /// backoff the command timer would wait before re-issuing.
    fn note_retry(&mut self, backoff: &mut u64) {
        self.stats.retries += 1;
        self.stats.backoff_us += *backoff;
        *backoff = (*backoff * 2).min(MAX_BACKOFF_US);
    }

    /// The non-zero SCSI status of a lone response PDU, if that is what
    /// `pdus` is (a transiently failed command carries no data).
    fn command_failed(pdus: &[NetBuf]) -> Option<u8> {
        let [only] = pdus else { return None };
        match IscsiPdu::decode(only.header()) {
            Ok(IscsiPdu::Response(r)) if r.status != 0 => Some(r.status),
            _ => None,
        }
    }

    /// Issues a one-block read command and returns the delivered Data-In
    /// PDU (headers pulled), ready for payload extraction. Under a fault
    /// plan the command is re-issued — with capped exponential backoff —
    /// on device errors, timeouts (lost/late PDUs), and damaged Data-In
    /// frames, until a clean delivery validates.
    fn fetch_pdu(&mut self, lbn: u64) -> NetBuf {
        let mut backoff = BASE_BACKOFF_US;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            assert!(
                attempt <= MAX_CMD_ATTEMPTS,
                "consecutive-fault bounds guarantee read progress"
            );
            let itt = self.alloc_itt();
            let cmd = ScsiCommand {
                itt,
                op: ScsiOp::Read,
                lbn,
                blocks: 1,
            };
            let pdus = self.target.borrow_mut().handle_command(cmd, Vec::new());
            if Self::command_failed(&pdus).is_some() {
                self.stats.io_errors += 1;
                self.note_retry(&mut backoff);
                continue;
            }
            debug_assert_eq!(pdus.len(), 2, "one Data-In plus the response");
            let (rx, kind) = match &self.fault_plan {
                Some(plan) => stack::deliver_faulty(
                    &pdus[0],
                    &self.ledger,
                    &mut plan.borrow_mut(),
                    sim::FaultLink::InitiatorTarget,
                ),
                None => (Some(stack::deliver(&pdus[0], &self.ledger)), None),
            };
            match kind {
                // Lost, or arriving after the command timer: retransmit.
                Some(sim::FaultKind::Drop) | Some(sim::FaultKind::Delay) => {
                    self.stats.timeouts += 1;
                    self.note_retry(&mut backoff);
                    continue;
                }
                // A duplicate or reordered Data-In for a single
                // outstanding command needs no recovery: the extra copy
                // is discarded by ITT matching.
                Some(sim::FaultKind::Duplicate) | Some(sim::FaultKind::Reorder) => {
                    self.stats.absorbed_anomalies += 1;
                }
                _ => {}
            }
            let mut rx = rx.expect("non-drop faults still deliver");
            if rx.payload_len() >= BHS_LEN {
                let hdr = rx.pull(BHS_LEN);
                if let Ok(IscsiPdu::DataIn(d)) = IscsiPdu::decode(&hdr) {
                    if d.itt == itt && d.lbn == lbn && rx.payload_len() == BLOCK_SIZE {
                        return rx;
                    }
                }
            }
            // Truncated below a BHS, undecodable, or mismatched: discard
            // the frame and retransmit the command.
            self.stats.damaged_pdus += 1;
            self.note_retry(&mut backoff);
        }
    }

    fn send_write(&mut self, lbn: u64, payload_pdu: NetBuf) {
        let mut backoff = BASE_BACKOFF_US;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            assert!(
                attempt <= MAX_CMD_ATTEMPTS,
                "consecutive-fault bounds guarantee write progress"
            );
            let itt = self.alloc_itt();
            // Each attempt re-frames the same payload segments (shared
            // storage, no copies) under a fresh ITT, exactly like a real
            // initiator retransmitting a write burst.
            let mut pdu = NetBuf::new(&self.ledger);
            for seg in payload_pdu.segments() {
                pdu.append_segment(seg.clone());
            }
            pdu.push_header(
                &DataOut {
                    itt,
                    lbn,
                    data_len: BLOCK_SIZE as u32,
                }
                .encode(),
            );
            let cmd = ScsiCommand {
                itt,
                op: ScsiOp::Write,
                lbn,
                blocks: 1,
            };
            // Deliver into the target's memory (DMA) before it parses.
            let (delivered, kind) = match &self.fault_plan {
                Some(plan) => stack::deliver_faulty(
                    &pdu,
                    self.target.borrow().ledger(),
                    &mut plan.borrow_mut(),
                    sim::FaultLink::InitiatorTarget,
                ),
                None => (Some(stack::deliver(&pdu, self.target.borrow().ledger())), None),
            };
            let Some(delivered) = delivered else {
                // The burst never arrived; the target's R2T timer would
                // fire and the command dies on the initiator's timer.
                self.stats.timeouts += 1;
                self.note_retry(&mut backoff);
                continue;
            };
            match kind {
                Some(sim::FaultKind::Duplicate) | Some(sim::FaultKind::Reorder) => {
                    self.stats.absorbed_anomalies += 1;
                }
                _ => {}
            }
            let resp = self.target.borrow_mut().handle_command(cmd, vec![delivered]);
            debug_assert_eq!(resp.len(), 1);
            if matches!(kind, Some(sim::FaultKind::Delay)) {
                // The burst arrived — and block writes are idempotent, so
                // its effect is harmless — but the response missed the
                // command timer; the initiator re-issues.
                self.stats.timeouts += 1;
                self.note_retry(&mut backoff);
                continue;
            }
            if Self::command_failed(&resp).is_some() {
                // Transient device error or a damaged burst the target
                // rejected: re-send everything.
                self.stats.io_errors += 1;
                self.note_retry(&mut backoff);
                continue;
            }
            return;
        }
    }
}

/// Builds a key-stamped placeholder block for a second-level cache hit.
/// The block is junk plus a stamp, so it rides a recycled (zero-scrubbed)
/// slab instead of a fresh allocation.
fn placeholder_for(ledger: &CopyLedger, pool: &BufPool, lbn: Lbn) -> Segment {
    ledger.charge_header_bytes(netbuf::key::KeyStamp::LEN as u64);
    pool.seg_filled(BLOCK_SIZE, |junk| {
        netbuf::key::KeyStamp::new().with_lbn(lbn).encode_into(junk);
    })
}

impl BlockStore for IscsiInitiator {
    fn read_block(&mut self, lbn: u64, class: BlockClass) -> Segment {
        // Second-level cache (§3.4): a file-system cache miss that hits the
        // network-centric cache is served without any storage traffic —
        // "most of these disk accesses are caught and serviced by a much
        // larger network-centric cache".
        if self.mode == ServerMode::NCache && class == BlockClass::Data {
            let module = self.module.clone().expect("NCache mode has a module");
            let mut m = module.borrow_mut();
            if m.cache_mut().lookup(Lbn(lbn).into()).is_some() {
                self.stats.second_level_hits += 1;
                drop(m);
                self.recorder.emit(obs::EventKind::CacheAccess {
                    tier: "ncache",
                    hit: true,
                });
                return placeholder_for(&self.ledger, &self.pool, Lbn(lbn));
            }
        }
        self.io_log.push(IoRecord {
            lbn,
            is_write: false,
            class,
        });
        self.stats.blocks_read += 1;
        let mut pdu = self.fetch_pdu(lbn);
        match (self.mode, class) {
            (ServerMode::NCache, BlockClass::Data) => {
                // Hook 1: park the wire payload in the LBN cache; the file
                // system gets a placeholder. No copy.
                let module = self.module.clone().expect("NCache mode has a module");
                let segs = pdu.take_payload();
                let result = module.borrow_mut().on_data_in(Lbn(lbn), segs, BLOCK_SIZE);
                match result {
                    Ok(placeholder) => {
                        self.stats.zero_copy_reads += 1;
                        self.drain_module_writebacks();
                        placeholder
                    }
                    Err(_) => {
                        // Cache full of unremapped dirty chunks: fall back
                        // to the copying path (payload was consumed; refetch).
                        self.stats.cache_admission_failures += 1;
                        let pdu = self.fetch_pdu(lbn);
                        pdu.copy_payload_to_pooled(&self.pool)
                    }
                }
            }
            (ServerMode::Baseline, BlockClass::Data) => {
                // The ideal bound: the receive copy is simply removed; the
                // file system gets junk.
                Segment::zeroed(BLOCK_SIZE)
            }
            (_, BlockClass::Meta) => {
                // Metadata under every build: physically copied, but not a
                // regular-data copy (Table 2 counts only the latter).
                let bytes = pdu.peek(0, pdu.payload_len());
                self.ledger.charge_meta_copy(bytes.len() as u64);
                Segment::from_vec(bytes)
            }
            (ServerMode::Original, BlockClass::Data) => {
                // The network-stack → buffer-cache copy.
                pdu.copy_payload_to_pooled(&self.pool)
            }
        }
    }

    fn write_block(&mut self, lbn: u64, class: BlockClass, data: &Segment) {
        self.io_log.push(IoRecord {
            lbn,
            is_write: true,
            class,
        });
        self.stats.blocks_written += 1;
        let mut pdu = NetBuf::new(&self.ledger);
        match (self.mode, class) {
            (ServerMode::NCache, BlockClass::Data) => {
                // Hook 3: a flushed placeholder triggers remapping and the
                // cached payload goes out logically.
                let module = self.module.clone().expect("NCache mode has a module");
                let segs = module.borrow_mut().on_flush_write(data.as_slice(), Lbn(lbn));
                match segs {
                    Some(segs) => {
                        self.stats.zero_copy_writes += 1;
                        for seg in segs {
                            pdu.append_segment(seg);
                        }
                    }
                    None => {
                        // Not a placeholder (e.g. a physically-written
                        // block): ordinary copying path.
                        pdu.append_pooled(&self.pool, data.as_slice());
                    }
                }
            }
            (ServerMode::Baseline, BlockClass::Data) => {
                // Zero-copy bound: junk goes out without a copy.
                pdu.append_segment(data.clone());
            }
            (_, BlockClass::Meta) => {
                // Metadata flush: a physical copy, charged as such.
                self.ledger.charge_meta_copy(data.len() as u64);
                pdu.append_segment(data.clone());
            }
            (ServerMode::Original, BlockClass::Data) => {
                // Buffer cache → network stack copy.
                pdu.append_pooled(&self.pool, data.as_slice());
            }
        }
        self.send_write(lbn, pdu);
    }

    fn block_count(&self) -> u64 {
        self.target.borrow().block_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncache::{NcacheConfig, NcacheModule};
    use simfs::store::synthetic_block;

    fn rig(mode: ServerMode, cache_bytes: u64) -> (IscsiInitiator, sim::Shared<IscsiTarget>, CopyLedger) {
        let storage_ledger = CopyLedger::new();
        let app_ledger = CopyLedger::new();
        let target = sim::Shared::new(IscsiTarget::new(4096, &storage_ledger));
        let module = (mode == ServerMode::NCache).then(|| {
            sim::Shared::new(NcacheModule::new(
                NcacheConfig::with_capacity(cache_bytes),
                &app_ledger,
            ))
        });
        let init = IscsiInitiator::new(target.clone(), &app_ledger, mode, module);
        (init, target, app_ledger)
    }

    #[test]
    fn original_read_copies_once() {
        let (mut init, _t, ledger) = rig(ServerMode::Original, 0);
        let before = ledger.snapshot();
        let seg = init.read_block(5, BlockClass::Data);
        assert_eq!(seg.as_slice(), &synthetic_block(5)[..]);
        let d = ledger.snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 1, "the net→cache copy");
        assert_eq!(init.stats().blocks_read, 1);
    }

    #[test]
    fn ncache_read_is_zero_copy_and_stamped() {
        let (mut init, _t, ledger) = rig(ServerMode::NCache, 1 << 22);
        let before = ledger.snapshot();
        let seg = init.read_block(5, BlockClass::Data);
        let d = ledger.snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 0, "hook 1 removes the receive copy");
        let stamp = netbuf::key::KeyStamp::decode(seg.as_slice()).expect("placeholder");
        assert_eq!(stamp.lbn, Some(Lbn(5)));
        let module = init.module().expect("module");
        assert!(module.borrow().cache_contains_lbn(Lbn(5)));
        assert_eq!(init.stats().zero_copy_reads, 1);
        // The cached payload is the true block contents.
        assert_eq!(
            module.borrow_mut().cache_mut().chunk_bytes(Lbn(5).into()),
            Some(synthetic_block(5))
        );
    }

    #[test]
    fn ncache_metadata_read_still_copies() {
        let (mut init, _t, ledger) = rig(ServerMode::NCache, 1 << 22);
        let before = ledger.snapshot();
        let seg = init.read_block(3, BlockClass::Meta);
        assert_eq!(seg.as_slice(), &synthetic_block(3)[..]);
        let d = ledger.snapshot().delta_since(&before);
        assert_eq!(d.meta_copies, 1, "metadata takes the physical path");
        assert_eq!(d.payload_copies, 0, "but is not a regular-data copy");
        assert_eq!(init.stats().zero_copy_reads, 0);
    }

    #[test]
    fn baseline_read_copies_nothing_and_returns_junk() {
        let (mut init, _t, ledger) = rig(ServerMode::Baseline, 0);
        let before = ledger.snapshot();
        let seg = init.read_block(5, BlockClass::Data);
        assert_eq!(
            ledger.snapshot().delta_since(&before).payload_copies,
            0
        );
        assert_eq!(seg.as_slice(), &vec![0u8; BLOCK_SIZE][..], "junk");
    }

    #[test]
    fn original_write_copies_once_and_persists() {
        let (mut init, t, ledger) = rig(ServerMode::Original, 0);
        let before = ledger.snapshot();
        let data = Segment::from_vec(vec![0xEE; BLOCK_SIZE]);
        init.write_block(9, BlockClass::Data, &data);
        let d = ledger.snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 1, "the cache→net copy");
        assert_eq!(t.borrow().block_contents(9), vec![0xEE; BLOCK_SIZE]);
    }

    #[test]
    fn ncache_flush_remaps_and_sends_real_data() {
        let (mut init, t, ledger) = rig(ServerMode::NCache, 1 << 22);
        let module = init.module().expect("module");
        // An NFS write parked payload in the FHO cache.
        let fho = netbuf::key::Fho::new(netbuf::key::FileHandle(7), 0);
        let stamp = module
            .borrow_mut()
            .on_nfs_write(fho, vec![Segment::from_vec(vec![0xDD; BLOCK_SIZE])], BLOCK_SIZE)
            .expect("fits");
        // The FS flushes the placeholder block to LBN 77.
        let mut placeholder = vec![0u8; BLOCK_SIZE];
        stamp.encode_into(&mut placeholder);
        let before = ledger.snapshot();
        init.write_block(77, BlockClass::Data, &Segment::from_vec(placeholder));
        let d = ledger.snapshot().delta_since(&before);
        assert_eq!(d.payload_copies, 0, "flush is zero-copy on the app server");
        // The *real* data reached storage, not the junk.
        assert_eq!(t.borrow().block_contents(77), vec![0xDD; BLOCK_SIZE]);
        assert!(module.borrow().cache_contains_lbn(Lbn(77)), "remapped");
        assert!(!module.borrow().cache_contains_fho(fho));
        assert_eq!(init.stats().zero_copy_writes, 1);
    }

    #[test]
    fn ncache_cache_full_falls_back_to_copying() {
        // A cache big enough for one chunk, filled with an unremappable
        // dirty FHO chunk: the next data read must fall back.
        let chunk = BLOCK_SIZE as u64 + 128;
        let (mut init, _t, _l) = rig(ServerMode::NCache, chunk);
        let module = init.module().expect("module");
        module
            .borrow_mut()
            .on_nfs_write(
                netbuf::key::Fho::new(netbuf::key::FileHandle(1), 0),
                vec![Segment::from_vec(vec![1; BLOCK_SIZE])],
                BLOCK_SIZE,
            )
            .expect("fits");
        let seg = init.read_block(5, BlockClass::Data);
        assert_eq!(seg.as_slice(), &synthetic_block(5)[..], "correct data anyway");
        assert_eq!(init.stats().cache_admission_failures, 1);
    }

    #[test]
    fn io_log_records_and_drains() {
        let (mut init, _t, _l) = rig(ServerMode::Original, 0);
        init.read_block(1, BlockClass::Meta);
        init.write_block(2, BlockClass::Data, &Segment::zeroed(BLOCK_SIZE));
        let log = init.take_io_log();
        assert_eq!(
            log,
            vec![
                IoRecord {
                    lbn: 1,
                    is_write: false,
                    class: BlockClass::Meta
                },
                IoRecord {
                    lbn: 2,
                    is_write: true,
                    class: BlockClass::Data
                },
            ]
        );
        assert!(init.take_io_log().is_empty());
    }

    #[test]
    #[should_panic(expected = "requires the NCache module")]
    fn ncache_mode_without_module_panics() {
        let target = sim::Shared::new(IscsiTarget::new(16, &CopyLedger::new()));
        let _ = IscsiInitiator::new(target, &CopyLedger::new(), ServerMode::NCache, None);
    }

    fn arm(init: &mut IscsiInitiator, target: &sim::Shared<IscsiTarget>, spec: sim::FaultSpec) {
        init.set_fault_plan(sim::Shared::new(sim::FaultPlan::new(&spec, 99)));
        target
            .borrow_mut()
            .set_transient_faults(blockdev::TransientFaults::new(99, spec.io_ppm()));
    }

    #[test]
    fn reads_survive_heavy_loss_with_correct_bytes() {
        let (mut init, t, _l) = rig(ServerMode::Original, 0);
        arm(
            &mut init,
            &t,
            sim::FaultSpec {
                loss: 0.4,
                io: 0.3,
                ..sim::FaultSpec::default()
            },
        );
        for lbn in 0..32u64 {
            let seg = init.read_block(lbn, BlockClass::Data);
            assert_eq!(seg.as_slice(), &synthetic_block(lbn)[..], "lbn {lbn}");
        }
        let s = init.stats();
        assert!(s.retries > 0, "40% loss + 30% io errors forced retries");
        assert!(s.timeouts > 0);
        assert!(s.io_errors > 0);
        assert!(s.backoff_us > 0, "backoff accounted");
    }

    #[test]
    fn writes_survive_corruption_and_truncation_and_persist() {
        let (mut init, t, _l) = rig(ServerMode::Original, 0);
        arm(
            &mut init,
            &t,
            sim::FaultSpec {
                corrupt: 0.25,
                truncate: 0.25,
                loss: 0.2,
                ..sim::FaultSpec::default()
            },
        );
        for lbn in 0..24u64 {
            let data = Segment::from_vec(vec![lbn as u8 ^ 0x5A; BLOCK_SIZE]);
            init.write_block(lbn, BlockClass::Data, &data);
            assert_eq!(
                t.borrow().block_contents(lbn),
                vec![lbn as u8 ^ 0x5A; BLOCK_SIZE],
                "lbn {lbn}: the final write burst always lands intact"
            );
        }
        assert!(init.stats().retries > 0, "the faults really fired");
    }

    #[test]
    fn same_seed_same_retry_schedule() {
        let spec = sim::FaultSpec {
            loss: 0.3,
            corrupt: 0.2,
            io: 0.2,
            ..sim::FaultSpec::default()
        };
        let run = || {
            let (mut init, t, _l) = rig(ServerMode::Original, 0);
            arm(&mut init, &t, spec);
            let mut bytes = Vec::new();
            for lbn in 0..16u64 {
                bytes.extend_from_slice(init.read_block(lbn, BlockClass::Data).as_slice());
            }
            (bytes, init.stats())
        };
        let (bytes_a, stats_a) = run();
        let (bytes_b, stats_b) = run();
        assert_eq!(bytes_a, bytes_b);
        assert_eq!(stats_a, stats_b, "identical fault schedule, identical recovery");
    }
}
