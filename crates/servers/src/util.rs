//! Small shared helpers for segment surgery.

use netbuf::Segment;

/// Splits a run of payload segments into consecutive `unit`-byte groups
/// (the last may be short). Pure pointer manipulation: each output group
/// shares storage with the inputs. Used to break a multi-block NFS write
/// payload into per-block chunks for the FHO cache.
///
/// # Examples
///
/// ```
/// use netbuf::Segment;
/// use servers::util::split_segments;
///
/// let segs = vec![Segment::from_vec(vec![1; 6]), Segment::from_vec(vec![2; 6])];
/// let groups = split_segments(&segs, 4);
/// assert_eq!(groups.len(), 3);
/// let lens: Vec<usize> = groups
///     .iter()
///     .map(|g| g.iter().map(Segment::len).sum())
///     .collect();
/// assert_eq!(lens, vec![4, 4, 4]);
/// ```
///
/// # Panics
///
/// Panics if `unit` is zero.
pub fn split_segments(segs: &[Segment], unit: usize) -> Vec<Vec<Segment>> {
    assert!(unit > 0, "unit must be positive");
    let mut groups: Vec<Vec<Segment>> = Vec::new();
    let mut current: Vec<Segment> = Vec::new();
    let mut room = unit;
    for seg in segs {
        let mut rest = seg.clone();
        while !rest.is_empty() {
            let take = rest.len().min(room);
            let (head, tail) = rest.split_at(take);
            current.push(head);
            rest = tail;
            room -= take;
            if room == 0 {
                groups.push(std::mem::take(&mut current));
                room = unit;
            }
        }
    }
    if !current.is_empty() {
        groups.push(current);
    }
    groups
}

/// Total byte length of a segment list.
pub fn segments_len(segs: &[Segment]) -> usize {
    segs.iter().map(Segment::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_across_boundaries_sharing_storage() {
        let a = Segment::from_vec((0..10).collect());
        let groups = split_segments(std::slice::from_ref(&a), 4);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0][0].as_slice(), &[0, 1, 2, 3]);
        assert_eq!(groups[1][0].as_slice(), &[4, 5, 6, 7]);
        assert_eq!(groups[2][0].as_slice(), &[8, 9]);
        assert!(groups[0][0].same_storage(&a), "no bytes moved");
    }

    #[test]
    fn group_spanning_multiple_segments() {
        let segs = vec![
            Segment::from_vec(vec![1; 3]),
            Segment::from_vec(vec![2; 3]),
        ];
        let groups = split_segments(&segs, 4);
        assert_eq!(groups.len(), 2);
        assert_eq!(segments_len(&groups[0]), 4);
        assert_eq!(groups[0].len(), 2, "first group spans both segments");
        assert_eq!(segments_len(&groups[1]), 2);
    }

    #[test]
    fn exact_multiple_has_no_tail() {
        let segs = vec![Segment::from_vec(vec![0; 8])];
        let groups = split_segments(&segs, 4);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(split_segments(&[], 4).is_empty());
        assert_eq!(segments_len(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "unit must be positive")]
    fn zero_unit_panics() {
        split_segments(&[], 0);
    }
}
