//! Overload control plane: deterministic per-server admission control,
//! dirty-cache backpressure, and client retry policy.
//!
//! The servers in this crate execute functionally at arrival instants;
//! queueing is simulated separately by the timing layer. Without a
//! control plane, an open-loop arrival stream past capacity just grows
//! the simulated queues without bound — goodput collapses while every
//! admitted request's latency diverges (the congestion-collapse curve
//! the `--overload-sweep` observatory measures). This module supplies
//! the *prevention* side (DESIGN.md §15):
//!
//! * [`AdmissionGate`] — bounded in-flight, queue-depth watermarks with
//!   hysteresis, and a token bucket refilled on **sim time** (the rig
//!   reports each request's arrival instant via `set_load`), so every
//!   decision is a pure function of the schedule and replays
//!   byte-identically at any host thread or shard count.
//! * [`Pressure`] — the backpressure signal sampled from the layers
//!   below the server: the file-system buffer cache's dirty ratio and
//!   the NCache's pinned occupancy. Under pressure the gate sheds
//!   writes before reads, and the server bypasses NCache *insertion*
//!   (serve-through without caching) instead of evicting hot entries.
//! * [`RetryPolicy`] — the client half: a bounded per-request retry
//!   budget with jittered-but-seeded exponential backoff. Jitter comes
//!   from a [`SplitMix64`] stream keyed by `(seed, request, attempt)`,
//!   so backoff delays are deterministic per request yet decorrelated
//!   across requests (no synchronized retry storms).
//!
//! A server with no control plane installed behaves exactly as before —
//! the plane is opt-in and, when configured with
//! [`ControlConfig::unlimited`], provably unobservable (see the
//! `control_plane_property` tests in `crates/testbed`).

use obs::StatsSnapshot;
use sim::SplitMix64;

/// Admission classes: the gate sheds [`OpClass::Write`] first when the
/// cache backpressure watermarks trip (reads drain the caches, writes
/// fill them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpClass {
    /// Read-side work (READ, GETATTR, LOOKUP, READDIR, HTTP GET).
    Read,
    /// Write-side work (WRITE, CREATE, REMOVE).
    Write,
}

/// The backpressure signal sampled from the layers below the server.
/// Both fields are permille (0..=1000) so the watermark comparison is
/// exact integer arithmetic — no float drift across platforms.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Pressure {
    /// Dirty fraction of the file-system buffer cache, in permille.
    pub dirty_permille: u32,
    /// Pinned-bytes fraction of the NCache capacity, in permille
    /// (zero when the build has no NCache).
    pub ncache_permille: u32,
}

/// Watermarks and budgets for one server's [`AdmissionGate`].
///
/// Every threshold has an explicit "off" encoding (0 for the bounds,
/// `> 1000` for the permille watermarks) so [`ControlConfig::unlimited`]
/// admits everything — the configuration the zero-rejection
/// unobservability property pins down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControlConfig {
    /// Hard bound on concurrently in-flight requests (0 = unbounded).
    pub max_inflight: u64,
    /// Queue-depth high watermark: at or above this in-flight depth the
    /// gate enters shedding mode and rejects writes (0 = disabled).
    pub queue_hi: u64,
    /// Queue-depth low watermark: shedding mode clears once the
    /// in-flight depth falls to or below this.
    pub queue_lo: u64,
    /// Token cost per admitted request in sim-nanoseconds; the bucket
    /// refills at one token-nanosecond per sim-nanosecond (0 = no rate
    /// limit). Setting this to the per-request service time caps the
    /// admitted rate at server capacity.
    pub token_cost_ns: u64,
    /// Bucket depth, in requests (bursts up to this many admit at once).
    pub token_burst: u64,
    /// Dirty-cache watermark in permille: writes shed at or above this
    /// dirty ratio (`> 1000` = disabled).
    pub dirty_hi_permille: u32,
    /// NCache occupancy watermark in permille: insertion bypasses the
    /// cache at or above this pinned fraction (`> 1000` = disabled).
    pub ncache_hi_permille: u32,
    /// Retry-after hint carried in rejection replies, in sim-ns.
    pub retry_after_ns: u64,
}

impl ControlConfig {
    /// A configuration that admits everything: all bounds off, all
    /// watermarks above 1000 permille. A gate with this config must be
    /// unobservable (the property test pins this).
    pub fn unlimited() -> Self {
        ControlConfig {
            max_inflight: 0,
            queue_hi: 0,
            queue_lo: 0,
            token_cost_ns: 0,
            token_burst: 0,
            dirty_hi_permille: 1001,
            ncache_hi_permille: 1001,
            retry_after_ns: 0,
        }
    }

    /// The protective preset used by the overload ablation: bounded
    /// in-flight, write shedding past the high watermark, and a
    /// retry-after hint of one millisecond of sim time. The token
    /// bucket is left off — callers size `token_cost_ns` from the
    /// measured per-request service time when they want a rate cap.
    pub fn protective() -> Self {
        ControlConfig {
            max_inflight: 16,
            queue_hi: 12,
            queue_lo: 8,
            token_cost_ns: 0,
            token_burst: 32,
            dirty_hi_permille: 600,
            ncache_hi_permille: 900,
            retry_after_ns: 1_000_000,
        }
    }
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self::protective()
    }
}

/// One admission verdict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Execute the request.
    Admit,
    /// Reject with a retryable error; the client should back off at
    /// least `after_ns` of sim time before retransmitting.
    RetryLater {
        /// Suggested backoff, echoed into the rejection reply.
        after_ns: u64,
    },
}

/// Control-plane counters, snapshotted into [`obs::MetricsReport`] under
/// the `control` source.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControlStats {
    /// Requests offered to the gate.
    pub offered: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected (sum of the reject reasons below).
    pub rejected: u64,
    /// Rejected read-class requests.
    pub rejected_reads: u64,
    /// Rejected write-class requests.
    pub rejected_writes: u64,
    /// Rejections from the hard in-flight bound.
    pub inflight_rejects: u64,
    /// Write rejections from queue-watermark shedding mode.
    pub queue_sheds: u64,
    /// Write rejections from the dirty-cache watermark.
    pub dirty_sheds: u64,
    /// Rejections from an empty token bucket.
    pub token_rejects: u64,
    /// NCache insertions bypassed under occupancy/dirty pressure
    /// (served through without caching; not a rejection).
    pub insert_bypass: u64,
}

impl StatsSnapshot for ControlStats {
    fn source(&self) -> &'static str {
        "control"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("offered", self.offered),
            ("admitted", self.admitted),
            ("rejected", self.rejected),
            ("rejected_reads", self.rejected_reads),
            ("rejected_writes", self.rejected_writes),
            ("inflight_rejects", self.inflight_rejects),
            ("queue_sheds", self.queue_sheds),
            ("dirty_sheds", self.dirty_sheds),
            ("token_rejects", self.token_rejects),
            ("insert_bypass", self.insert_bypass),
        ]
    }
}

/// The per-server admission gate. All state evolves deterministically
/// from the `(now, inflight, class, pressure)` sequence the server feeds
/// it — there is no wall-clock input anywhere.
#[derive(Clone, Debug)]
pub struct AdmissionGate {
    cfg: ControlConfig,
    /// Token credit in sim-nanoseconds (one admitted request costs
    /// `token_cost_ns`).
    credit_ns: u64,
    /// Sim instant of the last refill.
    last_ns: u64,
    /// Queue-watermark shedding mode (hysteresis between `queue_hi`
    /// and `queue_lo`).
    shedding: bool,
    stats: ControlStats,
}

impl AdmissionGate {
    /// A gate with a full token bucket at sim time zero.
    pub fn new(cfg: ControlConfig) -> Self {
        AdmissionGate {
            cfg,
            credit_ns: cfg.token_burst.saturating_mul(cfg.token_cost_ns),
            last_ns: 0,
            shedding: false,
            stats: ControlStats::default(),
        }
    }

    /// The gate's configuration.
    pub fn config(&self) -> &ControlConfig {
        &self.cfg
    }

    /// The gate's counters.
    pub fn stats(&self) -> ControlStats {
        self.stats
    }

    /// Refills the token bucket up to `now`. Retransmissions may carry
    /// arrival instants out of order relative to other sessions' ops;
    /// the refill clamps to monotonic elapsed time so a stale `now`
    /// never double-credits.
    fn refill(&mut self, now_ns: u64) {
        if now_ns > self.last_ns {
            let elapsed = now_ns - self.last_ns;
            let cap = self.cfg.token_burst.saturating_mul(self.cfg.token_cost_ns);
            self.credit_ns = self.credit_ns.saturating_add(elapsed).min(cap);
            self.last_ns = now_ns;
        }
    }

    /// Decides admission for one request of `class` arriving at sim
    /// instant `now_ns` with `inflight` requests already in flight
    /// (this one excluded), under the sampled cache `pressure`.
    ///
    /// Policy order: the hard in-flight bound first (protects the
    /// server unconditionally), then write shedding from the queue
    /// watermarks (with hysteresis) and the dirty-cache watermark
    /// (writes shed before reads), then the token-bucket rate cap.
    pub fn decide(
        &mut self,
        now_ns: u64,
        inflight: u64,
        class: OpClass,
        pressure: &Pressure,
    ) -> Decision {
        self.stats.offered += 1;
        self.refill(now_ns);
        if self.cfg.queue_hi > 0 {
            if inflight >= self.cfg.queue_hi {
                self.shedding = true;
            } else if inflight <= self.cfg.queue_lo {
                self.shedding = false;
            }
        }
        let verdict = if self.cfg.max_inflight > 0 && inflight >= self.cfg.max_inflight {
            self.stats.inflight_rejects += 1;
            Some(())
        } else if class == OpClass::Write && self.shedding {
            self.stats.queue_sheds += 1;
            Some(())
        } else if class == OpClass::Write
            && pressure.dirty_permille >= self.cfg.dirty_hi_permille
        {
            self.stats.dirty_sheds += 1;
            Some(())
        } else if self.cfg.token_cost_ns > 0 && self.credit_ns < self.cfg.token_cost_ns {
            self.stats.token_rejects += 1;
            Some(())
        } else {
            None
        };
        match verdict {
            Some(()) => {
                self.stats.rejected += 1;
                match class {
                    OpClass::Read => self.stats.rejected_reads += 1,
                    OpClass::Write => self.stats.rejected_writes += 1,
                }
                Decision::RetryLater {
                    after_ns: self.cfg.retry_after_ns,
                }
            }
            None => {
                self.stats.admitted += 1;
                if self.cfg.token_cost_ns > 0 {
                    self.credit_ns -= self.cfg.token_cost_ns;
                }
                Decision::Admit
            }
        }
    }

    /// Whether NCache insertion should be bypassed under `pressure`
    /// (serve through without caching). Counted, never rejected: the
    /// request still completes, it just stops displacing cache state
    /// while the cache is under memory pressure.
    pub fn bypass_insert(&mut self, pressure: &Pressure) -> bool {
        let hit = pressure.dirty_permille >= self.cfg.dirty_hi_permille
            || pressure.ncache_permille >= self.cfg.ncache_hi_permille;
        if hit {
            self.stats.insert_bypass += 1;
        }
        hit
    }
}

/// The control plane a server embeds: the gate plus the load inputs the
/// rig pushes in before each request ([`ControlPlane::set_load`]).
#[derive(Clone, Debug)]
pub struct ControlPlane {
    gate: AdmissionGate,
    now_ns: u64,
    inflight: u64,
}

impl ControlPlane {
    /// A plane around a fresh gate.
    pub fn new(cfg: ControlConfig) -> Self {
        ControlPlane {
            gate: AdmissionGate::new(cfg),
            now_ns: 0,
            inflight: 0,
        }
    }

    /// Reports the next request's arrival instant and the current
    /// in-flight depth (from the timing layer's open-loop state).
    pub fn set_load(&mut self, now_ns: u64, inflight: u64) {
        self.now_ns = now_ns;
        self.inflight = inflight;
    }

    /// Decides admission under the load last reported via `set_load`.
    pub fn decide(&mut self, class: OpClass, pressure: &Pressure) -> Decision {
        self.gate.decide(self.now_ns, self.inflight, class, pressure)
    }

    /// See [`AdmissionGate::bypass_insert`].
    pub fn bypass_insert(&mut self, pressure: &Pressure) -> bool {
        self.gate.bypass_insert(pressure)
    }

    /// The gate's configuration.
    pub fn config(&self) -> &ControlConfig {
        self.gate.config()
    }

    /// The gate's counters.
    pub fn stats(&self) -> ControlStats {
        self.gate.stats()
    }
}

/// Client-side retry policy: a bounded budget of retransmissions per
/// request with seeded, capped exponential backoff.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retransmissions allowed per request (total transmissions are
    /// bounded by `1 + budget`; exhaustion is a counted client-visible
    /// error, never a loop).
    pub budget: u32,
    /// Backoff before the first retransmission, in sim-ns.
    pub base_ns: u64,
    /// Backoff ceiling, in sim-ns.
    pub cap_ns: u64,
    /// Jitter stream seed; combined with `(request, attempt)` so every
    /// delay is deterministic yet decorrelated across requests.
    pub seed: u64,
}

impl RetryPolicy {
    /// The ablation's default: two retransmissions, 200 µs base, 2 ms cap.
    pub fn standard(seed: u64) -> Self {
        RetryPolicy {
            budget: 2,
            base_ns: 200_000,
            cap_ns: 2_000_000,
            seed,
        }
    }

    /// The backoff before retransmission `attempt` (1-based) of request
    /// `request_idx`: capped exponential with full jitter in
    /// `[half, full]`, drawn from a stream keyed by
    /// `(seed, request_idx, attempt)`. Pure function — replays
    /// byte-identically anywhere.
    pub fn backoff_ns(&self, request_idx: u64, attempt: u32) -> u64 {
        let exp = self
            .base_ns
            .saturating_mul(1u64 << (attempt.saturating_sub(1)).min(20))
            .min(self.cap_ns)
            .max(1);
        let key = self
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(request_idx)
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(u64::from(attempt));
        let mut rng = SplitMix64::new(key);
        let half = exp / 2;
        half + rng.next_u64() % (exp - half + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_gate_admits_everything() {
        let mut gate = AdmissionGate::new(ControlConfig::unlimited());
        let full = Pressure {
            dirty_permille: 1000,
            ncache_permille: 1000,
        };
        for i in 0..10_000u64 {
            let class = if i % 3 == 0 { OpClass::Write } else { OpClass::Read };
            assert_eq!(gate.decide(0, i, class, &full), Decision::Admit);
        }
        assert!(!gate.bypass_insert(&full));
        assert_eq!(gate.stats().rejected, 0);
        assert_eq!(gate.stats().insert_bypass, 0);
        assert_eq!(gate.stats().admitted, 10_000);
    }

    #[test]
    fn inflight_bound_is_hard() {
        let cfg = ControlConfig {
            max_inflight: 4,
            ..ControlConfig::unlimited()
        };
        let mut gate = AdmissionGate::new(cfg);
        let p = Pressure::default();
        assert_eq!(gate.decide(0, 3, OpClass::Read, &p), Decision::Admit);
        assert_eq!(
            gate.decide(0, 4, OpClass::Read, &p),
            Decision::RetryLater { after_ns: 0 }
        );
        assert_eq!(gate.stats().inflight_rejects, 1);
    }

    #[test]
    fn queue_watermarks_shed_writes_with_hysteresis() {
        let cfg = ControlConfig {
            queue_hi: 8,
            queue_lo: 4,
            retry_after_ns: 7,
            ..ControlConfig::unlimited()
        };
        let mut gate = AdmissionGate::new(cfg);
        let p = Pressure::default();
        assert_eq!(gate.decide(0, 7, OpClass::Write, &p), Decision::Admit);
        // Crossing the high watermark trips shedding: writes rejected,
        // reads still admitted.
        assert_eq!(
            gate.decide(0, 8, OpClass::Write, &p),
            Decision::RetryLater { after_ns: 7 }
        );
        assert_eq!(gate.decide(0, 8, OpClass::Read, &p), Decision::Admit);
        // Still shedding between the watermarks (hysteresis).
        assert_eq!(
            gate.decide(0, 6, OpClass::Write, &p),
            Decision::RetryLater { after_ns: 7 }
        );
        // Clears at the low watermark.
        assert_eq!(gate.decide(0, 4, OpClass::Write, &p), Decision::Admit);
        assert_eq!(gate.stats().queue_sheds, 2);
    }

    #[test]
    fn dirty_watermark_sheds_writes_not_reads() {
        let cfg = ControlConfig {
            dirty_hi_permille: 500,
            ..ControlConfig::unlimited()
        };
        let mut gate = AdmissionGate::new(cfg);
        let dirty = Pressure {
            dirty_permille: 700,
            ncache_permille: 0,
        };
        assert_eq!(
            gate.decide(0, 0, OpClass::Write, &dirty),
            Decision::RetryLater { after_ns: 0 }
        );
        assert_eq!(gate.decide(0, 0, OpClass::Read, &dirty), Decision::Admit);
        assert_eq!(gate.stats().dirty_sheds, 1);
        assert!(gate.bypass_insert(&dirty));
    }

    #[test]
    fn token_bucket_caps_rate_and_refills_on_sim_time() {
        let cfg = ControlConfig {
            token_cost_ns: 100,
            token_burst: 2,
            ..ControlConfig::unlimited()
        };
        let mut gate = AdmissionGate::new(cfg);
        let p = Pressure::default();
        // Burst of two admits from the full bucket; the third rejects.
        assert_eq!(gate.decide(0, 0, OpClass::Read, &p), Decision::Admit);
        assert_eq!(gate.decide(0, 0, OpClass::Read, &p), Decision::Admit);
        assert_eq!(
            gate.decide(0, 0, OpClass::Read, &p),
            Decision::RetryLater { after_ns: 0 }
        );
        // 100 ns later one token is back.
        assert_eq!(gate.decide(100, 0, OpClass::Read, &p), Decision::Admit);
        assert_eq!(
            gate.decide(100, 0, OpClass::Read, &p),
            Decision::RetryLater { after_ns: 0 }
        );
        // A stale (out-of-order) timestamp must not double-credit.
        assert_eq!(
            gate.decide(50, 0, OpClass::Read, &p),
            Decision::RetryLater { after_ns: 0 }
        );
        assert_eq!(gate.stats().token_rejects, 3);
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy::standard(42);
        for req in 0..64u64 {
            for attempt in 1..=4u32 {
                let a = policy.backoff_ns(req, attempt);
                let b = policy.backoff_ns(req, attempt);
                assert_eq!(a, b, "pure function of (seed, request, attempt)");
                let exp = (policy.base_ns << (attempt - 1)).min(policy.cap_ns);
                assert!(a >= exp / 2 && a <= exp, "jitter in [half, full]");
            }
        }
        // Different requests draw different jitter (decorrelated storms).
        let delays: std::collections::BTreeSet<u64> =
            (0..64).map(|r| policy.backoff_ns(r, 1)).collect();
        assert!(delays.len() > 32, "jitter varies across requests");
    }
}
