//! The modification-footprint inventory — Table 1 of the paper.
//!
//! The paper's headline engineering claim: "Not including the standalone
//! NCache module, the total number of lines of C code modified in the
//! kernel is fewer than 150", with the server daemon and the buffer cache
//! untouched. This module states the same inventory for the reproduction,
//! and the `table1_hook_inventory` test verifies it *structurally*: the
//! NCache build reuses the unmodified `Filesystem` and `BufferCache` types
//! and differs from the original build only at the initiator's two socket
//! functions, the stack's extended interfaces, and the standalone module.

use crate::mode::ServerMode;

/// One row of the Table 1 inventory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hook {
    /// Kernel component.
    pub component: &'static str,
    /// What the build changes in it.
    pub modification: &'static str,
}

/// The modification footprint of a build, mirroring Table 1.
pub fn modification_footprint(mode: ServerMode) -> Vec<Hook> {
    match mode {
        ServerMode::Original => vec![
            Hook {
                component: "NFS/Web server daemon",
                modification: "None",
            },
            Hook {
                component: "buffer cache",
                modification: "None",
            },
            Hook {
                component: "iSCSI initiator",
                modification: "None",
            },
            Hook {
                component: "network stack",
                modification: "None",
            },
        ],
        ServerMode::NCache => vec![
            Hook {
                component: "NFS/Web server daemon",
                modification: "None",
            },
            Hook {
                component: "buffer cache",
                modification: "None",
            },
            Hook {
                component: "iSCSI initiator",
                modification: "two functions invoking socket interface changed",
            },
            Hook {
                component: "network stack",
                modification: "TCP/IP socket interfaces extended",
            },
            Hook {
                component: "NCache module",
                modification: "standalone loadable module (no kernel lines)",
            },
        ],
        ServerMode::Baseline => vec![
            Hook {
                component: "NFS/Web server daemon",
                modification: "regular-data copy calls removed (measurement build)",
            },
            Hook {
                component: "buffer cache",
                modification: "None",
            },
            Hook {
                component: "iSCSI initiator",
                modification: "regular-data copy calls removed (measurement build)",
            },
            Hook {
                component: "network stack",
                modification: "None",
            },
        ],
    }
}

/// Renders the inventory as the paper's two-column table.
pub fn render_table1() -> String {
    let mut out = String::from("# Table 1: kernel modifications (NCache build)\n");
    out.push_str(&format!("{:<28} {}\n", "Module", "Locations Modified"));
    for hook in modification_footprint(ServerMode::NCache) {
        out.push_str(&format!("{:<28} {}\n", hook.component, hook.modification));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ncache_leaves_daemon_and_buffer_cache_untouched() {
        let rows = modification_footprint(ServerMode::NCache);
        let get = |c: &str| {
            rows.iter()
                .find(|h| h.component == c)
                .expect("row present")
                .modification
        };
        assert_eq!(get("NFS/Web server daemon"), "None");
        assert_eq!(get("buffer cache"), "None");
        assert!(get("iSCSI initiator").contains("two functions"));
        assert!(get("network stack").contains("extended"));
    }

    #[test]
    fn original_touches_nothing() {
        assert!(modification_footprint(ServerMode::Original)
            .iter()
            .all(|h| h.modification == "None"));
    }

    #[test]
    fn baseline_marks_measurement_changes() {
        let rows = modification_footprint(ServerMode::Baseline);
        assert!(rows
            .iter()
            .any(|h| h.modification.contains("measurement build")));
    }

    #[test]
    fn table_renders() {
        let t = render_table1();
        assert!(t.contains("Table 1"));
        assert!(t.contains("buffer cache"));
        assert!(t.contains("None"));
    }
}
