//! Server build configurations.

use std::fmt;

/// Which of the paper's three server builds is running (§5.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ServerMode {
    /// The stock copying data path (NFS-original / kHTTPd-original).
    #[default]
    Original,
    /// The network-centric cache build (NFS-NCache / kHTTPd-NCache).
    NCache,
    /// The ideal zero-copy bound: regular-data copies removed outright;
    /// replies carry junk payload (NFS-baseline / kHTTPd-baseline).
    Baseline,
}

impl ServerMode {
    /// All three modes, in the paper's presentation order.
    pub const ALL: [ServerMode; 3] = [
        ServerMode::Original,
        ServerMode::NCache,
        ServerMode::Baseline,
    ];

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            ServerMode::Original => "original",
            ServerMode::NCache => "ncache",
            ServerMode::Baseline => "baseline",
        }
    }

    /// Whether this build moves regular data by logical copy.
    pub fn is_zero_copy(self) -> bool {
        !matches!(self, ServerMode::Original)
    }
}

impl fmt::Display for ServerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_predicates() {
        assert_eq!(ServerMode::Original.label(), "original");
        assert_eq!(ServerMode::NCache.to_string(), "ncache");
        assert_eq!(ServerMode::Baseline.label(), "baseline");
        assert!(!ServerMode::Original.is_zero_copy());
        assert!(ServerMode::NCache.is_zero_copy());
        assert!(ServerMode::Baseline.is_zero_copy());
        assert_eq!(ServerMode::ALL.len(), 3);
    }
}
