//! kHTTPd: the in-kernel static web server, in the paper's three builds.
//!
//! The original build serves pages with `sendfile` — one copy, buffer
//! cache → network stack (Table 2). The NCache build moves only keys
//! (§4.1's changed sendfile interface): the response body is a chain of
//! placeholder cache blocks that the driver-level hook substitutes; the
//! [`ncache::HttpTxTracker`] confirms the header/body split the way the
//! real module tracks TCP streams (§4.3). The baseline build attaches the
//! placeholder blocks and sends the junk — the ideal zero-copy bound.


use ncache::{HttpTxTracker, NcacheModule, TxDisposition};
use netbuf::{CopyLedger, NetBuf};
use proto::http::{HttpRequest, HttpResponseHeader};
use simfs::{Filesystem, FsError, Ino};

use crate::control::{ControlConfig, ControlPlane, ControlStats, Decision, OpClass, Pressure};
use crate::initiator::IscsiInitiator;
use crate::mode::ServerMode;

/// kHTTPd counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KhttpdStats {
    /// GET requests served.
    pub requests: u64,
    /// 404 responses.
    pub not_found: u64,
    /// 400 responses (malformed or non-GET requests).
    pub bad_requests: u64,
    /// Body bytes served.
    pub bytes_served: u64,
    /// Responses whose header/body boundary the stream tracker confirmed.
    pub tracked_responses: u64,
    /// 503 responses from the overload control plane (retryable).
    pub retry_later: u64,
}

impl obs::StatsSnapshot for KhttpdStats {
    fn source(&self) -> &'static str {
        "khttpd"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("requests", self.requests),
            ("not_found", self.not_found),
            ("bad_requests", self.bad_requests),
            ("bytes_served", self.bytes_served),
            ("tracked_responses", self.tracked_responses),
            ("retry_later", self.retry_later),
        ]
    }
}

/// The static web server.
#[derive(Debug)]
pub struct KhttpdServer {
    mode: ServerMode,
    fs: Filesystem<IscsiInitiator>,
    module: Option<sim::Shared<NcacheModule>>,
    ledger: CopyLedger,
    stats: KhttpdStats,
    recorder: obs::Recorder,
    fault_recovery: bool,
    /// The overload control plane, when installed (off by default).
    control: Option<ControlPlane>,
}

impl KhttpdServer {
    /// Creates a server in `mode` over `fs` (pages live in the root
    /// directory; path `/name` maps to file `name`).
    ///
    /// # Panics
    ///
    /// Panics if `mode` is [`ServerMode::NCache`] but no module is given.
    pub fn new(
        mode: ServerMode,
        fs: Filesystem<IscsiInitiator>,
        module: Option<sim::Shared<NcacheModule>>,
        ledger: &CopyLedger,
    ) -> Self {
        assert!(
            mode != ServerMode::NCache || module.is_some(),
            "NCache mode requires the NCache module"
        );
        KhttpdServer {
            mode,
            fs,
            module,
            ledger: ledger.clone(),
            stats: KhttpdStats::default(),
            recorder: obs::Recorder::new(),
            fault_recovery: false,
            control: None,
        }
    }

    /// Installs the overload control plane (see
    /// [`crate::control::AdmissionGate`] for the policy).
    pub fn enable_control(&mut self, cfg: ControlConfig) {
        self.control = Some(ControlPlane::new(cfg));
    }

    /// Reports the timing layer's load (next arrival instant + in-flight
    /// depth) to the control plane. No-op without one.
    pub fn set_load(&mut self, now_ns: u64, inflight: u64) {
        if let Some(cp) = &mut self.control {
            cp.set_load(now_ns, inflight);
        }
    }

    /// The control plane's counters, when one is installed.
    pub fn control_stats(&self) -> Option<ControlStats> {
        self.control.as_ref().map(|cp| cp.stats())
    }

    /// Total control-plane rejections so far (0 without a plane).
    pub fn control_rejections(&self) -> u64 {
        self.control.as_ref().map_or(0, |cp| cp.stats().rejected)
    }

    /// Samples the backpressure signal (buffer-cache dirty ratio and
    /// NCache pinned occupancy) for the gate.
    fn pressure(&self) -> Pressure {
        let ncache_permille = self.module.as_ref().map_or(0, |m| {
            let m = m.borrow();
            let cap = m.config().capacity_bytes.max(1);
            ((m.pinned_bytes().saturating_mul(1000)) / cap).min(1000) as u32
        });
        Pressure {
            dirty_permille: self.fs.cache_dirty_permille(),
            ncache_permille,
        }
    }

    /// Enables fault-recovery mode: placeholder revalidation additionally
    /// checksums the cached chunks, invalidating corrupt entries so the
    /// reply falls back to the copying sendfile path.
    pub fn set_fault_recovery(&mut self, on: bool) {
        self.fault_recovery = on;
    }

    /// Wires a trace recorder through the server-side stack: per-request
    /// spans here, plus the file system, its initiator, and the NCache
    /// module when present.
    pub fn set_recorder(&mut self, rec: obs::Recorder) {
        self.fs.set_recorder(rec.clone());
        self.fs.store_mut().set_recorder(rec.clone());
        if let Some(module) = &self.module {
            module.borrow_mut().set_recorder(rec.clone());
        }
        self.recorder = rec;
    }

    /// The build this server runs.
    pub fn mode(&self) -> ServerMode {
        self.mode
    }

    /// Counter snapshot.
    pub fn stats(&self) -> KhttpdStats {
        self.stats
    }

    /// The file system (for test setup).
    pub fn fs_mut(&mut self) -> &mut Filesystem<IscsiInitiator> {
        &mut self.fs
    }

    /// The NCache module, when running that build.
    pub fn module(&self) -> Option<sim::Shared<NcacheModule>> {
        self.module.clone()
    }

    /// Serves one GET request (a delivered HTTP request payload) and
    /// returns the response stream as one buffer (header + body), already
    /// passed through the driver-level substitution hook.
    pub fn handle_request(&mut self, req: &NetBuf) -> NetBuf {
        self.stats.requests += 1;
        let req_bytes = req.payload_len() as u64;
        let raw = req.peek(0, req.payload_len());
        let Ok(request) = HttpRequest::decode(&raw) else {
            // Malformed or unsupported requests get a 400, never a panic.
            let span = self
                .recorder
                .begin_span("malformed", self.mode.label(), req_bytes);
            self.stats.bad_requests += 1;
            let mut r = NetBuf::new(&self.ledger);
            r.push_header(
                &HttpResponseHeader {
                    status: 400,
                    content_length: 0,
                    retry_after_s: 0,
                }
                .encode(),
            );
            self.recorder.end_span(span);
            return r;
        };
        let span = self.recorder.begin_span("get", self.mode.label(), req_bytes);
        // Admission control: a well-formed GET past the parser but ahead
        // of any file-system work gets the 503-with-Retry-After analog of
        // the NFS `RETRY_LATER` rejection.
        // (The plane is taken out and restored around the decision so
        // `pressure` can borrow `self` freely.)
        if let Some(mut cp) = self.control.take() {
            let pressure = self.pressure();
            let decision = cp.decide(OpClass::Read, &pressure);
            self.control = Some(cp);
            if let Decision::RetryLater { after_ns } = decision {
                self.stats.retry_later += 1;
                self.recorder.add_counter("control.rejected", 1);
                let after_s = after_ns.div_ceil(1_000_000_000).max(1) as u32;
                let mut r = NetBuf::new(&self.ledger);
                r.push_header(&HttpResponseHeader::service_unavailable(after_s).encode());
                self.recorder.end_span(span);
                return r;
            }
        }
        let name = request.path.trim_start_matches('/');
        let mut response = NetBuf::new(&self.ledger);

        match self.resolve(name) {
            Ok((ino, size)) => {
                let body_len = match self.mode {
                    ServerMode::Original => {
                        // sendfile: one copy, buffer cache → network stack.
                        self.fs
                            .sendfile_into(ino, 0, size as usize, &mut response)
                            .expect("page readable")
                    }
                    ServerMode::NCache | ServerMode::Baseline => {
                        // Key-moving sendfile: attach cache blocks by
                        // reference, revalidating stamped placeholders
                        // against the network-centric cache first.
                        let blocks = self
                            .fs
                            .read_logical(ino, 0, size as usize)
                            .expect("page readable");
                        if self.placeholders_resolvable(&blocks) {
                            let mut n = 0;
                            for b in &blocks {
                                response.append_segment(b.seg.slice(0, b.valid_len));
                                n += b.valid_len;
                            }
                            n
                        } else if self.module.is_some() {
                            // Some placeholder no longer resolves (evicted
                            // or corrupt). `sendfile` would just re-stamp
                            // placeholders under the module, so degrade to
                            // the physical copying path instead, resolving
                            // each block the moment it is fetched — correct
                            // even when the cache is smaller than the page.
                            let body = self.materialize_page(ino, size as usize);
                            let n = body.len();
                            response.append_segment(netbuf::Segment::from_vec(body));
                            n
                        } else {
                            for b in &blocks {
                                if let Some(l) = b.lbn {
                                    self.fs.discard_cached(l);
                                }
                            }
                            self.fs
                                .sendfile_into(ino, 0, size as usize, &mut response)
                                .expect("page readable")
                        }
                    }
                };
                self.stats.bytes_served += body_len as u64;
                let header = HttpResponseHeader::ok(body_len as u64).encode();
                self.track(&header, body_len);
                response.push_header(&header);
            }
            Err(_) => {
                self.stats.not_found += 1;
                response.push_header(&HttpResponseHeader::not_found().encode());
            }
        }

        // Driver-boundary hook: substitute body blocks from the cache.
        match self.mode {
            ServerMode::Original => {
                // The 2.4-era TCP transmit path checksums sendfile payload
                // in software; NCache inherits stored checksums instead
                // (§1), and the ideal baseline assumes NIC offload.
                if response.payload_len() > 0 {
                    response.compute_csum();
                }
            }
            ServerMode::NCache => {
                if let Some(module) = &self.module {
                    module.borrow_mut().on_transmit(&mut response);
                    self.fs.store_mut().drain_module_writebacks();
                }
            }
            ServerMode::Baseline => {}
        }
        self.recorder.end_span(span);
        response
    }

    /// Materializes the real bytes of a page under the NCache build, one
    /// block at a time: each block's stamp is resolved against the
    /// network-centric cache immediately after the fetch admits it, so the
    /// assembly succeeds even when the cache holds fewer chunks than the
    /// page. The copy is physical and charged as one — this is the
    /// graceful-degradation path, not the fast path.
    fn materialize_page(&mut self, ino: Ino, len: usize) -> Vec<u8> {
        let module = self.module.clone().expect("NCache build");
        let block = simfs::BLOCK_SIZE;
        let mut out = Vec::with_capacity(len);
        let mut off = 0usize;
        while off < len {
            let want = block.min(len - off);
            let mut resolved = false;
            for _attempt in 0..3 {
                let blocks = self
                    .fs
                    .read_logical(ino, off as u64, want)
                    .expect("page readable");
                let b = &blocks[0];
                match netbuf::key::KeyStamp::decode(b.seg.as_slice()) {
                    Some(stamp) if stamp.is_keyed() => {
                        match module.borrow_mut().cache_mut().resolve(&stamp) {
                            Some((_, segs)) => {
                                let mut got = 0usize;
                                for seg in segs {
                                    let take = seg.len().min(b.valid_len - got);
                                    if take == 0 {
                                        break;
                                    }
                                    out.extend_from_slice(&seg.as_slice()[..take]);
                                    got += take;
                                }
                                resolved = true;
                            }
                            None => {
                                // Dangling: drop the placeholder and
                                // refetch; the read re-admits the chunk.
                                if let Some(l) = b.lbn {
                                    self.fs.discard_cached(l);
                                }
                                continue;
                            }
                        }
                    }
                    _ => {
                        out.extend_from_slice(&b.seg.as_slice()[..b.valid_len]);
                        resolved = true;
                    }
                }
                break;
            }
            if !resolved {
                // Thrashing so hard even a just-admitted chunk is gone
                // (cache capacity below one chunk). Serve zeros rather
                // than leak a raw placeholder, and never panic.
                out.resize(out.len() + want, 0);
            }
            off += want;
        }
        self.ledger.charge_payload_copy(len as u64);
        out
    }

    /// Revalidation (NCache build only): every stamped placeholder must
    /// still resolve in the network-centric cache.
    fn placeholders_resolvable(&self, blocks: &[simfs::fs::LogicalBlock]) -> bool {
        let Some(module) = &self.module else {
            return true; // the baseline ships junk by design
        };
        let mut m = module.borrow_mut();
        let verify = self.fault_recovery;
        blocks.iter().all(|b| {
            match netbuf::key::KeyStamp::decode(b.seg.as_slice()) {
                Some(stamp) if stamp.is_keyed() => {
                    if verify {
                        m.verify_resolvable(&stamp)
                    } else {
                        m.resolvable(&stamp)
                    }
                }
                _ => true,
            }
        })
    }

    fn resolve(&mut self, name: &str) -> Result<(Ino, u64), FsError> {
        let ino = self.fs.lookup(Filesystem::<IscsiInitiator>::ROOT, name)?;
        let attrs = self.fs.getattr(ino)?;
        Ok((ino, attrs.size))
    }

    /// Feeds the response through the stream tracker the way the NCache
    /// module watches kHTTPd's TCP streams, confirming the header/body
    /// boundary (§4.3).
    fn track(&mut self, header: &[u8], body_len: usize) {
        if self.mode != ServerMode::NCache {
            return;
        }
        let mut tracker = HttpTxTracker::new();
        let parts = tracker.feed(header);
        debug_assert_eq!(parts, vec![TxDisposition::Header(header.len())]);
        // Body bytes classified without materializing them.
        let zeros = [0u8; 4096];
        let mut remaining = body_len;
        let mut body_seen = 0usize;
        while remaining > 0 {
            let take = remaining.min(zeros.len());
            for d in tracker.feed(&zeros[..take]) {
                if let TxDisposition::Body(n) = d {
                    body_seen += n;
                }
            }
            remaining -= take;
        }
        debug_assert_eq!(body_seen, body_len, "tracker found the boundary");
        self.stats.tracked_responses += 1;
    }
}

/// A minimal HTTP client for the workload generators and tests.
#[derive(Debug)]
pub struct HttpClient {
    ledger: CopyLedger,
}

impl HttpClient {
    /// A client charging `ledger`.
    pub fn new(ledger: &CopyLedger) -> Self {
        HttpClient {
            ledger: ledger.clone(),
        }
    }

    /// Builds a GET request for `path`.
    pub fn get_request(&self, path: &str) -> NetBuf {
        let mut b = NetBuf::new(&self.ledger);
        b.push_header(
            &HttpRequest {
                path: path.to_string(),
            }
            .encode(),
        );
        b
    }

    /// Parses a response stream into (header, body bytes). The body copy
    /// is the client-side receive copy.
    ///
    /// # Panics
    ///
    /// Panics on malformed responses (test infrastructure).
    pub fn parse_response(&self, response: &NetBuf) -> (HttpResponseHeader, Vec<u8>) {
        let rx = crate::stack::deliver(response, &self.ledger);
        let stream = rx.copy_payload_to_vec();
        let (header, body_at) = HttpResponseHeader::decode(&stream).expect("response header");
        (header, stream[body_at..].to_vec())
    }

    /// Non-panicking [`HttpClient::parse_response`] for faulty links:
    /// `None` when the header is undecodable or the body is shorter than
    /// the advertised content length (truncation), meaning the client must
    /// retry the request.
    pub fn try_parse_response(&self, response: &NetBuf) -> Option<(HttpResponseHeader, Vec<u8>)> {
        let rx = crate::stack::deliver(response, &self.ledger);
        let stream = rx.copy_payload_to_vec();
        let (header, body_at) = HttpResponseHeader::decode(&stream).ok()?;
        let body = stream.get(body_at..)?.to_vec();
        if body.len() != header.content_length as usize {
            return None;
        }
        Some((header, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::IscsiTarget;
    use simfs::FsParams;

    fn server(mode: ServerMode) -> (KhttpdServer, HttpClient) {
        let app = CopyLedger::new();
        let storage = CopyLedger::new();
        let target = sim::Shared::new(IscsiTarget::new(16 << 10, &storage));
        let module = (mode == ServerMode::NCache).then(|| {
            sim::Shared::new(NcacheModule::new(
                ncache::NcacheConfig::with_capacity(8 << 20),
                &app,
            ))
        });
        let initiator =
            crate::initiator::IscsiInitiator::new(target, &app, mode, module.clone());
        let fs = Filesystem::mkfs(initiator, FsParams::default(), &app).expect("mkfs");
        (
            KhttpdServer::new(mode, fs, module, &app),
            HttpClient::new(&CopyLedger::new()),
        )
    }

    fn publish(srv: &mut KhttpdServer, name: &str, data: &[u8]) {
        let ino = srv
            .fs_mut()
            .create(Filesystem::<crate::IscsiInitiator>::ROOT, name)
            .expect("fresh");
        srv.fs_mut().write(ino, 0, data).expect("space");
        srv.fs_mut().sync().expect("sync");
    }

    fn get(srv: &mut KhttpdServer, client: &HttpClient, path: &str) -> (HttpResponseHeader, Vec<u8>) {
        let req = client.get_request(path);
        let delivered = crate::stack::deliver(&req, &CopyLedger::new());
        let response = srv.handle_request(&delivered);
        client.parse_response(&response)
    }

    #[test]
    fn serves_pages_and_counts_stats() {
        let (mut srv, client) = server(ServerMode::Original);
        publish(&mut srv, "index", b"hello web");
        let (hdr, body) = get(&mut srv, &client, "/index");
        assert_eq!(hdr.status, 200);
        assert_eq!(body, b"hello web");
        let (hdr, _) = get(&mut srv, &client, "/absent");
        assert_eq!(hdr.status, 404);
        let s = srv.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.not_found, 1);
        assert_eq!(s.bytes_served, 9);
    }

    #[test]
    fn original_checksums_but_ncache_inherits() {
        let app_original;
        {
            let (mut srv, client) = server(ServerMode::Original);
            publish(&mut srv, "p", &[5u8; 4096]);
            let before = srv.ledger.snapshot();
            get(&mut srv, &client, "/p");
            app_original = srv.ledger.snapshot().delta_since(&before);
        }
        assert_eq!(app_original.csum_bytes, 4096);
        let (mut srv, client) = server(ServerMode::NCache);
        publish(&mut srv, "p", &[5u8; 4096]);
        srv.fs_mut().set_cache_capacity(0);
        srv.fs_mut().set_cache_capacity(2048);
        let before = srv.ledger.snapshot();
        get(&mut srv, &client, "/p");
        let d = srv.ledger.snapshot().delta_since(&before);
        assert_eq!(d.csum_bytes, 0, "NCache inherits instead of recomputing");
    }

    #[test]
    fn overloaded_server_answers_503_with_retry_after_then_recovers() {
        let (mut srv, client) = server(ServerMode::NCache);
        publish(&mut srv, "page", b"still here");
        srv.enable_control(ControlConfig {
            max_inflight: 2,
            retry_after_ns: 3_000_000_000, // rounds up to whole seconds
            ..ControlConfig::unlimited()
        });
        srv.set_load(0, 2); // at the bound: the next GET is rejected
        let (hdr, body) = get(&mut srv, &client, "/page");
        assert_eq!(hdr.status, 503);
        assert_eq!(hdr.retry_after_s, 3, "rejection carries the server hint");
        assert!(body.is_empty(), "a rejection ships no payload");
        let s = srv.control_stats().expect("control installed");
        assert_eq!(s.rejected, 1);
        assert_eq!(s.inflight_rejects, 1);
        // The rejection did no file-system work.
        assert_eq!(srv.stats().bytes_served, 0);
        // Load drains; the retried GET succeeds.
        srv.set_load(5_000_000_000, 0);
        let (hdr, body) = get(&mut srv, &client, "/page");
        assert_eq!(hdr.status, 200);
        assert_eq!(body, b"still here");
    }

    #[test]
    fn zero_length_page() {
        let (mut srv, client) = server(ServerMode::NCache);
        publish(&mut srv, "empty", b"");
        let (hdr, body) = get(&mut srv, &client, "/empty");
        assert_eq!(hdr.status, 200);
        assert_eq!(hdr.content_length, 0);
        assert!(body.is_empty());
    }
}
