#![warn(missing_docs)]
//! Disk and RAID-0 array timing models — the storage substrate behind the
//! iSCSI target.
//!
//! The paper's storage server used four IBM DTLA-307075 IDE disks behind
//! two Promise controllers, configured as RAID-0 (§5.2). This crate models
//! that array's *timing*: each [`disk::Disk`] is a FIFO device with
//! seek/rotation/transfer service times (sequential access skips the
//! positioning cost, which is why the 2 GB sequential-read workload of
//! Figure 4 streams at media rate), and [`raid::Raid0`] stripes requests
//! across disks, completing when the slowest stripe finishes.
//!
//! The actual block *contents* live in the iSCSI target (`servers` crate);
//! this crate only answers "when is this I/O done?".

pub mod disk;
pub mod raid;
pub mod tier;
pub mod transient;

pub use disk::{Disk, DiskModel};
pub use raid::Raid0;
pub use tier::{TierConfig, TierOutcome, TierStats, TieredArray, WritebackPolicy};
pub use transient::TransientFaults;

/// Block size used throughout the storage stack (one FS block, one iSCSI
/// block, one cacheable unit).
pub const BLOCK_SIZE: u64 = 4096;
