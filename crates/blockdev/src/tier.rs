//! A two-tier backend: a small NVMe-like fast device in front of the
//! paper's RAID-0 array.
//!
//! The adaptive-split work (DESIGN.md §16) adds a second storage tier so
//! the controller has a placement axis to route: blocks that keep missing
//! in RAM can be *promoted* to a fast device whose service times are
//! microseconds instead of milliseconds. Like the rest of `blockdev`,
//! this crate only answers "when is this I/O done?" — block contents
//! stay in the iSCSI target.
//!
//! Placement is tracked per [`BLOCK_SIZE`] block. A read whose blocks are
//! all fast-resident is served by the fast device; anything else goes to
//! the slow array (no split I/O — partial residency behaves like a miss,
//! keeping the timing model simple and the miss counters honest). A slow
//! read bumps the extent's miss count; at [`TierConfig::promote_after`]
//! misses the extent is copied onto the fast tier — the promotion write
//! is timed on the fast device starting when the slow read completes, so
//! a request chain that waits for the promotion still telescopes:
//! `queue + service` sums exactly to `promote_done − slow_done` with no
//! gaps. Writes follow [`WritebackPolicy`]; a slow-path write invalidates
//! any fast copy it shadows.
//!
//! Transient faults (seeded, like [`crate::TransientFaults`]) can be
//! attached to the fast tier: a faulted fast read *falls back* to the
//! slow array and is counted, modelling a device that degrades rather
//! than corrupts.

use sim::time::SimTime;

use crate::disk::{Disk, DiskModel};
use crate::raid::Raid0;
use crate::transient::TransientFaults;
use std::collections::HashMap;

impl DiskModel {
    /// An NVMe-like fast tier: flat microsecond-scale access with no
    /// meaningful positioning cost (min = avg = max "seek" is the fixed
    /// command overhead) and a media rate far above the DTLA array's.
    /// Every access pattern is strictly cheaper than on
    /// [`DiskModel::dtla_307075`] in integer nanoseconds.
    pub fn nvme_like() -> Self {
        DiskModel {
            min_seek: sim::time::Duration::from_micros(8),
            avg_seek: sim::time::Duration::from_micros(8),
            max_seek: sim::time::Duration::from_micros(8),
            span_blocks: 18_000_000,
            avg_rotation: sim::time::Duration::from_micros(2),
            media_bytes_per_sec: 2.0e9,
        }
    }
}

/// Where writes land in a tiered backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritebackPolicy {
    /// All writes go to the slow array (write-around): the fast tier
    /// holds only promoted read-hot blocks, and a write invalidates any
    /// fast copy it shadows.
    Slow,
    /// Writes whose blocks are all fast-resident are absorbed by the
    /// fast device; the rest go to the slow array (and invalidate).
    FastWhenResident,
}

/// Configuration of a tiered backend.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TierConfig {
    /// Timing model of the fast device.
    pub fast_model: DiskModel,
    /// Fast-tier capacity in blocks; promotion stops (silently) when the
    /// placement map is full.
    pub fast_capacity_blocks: u64,
    /// Slow-path reads of the same extent before it is promoted.
    pub promote_after: u32,
    /// Where writes land.
    pub writeback: WritebackPolicy,
    /// Seed for transient fast-tier faults (unused at rate 0).
    pub fault_seed: u64,
    /// Transient fast-read fault rate, parts per million.
    pub fault_rate_ppm: u32,
}

impl TierConfig {
    /// An NVMe-like tier holding `fast_capacity_blocks` blocks, promoting
    /// after 2 slow reads, write-around, fault-free.
    pub fn nvme_front(fast_capacity_blocks: u64) -> Self {
        TierConfig {
            fast_model: DiskModel::nvme_like(),
            fast_capacity_blocks,
            promote_after: 2,
            writeback: WritebackPolicy::Slow,
            fault_seed: 0,
            fault_rate_ppm: 0,
        }
    }

    /// The same configuration with seeded transient fast-tier faults.
    pub fn with_faults(mut self, seed: u64, rate_ppm: u32) -> Self {
        self.fault_seed = seed;
        self.fault_rate_ppm = rate_ppm;
        self
    }
}

/// Counters of a tiered backend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Reads served entirely by the fast device.
    pub fast_reads: u64,
    /// Reads served by the slow array.
    pub slow_reads: u64,
    /// Writes absorbed by the fast device.
    pub fast_writes: u64,
    /// Writes sent to the slow array.
    pub slow_writes: u64,
    /// Extents copied onto the fast tier.
    pub promotions: u64,
    /// Fast reads that faulted and fell back to the slow array.
    pub fault_fallbacks: u64,
    /// Fast-resident blocks invalidated by slow-path writes.
    pub invalidated_blocks: u64,
    /// Blocks currently resident on the fast tier.
    pub fast_resident_blocks: u64,
}

/// Timing of one tiered I/O.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierOutcome {
    /// Instant the serving device started on the request.
    pub begin: SimTime,
    /// Instant the serving device completed it.
    pub done: SimTime,
    /// Completion of the promotion write triggered by this read, if any.
    /// The promotion starts exactly at `done`, so a chain extended to
    /// `promote_done` telescopes with a zero-queue "tier-promote" stage
    /// of service `promote_done − done`.
    pub promote_done: Option<SimTime>,
    /// Whether the fast device served the request.
    pub fast: bool,
    /// Whether a fast read faulted and fell back to the slow array.
    pub fault_fallback: bool,
}

/// A fast device in front of the RAID-0 array, with per-block placement.
#[derive(Clone, Debug)]
pub struct TieredArray {
    fast: Disk,
    slow: Raid0,
    cfg: TierConfig,
    /// Fast-resident blocks (presence = resident).
    placement: HashMap<u64, ()>,
    /// Slow-read counts per extent start, pending promotion.
    miss_counts: HashMap<u64, u32>,
    faults: Option<TransientFaults>,
    stats: TierStats,
}

impl TieredArray {
    /// A tiered backend: `cfg.fast_model` in front of `slow`.
    pub fn new(cfg: TierConfig, slow: Raid0) -> Self {
        TieredArray {
            fast: Disk::new(cfg.fast_model),
            slow,
            cfg,
            placement: HashMap::new(),
            miss_counts: HashMap::new(),
            faults: (cfg.fault_rate_ppm > 0)
                .then(|| TransientFaults::new(cfg.fault_seed, cfg.fault_rate_ppm)),
            stats: TierStats::default(),
        }
    }

    /// Counter snapshot (with current fast residency).
    pub fn stats(&self) -> TierStats {
        let mut s = self.stats;
        s.fast_resident_blocks = self.placement.len() as u64;
        s
    }

    /// The slow array (utilization reporting).
    pub fn slow(&self) -> &Raid0 {
        &self.slow
    }

    /// The fast device (utilization reporting).
    pub fn fast(&self) -> &Disk {
        &self.fast
    }

    fn all_fast(&self, start: u64, blocks: u64) -> bool {
        (start..start + blocks).all(|b| self.placement.contains_key(&b))
    }

    /// Times a read of `blocks` blocks at `start`, arriving at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero (as the underlying devices do).
    pub fn read_timed(&mut self, now: SimTime, start: u64, blocks: u64) -> TierOutcome {
        if self.all_fast(start, blocks) {
            let faulted = self.faults.as_mut().is_some_and(|f| f.next_io_fails());
            if !faulted {
                let (begin, done) = self.fast.io_timed(now, start, blocks);
                self.stats.fast_reads += 1;
                return TierOutcome {
                    begin,
                    done,
                    promote_done: None,
                    fast: true,
                    fault_fallback: false,
                };
            }
            // Degraded fast read: serve from the slow array instead. The
            // copy stays resident — the fault is transient.
            let (begin, done) = self.slow.io_timed(now, start, blocks);
            self.stats.slow_reads += 1;
            self.stats.fault_fallbacks += 1;
            return TierOutcome {
                begin,
                done,
                promote_done: None,
                fast: false,
                fault_fallback: true,
            };
        }
        let (begin, done) = self.slow.io_timed(now, start, blocks);
        self.stats.slow_reads += 1;
        let misses = self.miss_counts.entry(start).or_insert(0);
        *misses += 1;
        let mut promote_done = None;
        if *misses >= self.cfg.promote_after
            && self.placement.len() as u64 + blocks <= self.cfg.fast_capacity_blocks
        {
            self.miss_counts.remove(&start);
            for b in start..start + blocks {
                self.placement.insert(b, ());
            }
            // The promotion copy starts the instant the slow read
            // completes: its source bytes exist only then.
            let (_, pdone) = self.fast.io_timed(done, start, blocks);
            self.stats.promotions += 1;
            promote_done = Some(pdone);
        }
        TierOutcome {
            begin,
            done,
            promote_done,
            fast: false,
            fault_fallback: false,
        }
    }

    /// Times a write of `blocks` blocks at `start`, arriving at `now`.
    /// Routed by [`WritebackPolicy`]; slow-path writes invalidate any
    /// fast-resident blocks they shadow (the fast copy is stale).
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero (as the underlying devices do).
    pub fn write_timed(&mut self, now: SimTime, start: u64, blocks: u64) -> TierOutcome {
        if self.cfg.writeback == WritebackPolicy::FastWhenResident && self.all_fast(start, blocks) {
            let (begin, done) = self.fast.io_timed(now, start, blocks);
            self.stats.fast_writes += 1;
            return TierOutcome {
                begin,
                done,
                promote_done: None,
                fast: true,
                fault_fallback: false,
            };
        }
        let (begin, done) = self.slow.io_timed(now, start, blocks);
        self.stats.slow_writes += 1;
        for b in start..start + blocks {
            if self.placement.remove(&b).is_some() {
                self.stats.invalidated_blocks += 1;
            }
        }
        TierOutcome {
            begin,
            done,
            promote_done: None,
            fast: false,
            fault_fallback: false,
        }
    }

    /// Combined utilization of the busier device over `[0, elapsed]`.
    pub fn utilization(&self, elapsed_until: SimTime) -> f64 {
        self.slow
            .utilization(elapsed_until)
            .max(self.fast.utilization(elapsed_until))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slow() -> Raid0 {
        Raid0::new(DiskModel::dtla_307075(), 4, 16)
    }

    #[test]
    fn nvme_strictly_cheaper_than_dtla_in_integer_ns() {
        let fast = DiskModel::nvme_like();
        let dtla = DiskModel::dtla_307075();
        for blocks in [1u64, 8, 16, 64] {
            for distance in [0u64, 1, 255, 257, 100_000, u64::MAX] {
                let f = fast.service_time_at(blocks, distance).as_nanos();
                let s = dtla.service_time_at(blocks, distance).as_nanos();
                assert!(f < s, "blocks={blocks} distance={distance}: {f} !< {s}");
            }
        }
    }

    #[test]
    fn promotion_after_repeated_misses_then_fast_service() {
        let mut t = TieredArray::new(TierConfig::nvme_front(1 << 20), slow());
        let r1 = t.read_timed(SimTime::ZERO, 0, 8);
        assert!(!r1.fast && r1.promote_done.is_none(), "first miss");
        let r2 = t.read_timed(r1.done, 0, 8);
        assert!(!r2.fast, "promotion trigger still served slow");
        let pdone = r2.promote_done.expect("second miss promotes");
        assert!(pdone > r2.done, "copy takes time after the slow read");
        let r3 = t.read_timed(pdone, 0, 8);
        assert!(r3.fast, "resident extent reads fast");
        assert!(
            r3.done.since(r3.begin) < r2.done.since(r2.begin),
            "fast service beats slow service"
        );
        let s = t.stats();
        assert_eq!(s.promotions, 1);
        assert_eq!(s.fast_reads, 1);
        assert_eq!(s.slow_reads, 2);
        assert_eq!(s.fast_resident_blocks, 8);
    }

    #[test]
    fn capacity_bounds_promotion() {
        let mut t = TieredArray::new(TierConfig::nvme_front(8), slow());
        for _ in 0..2 {
            t.read_timed(SimTime::ZERO, 0, 8);
        }
        assert_eq!(t.stats().fast_resident_blocks, 8);
        // A second extent no longer fits: promotion is skipped silently.
        for _ in 0..4 {
            t.read_timed(SimTime::ZERO, 100, 8);
        }
        assert_eq!(t.stats().promotions, 1);
        assert_eq!(t.stats().fast_resident_blocks, 8);
    }

    #[test]
    fn partial_residency_reads_slow() {
        let mut t = TieredArray::new(TierConfig::nvme_front(1 << 20), slow());
        for _ in 0..2 {
            t.read_timed(SimTime::ZERO, 0, 8);
        }
        // Straddling read: [4, 12) is only half resident.
        let r = t.read_timed(SimTime::ZERO, 4, 8);
        assert!(!r.fast);
    }

    #[test]
    fn slow_write_invalidates_fast_copy() {
        let mut t = TieredArray::new(TierConfig::nvme_front(1 << 20), slow());
        for _ in 0..2 {
            t.read_timed(SimTime::ZERO, 0, 8);
        }
        assert_eq!(t.stats().fast_resident_blocks, 8);
        let w = t.write_timed(SimTime::ZERO, 4, 8);
        assert!(!w.fast, "write-around policy");
        let s = t.stats();
        assert_eq!(s.slow_writes, 1);
        assert_eq!(s.invalidated_blocks, 4);
        assert_eq!(s.fast_resident_blocks, 4);
        let r = t.read_timed(SimTime::ZERO, 0, 8);
        assert!(!r.fast, "invalidated extent reads slow again");
    }

    #[test]
    fn fast_when_resident_absorbs_writes() {
        let cfg = TierConfig {
            writeback: WritebackPolicy::FastWhenResident,
            ..TierConfig::nvme_front(1 << 20)
        };
        let mut t = TieredArray::new(cfg, slow());
        for _ in 0..2 {
            t.read_timed(SimTime::ZERO, 0, 8);
        }
        let w = t.write_timed(SimTime::ZERO, 0, 8);
        assert!(w.fast);
        let s = t.stats();
        assert_eq!(s.fast_writes, 1);
        assert_eq!(s.invalidated_blocks, 0);
        assert_eq!(s.fast_resident_blocks, 8, "fast write keeps residency");
    }

    #[test]
    fn transient_fault_falls_back_to_slow_and_counts() {
        // Rate high enough that some fast read faults quickly.
        let cfg = TierConfig::nvme_front(1 << 20).with_faults(7, 500_000);
        let mut t = TieredArray::new(cfg, slow());
        for _ in 0..2 {
            t.read_timed(SimTime::ZERO, 0, 8);
        }
        let mut saw_fallback = false;
        let mut now = SimTime::ZERO;
        for _ in 0..64 {
            let r = t.read_timed(now, 0, 8);
            now = r.done;
            if r.fault_fallback {
                assert!(!r.fast, "faulted read served slow");
                saw_fallback = true;
                break;
            }
        }
        assert!(saw_fallback, "500000 ppm must fault within 64 reads");
        assert!(t.stats().fault_fallbacks >= 1);
        assert_eq!(
            t.stats().fast_resident_blocks,
            8,
            "transient fault does not evict"
        );
        // Determinism: the same seed replays the same fault schedule.
        let mut a = TieredArray::new(cfg, slow());
        let mut b = TieredArray::new(cfg, slow());
        for _ in 0..32 {
            let ra = a.read_timed(SimTime::ZERO, 0, 8);
            let rb = b.read_timed(SimTime::ZERO, 0, 8);
            assert_eq!(ra.fault_fallback, rb.fault_fallback);
        }
    }

    #[test]
    fn promote_stage_telescopes() {
        let mut t = TieredArray::new(TierConfig::nvme_front(1 << 20), slow());
        let r1 = t.read_timed(SimTime::ZERO, 0, 8);
        let r2 = t.read_timed(r1.done, 0, 8);
        let pdone = r2.promote_done.expect("promoted");
        // queue(0) + service(pdone − done) extends the chain gaplessly.
        let service = pdone.since(r2.done);
        assert_eq!(r2.done + service, pdone);
        assert!(service > sim::time::Duration::ZERO);
    }
}
