//! A single-spindle disk timing model.

use sim::time::{Duration, SimTime};

use crate::BLOCK_SIZE;

/// Mechanical parameters of one disk.
///
/// # Examples
///
/// ```
/// use blockdev::DiskModel;
/// let m = DiskModel::dtla_307075();
/// // A random 4 KiB read costs seek + rotation + transfer: ~13 ms.
/// let t = m.service_time(1, false);
/// assert!(t.as_nanos() > 10_000_000);
/// // A sequential one costs only transfer time: well under a millisecond.
/// assert!(m.service_time(1, true).as_nanos() < 1_000_000);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskModel {
    /// Track-to-track (minimum) seek time.
    pub min_seek: Duration,
    /// Average seek time (as quoted on data sheets: ~1/3 stroke).
    pub avg_seek: Duration,
    /// Full-stroke seek time.
    pub max_seek: Duration,
    /// Addressable span in blocks (seek distances scale against this).
    pub span_blocks: u64,
    /// Average rotational latency (half a revolution).
    pub avg_rotation: Duration,
    /// Sustained media transfer rate, bytes/second.
    pub media_bytes_per_sec: f64,
}

impl DiskModel {
    /// The paper's disk: IBM DTLA-307075 (Deskstar 75GXP), 7200 rpm,
    /// ~8.5 ms average seek, ~37 MB/s sustained media rate.
    pub fn dtla_307075() -> Self {
        DiskModel {
            min_seek: Duration::from_micros(1_200),
            avg_seek: Duration::from_micros(8_500),
            max_seek: Duration::from_micros(15_000),
            span_blocks: 18_000_000, // ~75 GB of 4 KiB blocks
            avg_rotation: Duration::from_micros(4_170),
            media_bytes_per_sec: 37.0e6,
        }
    }

    /// Seek time as a function of distance: the classic
    /// `min + (max − min) · √(d/span)` curve, which puts the quoted
    /// average near the 1/3-stroke point. Short hops inside a hot file
    /// set cost far less than the data-sheet average.
    pub fn seek_time(&self, distance_blocks: u64) -> Duration {
        let frac = (distance_blocks as f64 / self.span_blocks as f64).min(1.0);
        let extra = (self.max_seek - self.min_seek).as_nanos() as f64 * frac.sqrt();
        self.min_seek + Duration::from_nanos(extra as u64)
    }

    /// Service time for a request `distance_blocks` away from the head.
    pub fn service_time_at(&self, blocks: u64, distance_blocks: u64) -> Duration {
        let transfer =
            Duration::from_secs_f64(blocks as f64 * BLOCK_SIZE as f64 / self.media_bytes_per_sec);
        if distance_blocks <= crate::disk::NEAR_SEQ_WINDOW {
            transfer
        } else {
            self.seek_time(distance_blocks) + self.avg_rotation + transfer
        }
    }

    /// Service time for `blocks` blocks; `sequential` requests skip the
    /// positioning cost.
    pub fn service_time(&self, blocks: u64, sequential: bool) -> Duration {
        let transfer =
            Duration::from_secs_f64(blocks as f64 * BLOCK_SIZE as f64 / self.media_bytes_per_sec);
        if sequential {
            transfer
        } else {
            self.avg_seek + self.avg_rotation + transfer
        }
    }
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel::dtla_307075()
    }
}

/// Blocks of slack within which an access still counts as sequential.
/// Real drives reorder queued requests and read ahead in firmware, so a
/// request landing near (not exactly at) the head position avoids the
/// full seek + rotation penalty. Out-of-order arrivals from concurrent
/// request slots stay inside this window on streaming workloads.
pub const NEAR_SEQ_WINDOW: u64 = 256;

/// One disk: a FIFO device with positional state for sequential detection.
#[derive(Clone, Debug)]
pub struct Disk {
    model: DiskModel,
    free_at: SimTime,
    next_seq_block: Option<u64>,
    busy: Duration,
    requests: u64,
    blocks_moved: u64,
}

impl Disk {
    /// A disk with the given model, idle at time zero.
    pub fn new(model: DiskModel) -> Self {
        Disk {
            model,
            free_at: SimTime::ZERO,
            next_seq_block: None,
            busy: Duration::ZERO,
            requests: 0,
            blocks_moved: 0,
        }
    }

    /// Enqueues an I/O of `blocks` blocks starting at `start_block`,
    /// arriving at `now`; returns its completion instant. Reads and writes
    /// cost the same in this model.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn io(&mut self, now: SimTime, start_block: u64, blocks: u64) -> SimTime {
        self.io_timed(now, start_block, blocks).1
    }

    /// As [`Disk::io`], but also returns the instant the head started on
    /// this request: `begin - now` is time queued behind earlier I/O,
    /// `done - begin` the positioning + transfer service time.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn io_timed(&mut self, now: SimTime, start_block: u64, blocks: u64) -> (SimTime, SimTime) {
        assert!(blocks > 0, "zero-length disk I/O");
        let distance = self
            .next_seq_block
            .map_or(u64::MAX, |expected| start_block.abs_diff(expected));
        let demand = self.model.service_time_at(blocks, distance);
        let begin = self.free_at.max(now);
        let done = begin + demand;
        self.free_at = done;
        self.next_seq_block = Some(start_block + blocks);
        self.busy += demand;
        self.requests += 1;
        self.blocks_moved += blocks;
        (begin, done)
    }

    /// Utilization over `[0, elapsed_until]`.
    pub fn utilization(&self, elapsed_until: SimTime) -> f64 {
        if elapsed_until == SimTime::ZERO {
            return 0.0;
        }
        let overhang = self.free_at.saturating_since(elapsed_until);
        (self.busy.saturating_sub(overhang).as_secs_f64() / elapsed_until.as_secs_f64()).min(1.0)
    }

    /// Total requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Total blocks moved.
    pub fn blocks_moved(&self) -> u64 {
        self.blocks_moved
    }

    /// Instant the disk becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_io_skips_positioning() {
        let m = DiskModel::dtla_307075();
        let mut d = Disk::new(m);
        let c1 = d.io(SimTime::ZERO, 0, 8);
        // Next request continues where the last ended: sequential.
        let c2 = d.io(c1, 8, 8);
        let seq_cost = c2.since(c1);
        assert_eq!(seq_cost, m.service_time(8, true));
        // A request elsewhere pays a distance-scaled seek + rotation.
        let c3 = d.io(c2, 100_000, 8);
        assert_eq!(c3.since(c2), m.service_time_at(8, 100_000 - 16));
        assert!(c3.since(c2) > seq_cost * 5);
    }

    #[test]
    fn near_sequential_arrivals_stream() {
        // Concurrent slots deliver slightly out-of-order requests; within
        // the window they still stream at media rate.
        let m = DiskModel::dtla_307075();
        let mut d = Disk::new(m);
        let c1 = d.io(SimTime::ZERO, 0, 8);
        let c2 = d.io(c1, 16, 8); // skipped ahead by one burst
        assert_eq!(c2.since(c1), m.service_time(8, true));
        let c3 = d.io(c2, 8, 8); // and back-filled
        assert_eq!(c3.since(c2), m.service_time(8, true));
        // Beyond the window it is a real (short) seek.
        let c4 = d.io(c3, 16 + NEAR_SEQ_WINDOW + 1, 8);
        assert_eq!(c4.since(c3), m.service_time_at(8, NEAR_SEQ_WINDOW + 1));
        assert!(c4.since(c3) > m.service_time(8, true));
    }

    #[test]
    fn seek_time_scales_with_distance() {
        let m = DiskModel::dtla_307075();
        let near = m.seek_time(1_000);
        let mid = m.seek_time(m.span_blocks / 3);
        let far = m.seek_time(m.span_blocks);
        assert!(near < mid && mid < far);
        assert!(near >= m.min_seek);
        assert_eq!(far, m.max_seek);
        assert_eq!(m.seek_time(u64::MAX), m.max_seek, "clamped");
        // The quoted average lands near the 1/3-stroke point.
        let avg = m.seek_time(m.span_blocks / 3 / 3); // sqrt(1/9)=1/3 of range
        assert!(avg < m.avg_seek + Duration::from_micros(2_000));
    }

    #[test]
    fn first_io_is_random() {
        let m = DiskModel::dtla_307075();
        let mut d = Disk::new(m);
        let c = d.io(SimTime::ZERO, 0, 1);
        assert_eq!(c.since(SimTime::ZERO), m.service_time_at(1, u64::MAX));
    }

    #[test]
    fn fifo_queueing() {
        let mut d = Disk::new(DiskModel::dtla_307075());
        let c1 = d.io(SimTime::ZERO, 0, 1);
        let c2 = d.io(SimTime::ZERO, 0, 1);
        assert!(c2 > c1, "second request waits for the first");
        assert_eq!(d.requests(), 2);
        assert_eq!(d.blocks_moved(), 2);
    }

    #[test]
    fn sequential_stream_approaches_media_rate() {
        let m = DiskModel::dtla_307075();
        let mut d = Disk::new(m);
        let mut t = SimTime::ZERO;
        let blocks_per_io = 16u64;
        let ios = 1_000u64;
        for i in 0..ios {
            t = d.io(t, i * blocks_per_io, blocks_per_io);
        }
        let bytes = ios * blocks_per_io * BLOCK_SIZE;
        let rate = bytes as f64 / t.as_secs_f64();
        // First I/O pays positioning; the rest stream. Expect ≥95% of 37 MB/s.
        assert!(rate > 0.95 * m.media_bytes_per_sec, "rate = {rate}");
    }

    #[test]
    fn utilization_tracks_busy_fraction() {
        let mut d = Disk::new(DiskModel::dtla_307075());
        let c = d.io(SimTime::ZERO, 0, 8);
        let idle_until = c + Duration::from_millis(100);
        let u = d.utilization(idle_until);
        assert!(u > 0.0 && u < 0.5);
        assert_eq!(d.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_blocks_panics() {
        Disk::new(DiskModel::dtla_307075()).io(SimTime::ZERO, 0, 0);
    }
}
