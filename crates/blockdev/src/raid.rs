//! RAID-0 striping across disks.

use sim::time::SimTime;

use crate::disk::{Disk, DiskModel};

/// A RAID-0 array: requests are split at stripe boundaries and issued to
/// the member disks in parallel; the request completes when the slowest
/// stripe does.
///
/// # Examples
///
/// ```
/// use blockdev::{DiskModel, Raid0};
/// use sim::time::SimTime;
///
/// // The paper's array: 4 disks, 16-block (64 KiB) stripes.
/// let mut array = Raid0::new(DiskModel::dtla_307075(), 4, 16);
/// let done = array.io(SimTime::ZERO, 0, 64); // touches all four disks
/// assert!(done > SimTime::ZERO);
/// ```
#[derive(Clone, Debug)]
pub struct Raid0 {
    disks: Vec<Disk>,
    stripe_blocks: u64,
    requests: u64,
}

impl Raid0 {
    /// An array of `disks` identical members with `stripe_blocks`-block
    /// stripes.
    ///
    /// # Panics
    ///
    /// Panics if `disks` or `stripe_blocks` is zero.
    pub fn new(model: DiskModel, disks: usize, stripe_blocks: u64) -> Self {
        assert!(disks > 0, "an array needs at least one disk");
        assert!(stripe_blocks > 0, "stripe size must be positive");
        Raid0 {
            disks: (0..disks).map(|_| Disk::new(model)).collect(),
            stripe_blocks,
            requests: 0,
        }
    }

    /// Number of member disks.
    pub fn disk_count(&self) -> usize {
        self.disks.len()
    }

    /// Total array requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Enqueues an I/O of `blocks` blocks at array block `start`, arriving
    /// at `now`; returns the completion instant of the slowest stripe.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn io(&mut self, now: SimTime, start: u64, blocks: u64) -> SimTime {
        self.io_timed(now, start, blocks).1
    }

    /// As [`Raid0::io`], but also returns the instant the earliest
    /// stripe started: `begin - now` is the array-level queue wait,
    /// `done - begin` the service interval (stripes may overlap inside
    /// it). The two always telescope: `(begin - now) + (done - begin) ==
    /// done - now`, which keeps per-request stage sums exact.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn io_timed(&mut self, now: SimTime, start: u64, blocks: u64) -> (SimTime, SimTime) {
        assert!(blocks > 0, "zero-length array I/O");
        self.requests += 1;
        let n = self.disks.len() as u64;
        let mut begin: Option<SimTime> = None;
        let mut done = now;
        let mut at = start;
        let end = start + blocks;
        while at < end {
            // The stripe containing `at`:
            let stripe_idx = at / self.stripe_blocks;
            let disk_idx = (stripe_idx % n) as usize;
            let stripe_end = (stripe_idx + 1) * self.stripe_blocks;
            let run = stripe_end.min(end) - at;
            // Block address on the member disk: which of *its* stripes this
            // is, plus the offset within the stripe.
            let disk_stripe = stripe_idx / n;
            let disk_block = disk_stripe * self.stripe_blocks + (at % self.stripe_blocks);
            let (b, c) = self.disks[disk_idx].io_timed(now, disk_block, run);
            begin = Some(begin.map_or(b, |prev| prev.min(b)));
            done = done.max(c);
            at += run;
        }
        (begin.unwrap_or(now), done)
    }

    /// Mean member-disk utilization over `[0, elapsed_until]`.
    pub fn utilization(&self, elapsed_until: SimTime) -> f64 {
        self.disks
            .iter()
            .map(|d| d.utilization(elapsed_until))
            .sum::<f64>()
            / self.disks.len() as f64
    }

    /// Total blocks moved across all members.
    pub fn blocks_moved(&self) -> u64 {
        self.disks.iter().map(Disk::blocks_moved).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BLOCK_SIZE;

    #[test]
    fn stripes_cover_exactly_the_request() {
        let mut a = Raid0::new(DiskModel::dtla_307075(), 4, 16);
        a.io(SimTime::ZERO, 5, 100);
        assert_eq!(a.blocks_moved(), 100);
        assert_eq!(a.requests(), 1);
    }

    #[test]
    fn wide_request_uses_all_disks() {
        let mut a = Raid0::new(DiskModel::dtla_307075(), 4, 16);
        a.io(SimTime::ZERO, 0, 64);
        for d in &a.disks {
            assert_eq!(d.blocks_moved(), 16, "each disk serves one stripe");
        }
    }

    #[test]
    fn striping_beats_one_disk_on_large_sequential_io() {
        let model = DiskModel::dtla_307075();
        let mut one = Raid0::new(model, 1, 16);
        let mut four = Raid0::new(model, 4, 16);
        let mut t1 = SimTime::ZERO;
        let mut t4 = SimTime::ZERO;
        for i in 0..200u64 {
            t1 = one.io(t1, i * 64, 64);
            t4 = four.io(t4, i * 64, 64);
        }
        assert!(
            t4.as_nanos() * 3 < t1.as_nanos(),
            "4-way stripe should be >3x faster sequentially: {t4} vs {t1}"
        );
    }

    #[test]
    fn sequential_array_rate_scales_with_members() {
        let model = DiskModel::dtla_307075();
        let mut a = Raid0::new(model, 4, 16);
        let mut t = SimTime::ZERO;
        let total_blocks = 64 * 500u64;
        for i in 0..500u64 {
            t = a.io(t, i * 64, 64);
        }
        let rate = (total_blocks * BLOCK_SIZE) as f64 / t.as_secs_f64();
        // ~4 × 37 MB/s = 148 MB/s; allow stripe-boundary slop.
        assert!(rate > 3.5 * model.media_bytes_per_sec, "rate = {rate}");
    }

    #[test]
    fn small_request_touches_one_disk() {
        let mut a = Raid0::new(DiskModel::dtla_307075(), 4, 16);
        a.io(SimTime::ZERO, 0, 8);
        let active = a.disks.iter().filter(|d| d.blocks_moved() > 0).count();
        assert_eq!(active, 1);
    }

    #[test]
    fn disk_addressing_is_dense_per_member() {
        // Array stripes 0,4,8.. map to disk 0 stripes 0,1,2.. — verified by
        // sequential detection: back-to-back array stripes on one disk
        // should be sequential for that disk.
        let model = DiskModel::dtla_307075();
        let mut a = Raid0::new(model, 4, 16);
        // Stripe 0 (disk 0, blocks 0..16), then stripe 4 (disk 0, 16..32).
        let c1 = a.io(SimTime::ZERO, 0, 16);
        let c2 = a.io(c1, 64, 16);
        assert_eq!(c2.since(c1), model.service_time(16, true));
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_panics() {
        let _ = Raid0::new(DiskModel::dtla_307075(), 0, 16);
    }

    #[test]
    #[should_panic(expected = "stripe size")]
    fn zero_stripe_panics() {
        let _ = Raid0::new(DiskModel::dtla_307075(), 4, 0);
    }

    #[test]
    fn io_timed_brackets_the_request() {
        let mut a = Raid0::new(DiskModel::dtla_307075(), 4, 16);
        // Idle array: service starts at arrival.
        let (b1, d1) = a.io_timed(SimTime::ZERO, 0, 64);
        assert_eq!(b1, SimTime::ZERO);
        assert!(d1 > b1);
        // A second request to the same stripes queues behind the first.
        let (b2, d2) = a.io_timed(SimTime::ZERO, 0, 64);
        assert!(b2 > SimTime::ZERO, "queued start");
        assert!(d2 > d1);
        // io() returns exactly the completion half.
        let mut c = Raid0::new(DiskModel::dtla_307075(), 4, 16);
        assert_eq!(c.io(SimTime::ZERO, 0, 64), d1);
    }

    #[test]
    fn utilization_averages_members() {
        let mut a = Raid0::new(DiskModel::dtla_307075(), 2, 16);
        let c = a.io(SimTime::ZERO, 0, 16); // one disk busy, one idle
        let u = a.utilization(c);
        assert!(u > 0.0 && u <= 0.5 + 1e-9);
    }
}
