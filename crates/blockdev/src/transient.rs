//! Deterministic transient-error stream for a block device.
//!
//! Real disks fail reads and writes transiently (media retries, transport
//! resets); the iSCSI target surfaces those as non-zero SCSI status so the
//! initiator's retry path gets exercised. The stream is a seeded
//! [`SplitMix64`](sim::rng::SplitMix64) Bernoulli sequence in
//! parts-per-million space, with the same consecutive-failure bound as
//! `sim::fault` so a bounded retry loop always eventually succeeds.

use sim::rng::SplitMix64;

/// At most this many consecutive I/O operations fail; the next one is
/// forced to succeed (mirrors `sim::fault::MAX_CONSECUTIVE_FAULTS`).
pub const MAX_CONSECUTIVE_IO_FAULTS: u32 = 3;

/// A seeded stream of transient block-I/O error decisions.
///
/// # Examples
///
/// ```
/// use blockdev::TransientFaults;
/// let mut never = TransientFaults::new(7, 0);
/// assert!((0..100).all(|_| !never.next_io_fails()));
/// let mut a = TransientFaults::new(7, 500_000);
/// let mut b = TransientFaults::new(7, 500_000);
/// assert!((0..100).all(|_| a.next_io_fails() == b.next_io_fails()));
/// ```
#[derive(Clone, Debug)]
pub struct TransientFaults {
    rng: SplitMix64,
    rate_ppm: u32,
    consecutive: u32,
}

impl TransientFaults {
    /// A stream failing each I/O with probability `rate_ppm` / 10⁶.
    pub fn new(seed: u64, rate_ppm: u32) -> TransientFaults {
        TransientFaults {
            rng: SplitMix64::new(seed),
            rate_ppm: rate_ppm.min(1_000_000),
            consecutive: 0,
        }
    }

    /// True when the rate is zero — the stream can never fail anything.
    pub fn is_zero(&self) -> bool {
        self.rate_ppm == 0
    }

    /// Decides the next read/write: `true` means it fails transiently.
    /// Draws nothing when the rate is zero, and never fails more than
    /// [`MAX_CONSECUTIVE_IO_FAULTS`] operations in a row.
    pub fn next_io_fails(&mut self) -> bool {
        if self.rate_ppm == 0 {
            return false;
        }
        if self.consecutive >= MAX_CONSECUTIVE_IO_FAULTS {
            self.consecutive = 0;
            return false;
        }
        let fails = self.rng.next_u64() % 1_000_000 < u64::from(self.rate_ppm);
        if fails {
            self.consecutive += 1;
        } else {
            self.consecutive = 0;
        }
        fails
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_fails_and_draws_nothing() {
        let mut t = TransientFaults::new(1, 0);
        assert!(t.is_zero());
        for _ in 0..1000 {
            assert!(!t.next_io_fails());
        }
        // The RNG is untouched: a fresh stream at a non-zero rate from the
        // same seed sees the pristine sequence.
        let mut a = TransientFaults::new(1, 999_999);
        let mut b = TransientFaults::new(1, 999_999);
        b.next_io_fails();
        let _ = a.next_io_fails();
        // (both advanced once; equality of future decisions is checked below)
        for _ in 0..100 {
            assert_eq!(a.next_io_fails(), b.next_io_fails());
        }
    }

    #[test]
    fn failures_are_bounded() {
        let mut t = TransientFaults::new(3, 1_000_000);
        let mut consecutive = 0;
        for _ in 0..1000 {
            if t.next_io_fails() {
                consecutive += 1;
                assert!(consecutive <= MAX_CONSECUTIVE_IO_FAULTS);
            } else {
                consecutive = 0;
            }
        }
    }

    #[test]
    fn rate_clamps_to_ppm() {
        let t = TransientFaults::new(3, u32::MAX);
        assert!(!t.is_zero());
    }
}
