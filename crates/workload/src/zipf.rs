//! Zipf-distributed sampling.
//!
//! Web page popularity follows a Zipf-like law (Breslau et al., the
//! paper's reference 7); SPECweb99 uses it for directory popularity.
//! The sampler precomputes the CDF and draws by binary search — O(log n)
//! per sample, deterministic given the RNG stream.

use sim::rng::SplitMix64;

/// A Zipf(α) sampler over ranks `0..n` (rank 0 most popular).
///
/// # Examples
///
/// ```
/// use sim::rng::SplitMix64;
/// use workload::zipf::Zipf;
///
/// let z = Zipf::new(100, 1.0);
/// let mut rng = SplitMix64::new(7);
/// let r = z.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `alpha` is negative/non-finite.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one_and_decreases() {
        let z = Zipf::new(50, 1.0);
        let total: f64 = (0..50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..50 {
            assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12, "monotone at {k}");
        }
    }

    #[test]
    fn rank_zero_dominates_at_alpha_one() {
        let z = Zipf::new(1000, 1.0);
        // p(0) = 1/H_1000 ≈ 1/7.485
        assert!((z.pmf(0) - 1.0 / 7.485).abs() < 0.01);
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = SplitMix64::new(42);
        let n = 200_000;
        let mut counts = [0u32; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: empirical {emp}, pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = SplitMix64::new(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.n(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        Zipf::new(10, f64::NAN);
    }
}
