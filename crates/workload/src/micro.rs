//! The two micro-benchmarks of §5.3.
//!
//! * **All-miss**: "sequentially read a big file (2 GB) from the NFS
//!   server" — every request misses the server's caches and goes to the
//!   storage server.
//! * **All-hit**: "repetitively access a small file (5 MB)" — after the
//!   first pass everything is served from cache.
//!
//! Both sweep the request size from 4 KB to 32 KB (Figures 4 and 5).

use crate::{FileId, NfsOp};

/// Generates the all-miss sequential read stream: one READ per `req_size`
/// window over `file_size` bytes.
///
/// # Examples
///
/// ```
/// use workload::micro::SeqRead;
/// use workload::{FileId, NfsOp};
///
/// let ops: Vec<NfsOp> = SeqRead::new(FileId(0), 64 * 1024, 16 * 1024).collect();
/// assert_eq!(ops.len(), 4);
/// assert!(matches!(ops[1], NfsOp::Read { offset: 16384, .. }));
/// ```
#[derive(Clone, Debug)]
pub struct SeqRead {
    file: FileId,
    file_size: u64,
    req_size: u32,
    next_offset: u64,
}

impl SeqRead {
    /// A sequential reader over `file` of `file_size` bytes, issuing
    /// `req_size`-byte requests.
    ///
    /// # Panics
    ///
    /// Panics if `req_size` is zero.
    pub fn new(file: FileId, file_size: u64, req_size: u32) -> Self {
        assert!(req_size > 0, "request size must be positive");
        SeqRead {
            file,
            file_size,
            req_size,
            next_offset: 0,
        }
    }

    /// Total requests this stream will produce.
    pub fn len(&self) -> u64 {
        self.file_size.div_ceil(u64::from(self.req_size))
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.file_size == 0
    }
}

impl Iterator for SeqRead {
    type Item = NfsOp;

    fn next(&mut self) -> Option<NfsOp> {
        if self.next_offset >= self.file_size {
            return None;
        }
        let len = u64::from(self.req_size).min(self.file_size - self.next_offset) as u32;
        let op = NfsOp::Read {
            file: self.file,
            offset: self.next_offset,
            len,
        };
        self.next_offset += u64::from(self.req_size);
        Some(op)
    }
}

/// Generates the all-hit stream: cyclic sequential reads over a small hot
/// file, repeated `passes` times (the first pass warms the cache; the
/// measurement window starts after it).
#[derive(Clone, Debug)]
pub struct AllHit {
    file: FileId,
    file_size: u64,
    req_size: u32,
    passes: u32,
    pass: u32,
    next_offset: u64,
}

impl AllHit {
    /// A repeating reader over `file` of `file_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `req_size` is zero.
    pub fn new(file: FileId, file_size: u64, req_size: u32, passes: u32) -> Self {
        assert!(req_size > 0, "request size must be positive");
        AllHit {
            file,
            file_size,
            req_size,
            passes,
            pass: 0,
            next_offset: 0,
        }
    }

    /// Requests per full pass.
    pub fn per_pass(&self) -> u64 {
        self.file_size.div_ceil(u64::from(self.req_size))
    }
}

impl Iterator for AllHit {
    type Item = NfsOp;

    fn next(&mut self) -> Option<NfsOp> {
        if self.pass >= self.passes {
            return None;
        }
        let len = u64::from(self.req_size).min(self.file_size - self.next_offset) as u32;
        let op = NfsOp::Read {
            file: self.file,
            offset: self.next_offset,
            len,
        };
        self.next_offset += u64::from(self.req_size);
        if self.next_offset >= self.file_size {
            self.next_offset = 0;
            self.pass += 1;
        }
        Some(op)
    }
}

/// The request sizes the paper sweeps in Figures 4 and 5.
pub const NFS_REQUEST_SIZES: [u32; 4] = [4 << 10, 8 << 10, 16 << 10, 32 << 10];

/// The request sizes of Figure 6(b).
pub const HTTP_REQUEST_SIZES: [u32; 4] = [16 << 10, 32 << 10, 64 << 10, 128 << 10];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_read_covers_file_exactly() {
        let ops: Vec<NfsOp> = SeqRead::new(FileId(1), 100 << 10, 32 << 10).collect();
        assert_eq!(ops.len(), 4);
        let total: u64 = ops.iter().map(NfsOp::payload_len).sum();
        assert_eq!(total, 100 << 10, "short final request covers the tail");
        assert!(matches!(ops[3], NfsOp::Read { len, .. } if len == 4 << 10));
    }

    #[test]
    fn seq_read_len_matches_iteration() {
        let s = SeqRead::new(FileId(0), 1 << 20, 4 << 10);
        assert_eq!(s.len(), 256);
        assert_eq!(s.clone().count() as u64, s.len());
        assert!(!s.is_empty());
        assert!(SeqRead::new(FileId(0), 0, 4096).is_empty());
    }

    #[test]
    fn all_hit_wraps_around() {
        let ops: Vec<NfsOp> = AllHit::new(FileId(0), 8 << 10, 4 << 10, 3).collect();
        assert_eq!(ops.len(), 6, "2 requests per pass x 3 passes");
        assert!(matches!(ops[0], NfsOp::Read { offset: 0, .. }));
        assert!(matches!(ops[1], NfsOp::Read { offset: 4096, .. }));
        assert!(matches!(ops[2], NfsOp::Read { offset: 0, .. }));
    }

    #[test]
    fn all_hit_per_pass() {
        let a = AllHit::new(FileId(0), 5 << 20, 16 << 10, 2);
        assert_eq!(a.per_pass(), 320);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_request_size_panics() {
        SeqRead::new(FileId(0), 1, 0);
    }
}
