//! Seeded open-loop arrival schedules.
//!
//! A closed-loop client (the session engines in the testbed) waits for
//! each reply before issuing the next request, so its offered load can
//! never exceed the server's capacity. An *open-loop* driver issues
//! requests at pre-drawn absolute instants regardless of completions —
//! the only way to push a system past saturation and watch its queues
//! (and tail latencies) grow. This module draws those instants: Poisson
//! inter-arrivals from a seeded [`SplitMix64`], with optional square-wave
//! burst modulation. The schedule is a pure function of its arguments,
//! so every run over it is byte-deterministic.

use sim::rng::SplitMix64;
use sim::time::SimTime;

/// Square-wave burst modulation of a Poisson arrival process: the mean
/// inter-arrival is divided by `factor` during the first half of each
/// period (the burst) and multiplied by it during the second half (the
/// lull), so the schedule alternates between `factor`× and `1/factor`×
/// the base rate while staying fully deterministic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BurstConfig {
    /// Full modulation period, simulated nanoseconds.
    pub period_ns: u64,
    /// Rate multiplier during the burst half-period (≥ 1).
    pub factor: f64,
}

/// Draws `n` arrival instants with exponential (Poisson-process)
/// inter-arrivals of mean `mean_interarrival_ns`, strictly increasing
/// (every gap is at least 1 ns). With `burst`, the mean is modulated by
/// the square wave described on [`BurstConfig`], evaluated at the
/// previous arrival's instant.
///
/// # Panics
///
/// Panics if `mean_interarrival_ns` is zero, or if `burst` has a zero
/// period or a factor below 1.
pub fn poisson_arrivals(
    seed: u64,
    n: usize,
    mean_interarrival_ns: u64,
    burst: Option<&BurstConfig>,
) -> Vec<SimTime> {
    assert!(mean_interarrival_ns > 0, "mean inter-arrival must be positive");
    if let Some(b) = burst {
        assert!(b.period_ns > 0, "burst period must be positive");
        assert!(
            b.factor.is_finite() && b.factor >= 1.0,
            "burst factor must be at least 1"
        );
    }
    let mut rng = SplitMix64::new(seed);
    let mut t = 0u64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mean = match burst {
            Some(b) => {
                let half = (b.period_ns / 2).max(1);
                if (t / half).is_multiple_of(2) {
                    mean_interarrival_ns as f64 / b.factor
                } else {
                    mean_interarrival_ns as f64 * b.factor
                }
            }
            None => mean_interarrival_ns as f64,
        };
        // Inverse-CDF draw; 1 - u is in (0, 1], so the log is finite.
        let u = rng.next_f64();
        let dt = (-(1.0 - u).ln() * mean).round().max(1.0) as u64;
        t += dt;
        out.push(SimTime::from_nanos(t));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_strictly_increasing_and_deterministic() {
        let a = poisson_arrivals(7, 500, 10_000, None);
        let b = poisson_arrivals(7, 500, 10_000, None);
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 500);
        for w in a.windows(2) {
            assert!(w[0] < w[1], "strictly increasing");
        }
        let c = poisson_arrivals(8, 500, 10_000, None);
        assert_ne!(a, c, "a different seed draws a different schedule");
    }

    #[test]
    fn mean_gap_approximates_the_requested_mean() {
        let n = 20_000;
        let mean = 5_000u64;
        let a = poisson_arrivals(42, n, mean, None);
        let total = a.last().unwrap().as_nanos();
        let got = total as f64 / n as f64;
        assert!(
            (got - mean as f64).abs() < 0.05 * mean as f64,
            "mean gap {got} vs requested {mean}"
        );
    }

    #[test]
    fn burst_halves_are_denser_than_lulls() {
        let burst = BurstConfig {
            period_ns: 1_000_000,
            factor: 4.0,
        };
        let a = poisson_arrivals(3, 10_000, 10_000, Some(&burst));
        let half = burst.period_ns / 2;
        let (mut dense, mut sparse) = (0u64, 0u64);
        for t in &a {
            if (t.as_nanos() / half).is_multiple_of(2) {
                dense += 1;
            } else {
                sparse += 1;
            }
        }
        assert!(
            dense > sparse * 2,
            "burst halves should dominate: {dense} vs {sparse}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_panics() {
        poisson_arrivals(1, 1, 0, None);
    }

    #[test]
    #[should_panic(expected = "factor")]
    fn sub_unit_burst_factor_panics() {
        let b = BurstConfig {
            period_ns: 100,
            factor: 0.5,
        };
        poisson_arrivals(1, 1, 10, Some(&b));
    }
}
