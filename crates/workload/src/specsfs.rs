//! A SPECsfs-V3-like NFS workload (§5.3, Figure 7).
//!
//! Matching the paper's configuration: a 2 GB file system of which 10 % is
//! the accessed file set, the default small-dominated request-size
//! distribution (most requests under 16 KB), a 5:1 read:write ratio among
//! regular-data operations, and a sweepable percentage of regular-data
//! (vs metadata) operations — the x-axis of Figure 7.

use sim::rng::SplitMix64;

use crate::{FileId, NfsOp};

/// Workload parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpecSfsParams {
    /// Number of files in the accessed set.
    pub file_count: u32,
    /// Size of each file, bytes (file set = count × size).
    pub file_size: u64,
    /// Fraction of operations that move regular data (reads + writes);
    /// the rest are metadata operations (GETATTR / LOOKUP).
    pub data_op_fraction: f64,
    /// Reads per write among the data operations (paper default 5:1).
    pub reads_per_write: u32,
}

impl Default for SpecSfsParams {
    fn default() -> Self {
        SpecSfsParams {
            // 10 % of a 2 GB file system, as 1 MB files.
            file_count: 200,
            file_size: 1 << 20,
            data_op_fraction: 0.5,
            reads_per_write: 5,
        }
    }
}

/// The SPECsfs default-ish request-size distribution: small requests
/// dominate ("small sized requests (< 16 KB) dominate", §5.3).
/// `(size, weight)` pairs.
pub const SIZE_DISTRIBUTION: [(u32, u32); 5] = [
    (4 << 10, 40),
    (8 << 10, 25),
    (16 << 10, 20),
    (32 << 10, 10),
    (64 << 10, 5),
];

/// The generator. An infinite iterator; take as many ops as the run needs.
#[derive(Clone, Debug)]
pub struct SpecSfs {
    params: SpecSfsParams,
    rng: SplitMix64,
}

impl SpecSfs {
    /// A generator with the given parameters and seed.
    ///
    /// # Panics
    ///
    /// Panics on a zero file count or an out-of-range data fraction.
    pub fn new(params: SpecSfsParams, seed: u64) -> Self {
        assert!(params.file_count > 0, "need at least one file");
        assert!(
            (0.0..=1.0).contains(&params.data_op_fraction),
            "data fraction must be in [0, 1]"
        );
        SpecSfs {
            params,
            rng: SplitMix64::new(seed),
        }
    }

    /// The parameters.
    pub fn params(&self) -> SpecSfsParams {
        self.params
    }

    fn pick_file(&mut self) -> FileId {
        FileId(self.rng.next_below(u64::from(self.params.file_count)) as u32)
    }

    fn pick_size(&mut self) -> u32 {
        let total: u32 = SIZE_DISTRIBUTION.iter().map(|&(_, w)| w).sum();
        let mut draw = self.rng.next_below(u64::from(total)) as u32;
        for &(size, weight) in &SIZE_DISTRIBUTION {
            if draw < weight {
                return size;
            }
            draw -= weight;
        }
        SIZE_DISTRIBUTION[SIZE_DISTRIBUTION.len() - 1].0
    }

    /// A block-aligned offset so that `len` bytes stay inside the file.
    fn pick_offset(&mut self, len: u32) -> u64 {
        let max_start_block = (self.params.file_size.saturating_sub(u64::from(len))) / 4096;
        self.rng.next_below(max_start_block + 1) * 4096
    }
}

impl Iterator for SpecSfs {
    type Item = NfsOp;

    fn next(&mut self) -> Option<NfsOp> {
        let file = self.pick_file();
        if self.rng.next_bool(self.params.data_op_fraction) {
            let len = self.pick_size().min(self.params.file_size as u32);
            let offset = self.pick_offset(len);
            let is_read = !self
                .rng
                .next_bool(1.0 / f64::from(self.params.reads_per_write + 1));
            Some(if is_read {
                NfsOp::Read { file, offset, len }
            } else {
                NfsOp::Write { file, offset, len }
            })
        } else if self.rng.next_bool(0.5) {
            Some(NfsOp::Getattr { file })
        } else {
            Some(NfsOp::Lookup { file })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(params: SpecSfsParams, n: usize) -> Vec<NfsOp> {
        SpecSfs::new(params, 42).take(n).collect()
    }

    #[test]
    fn data_fraction_is_respected() {
        for frac in [0.3, 0.5, 0.75] {
            let ops = sample(
                SpecSfsParams {
                    data_op_fraction: frac,
                    ..SpecSfsParams::default()
                },
                20_000,
            );
            let data = ops.iter().filter(|o| o.is_data_op()).count() as f64 / ops.len() as f64;
            assert!(
                (data - frac).abs() < 0.02,
                "fraction {frac}: measured {data}"
            );
        }
    }

    #[test]
    fn read_write_ratio_is_five_to_one() {
        let ops = sample(SpecSfsParams::default(), 30_000);
        let reads = ops.iter().filter(|o| matches!(o, NfsOp::Read { .. })).count() as f64;
        let writes = ops.iter().filter(|o| matches!(o, NfsOp::Write { .. })).count() as f64;
        let ratio = reads / writes;
        assert!((4.3..5.7).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn small_requests_dominate() {
        let ops = sample(SpecSfsParams::default(), 20_000);
        let sizes: Vec<u32> = ops
            .iter()
            .filter_map(|o| match o {
                NfsOp::Read { len, .. } | NfsOp::Write { len, .. } => Some(*len),
                _ => None,
            })
            .collect();
        let small = sizes.iter().filter(|&&s| s < (16 << 10)).count() as f64;
        assert!(
            small / sizes.len() as f64 > 0.6,
            "small fraction = {}",
            small / sizes.len() as f64
        );
    }

    #[test]
    fn requests_stay_inside_files_and_aligned() {
        let params = SpecSfsParams::default();
        for op in sample(params, 5_000) {
            if let NfsOp::Read { offset, len, .. } | NfsOp::Write { offset, len, .. } = op {
                assert!(offset + u64::from(len) <= params.file_size);
                assert_eq!(offset % 4096, 0, "block-aligned offsets");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<NfsOp> = SpecSfs::new(SpecSfsParams::default(), 9).take(100).collect();
        let b: Vec<NfsOp> = SpecSfs::new(SpecSfsParams::default(), 9).take(100).collect();
        assert_eq!(a, b);
        let c: Vec<NfsOp> = SpecSfs::new(SpecSfsParams::default(), 10).take(100).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn metadata_ops_split_between_getattr_and_lookup() {
        let ops = sample(
            SpecSfsParams {
                data_op_fraction: 0.0,
                ..SpecSfsParams::default()
            },
            10_000,
        );
        let getattrs = ops.iter().filter(|o| matches!(o, NfsOp::Getattr { .. })).count();
        let lookups = ops.iter().filter(|o| matches!(o, NfsOp::Lookup { .. })).count();
        assert_eq!(getattrs + lookups, 10_000);
        assert!(getattrs > 4_000 && lookups > 4_000);
    }

    #[test]
    #[should_panic(expected = "data fraction")]
    fn bad_fraction_panics() {
        SpecSfs::new(
            SpecSfsParams {
                data_op_fraction: 1.5,
                ..SpecSfsParams::default()
            },
            1,
        );
    }
}
