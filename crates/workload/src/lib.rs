#![warn(missing_docs)]
//! Workload generators for the paper's evaluation (§5.3).
//!
//! * [`micro`] — the two micro-benchmarks: sequentially reading a big file
//!   (*all-miss*) and repeatedly accessing a small hot set (*all-hit*).
//! * [`specsfs`] — a SPECsfs-V3-like NFS op mix: small-request-dominated
//!   size distribution, 5:1 read:write ratio, and a configurable
//!   percentage of regular-data (vs metadata) operations — the x-axis of
//!   Figure 7.
//! * [`specweb`] — a SPECweb99-like static page set: four size classes per
//!   directory, Zipf-distributed directory popularity, ~75 KB mean page,
//!   working-set size swept for Figure 6(a).
//! * [`zipf`] — the Zipf sampler behind it (Breslau et al., the paper's
//!   citation for web popularity).
//! * [`trace`] — a small NFS trace format plus an Active-Trace-Player-like
//!   replayer (the paper drives its micro-benchmarks with synthetic traces
//!   through ATP).
//! * [`arrivals`] — seeded open-loop arrival schedules (Poisson
//!   inter-arrivals with optional burst modulation) for driving the
//!   testbed past saturation.
//!
//! All generators are deterministic given a seed.

pub mod arrivals;
pub mod micro;
pub mod specsfs;
pub mod specweb;
pub mod trace;
pub mod zipf;

/// A file within the benchmark file set (index into the set created at
/// experiment setup).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u32);

/// One NFS operation issued by a workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NfsOp {
    /// Read `len` bytes at `offset`.
    Read {
        /// Target file.
        file: FileId,
        /// Byte offset.
        offset: u64,
        /// Bytes requested.
        len: u32,
    },
    /// Write `len` bytes at `offset`.
    Write {
        /// Target file.
        file: FileId,
        /// Byte offset.
        offset: u64,
        /// Bytes written.
        len: u32,
    },
    /// Fetch attributes.
    Getattr {
        /// Target file.
        file: FileId,
    },
    /// Look the file's name up in its directory.
    Lookup {
        /// Target file.
        file: FileId,
    },
}

impl NfsOp {
    /// Whether this operation moves regular data (read/write) as opposed
    /// to metadata.
    pub fn is_data_op(&self) -> bool {
        matches!(self, NfsOp::Read { .. } | NfsOp::Write { .. })
    }

    /// Payload bytes this operation moves.
    pub fn payload_len(&self) -> u64 {
        match self {
            NfsOp::Read { len, .. } | NfsOp::Write { len, .. } => u64::from(*len),
            _ => 0,
        }
    }
}

/// One HTTP request issued by a web workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpOp {
    /// Page path (matches a file created at setup).
    pub path: String,
    /// The page's size (for verification).
    pub size: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        let r = NfsOp::Read {
            file: FileId(0),
            offset: 0,
            len: 4096,
        };
        let g = NfsOp::Getattr { file: FileId(0) };
        assert!(r.is_data_op());
        assert!(!g.is_data_op());
        assert_eq!(r.payload_len(), 4096);
        assert_eq!(g.payload_len(), 0);
    }
}
