//! A SPECweb99-like static-page workload (§5.3, Figure 6a).
//!
//! The file set is organised SPECweb99-style: each directory holds four
//! size *classes* of nine files each (class `c`, file `j` has size
//! `j × 10^c × 0.1 KB`, so one directory totals ≈ 5 MB). The working-set
//! sweep of Figure 6(a) scales the directory count. Directory popularity
//! is Zipf ("The distribution of web page access frequency was in
//! compliance with Zipf's law", §5.3); class weights are tuned so the mean
//! transferred page is ≈ 75 KB, matching the paper.

use sim::rng::SplitMix64;

use crate::zipf::Zipf;
use crate::HttpOp;

/// Files per class per directory.
pub const FILES_PER_CLASS: u32 = 9;
/// Size classes per directory.
pub const CLASSES: u32 = 4;
/// Class access weights (per cent), tuned for a ~75 KB mean page.
pub const CLASS_WEIGHTS: [u32; CLASSES as usize] = [15, 40, 35, 10];

/// Size of file `j` (0-based) in class `c`: `(j+1) × 10^c × 100` bytes.
pub fn file_size(class: u32, j: u32) -> u64 {
    u64::from(j + 1) * 100 * 10u64.pow(class)
}

/// Bytes in one directory (all 36 files).
pub fn dir_size() -> u64 {
    (0..CLASSES)
        .flat_map(|c| (0..FILES_PER_CLASS).map(move |j| file_size(c, j)))
        .sum()
}

/// Flat page name for directory `d`, class `c`, file `j` (single-level
/// namespace: the reproduction's file system uses flat directories).
pub fn page_name(dir: u32, class: u32, j: u32) -> String {
    format!("d{dir:04}_c{class}_f{j}")
}

/// The page set for a given working-set size.
#[derive(Clone, Debug)]
pub struct PageSet {
    dirs: u32,
}

impl PageSet {
    /// A set of `dirs` directories.
    ///
    /// # Panics
    ///
    /// Panics if `dirs` is zero.
    pub fn new(dirs: u32) -> Self {
        assert!(dirs > 0, "need at least one directory");
        PageSet { dirs }
    }

    /// The smallest set of directories totalling at least `bytes`.
    pub fn with_working_set(bytes: u64) -> Self {
        PageSet::new(bytes.div_ceil(dir_size()).max(1) as u32)
    }

    /// Directory count.
    pub fn dirs(&self) -> u32 {
        self.dirs
    }

    /// Total bytes across all pages.
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.dirs) * dir_size()
    }

    /// Every page as `(name, size)` — for populating the server.
    pub fn pages(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity((self.dirs * CLASSES * FILES_PER_CLASS) as usize);
        for d in 0..self.dirs {
            for c in 0..CLASSES {
                for j in 0..FILES_PER_CLASS {
                    out.push((page_name(d, c, j), file_size(c, j)));
                }
            }
        }
        out
    }
}

/// The request generator: Zipf over directories, weighted classes,
/// uniform file within class. Infinite iterator.
#[derive(Clone, Debug)]
pub struct SpecWeb {
    set: PageSet,
    zipf: Zipf,
    rng: SplitMix64,
}

impl SpecWeb {
    /// A generator over `set` with the given seed.
    pub fn new(set: PageSet, seed: u64) -> Self {
        let zipf = Zipf::new(set.dirs() as usize, 1.0);
        SpecWeb {
            set,
            zipf,
            rng: SplitMix64::new(seed),
        }
    }

    /// The underlying page set.
    pub fn page_set(&self) -> &PageSet {
        &self.set
    }

    /// Expected mean page size under the class weights.
    pub fn mean_page_size() -> f64 {
        let total_w: u32 = CLASS_WEIGHTS.iter().sum();
        let mut mean = 0.0;
        for (c, &w) in CLASS_WEIGHTS.iter().enumerate() {
            let class_mean: f64 = (0..FILES_PER_CLASS)
                .map(|j| file_size(c as u32, j) as f64)
                .sum::<f64>()
                / f64::from(FILES_PER_CLASS);
            mean += class_mean * f64::from(w) / f64::from(total_w);
        }
        mean
    }
}

impl Iterator for SpecWeb {
    type Item = HttpOp;

    fn next(&mut self) -> Option<HttpOp> {
        let dir = self.zipf.sample(&mut self.rng) as u32;
        let total_w: u32 = CLASS_WEIGHTS.iter().sum();
        let mut draw = self.rng.next_below(u64::from(total_w)) as u32;
        let mut class = CLASSES - 1;
        for (c, &w) in CLASS_WEIGHTS.iter().enumerate() {
            if draw < w {
                class = c as u32;
                break;
            }
            draw -= w;
        }
        let j = self.rng.next_below(u64::from(FILES_PER_CLASS)) as u32;
        Some(HttpOp {
            path: format!("/{}", page_name(dir, class, j)),
            size: file_size(class, j),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_size_is_about_five_megabytes() {
        let s = dir_size();
        assert!(
            (4_900_000..5_100_000).contains(&s),
            "dir size = {s} (expected ≈5 MB)"
        );
    }

    #[test]
    fn mean_page_size_is_about_75_kb() {
        let mean = SpecWeb::mean_page_size();
        assert!(
            (60_000.0..90_000.0).contains(&mean),
            "mean page = {mean} (paper: ≈75 KB)"
        );
    }

    #[test]
    fn empirical_mean_matches() {
        let gen = SpecWeb::new(PageSet::new(100), 3);
        let n = 50_000;
        let total: u64 = gen.take(n).map(|op| op.size).sum();
        let mean = total as f64 / n as f64;
        let expect = SpecWeb::mean_page_size();
        assert!(
            (mean - expect).abs() / expect < 0.1,
            "empirical {mean} vs analytic {expect}"
        );
    }

    #[test]
    fn working_set_sizing() {
        let set = PageSet::with_working_set(500 << 20);
        assert_eq!(set.dirs(), (500u64 << 20).div_ceil(dir_size()) as u32);
        assert!(set.total_bytes() >= 500 << 20);
        assert_eq!(PageSet::with_working_set(1).dirs(), 1);
    }

    #[test]
    fn pages_enumerates_whole_set() {
        let set = PageSet::new(3);
        let pages = set.pages();
        assert_eq!(pages.len(), 3 * 36);
        let sum: u64 = pages.iter().map(|(_, s)| s).sum();
        assert_eq!(sum, set.total_bytes());
        // Names are unique.
        let mut names: Vec<&String> = pages.iter().map(|(n, _)| n).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), pages.len());
    }

    #[test]
    fn requests_reference_real_pages() {
        let set = PageSet::new(5);
        let pages: std::collections::HashMap<String, u64> = set.pages().into_iter().collect();
        let gen = SpecWeb::new(set, 7);
        for op in gen.take(1_000) {
            let name = op.path.trim_start_matches('/');
            assert_eq!(pages.get(name), Some(&op.size), "unknown page {name}");
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let set = PageSet::new(50);
        let gen = SpecWeb::new(set, 11);
        let mut dir_counts = [0u32; 50];
        for op in gen.take(20_000) {
            let d: usize = op.path[2..6].parse().expect("dir index");
            dir_counts[d] += 1;
        }
        assert!(
            dir_counts[0] > 4 * dir_counts[25].max(1),
            "Zipf head {} vs middle {}",
            dir_counts[0],
            dir_counts[25]
        );
    }

    #[test]
    fn names_fit_the_fs_name_limit() {
        let n = page_name(9999, 3, 8);
        assert!(n.len() <= 27, "{n} is too long for simfs");
    }
}
