//! NFS trace format and player.
//!
//! The paper drives its micro-benchmarks "by means of synthetic traces and
//! an *Active Trace Player*" (§5.3, the paper's reference 20). This module provides
//! the equivalent: a line-oriented trace format, a writer, and a player
//! that replays ops in order. Synthetic traces from the [`crate::micro`]
//! generators round-trip through it.
//!
//! Format, one op per line:
//!
//! ```text
//! R <file> <offset> <len>
//! W <file> <offset> <len>
//! G <file>
//! L <file>
//! ```

use std::fmt::Write as _;

use crate::{FileId, NfsOp};

/// Error parsing a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

/// Serializes ops into the trace format.
pub fn write_trace<'a>(ops: impl IntoIterator<Item = &'a NfsOp>) -> String {
    let mut out = String::new();
    for op in ops {
        match op {
            NfsOp::Read { file, offset, len } => {
                writeln!(out, "R {} {} {}", file.0, offset, len).expect("string write");
            }
            NfsOp::Write { file, offset, len } => {
                writeln!(out, "W {} {} {}", file.0, offset, len).expect("string write");
            }
            NfsOp::Getattr { file } => writeln!(out, "G {}", file.0).expect("string write"),
            NfsOp::Lookup { file } => writeln!(out, "L {}", file.0).expect("string write"),
        }
    }
    out
}

/// Parses a trace. Blank lines and `#` comments are skipped.
///
/// # Errors
///
/// [`ParseTraceError`] with the offending line number.
pub fn parse_trace(text: &str) -> Result<Vec<NfsOp>, ParseTraceError> {
    let mut ops = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |reason| ParseTraceError {
            line: i + 1,
            reason,
        };
        let mut parts = line.split_whitespace();
        let kind = parts.next().ok_or_else(|| err("missing op kind"))?;
        let file = FileId(
            parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err("bad file id"))?,
        );
        let op = match kind {
            "R" | "W" => {
                let offset = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad offset"))?;
                let len = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad length"))?;
                if kind == "R" {
                    NfsOp::Read { file, offset, len }
                } else {
                    NfsOp::Write { file, offset, len }
                }
            }
            "G" => NfsOp::Getattr { file },
            "L" => NfsOp::Lookup { file },
            _ => return Err(err("unknown op kind")),
        };
        if parts.next().is_some() {
            return Err(err("trailing fields"));
        }
        ops.push(op);
    }
    Ok(ops)
}

/// The Active-Trace-Player analogue: replays a parsed trace, tracking
/// position and progress.
#[derive(Clone, Debug)]
pub struct TracePlayer {
    ops: Vec<NfsOp>,
    at: usize,
}

impl TracePlayer {
    /// A player over `ops`.
    pub fn new(ops: Vec<NfsOp>) -> Self {
        TracePlayer { ops, at: 0 }
    }

    /// Parses and wraps a textual trace.
    ///
    /// # Errors
    ///
    /// [`ParseTraceError`] as for [`parse_trace`].
    pub fn from_text(text: &str) -> Result<Self, ParseTraceError> {
        Ok(TracePlayer::new(parse_trace(text)?))
    }

    /// Ops remaining.
    pub fn remaining(&self) -> usize {
        self.ops.len() - self.at
    }

    /// Total ops in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Rewinds to the start (for multi-pass replay).
    pub fn rewind(&mut self) {
        self.at = 0;
    }
}

impl Iterator for TracePlayer {
    type Item = NfsOp;

    fn next(&mut self) -> Option<NfsOp> {
        let op = self.ops.get(self.at).cloned()?;
        self.at += 1;
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::SeqRead;

    #[test]
    fn round_trip() {
        let ops = vec![
            NfsOp::Read {
                file: FileId(1),
                offset: 4096,
                len: 8192,
            },
            NfsOp::Write {
                file: FileId(2),
                offset: 0,
                len: 4096,
            },
            NfsOp::Getattr { file: FileId(3) },
            NfsOp::Lookup { file: FileId(4) },
        ];
        let text = write_trace(&ops);
        assert_eq!(parse_trace(&text), Ok(ops));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# a synthetic trace\n\nR 0 0 4096\n  \n# done\n";
        let ops = parse_trace(text).expect("valid");
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(
            parse_trace("R 0 0 4096\nX 1").unwrap_err(),
            ParseTraceError {
                line: 2,
                reason: "unknown op kind"
            }
        );
        assert_eq!(parse_trace("R zero 0 1").unwrap_err().reason, "bad file id");
        assert_eq!(parse_trace("R 0 a 1").unwrap_err().reason, "bad offset");
        assert_eq!(parse_trace("R 0 0 b").unwrap_err().reason, "bad length");
        assert_eq!(parse_trace("G 0 9").unwrap_err().reason, "trailing fields");
        assert!(parse_trace("R 0 0 4096\nX 1")
            .unwrap_err()
            .to_string()
            .contains("line 2"));
    }

    #[test]
    fn player_replays_in_order_and_rewinds() {
        let ops: Vec<NfsOp> = SeqRead::new(FileId(0), 16 << 10, 4 << 10).collect();
        let mut player = TracePlayer::new(ops.clone());
        assert_eq!(player.len(), 4);
        assert_eq!(player.remaining(), 4);
        let replayed: Vec<NfsOp> = player.by_ref().collect();
        assert_eq!(replayed, ops);
        assert_eq!(player.remaining(), 0);
        player.rewind();
        assert_eq!(player.remaining(), 4);
        assert_eq!(player.next(), Some(ops[0].clone()));
    }

    #[test]
    fn synthetic_trace_through_text_round_trip() {
        let ops: Vec<NfsOp> = SeqRead::new(FileId(7), 64 << 10, 16 << 10).collect();
        let text = write_trace(&ops);
        let player = TracePlayer::from_text(&text).expect("valid");
        assert_eq!(player.collect::<Vec<_>>(), ops);
    }

    #[test]
    fn empty_trace() {
        let player = TracePlayer::from_text("").expect("valid");
        assert!(player.is_empty());
    }
}
