//! The file-system buffer cache.
//!
//! A bounded block cache with LRU ordering and the paper's reclamation
//! policy (§3.4): "When the file system buffer cache is full, first clean
//! buffers are reclaimed and then dirty buffers are flushed and reclaimed."
//! Blocks are stored as shareable [`Segment`]s so the zero-copy send paths
//! can attach a cached block to an outgoing packet without moving bytes.
//!
//! The cache's *capacity* is set from whatever RAM the NCache module has
//! not pinned (§4.1) — see `BufPool` in the `netbuf` crate.
//!
//! Since the concurrent-data-plane refactor, [`BufferCache::get`] takes
//! `&self`: hit promotion is an atomic `fetch_max` on the entry's recency
//! stamp and the counters are atomics, so concurrent hit lookups under a
//! shared reference (the NFS READ fast path holds only a read guard on
//! the rig) never serialize. The three LRU order maps are *lazy* — a
//! promotion never moves the index entry; every consumer of LRU order
//! (eviction, flush) normalizes stale index stamps against the true
//! atomic stamps before acting, which reproduces the eager ordering
//! exactly because stamps are unique and only ever grow.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use netbuf::Segment;

use crate::store::BlockClass;

thread_local! {
    /// Counted cache operations (hits + misses + insertions) performed by
    /// this thread since the last [`take_op_tally`]. The lane-parallel
    /// engine charges buffer-cache CPU per op from this tally: an op's
    /// accesses all happen on its lane's thread, so the tally equals the
    /// global counter delta an exclusively locked engine would have seen.
    static OP_TALLY: Cell<u64> = const { Cell::new(0) };
}

/// Drains this thread's counted-operation tally (see [`OP_TALLY`]).
pub fn take_op_tally() -> u64 {
    OP_TALLY.with(|t| t.replace(0))
}

fn bump_op_tally() {
    OP_TALLY.with(|t| t.set(t.get() + 1));
}

/// A block evicted (or flushed) from the cache that must be written to the
/// backing store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Writeback {
    /// Volume block address.
    pub lbn: u64,
    /// Metadata or regular data.
    pub class: BlockClass,
    /// Block contents.
    pub seg: Segment,
}

/// Cache hit/miss/eviction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the block.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Blocks inserted.
    pub insertions: u64,
    /// Clean blocks reclaimed.
    pub evicted_clean: u64,
    /// Dirty blocks flushed-then-reclaimed.
    pub evicted_dirty: u64,
}

impl obs::StatsSnapshot for CacheStats {
    fn source(&self) -> &'static str {
        "fs-cache"
    }

    fn counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("hits", self.hits),
            ("misses", self.misses),
            ("insertions", self.insertions),
            ("evicted_clean", self.evicted_clean),
            ("evicted_dirty", self.evicted_dirty),
        ]
    }
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; zero when no lookups happened.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug)]
struct Entry {
    seg: Segment,
    dirty: bool,
    class: BlockClass,
    /// True recency stamp; atomic so hit promotion works through `&self`
    /// (`fetch_max`, which commutes across threads).
    seq: AtomicU64,
    /// The stamp this entry is filed under in its class order map; lags
    /// `seq` until the next normalization (see module docs).
    order_seq: u64,
}

impl Clone for Entry {
    fn clone(&self) -> Self {
        Entry {
            seg: self.seg.clone(),
            dirty: self.dirty,
            class: self.class,
            seq: AtomicU64::new(self.seq.load(Ordering::Relaxed)),
            order_seq: self.order_seq,
        }
    }
}

/// Interior-mutable counters so hits/misses can count through `&self`.
#[derive(Debug, Default)]
struct StatsCells {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evicted_clean: AtomicU64,
    evicted_dirty: AtomicU64,
}

impl StatsCells {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evicted_clean: self.evicted_clean.load(Ordering::Relaxed),
            evicted_dirty: self.evicted_dirty.load(Ordering::Relaxed),
        }
    }
}

impl Clone for StatsCells {
    fn clone(&self) -> Self {
        let s = self.snapshot();
        StatsCells {
            hits: AtomicU64::new(s.hits),
            misses: AtomicU64::new(s.misses),
            insertions: AtomicU64::new(s.insertions),
            evicted_clean: AtomicU64::new(s.evicted_clean),
            evicted_dirty: AtomicU64::new(s.evicted_dirty),
        }
    }
}

/// Pops the least-recently-used *settled* entry of one class order map,
/// re-filing any entry whose index stamp trails its true stamp. Stamps
/// are unique and only grow, so the first settled entry is the true
/// minimum of the class — the block the eager order map would have
/// yielded.
fn settle_head(
    order: &mut BTreeMap<u64, u64>,
    map: &mut HashMap<u64, Entry>,
) -> Option<(u64, u64)> {
    loop {
        let (&oseq, &lbn) = order.iter().next()?;
        let entry = map.get_mut(&lbn).expect("order index is consistent");
        let true_seq = entry.seq.load(Ordering::Relaxed);
        if true_seq == oseq {
            return Some((oseq, lbn));
        }
        entry.order_seq = true_seq;
        order.remove(&oseq);
        order.insert(true_seq, lbn);
    }
}

/// A bounded LRU block cache with clean-first eviction.
///
/// # Examples
///
/// ```
/// use netbuf::Segment;
/// use simfs::{BlockClass, BufferCache};
///
/// let mut cache = BufferCache::new(2);
/// cache.insert(1, Segment::zeroed(4096), BlockClass::Data, false);
/// cache.insert(2, Segment::zeroed(4096), BlockClass::Data, false);
/// let evicted = cache.insert(3, Segment::zeroed(4096), BlockClass::Data, false);
/// assert!(evicted.is_empty(), "clean evictions need no writeback");
/// assert!(cache.get(1).is_none(), "LRU block 1 was reclaimed");
/// ```
#[derive(Debug)]
pub struct BufferCache {
    capacity: usize,
    map: HashMap<u64, Entry>,
    clean_data_order: BTreeMap<u64, u64>,
    clean_meta_order: BTreeMap<u64, u64>,
    dirty_order: BTreeMap<u64, u64>,
    next_seq: AtomicU64,
    stats: StatsCells,
    recorder: Option<obs::Recorder>,
    /// Ghost tail of recently evicted LBNs, keyed by the raw block
    /// number (the FS cache has a single key space). Pure observer: it
    /// draws no stamps, bumps no tallies, and never changes a victim.
    ghost: Option<std::sync::Mutex<ncache::GhostLru>>,
}

impl Clone for BufferCache {
    fn clone(&self) -> Self {
        BufferCache {
            capacity: self.capacity,
            map: self.map.clone(),
            clean_data_order: self.clean_data_order.clone(),
            clean_meta_order: self.clean_meta_order.clone(),
            dirty_order: self.dirty_order.clone(),
            next_seq: AtomicU64::new(self.next_seq.load(Ordering::Relaxed)),
            stats: self.stats.clone(),
            recorder: self.recorder.clone(),
            ghost: self
                .ghost
                .as_ref()
                .map(|g| std::sync::Mutex::new(g.lock().expect("ghost poisoned").clone())),
        }
    }
}

impl BufferCache {
    /// A cache holding at most `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        BufferCache {
            capacity,
            map: HashMap::new(),
            clean_data_order: BTreeMap::new(),
            clean_meta_order: BTreeMap::new(),
            dirty_order: BTreeMap::new(),
            next_seq: AtomicU64::new(0),
            stats: StatsCells::default(),
            recorder: None,
            ghost: None,
        }
    }

    /// Draws the next recency stamp. Inside a lane's epoch window the
    /// stamp comes from the window's FS half (`base + FS_CURSOR_BASE + k`,
    /// a pure function of the lane's program order), so parallel replays
    /// stamp blocks schedule-invariantly; outside any window it is the
    /// plain fetch-add counter, byte-identical to the pre-adaptive build.
    fn draw_seq(&self) -> u64 {
        ncache::epoch::window_fs_stamp()
            .unwrap_or_else(|| self.next_seq.fetch_add(1, Ordering::Relaxed))
    }

    /// Advances the plain stamp counter past `stamp`. The parallel engine
    /// calls this after a run with the largest window stamp it could have
    /// issued, so later sequential accesses still promote to
    /// most-recently-used.
    pub fn advance_seq_past(&self, stamp: u64) {
        self.next_seq.fetch_max(stamp + 1, Ordering::Relaxed);
    }

    /// Attaches a ghost LRU tail bounded at `cap` evicted block numbers.
    pub fn enable_ghost(&mut self, cap: usize) {
        self.ghost = Some(std::sync::Mutex::new(ncache::GhostLru::new(cap)));
    }

    /// Counters of the ghost tail, or `None` when none is attached.
    pub fn ghost_stats(&self) -> Option<ncache::GhostStats> {
        self.ghost
            .as_ref()
            .map(|g| g.lock().expect("ghost poisoned").stats())
    }

    /// Emits every subsequent access, insertion and eviction on `rec`.
    pub fn set_recorder(&mut self, rec: obs::Recorder) {
        self.recorder = Some(rec);
    }

    fn emit(&self, kind: obs::EventKind) {
        if let Some(rec) = &self.recorder {
            rec.emit(kind);
        }
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Dirty fraction of the cache's capacity, in permille (0..=1000).
    /// The overload control plane reads this as its write-backpressure
    /// signal (DESIGN.md §15).
    pub fn dirty_permille(&self) -> u32 {
        if self.capacity == 0 {
            return 0;
        }
        ((self.dirty_order.len().saturating_mul(1000)) / self.capacity).min(1000) as u32
    }

    /// Blocks currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Whether `lbn` is resident (does not touch LRU order or counters).
    pub fn contains(&self, lbn: u64) -> bool {
        self.map.contains_key(&lbn)
    }

    /// Whether `lbn` is resident and dirty.
    pub fn is_dirty(&self, lbn: u64) -> bool {
        self.map.get(&lbn).is_some_and(|e| e.dirty)
    }

    /// The contents of a resident block, *without* promotion, counters,
    /// or events — a side-effect-free probe. The READ fast path uses this
    /// to establish residency before committing to the counted access
    /// sequence.
    pub fn peek(&self, lbn: u64) -> Option<Segment> {
        self.map.get(&lbn).map(|e| e.seg.clone())
    }

    /// Looks up a block, promoting it to most-recently-used. The returned
    /// segment shares storage with the cached copy (a logical copy).
    ///
    /// Takes `&self`: the stamp draw is a `fetch_add`, the promotion a
    /// `fetch_max` on the entry's atomic stamp, and the counters are
    /// atomics. The class order maps are left stale (lazy); eviction and
    /// flush normalize them. Sequentially this draws the same stamps and
    /// counts the same events as the old exclusive version, byte for
    /// byte.
    pub fn get(&self, lbn: u64) -> Option<Segment> {
        bump_op_tally();
        if let Some(entry) = self.map.get(&lbn) {
            let fresh = self.draw_seq();
            entry.seq.fetch_max(fresh, Ordering::Relaxed);
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            self.emit(obs::EventKind::CacheAccess {
                tier: "fs",
                hit: true,
            });
            Some(entry.seg.clone())
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            // A miss consults the ghost tail: a hit there is a block a
            // larger FS quota would have kept. Observation only.
            if let Some(g) = &self.ghost {
                g.lock().expect("ghost poisoned").probe(lbn);
            }
            self.emit(obs::EventKind::CacheAccess {
                tier: "fs",
                hit: false,
            });
            None
        }
    }

    /// Inserts (or replaces) a block, returning any dirty blocks that had
    /// to be flushed to make room. Clean blocks are reclaimed silently,
    /// per the paper's policy.
    pub fn insert(
        &mut self,
        lbn: u64,
        seg: Segment,
        class: BlockClass,
        dirty: bool,
    ) -> Vec<Writeback> {
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        bump_op_tally();
        self.emit(obs::EventKind::CacheInsert { tier: "fs", dirty });
        if let Some(old) = self.remove_entry(lbn) {
            // Overwriting a resident block: a dirty predecessor that is
            // being replaced needs no writeback (its data is superseded),
            // unless the new copy is clean and the old was dirty — then the
            // old version must not be silently lost. Callers in this
            // reproduction always supersede, so drop it.
            let _ = old;
        }
        let seq = self.draw_seq();
        self.map.insert(
            lbn,
            Entry {
                seg,
                dirty,
                class,
                seq: AtomicU64::new(seq),
                order_seq: seq,
            },
        );
        if dirty {
            self.dirty_order.insert(seq, lbn);
        } else if class == BlockClass::Meta {
            self.clean_meta_order.insert(seq, lbn);
        } else {
            self.clean_data_order.insert(seq, lbn);
        }
        self.evict_to_capacity()
    }

    /// Marks a resident block dirty (after in-place modification).
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident.
    pub fn mark_dirty(&mut self, lbn: u64) {
        let entry = self.map.get_mut(&lbn).expect("block not resident");
        if !entry.dirty {
            entry.dirty = true;
            // Re-file under the *true* stamp: the entry may have been
            // promoted (lazily) since it was last indexed.
            let true_seq = entry.seq.load(Ordering::Relaxed);
            self.clean_data_order.remove(&entry.order_seq);
            self.clean_meta_order.remove(&entry.order_seq);
            entry.order_seq = true_seq;
            self.dirty_order.insert(true_seq, lbn);
        }
    }

    /// Replaces the contents of a resident block (marking it dirty).
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident.
    pub fn update(&mut self, lbn: u64, seg: Segment) {
        let entry = self.map.get_mut(&lbn).expect("block not resident");
        entry.seg = seg;
        if !entry.dirty {
            entry.dirty = true;
            let true_seq = entry.seq.load(Ordering::Relaxed);
            self.clean_data_order.remove(&entry.order_seq);
            self.clean_meta_order.remove(&entry.order_seq);
            entry.order_seq = true_seq;
            self.dirty_order.insert(true_seq, lbn);
        }
    }

    /// Removes a block without writeback (e.g. after file deletion),
    /// returning its contents.
    pub fn discard(&mut self, lbn: u64) -> Option<Segment> {
        self.remove_entry(lbn).map(|e| e.seg)
    }

    /// Marks every dirty block clean and returns them for writing to the
    /// backing store, in LRU order.
    pub fn flush_dirty(&mut self) -> Vec<Writeback> {
        // Flush in *true*-stamp order: lazy promotions may have left the
        // dirty index stale, and writeback order is observable (it is the
        // iSCSI write sequence).
        let mut tagged: Vec<(u64, u64)> = self
            .dirty_order
            .values()
            .map(|&lbn| (self.map[&lbn].seq.load(Ordering::Relaxed), lbn))
            .collect();
        tagged.sort_unstable();
        self.dirty_order.clear();
        let mut out = Vec::with_capacity(tagged.len());
        for (seq, lbn) in tagged {
            let entry = self.map.get_mut(&lbn).expect("order points at entry");
            entry.dirty = false;
            entry.order_seq = seq;
            if entry.class == BlockClass::Meta {
                self.clean_meta_order.insert(seq, lbn);
            } else {
                self.clean_data_order.insert(seq, lbn);
            }
            out.push(Writeback {
                lbn,
                class: entry.class,
                seg: entry.seg.clone(),
            });
        }
        out
    }

    /// Marks up to `n` of the oldest dirty blocks clean and returns them
    /// for writing — incremental write-behind (bdflush-style), which keeps
    /// flush work spread across requests instead of spiking.
    pub fn flush_oldest(&mut self, n: usize) -> Vec<Writeback> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let Some((seq, lbn)) = settle_head(&mut self.dirty_order, &mut self.map) else {
                break;
            };
            self.dirty_order.remove(&seq);
            let entry = self.map.get_mut(&lbn).expect("order points at entry");
            entry.dirty = false;
            if entry.class == BlockClass::Meta {
                self.clean_meta_order.insert(seq, lbn);
            } else {
                self.clean_data_order.insert(seq, lbn);
            }
            out.push(Writeback {
                lbn,
                class: entry.class,
                seg: entry.seg.clone(),
            });
        }
        out
    }

    /// Dirty blocks currently resident.
    pub fn dirty_len(&self) -> usize {
        self.dirty_order.len()
    }

    /// Changes the capacity (shrinking evicts immediately; returned dirty
    /// blocks must be written back).
    pub fn set_capacity(&mut self, capacity: usize) -> Vec<Writeback> {
        self.capacity = capacity;
        self.evict_to_capacity()
    }

    fn remove_entry(&mut self, lbn: u64) -> Option<Entry> {
        let entry = self.map.remove(&lbn)?;
        if entry.dirty {
            self.dirty_order.remove(&entry.order_seq);
        } else if entry.class == BlockClass::Meta {
            self.clean_meta_order.remove(&entry.order_seq);
        } else {
            self.clean_data_order.remove(&entry.order_seq);
        }
        Some(entry)
    }

    /// Records an evicted block in the ghost tail (LRU reclaims only —
    /// discard and supersede are not capacity evictions).
    fn record_ghost(&self, lbn: u64, seq: u64) {
        if let Some(g) = &self.ghost {
            g.lock().expect("ghost poisoned").record(lbn, seq);
        }
    }

    fn evict_to_capacity(&mut self) -> Vec<Writeback> {
        let mut out = Vec::new();
        while self.map.len() > self.capacity {
            // Paper §3.4: reclaim clean LRU first, then flush dirty LRU.
            // Within clean blocks, data goes before metadata — modelling
            // the kernel's separate inode/dentry caches, which page data
            // does not displace. Each candidate head is settled against
            // the true stamps first, so the victim is the block the eager
            // order maps would have picked.
            if let Some((seq, lbn)) = settle_head(&mut self.clean_data_order, &mut self.map) {
                self.clean_data_order.remove(&seq);
                self.map.remove(&lbn);
                self.record_ghost(lbn, seq);
                self.stats.evicted_clean.fetch_add(1, Ordering::Relaxed);
                self.emit(obs::EventKind::Eviction {
                    tier: "fs",
                    class: "data",
                    dirty: false,
                });
            } else if let Some((seq, lbn)) = settle_head(&mut self.clean_meta_order, &mut self.map)
            {
                self.clean_meta_order.remove(&seq);
                self.map.remove(&lbn);
                self.record_ghost(lbn, seq);
                self.stats.evicted_clean.fetch_add(1, Ordering::Relaxed);
                self.emit(obs::EventKind::Eviction {
                    tier: "fs",
                    class: "meta",
                    dirty: false,
                });
            } else if let Some((seq, lbn)) = settle_head(&mut self.dirty_order, &mut self.map) {
                self.dirty_order.remove(&seq);
                let entry = self.map.remove(&lbn).expect("order points at entry");
                self.record_ghost(lbn, seq);
                self.stats.evicted_dirty.fetch_add(1, Ordering::Relaxed);
                self.emit(obs::EventKind::Eviction {
                    tier: "fs",
                    class: if entry.class == BlockClass::Meta {
                        "meta"
                    } else {
                        "data"
                    },
                    dirty: true,
                });
                out.push(Writeback {
                    lbn,
                    class: entry.class,
                    seg: entry.seg,
                });
            } else {
                unreachable!("map non-empty but both orders empty");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use check::gen::*;
    use check::{prop_assert, prop_assert_eq, property};

    fn seg(tag: u8) -> Segment {
        Segment::from_vec(vec![tag; 8])
    }

    #[test]
    fn get_promotes_lru() {
        let mut c = BufferCache::new(2);
        c.insert(1, seg(1), BlockClass::Data, false);
        c.insert(2, seg(2), BlockClass::Data, false);
        assert!(c.get(1).is_some()); // promote 1; LRU is now 2
        c.insert(3, seg(3), BlockClass::Data, false);
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn clean_evicted_before_dirty() {
        let mut c = BufferCache::new(2);
        c.insert(1, seg(1), BlockClass::Data, true); // dirty, older
        c.insert(2, seg(2), BlockClass::Data, false); // clean, newer
        let wb = c.insert(3, seg(3), BlockClass::Data, false);
        // The *clean* newer block 2 goes, not the dirty older block 1.
        assert!(wb.is_empty());
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert_eq!(c.stats().evicted_clean, 1);
    }

    #[test]
    fn dirty_eviction_returns_writeback() {
        let mut c = BufferCache::new(1);
        c.insert(1, seg(1), BlockClass::Data, true);
        let wb = c.insert(2, seg(2), BlockClass::Meta, true);
        assert_eq!(wb.len(), 1);
        assert_eq!(wb[0].lbn, 1);
        assert_eq!(wb[0].class, BlockClass::Data);
        assert_eq!(wb[0].seg, seg(1));
        assert_eq!(c.stats().evicted_dirty, 1);
    }

    #[test]
    fn zero_capacity_holds_nothing() {
        let mut c = BufferCache::new(0);
        let wb = c.insert(1, seg(1), BlockClass::Data, true);
        assert_eq!(wb.len(), 1, "dirty block immediately flushed");
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }

    #[test]
    fn reinsert_supersedes_without_writeback() {
        let mut c = BufferCache::new(4);
        c.insert(1, seg(1), BlockClass::Data, true);
        let wb = c.insert(1, seg(9), BlockClass::Data, true);
        assert!(wb.is_empty());
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(1), Some(seg(9)));
    }

    #[test]
    fn mark_dirty_and_flush() {
        let mut c = BufferCache::new(4);
        c.insert(1, seg(1), BlockClass::Data, false);
        c.insert(2, seg(2), BlockClass::Meta, false);
        assert!(!c.is_dirty(1));
        c.mark_dirty(1);
        assert!(c.is_dirty(1));
        let flushed = c.flush_dirty();
        assert_eq!(flushed.len(), 1);
        assert_eq!(flushed[0].lbn, 1);
        assert!(!c.is_dirty(1), "flush leaves blocks clean");
        assert!(c.flush_dirty().is_empty());
    }

    #[test]
    fn update_replaces_and_dirties() {
        let mut c = BufferCache::new(4);
        c.insert(1, seg(1), BlockClass::Data, false);
        c.update(1, seg(7));
        assert!(c.is_dirty(1));
        assert_eq!(c.get(1), Some(seg(7)));
    }

    #[test]
    fn discard_skips_writeback() {
        let mut c = BufferCache::new(4);
        c.insert(1, seg(1), BlockClass::Data, true);
        assert_eq!(c.discard(1), Some(seg(1)));
        assert!(c.is_empty());
        assert_eq!(c.discard(1), None);
    }

    #[test]
    fn shrink_capacity_evicts() {
        let mut c = BufferCache::new(4);
        for i in 0..4 {
            c.insert(i, seg(i as u8), BlockClass::Data, i == 0);
        }
        let wb = c.set_capacity(1);
        assert_eq!(c.len(), 1);
        // Three evictions: clean ones first (silently), dirty block 0 last
        // only if needed. With capacity 1 and 3 clean + 1 dirty, the three
        // clean blocks go and the dirty one stays.
        assert!(wb.is_empty());
        assert!(c.contains(0));
    }

    #[test]
    fn stats_and_hit_ratio() {
        let mut c = BufferCache::new(2);
        c.insert(1, seg(1), BlockClass::Data, false);
        assert!(c.get(1).is_some());
        assert!(c.get(2).is_none());
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.insertions, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }

    #[test]
    fn cached_segment_shares_storage() {
        let mut c = BufferCache::new(2);
        let s = seg(5);
        c.insert(1, s.clone(), BlockClass::Data, false);
        let got = c.get(1).expect("resident");
        assert!(got.same_storage(&s), "get must be a logical copy");
    }

    #[test]
    fn recorder_sees_accesses_and_evictions() {
        let rec = obs::Recorder::new();
        rec.enable(obs::TraceConfig::default());
        let mut c = BufferCache::new(1);
        c.set_recorder(rec.clone());
        c.insert(1, seg(1), BlockClass::Data, true);
        c.get(1);
        c.get(9);
        // Clean-first policy: no clean blocks resident, so the dirty
        // block 1 is flushed-and-reclaimed to admit dirty block 2.
        c.insert(2, seg(2), BlockClass::Meta, true);
        assert_eq!(rec.counter("cache.fs.hits"), 1);
        assert_eq!(rec.counter("cache.fs.misses"), 1);
        assert_eq!(rec.counter("cache.fs.insertions"), 2);
        assert_eq!(rec.counter("cache.fs.evicted_dirty"), 1);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn mark_dirty_missing_panics() {
        BufferCache::new(2).mark_dirty(1);
    }

    property! {
        /// Model-based test: the cache agrees with a naive reference model
        /// on residency and eviction choice across random op sequences.
        fn prop_matches_reference_model(
            capacity in ints(1usize..8),
            ops in vec_of((ints(0u64..16), any_bool(), ints(0u8..3)), 0..200),
        ) {
            let mut cache = BufferCache::new(capacity);
            // Reference: Vec of (lbn, dirty) in LRU order (front = oldest).
            let mut model: Vec<(u64, bool)> = Vec::new();
            for (lbn, dirty, op) in ops {
                match op {
                    0 => {
                        // insert
                        model.retain(|&(l, _)| l != lbn);
                        model.push((lbn, dirty));
                        while model.len() > capacity {
                            if let Some(pos) = model.iter().position(|&(_, d)| !d) {
                                model.remove(pos);
                            } else {
                                model.remove(0);
                            }
                        }
                        cache.insert(lbn, seg(lbn as u8), BlockClass::Data, dirty);
                    }
                    1 => {
                        // get
                        let hit_model = model.iter().position(|&(l, _)| l == lbn);
                        let hit_cache = cache.get(lbn).is_some();
                        prop_assert_eq!(hit_model.is_some(), hit_cache);
                        if let Some(pos) = hit_model {
                            let e = model.remove(pos);
                            model.push(e);
                        }
                    }
                    _ => {
                        // flush
                        for e in &mut model {
                            e.1 = false;
                        }
                        cache.flush_dirty();
                    }
                }
                // Residency must agree.
                for l in 0u64..16 {
                    prop_assert_eq!(
                        cache.contains(l),
                        model.iter().any(|&(m, _)| m == l),
                        "divergence on block {}", l
                    );
                }
                prop_assert!(cache.len() <= capacity);
            }
        }
    }
}
