#![warn(missing_docs)]
//! A small inode file system with a size-limited buffer cache — the local
//! file system the pass-through NFS server and kHTTPd run on.
//!
//! The paper's servers sit on an ordinary Linux FS whose page/buffer cache
//! holds 4 KiB blocks; NCache leaves "the file system and file system cache
//! abstractions intact" (§2) and only changes the *interfaces* the server
//! daemon uses to move data in and out of the cache. This crate mirrors
//! that split:
//!
//! * [`fs::Filesystem`] is a classic Unix-style FS: superblock, inode table
//!   (direct + single- + double-indirect block maps), bitmap allocator,
//!   single-level directories — all stored in real blocks behind a
//!   [`store::BlockStore`].
//! * [`cache::BufferCache`] is the page/buffer cache: bounded capacity, LRU,
//!   with the eviction policy of §3.4 ("first clean buffers are reclaimed
//!   and then dirty buffers are flushed and reclaimed").
//! * The FS exposes **both** data-movement interfaces: the conventional
//!   copying reads/writes ([`fs::Filesystem::read`], [`fs::Filesystem::write`]),
//!   and the key-moving logical interfaces
//!   ([`fs::Filesystem::read_logical`], [`fs::Filesystem::write_logical`])
//!   that the NCache configuration uses — blocks then hold a
//!   [`netbuf::key::KeyStamp`] plus junk instead of payload.
//!
//! Every block the FS touches is classified metadata vs regular data
//! ([`store::BlockClass`]), which is the inode-type context the iSCSI
//! initiator attaches to requests so the NCache module can classify
//! storage traffic (§3.3).

pub mod alloc;
pub mod cache;
pub mod dir;
pub mod error;
pub mod fs;
pub mod inode;
pub mod store;

pub use cache::{take_op_tally, BufferCache};
pub use error::FsError;
pub use fs::{Filesystem, FsParams};
pub use inode::{FileType, Ino};
pub use store::{BlockClass, BlockStore, MemStore, TraceStore};

/// File system block size in bytes (also the iSCSI block and NCache chunk
/// payload unit).
pub const BLOCK_SIZE: usize = 4096;
